#!/usr/bin/env python3
"""Runs a qb5000 bench binary and emits a JSON results file.

Collects two result streams:
  * the google-benchmark microbenchmarks, via --benchmark_out (clean JSON,
    unpolluted by the benches' human-readable reports on stdout);
  * the "#KV key value" lines the reports print for machine consumption
    (speedups, per-component timings, scaling factors).

Usage:
  tools/bench_to_json.py build/bench/bench_kernels --out BENCH_kernels.json
  tools/bench_to_json.py build/bench/bench_table4_overhead \
      --out BENCH_table4.json

Extra arguments after the binary are forwarded to it. QB_BENCH_FAST=1 in the
environment is forwarded too (the benches shrink themselves).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def parse_kv_lines(text):
    """Extracts {key: float-or-string} from '#KV key value' lines."""
    report = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("#KV "):
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            continue
        _, key, value = parts
        try:
            report[key] = float(value)
        except ValueError:
            report[key] = value
    return report


def summarize_benchmarks(bench_json):
    """Reduces google-benchmark's JSON to the fields worth diffing."""
    out = []
    for entry in bench_json.get("benchmarks", []):
        out.append(
            {
                "name": entry.get("name"),
                "real_time": entry.get("real_time"),
                "cpu_time": entry.get("cpu_time"),
                "time_unit": entry.get("time_unit"),
                "iterations": entry.get("iterations"),
                "items_per_second": entry.get("items_per_second"),
            }
        )
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="bench executable to run")
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument(
        "bench_args", nargs="*", help="extra args forwarded to the binary"
    )
    # parse_known_args so option-like extras (--benchmark_min_time=0.1x)
    # forward to the binary instead of tripping argparse; a leading "--"
    # separator is accepted and dropped.
    args, unknown = parser.parse_known_args()
    args.bench_args = [a for a in args.bench_args if a != "--"] + unknown

    if not os.path.exists(args.binary):
        sys.exit(f"error: no such binary: {args.binary}")

    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", delete=False
    ) as tmp:
        gbench_path = tmp.name
    try:
        cmd = [
            args.binary,
            f"--benchmark_out={gbench_path}",
            "--benchmark_out_format=json",
            *args.bench_args,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            sys.exit(f"error: {cmd[0]} exited with {proc.returncode}")

        bench_json = {}
        if os.path.getsize(gbench_path) > 0:
            with open(gbench_path) as f:
                bench_json = json.load(f)
    finally:
        os.unlink(gbench_path)

    result = {
        "binary": os.path.basename(args.binary),
        "context": bench_json.get("context", {}),
        "benchmarks": summarize_benchmarks(bench_json),
        "report": parse_kv_lines(proc.stdout),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {len(result['benchmarks'])} benchmarks, "
          f"{len(result['report'])} report keys")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Self-test for tools/qb_lint.py (run by the CI lint job).

Each case writes a fixture to a temp directory and calls lint_file() with a
controlled repo-relative path, so allowlists and directory-scoped rules are
exercised exactly as they resolve in the real tree. Covers the raw-mutex,
raw-thread, raw-atomic, and string-ref-param rules with positive and
negative fixtures, plus the comment/string stripping those rules depend on.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import qb_lint  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmpdir = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def run_lint(self, rel, content):
        """Lints `content` as if it lived at repo-relative path `rel`."""
        path = self.tmpdir / Path(rel).name
        path.write_text(content)
        return qb_lint.lint_file(path, rel, fix=False)

    def checks(self, findings):
        return sorted({f.check for f in findings})

    # --- raw-mutex ---------------------------------------------------------

    def test_raw_mutex_flags_std_mutex_member(self):
        findings = self.run_lint("src/core/widget.h", """#pragma once
#include <mutex>
class Widget {
  std::mutex mu_;
};
""")
        self.assertIn("raw-mutex", self.checks(findings))

    def test_raw_mutex_flags_lock_raii_and_condition_variable(self):
        findings = self.run_lint("src/core/widget.cc", """void f() {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_lock read(shared_mu_);
  std::condition_variable cv;
}
""")
        raw_mutex = [f for f in findings if f.check == "raw-mutex"]
        self.assertEqual(len(raw_mutex), 3)

    def test_raw_mutex_flags_lowercase_lock_calls(self):
        findings = self.run_lint("src/core/widget.cc", """void f() {
  mu_.lock();
  mu_ptr->unlock();
  smu_.lock_shared();
}
""")
        raw_mutex = [f for f in findings if f.check == "raw-mutex"]
        self.assertEqual(len(raw_mutex), 3)

    def test_raw_mutex_allows_wrapper_implementation(self):
        content = """void Mutex::Lock() {
  mu_.lock();
}
std::mutex raw_;
"""
        self.assertEqual(
            self.checks(self.run_lint("src/common/mutex.cc", content)), [])
        # The identical content anywhere else is a finding.
        self.assertIn("raw-mutex", self.checks(
            self.run_lint("src/core/widget.cc", content)))

    def test_raw_mutex_allows_qb_wrappers_and_prose(self):
        findings = self.run_lint("src/core/widget.cc", """void f() {
  MutexLock lock(&mu_);   // not std::lock_guard: see common/mutex.h
  mu_.Lock();
  mu_.Unlock();
  const char* msg = "call mu_.lock() here";  /* std::mutex in prose */
}
""")
        self.assertEqual(self.checks(findings), [])

    # --- raw-thread --------------------------------------------------------

    def test_raw_thread_flags_std_thread_outside_pool(self):
        findings = self.run_lint("src/core/widget.cc", """void f() {
  std::thread worker([] {});
  worker.join();
}
""")
        self.assertIn("raw-thread", self.checks(findings))

    def test_raw_thread_allows_pool_implementation_and_this_thread(self):
        self.assertEqual(self.checks(self.run_lint(
            "src/common/thread_pool.cc",
            "std::vector<std::thread> workers_;\n")), [])
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.cc",
            "void f() { std::this_thread::yield(); }\n")), [])

    # --- raw-atomic --------------------------------------------------------

    def test_raw_atomic_flags_use_outside_common(self):
        findings = self.run_lint("src/core/widget.h", """#pragma once
#include <atomic>
class Widget {
  std::atomic<int64_t> pending_{0};
  std::atomic_bool flag_{false};
};
void Fence() { std::atomic_thread_fence(std::memory_order_acquire); }
""")
        raw_atomic = [f for f in findings if f.check == "raw-atomic"]
        self.assertEqual(len(raw_atomic), 3)

    def test_raw_atomic_allows_common_and_suppressions(self):
        # src/common/ is the reviewed home for lock-free primitives.
        self.assertEqual(self.checks(self.run_lint(
            "src/common/mpsc_queue.h",
            "#pragma once\nstd::atomic<uint64_t> seq{0};\n")), [])
        # Elsewhere a justified suppression on the line passes.
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.h", """#pragma once
class Widget {
  std::atomic<uint64_t> epoch_{0};  // lint:raw-atomic-ok (movable counter)
};
""")), [])
        # Prose and comments never fire.
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.cc",
            "// std::atomic is banned here\nconst char* s = \"std::atomic\";\n"
        )), [])

    # --- raw-finite --------------------------------------------------------

    def test_raw_finite_flags_std_isnan_isfinite_isinf(self):
        findings = self.run_lint("src/core/widget.cc", """void f(double v) {
  if (std::isnan(v)) return;
  if (!std::isfinite(v)) return;
  if (std::isinf(v)) return;
}
""")
        raw_finite = [f for f in findings if f.check == "raw-finite"]
        self.assertEqual(len(raw_finite), 3)

    def test_raw_finite_allows_finite_h_and_wrappers(self):
        # The wrapper header itself is the one sanctioned home.
        self.assertEqual(self.checks(self.run_lint(
            "src/common/finite.h", """#pragma once
#include <cmath>
inline bool IsFinite(double v) { return std::isfinite(v); }
inline bool IsNaN(double v) { return std::isnan(v); }
""")), [])
        # Everywhere else, the finite.h vocabulary passes without findings.
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.cc", """void f(double v) {
  if (!IsFinite(v)) return;        // common/finite.h
  double safe = FiniteOr(v, 0.0);  /* std::isnan only in prose */
  (void)safe;
}
""")), [])

    # --- history-raw-access ------------------------------------------------

    def test_history_raw_access_flags_rung_reads_outside_module(self):
        findings = self.run_lint("src/clusterer/widget.cc", """void f() {
  const auto& r = info->history.recent();
  double v = history.archive().Total();
  use(h.daily());
}
""")
        raw = [f for f in findings if f.check == "history-raw-access"]
        self.assertEqual(len(raw), 3)

    def test_history_raw_access_allows_module_and_suppressions(self):
        content = "const auto& r = history.recent();\n"
        for rel in sorted(qb_lint.HISTORY_RAW_ACCESS_ALLOWLIST):
            self.assertNotIn("history-raw-access",
                             self.checks(self.run_lint(rel, content)))
        # Elsewhere a justified suppression on the line passes.
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.cc",
            "auto& r = history.recent();  // lint:history-raw-ok (test rig)\n"
        )), [])
        # Calls with arguments (some other recent()) and the windowed views
        # never fire.
        self.assertEqual(self.checks(self.run_lint(
            "src/core/widget.cc", """void f() {
  auto s = history.Series(60, 0, 600);
  auto t = cache.recent(5);
}
""")), [])

    # --- string-ref-param --------------------------------------------------

    def test_string_ref_param_flags_hot_path_headers(self):
        content = """#pragma once
void Ingest(const std::string& sql);
"""
        self.assertIn("string-ref-param", self.checks(
            self.run_lint("src/preprocessor/widget.h", content)))
        self.assertIn("string-ref-param", self.checks(
            self.run_lint("src/sql/widget.h", content)))

    def test_string_ref_param_ignores_cold_paths_and_suppressions(self):
        # Same signature off the hot path: allowed.
        self.assertEqual(self.checks(self.run_lint(
            "src/common/widget.h",
            "#pragma once\nvoid f(const std::string& name);\n")), [])
        # Hot path but explicitly suppressed: allowed.
        self.assertEqual(self.checks(self.run_lint(
            "src/sql/widget.h", """#pragma once
void Ingest(const std::string& sql);  // lint:string-ref-ok
""")), [])
        # string_view passes without suppression.
        self.assertEqual(self.checks(self.run_lint(
            "src/sql/widget.h",
            "#pragma once\nvoid Ingest(std::string_view sql);\n")), [])

    # --- shared machinery --------------------------------------------------

    def test_block_comments_do_not_trigger_rules(self):
        findings = self.run_lint("src/core/widget.cc", """/*
 * std::mutex mu_;
 * std::thread worker;
 */
void f() {}
""")
        self.assertEqual(self.checks(findings), [])

    def test_real_wrapper_files_stay_clean(self):
        # The shipped implementation must satisfy its own allowlist (guards
        # against renaming mutex.{h,cc} without updating the lint).
        repo = Path(__file__).resolve().parent.parent
        for rel in sorted(qb_lint.RAW_MUTEX_ALLOWLIST
                          | qb_lint.RAW_FINITE_ALLOWLIST
                          | qb_lint.RAW_THREAD_ALLOWLIST):
            path = repo / rel
            self.assertTrue(path.is_file(), f"{rel} missing on disk")
            findings = qb_lint.lint_file(path, rel, fix=False)
            self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()

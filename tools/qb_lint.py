#!/usr/bin/env python3
"""qb_lint: repo-convention linter for the qb5000 codebase.

Checks (stdlib-only, no compiler needed):
  pragma-once        every header starts with `#pragma once` (legacy
                     `#ifndef QB5000_*_H_` guards are rejected and fixable)
  using-namespace    no `using namespace` at any scope inside headers
  banned-function    no rand / strtok / gets / sprintf (use Rng, strings.h,
                     or snprintf)
  raw-assert         no raw assert() outside src/common/check.h — use
                     QB_CHECK / QB_DCHECK so invariants survive Release
  raw-file-stream    no std::ofstream / std::ifstream / std::fstream outside
                     src/common/io.cc — go through the Env / AtomicFileWriter
                     layer (common/io.h) so writes stay atomic, fsynced, and
                     fault-injectable
  raw-thread         no std::thread outside src/common/thread_pool.{h,cc} —
                     use ThreadPool / ParallelFor (common/thread_pool.h) so
                     concurrency stays deterministic, bounded, and governed
                     by the SetThreadCount knob
  raw-atomic         no std::atomic (nor atomic_* helpers / fences) outside
                     src/common/ — lock-free code stays corralled behind
                     reviewed primitives (MpscRingQueue, Mutex, the metrics
                     registry); suppress a deliberate exception with a
                     `lint:raw-atomic-ok` comment on the line
  raw-mutex          no std::mutex / std::shared_mutex (nor their lock RAII
                     types, condition_variable, or lowercase .lock() calls)
                     outside src/common/mutex.{h,cc} — use qb5000::Mutex /
                     SharedMutex and the annotated RAII guards
                     (common/mutex.h) so Clang Thread Safety Analysis and
                     the Debug lock-order checker see every acquisition
  raw-chrono-timing  no hand-rolled steady_clock::now() pairs outside
                     src/common/ — use Stopwatch / ScopedTimer
                     (common/metrics.h) so timing feeds the metrics layer
                     and respects the QB5000_METRICS kill switch
  raw-finite         no std::isnan / std::isfinite outside
                     src/common/finite.h — use IsFinite / IsNaN /
                     AllFinite / FiniteOr (common/finite.h) so finiteness
                     checks stay greppable and NaN handling is centralized
                     (DESIGN.md §13: the health gate and output scrubbing
                     depend on these being the only finiteness vocabulary)
  history-raw-access no `.recent()` / `.archive()` / `.daily()` rung access
                     outside the history module (arrival_history / snapshot)
                     — every consumer goes through Series / WindowInto /
                     RangeTotal so the spill tier stays transparent (a raw
                     rung read would QB_CHECK-fail on a spilled history);
                     suppress deliberate exceptions with a
                     `lint:history-raw-ok` comment
  string-ref-param   no `const std::string&` parameters in headers under
                     src/sql/ or src/preprocessor/ (the ingest hot path) —
                     take std::string_view so callers with borrowed bytes
                     never materialize a std::string; suppress deliberate
                     exceptions with a `lint:string-ref-ok` comment
  missing-include    files that use a known symbol must include its header
                     (QB_CHECK -> common/check.h, assert -> <cassert>, ...)

Usage:
  tools/qb_lint.py [--fix] PATH [PATH ...]

Exits 0 when clean, 1 when findings remain (after fixes, if --fix).
"""

import argparse
import re
import sys
from pathlib import Path

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".cc", ".cpp", ".cxx"} | HEADER_SUFFIXES

# Files allowed to use raw assert() (the check machinery itself).
RAW_ASSERT_ALLOWLIST = {"src/common/check.h"}

# Files allowed to open raw file streams (the io layer's own implementation).
RAW_FILE_STREAM_ALLOWLIST = {"src/common/io.cc"}

RAW_FILE_STREAM_RE = re.compile(r"\bstd::[oi]?fstream\b")

# Files allowed to touch std::thread (the pool's own implementation; the
# header declares the worker vector and queries hardware_concurrency; the
# service lifecycle owns the one background maintenance thread).
RAW_THREAD_ALLOWLIST = {"src/common/thread_pool.h", "src/common/thread_pool.cc",
                        "src/common/service.h", "src/common/service.cc"}

# Lock-free code is corralled: std::atomic (including std::atomic_bool,
# std::atomic_thread_fence, ...) is reviewed-primitive territory. Outside
# src/common/ use MpscRingQueue / Mutex / the metrics instruments, or carry a
# justification on the line with the suppression comment.
RAW_ATOMIC_ALLOWLIST_PREFIX = "src/common/"
RAW_ATOMIC_RE = re.compile(r"\bstd::atomic\w*\b")
RAW_ATOMIC_SUPPRESS = "lint:raw-atomic-ok"

# std::thread the type — std::this_thread (sleep/yield) stays allowed.
RAW_THREAD_RE = re.compile(r"\bstd::thread\b")

# Files allowed to touch the std locking primitives (the annotated wrapper's
# own implementation).
RAW_MUTEX_ALLOWLIST = {"src/common/mutex.h", "src/common/mutex.cc"}

# The std lock vocabulary, plus the lowercase lock()/unlock() method family
# (the qb5000 wrappers use capitalized Lock()/Unlock(), so a lowercase call
# can only be a std primitive or an ad-hoc lockable slipping past the types).
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|recursive_timed_mutex|"
    r"timed_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable(?:_any)?)\b")

RAW_MUTEX_CALL_RE = re.compile(
    r"(?:\.|->)(?:lock|unlock|try_lock|lock_shared|unlock_shared|"
    r"try_lock_shared)\s*\(")

# Ad-hoc wall-clock timing must go through Stopwatch / ScopedTimer
# (common/metrics.h). Only the metrics/tracing layer itself touches the
# clock directly; everywhere else a raw now() pair is invisible to the
# observability layer and ignores the QB5000_METRICS kill switch.
RAW_CHRONO_ALLOWLIST_PREFIX = "src/common/"

RAW_CHRONO_RE = re.compile(
    r"\bstd::chrono::(steady_clock|high_resolution_clock|system_clock)::now\b")

# Finiteness checks must go through common/finite.h (IsFinite / IsNaN /
# AllFinite / FiniteOr). Scattered std::isfinite calls are how NaN-handling
# policy drifts: the resilience layer (DESIGN.md §13) audits every scrub and
# health-gate site by grepping for the finite.h vocabulary.
RAW_FINITE_ALLOWLIST = {"src/common/finite.h"}

RAW_FINITE_RE = re.compile(r"\bstd::is(nan|finite|inf)\b")

# ArrivalHistory's raw rung accessors are for the history/snapshot module
# itself; everyone else reads through the windowed views, which is what
# keeps the spill tier transparent (raw rung access on a spilled history is
# a QB_CHECK failure at runtime — this rule catches it at review time).
HISTORY_RAW_ACCESS_ALLOWLIST = {
    "src/preprocessor/arrival_history.h",
    "src/preprocessor/arrival_history.cc",
    "src/preprocessor/snapshot.cc",
}
HISTORY_RAW_ACCESS_RE = re.compile(
    r"(?:\.|->)\s*(?:recent|archive|daily)\s*\(\s*\)")
HISTORY_RAW_SUPPRESS = "lint:history-raw-ok"

# Headers on the ingest hot path must not force callers to own a
# std::string. Matches a `const std::string&` followed by a parameter name
# (a return type is followed by `(` and is not matched). Suppress a
# deliberate exception with a `lint:string-ref-ok` comment on the line.
STRING_REF_PARAM_DIRS = ("src/sql/", "src/preprocessor/")
STRING_REF_PARAM_RE = re.compile(r"const\s+std::string\s*&\s*\w+(?![\w(])")
STRING_REF_SUPPRESS = "lint:string-ref-ok"

BANNED_FUNCTIONS = {
    "rand": "use qb5000::Rng (common/rng.h) for seedable, reproducible draws",
    "strtok": "not reentrant; use qb5000 string helpers (common/strings.h)",
    "gets": "unbounded write; removed from C11/C++ for good reason",
    "sprintf": "unbounded write; use snprintf",
}

# (symbol name, symbol regex, required include regex, include to add)
REQUIRED_INCLUDES = [
    ("QB_CHECK",
     re.compile(r"\bQB_D?CHECK(_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\("),
     re.compile(r'#include\s+"common/check\.h"'), '"common/check.h"'),
    ("assert",
     re.compile(r"(?<!_)\bassert\s*\("),
     re.compile(r"#include\s+<cassert>"), "<cassert>"),
    ("std::memcpy/memset/memmove",
     re.compile(r"\bstd::mem(cpy|set|move)\s*\("),
     re.compile(r"#include\s+<cstring>"), "<cstring>"),
    ("std::printf/fprintf",
     re.compile(r"\bstd::f?printf\s*\("),
     re.compile(r"#include\s+<cstdio>"), "<cstdio>"),
]

GUARD_IFNDEF = re.compile(r"^#ifndef\s+(QB5000_\w+_H_)\s*$")


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_noise(line):
    """Removes // comments and string/char literal contents from a line so
    symbol regexes do not fire on prose or quoted text. Heuristic, not a full
    lexer, but sufficient for this codebase's style."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                i += 2
                continue
            if ch == in_str:
                in_str = None
            i += 1
            continue
        if ch in ('"', "'"):
            in_str = ch
            out.append(ch)
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def iter_code_lines(text):
    """Yields (lineno, stripped_line) with block comments blanked out."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        # Blank any /* ... */ sections, possibly several per line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        yield lineno, strip_noise(line)


def check_pragma_once(path, text, fix):
    """Headers must open with #pragma once. With --fix, converts a legacy
    QB5000_*_H_ include guard in place. Returns (findings, new_text)."""
    findings = []
    lines = text.splitlines(keepends=True)
    has_pragma = any(line.strip() == "#pragma once" for line in lines[:30])
    if has_pragma:
        return findings, text

    guard = None
    guard_idx = None
    for idx, line in enumerate(lines[:30]):
        m = GUARD_IFNDEF.match(line.strip())
        if m:
            guard, guard_idx = m.group(1), idx
            break

    if not fix or guard is None:
        what = (f"legacy include guard {guard}" if guard
                else "missing #pragma once")
        findings.append(Finding(path, (guard_idx or 0) + 1, "pragma-once",
                                f"{what}; headers must use #pragma once"))
        return findings, text

    # Rewrite: drop `#ifndef G` / `#define G`, the trailing `#endif`, and
    # insert `#pragma once` where the guard began.
    out = []
    endif_re = re.compile(r"^#endif\b")
    last_endif = None
    for idx, line in enumerate(lines):
        if idx == guard_idx:
            out.append("#pragma once\n")
            continue
        if idx == guard_idx + 1 and line.strip() == f"#define {guard}":
            continue
        out.append(line)
    for idx in range(len(out) - 1, -1, -1):
        if endif_re.match(out[idx].lstrip()):
            last_endif = idx
            break
    if last_endif is not None:
        del out[last_endif]
        while last_endif > 0 and out[last_endif - 1].strip() == "":
            del out[last_endif - 1]
            last_endif -= 1
    return findings, "".join(out)


def lint_file(path, rel, fix):
    findings = []
    text = path.read_text()
    original = text

    if path.suffix in HEADER_SUFFIXES:
        pragma_findings, text = check_pragma_once(rel, text, fix)
        findings.extend(pragma_findings)

    banned_re = re.compile(
        r"(?<![\w:.])(" + "|".join(BANNED_FUNCTIONS) + r")\s*\(")
    assert_re = re.compile(r"(?<![\w_])assert\s*\(")

    raw_lines = text.splitlines()
    check_string_ref = (path.suffix in HEADER_SUFFIXES
                        and rel.startswith(STRING_REF_PARAM_DIRS))

    for lineno, line in iter_code_lines(text):
        if (check_string_ref and STRING_REF_PARAM_RE.search(line)
                and STRING_REF_SUPPRESS not in raw_lines[lineno - 1]):
            findings.append(Finding(
                rel, lineno, "string-ref-param",
                "const std::string& parameter on the ingest hot path; take "
                "std::string_view (borrowed) or std::string by value "
                f"(owned), or suppress with `{STRING_REF_SUPPRESS}`"))
        if path.suffix in HEADER_SUFFIXES and re.search(
                r"\busing\s+namespace\b", line):
            findings.append(Finding(
                rel, lineno, "using-namespace",
                "`using namespace` in a header leaks into every includer"))
        for m in banned_re.finditer(line):
            name = m.group(1)
            findings.append(Finding(
                rel, lineno, "banned-function",
                f"{name}() is banned: {BANNED_FUNCTIONS[name]}"))
        if rel not in HISTORY_RAW_ACCESS_ALLOWLIST:
            if (HISTORY_RAW_ACCESS_RE.search(line)
                    and HISTORY_RAW_SUPPRESS not in raw_lines[lineno - 1]):
                findings.append(Finding(
                    rel, lineno, "history-raw-access",
                    "raw ArrivalHistory rung access outside the history "
                    "module; read through Series / WindowInto / RangeTotal "
                    "(spill-transparent), or suppress with "
                    f"`{HISTORY_RAW_SUPPRESS}`"))
        if rel not in RAW_FILE_STREAM_ALLOWLIST:
            for _ in RAW_FILE_STREAM_RE.finditer(line):
                findings.append(Finding(
                    rel, lineno, "raw-file-stream",
                    "raw std::fstream bypasses the durability layer; use "
                    "Env / AtomicFileWriter from common/io.h (atomic "
                    "replace, fsync, fault injection)"))
        if rel not in RAW_THREAD_ALLOWLIST:
            for _ in RAW_THREAD_RE.finditer(line):
                findings.append(Finding(
                    rel, lineno, "raw-thread",
                    "raw std::thread bypasses the pool; use ThreadPool / "
                    "ParallelFor (common/thread_pool.h) so thread count, "
                    "determinism, and exception propagation stay governed"))
        if not rel.startswith(RAW_ATOMIC_ALLOWLIST_PREFIX):
            if (RAW_ATOMIC_RE.search(line)
                    and RAW_ATOMIC_SUPPRESS not in raw_lines[lineno - 1]):
                findings.append(Finding(
                    rel, lineno, "raw-atomic",
                    "raw std::atomic outside src/common/; use the reviewed "
                    "primitives (MpscRingQueue, Mutex, metrics instruments) "
                    "or justify the exception with a "
                    f"`{RAW_ATOMIC_SUPPRESS}` comment"))
        if rel not in RAW_MUTEX_ALLOWLIST:
            if RAW_MUTEX_RE.search(line) or RAW_MUTEX_CALL_RE.search(line):
                findings.append(Finding(
                    rel, lineno, "raw-mutex",
                    "raw std locking primitive is invisible to Thread Safety "
                    "Analysis and the lock-order checker; use qb5000::Mutex "
                    "/ SharedMutex with the RAII guards (common/mutex.h)"))
        if not rel.startswith(RAW_CHRONO_ALLOWLIST_PREFIX):
            for _ in RAW_CHRONO_RE.finditer(line):
                findings.append(Finding(
                    rel, lineno, "raw-chrono-timing",
                    "hand-rolled clock::now() timing bypasses the metrics "
                    "layer; use Stopwatch or ScopedTimer (common/metrics.h)"))
        if rel not in RAW_FINITE_ALLOWLIST:
            for _ in RAW_FINITE_RE.finditer(line):
                findings.append(Finding(
                    rel, lineno, "raw-finite",
                    "raw std::isnan/std::isfinite scatters NaN policy; use "
                    "IsFinite / IsNaN / AllFinite / FiniteOr from "
                    "common/finite.h (the audited finiteness vocabulary)"))
        if rel not in RAW_ASSERT_ALLOWLIST:
            for m in assert_re.finditer(line):
                if line[:m.start()].rstrip().endswith(("static", "_")):
                    continue
                findings.append(Finding(
                    rel, lineno, "raw-assert",
                    "raw assert() vanishes under NDEBUG; use QB_CHECK "
                    "(Release-safe) or QB_DCHECK (debug-only)"))

    code = "\n".join(line for _, line in iter_code_lines(text))
    for symbol_name, symbol_re, include_re, include_name in REQUIRED_INCLUDES:
        if symbol_re.search(code) and not include_re.search(text):
            if include_name == '"common/check.h"' and rel in RAW_ASSERT_ALLOWLIST:
                continue
            if fix:
                text = insert_include(text, include_name)
            else:
                findings.append(Finding(
                    rel, 1, "missing-include",
                    f"uses {symbol_name} but does not include {include_name}"))

    if fix and text != original:
        path.write_text(text)
    return findings


def insert_include(text, include_name):
    """Adds `#include X` after the last existing include (or the pragma)."""
    directive = (f'#include {include_name}\n')
    lines = text.splitlines(keepends=True)
    last_include = None
    for idx, line in enumerate(lines):
        if line.lstrip().startswith("#include"):
            last_include = idx
    if last_include is not None:
        lines.insert(last_include + 1, directive)
    else:
        for idx, line in enumerate(lines):
            if line.strip() == "#pragma once":
                lines.insert(idx + 1, "\n" + directive)
                break
        else:
            lines.insert(0, directive)
    return "".join(lines)


def collect_files(roots):
    for root in roots:
        p = Path(root)
        if p.is_file():
            if p.suffix in SOURCE_SUFFIXES:
                yield p
        elif p.is_dir():
            for child in sorted(p.rglob("*")):
                if child.suffix in SOURCE_SUFFIXES and "build" not in child.parts:
                    yield child
        else:
            print(f"qb_lint: no such path: {root}", file=sys.stderr)
            sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite fixable findings in place")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    all_findings = []
    count = 0
    for path in collect_files(args.paths):
        count += 1
        try:
            rel = str(path.resolve().relative_to(repo_root))
        except ValueError:
            rel = str(path)
        all_findings.extend(lint_file(path, rel, args.fix))

    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"qb_lint: {len(all_findings)} finding(s) in {count} file(s)",
              file=sys.stderr)
        return 1
    print(f"qb_lint: {count} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "dbms/database.h"
#include "workload/workload.h"

namespace qb5000::dbms {

/// Creates and populates the tables described by a synthetic workload's
/// schema. Column values are drawn uniformly from each column's cardinality
/// so index selectivity matches the generators' predicates. `row_scale`
/// scales every table's row count (1.0 = the schema's counts).
Status LoadWorkloadSchema(Database& db, const SyntheticWorkload& workload,
                          Rng& rng, double row_scale = 1.0);

}  // namespace qb5000::dbms

#include "dbms/value.h"

#include <cstdlib>

namespace qb5000::dbms {

bool ValueLess(const Value& a, const Value& b) {
  if (a.index() != b.index()) return a.index() < b.index();
  if (std::holds_alternative<int64_t>(a)) {
    return std::get<int64_t>(a) < std::get<int64_t>(b);
  }
  if (std::holds_alternative<std::string>(a)) {
    return std::get<std::string>(a) < std::get<std::string>(b);
  }
  return false;  // both NULL
}

bool ValueEquals(const Value& a, const Value& b) {
  return !ValueLess(a, b) && !ValueLess(b, a) && !IsNull(a) && !IsNull(b);
}

Value ValueFromLiteral(const sql::Literal& literal, bool as_int) {
  switch (literal.type) {
    case sql::LiteralType::kNull:
      return std::monostate{};
    case sql::LiteralType::kInteger:
    case sql::LiteralType::kFloat:
    case sql::LiteralType::kBoolean:
      if (as_int) return std::strtoll(literal.text.c_str(), nullptr, 10);
      return literal.text;
    case sql::LiteralType::kString:
      if (as_int) return std::strtoll(literal.text.c_str(), nullptr, 10);
      return literal.text;
  }
  return std::monostate{};
}

std::string ValueToString(const Value& v) {
  if (IsNull(v)) return "NULL";
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  return "'" + std::get<std::string>(v) + "'";
}

}  // namespace qb5000::dbms

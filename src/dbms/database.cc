#include "dbms/database.h"

#include <algorithm>
#include <cmath>

#include "sql/parser.h"

namespace qb5000::dbms {
namespace {

using sql::Expr;
using sql::ExprKind;
using sql::Statement;
using sql::StatementType;

// ---------------------------------------------------------------------------
// Row binding: one or two (table, row) slots with qualified column lookup.
// ---------------------------------------------------------------------------

struct Binding {
  struct Slot {
    const Table* table = nullptr;
    std::string qualifier;  ///< alias or table name
    const Row* row = nullptr;
  };
  std::vector<Slot> slots;

  /// Resolves `qualifier.column` (qualifier may be empty) to a value in the
  /// bound rows. Returns NULL when unresolved.
  Value Resolve(const std::string& qualifier, const std::string& column) const {
    for (const auto& slot : slots) {
      if (!qualifier.empty() && qualifier != slot.qualifier &&
          qualifier != slot.table->name()) {
        continue;
      }
      int col = slot.table->ColumnIndex(column);
      if (col >= 0 && slot.row != nullptr) {
        return (*slot.row)[static_cast<size_t>(col)];
      }
    }
    return std::monostate{};
  }

  const Column* ResolveColumn(const std::string& qualifier,
                              const std::string& column) const {
    for (const auto& slot : slots) {
      if (!qualifier.empty() && qualifier != slot.qualifier &&
          qualifier != slot.table->name()) {
        continue;
      }
      int col = slot.table->ColumnIndex(column);
      if (col >= 0) return &slot.table->columns()[static_cast<size_t>(col)];
    }
    return nullptr;
  }
};

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti = 0,
               size_t pi = 0) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      for (size_t skip = ti; skip <= text.size(); ++skip) {
        if (LikeMatch(text, pattern, skip, pi + 1)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

Value EvalScalar(const Expr& e, const Binding& binding) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      return binding.Resolve(e.table, e.column);
    }
    case ExprKind::kLiteral: {
      const Column* col = nullptr;  // untyped literal: infer from content
      (void)col;
      if (e.literal.type == sql::LiteralType::kInteger ||
          e.literal.type == sql::LiteralType::kBoolean) {
        return ValueFromLiteral(e.literal, /*as_int=*/true);
      }
      return ValueFromLiteral(e.literal, /*as_int=*/false);
    }
    default:
      return std::monostate{};
  }
}

/// Compares possibly mixed int/string values by coercing the string side
/// when the other side is an int (literals for int columns stay strings
/// only in odd cases).
int CompareValues(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) return 2;  // incomparable
  if (a.index() == b.index()) {
    if (ValueLess(a, b)) return -1;
    if (ValueLess(b, a)) return 1;
    return 0;
  }
  // Coerce string to int when compared against an int.
  auto as_int = [](const Value& v) -> int64_t {
    if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v);
    return std::strtoll(std::get<std::string>(v).c_str(), nullptr, 10);
  };
  int64_t ia = as_int(a);
  int64_t ib = as_int(b);
  if (ia < ib) return -1;
  if (ia > ib) return 1;
  return 0;
}

bool EvalPredicate(const Expr& e, const Binding& binding) {
  switch (e.kind) {
    case ExprKind::kBinary: {
      if (e.op == "AND") {
        return EvalPredicate(*e.left, binding) && EvalPredicate(*e.right, binding);
      }
      if (e.op == "OR") {
        return EvalPredicate(*e.left, binding) || EvalPredicate(*e.right, binding);
      }
      if (e.op == "LIKE") {
        Value text = EvalScalar(*e.left, binding);
        Value pattern = EvalScalar(*e.right, binding);
        if (!std::holds_alternative<std::string>(text) ||
            !std::holds_alternative<std::string>(pattern)) {
          return false;
        }
        bool match =
            LikeMatch(std::get<std::string>(text), std::get<std::string>(pattern));
        return e.negated ? !match : match;
      }
      int cmp = CompareValues(EvalScalar(*e.left, binding),
                              EvalScalar(*e.right, binding));
      if (cmp == 2) return false;
      if (e.op == "=") return cmp == 0;
      if (e.op == "<>") return cmp != 0;
      if (e.op == "<") return cmp < 0;
      if (e.op == "<=") return cmp <= 0;
      if (e.op == ">") return cmp > 0;
      if (e.op == ">=") return cmp >= 0;
      return false;
    }
    case ExprKind::kUnary: {
      if (e.op == "NOT") return !EvalPredicate(*e.left, binding);
      Value v = EvalScalar(*e.left, binding);
      if (e.op == "IS NULL") return IsNull(v);
      if (e.op == "IS NOT NULL") return !IsNull(v);
      return false;
    }
    case ExprKind::kInList: {
      Value v = EvalScalar(*e.left, binding);
      bool found = false;
      for (const auto& item : e.list) {
        if (CompareValues(v, EvalScalar(*item, binding)) == 0) {
          found = true;
          break;
        }
      }
      return e.negated ? !found : found;
    }
    case ExprKind::kBetween: {
      Value v = EvalScalar(*e.left, binding);
      int lo = CompareValues(v, EvalScalar(*e.list[0], binding));
      int hi = CompareValues(v, EvalScalar(*e.list[1], binding));
      bool in = lo != 2 && hi != 2 && lo >= 0 && hi <= 0;
      return e.negated ? !in : in;
    }
    case ExprKind::kLiteral:
      return e.literal.type == sql::LiteralType::kBoolean &&
             e.literal.text == "TRUE";
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Access-path analysis.
// ---------------------------------------------------------------------------

/// A directly indexable predicate on a base column of the target table.
/// `has_value` is false for prepared-statement placeholders: enough for
/// cost estimation (what-if planning over templates), not for execution.
struct SargablePredicate {
  std::string column;
  bool is_equality = false;
  bool has_lo = false, has_hi = false;
  bool lo_inclusive = false, hi_inclusive = false;
  bool has_value = true;
  Value equal_value, lo, hi;
  /// For IN lists: every member value (probed individually by the index
  /// path). `equal_value` holds the first member for estimation.
  std::vector<Value> in_values;
};

/// Collects sargable conjuncts of `e` that reference `table` (qualifier
/// empty or matching). OR subtrees are skipped (handled by the residual
/// filter); this mirrors what a simple planner can push into an index.
void CollectSargable(const Expr* e, const Table& table,
                     const std::string& qualifier,
                     std::vector<SargablePredicate>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    CollectSargable(e->left.get(), table, qualifier, out);
    CollectSargable(e->right.get(), table, qualifier, out);
    return;
  }
  auto base_column = [&](const Expr* side) -> const char* {
    if (side == nullptr || side->kind != ExprKind::kColumnRef) return nullptr;
    if (!side->table.empty() && side->table != qualifier &&
        side->table != table.name()) {
      return nullptr;
    }
    if (table.ColumnIndex(side->column) < 0) return nullptr;
    return side->column.c_str();
  };
  auto literal_value = [&](const Expr* side, const std::string& col) -> Value {
    int ci = table.ColumnIndex(col);
    bool as_int = ci >= 0 && table.columns()[static_cast<size_t>(ci)].is_int;
    return ValueFromLiteral(side->literal, as_int);
  };
  if (e->kind == ExprKind::kBinary && !e->negated) {
    const char* col = base_column(e->left.get());
    bool is_placeholder =
        e->right != nullptr && e->right->kind == ExprKind::kPlaceholder;
    if (col != nullptr && e->right != nullptr &&
        (e->right->kind == ExprKind::kLiteral || is_placeholder)) {
      SargablePredicate p;
      p.column = col;
      p.has_value = !is_placeholder;
      Value v = is_placeholder ? Value{} : literal_value(e->right.get(), p.column);
      if (e->op == "=") {
        p.is_equality = true;
        p.equal_value = std::move(v);
        out->push_back(std::move(p));
      } else if (e->op == "<" || e->op == "<=") {
        p.has_hi = true;
        p.hi_inclusive = e->op == "<=";
        p.hi = std::move(v);
        out->push_back(std::move(p));
      } else if (e->op == ">" || e->op == ">=") {
        p.has_lo = true;
        p.lo_inclusive = e->op == ">=";
        p.lo = std::move(v);
        out->push_back(std::move(p));
      }
    }
    return;
  }
  auto value_or_placeholder = [](const Expr* side) {
    return side->kind == ExprKind::kLiteral ||
           side->kind == ExprKind::kPlaceholder;
  };
  if (e->kind == ExprKind::kBetween && !e->negated) {
    const char* col = base_column(e->left.get());
    if (col != nullptr && e->list.size() == 2 &&
        value_or_placeholder(e->list[0].get()) &&
        value_or_placeholder(e->list[1].get())) {
      SargablePredicate p;
      p.column = col;
      p.has_lo = p.has_hi = true;
      p.lo_inclusive = p.hi_inclusive = true;
      p.has_value = e->list[0]->kind == ExprKind::kLiteral &&
                    e->list[1]->kind == ExprKind::kLiteral;
      if (p.has_value) {
        p.lo = literal_value(e->list[0].get(), p.column);
        p.hi = literal_value(e->list[1].get(), p.column);
      }
      out->push_back(std::move(p));
    }
    return;
  }
  if (e->kind == ExprKind::kInList && !e->negated) {
    // Treated as an equality family; use the first element for estimation
    // and let the residual filter do the exact work.
    const char* col = base_column(e->left.get());
    if (col != nullptr && !e->list.empty() &&
        value_or_placeholder(e->list[0].get())) {
      SargablePredicate p;
      p.column = col;
      p.is_equality = true;
      p.has_value = true;
      for (const auto& item : e->list) {
        if (item->kind != ExprKind::kLiteral) {
          p.has_value = false;
          break;
        }
        p.in_values.push_back(literal_value(item.get(), p.column));
      }
      if (p.has_value) p.equal_value = p.in_values.front();
      out->push_back(std::move(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Cost formulas.
// ---------------------------------------------------------------------------

double TablePages(const CostModel& c, double rows) {
  return std::max(1.0, std::ceil(rows / c.rows_per_page));
}

double PageCost(const CostModel& c, double table_rows) {
  double pages = TablePages(c, table_rows);
  double hit = std::min(1.0, c.buffer_pool_pages / pages);
  return hit * c.page_hit_us + (1.0 - hit) * c.page_miss_us;
}

double ScanCost(const CostModel& c, double table_rows) {
  return TablePages(c, table_rows) * PageCost(c, table_rows) +
         table_rows * c.row_cpu_us;
}

double IndexCost(const CostModel& c, double table_rows, double matches) {
  return c.index_probe_us + matches * PageCost(c, table_rows) +
         matches * c.row_cpu_us;
}

double WriteCost(const CostModel& c, double rows_written, double num_indexes) {
  return rows_written * (c.row_write_us + num_indexes * c.index_maintain_us);
}

double EstimateMatches(const Table& table, const SargablePredicate& p) {
  double rows = static_cast<double>(table.live_rows());
  int ci = table.ColumnIndex(p.column);
  double ndv = ci >= 0 ? static_cast<double>(
                             table.columns()[static_cast<size_t>(ci)].distinct_estimate)
                       : 100.0;
  if (p.is_equality) {
    double probes = p.in_values.empty() ? 1.0 : static_cast<double>(p.in_values.size());
    return std::max(1.0, probes * rows / std::max(1.0, ndv));
  }
  if (p.has_lo && p.has_hi) return std::max(1.0, rows * 0.05);
  return std::max(1.0, rows * 0.33);
}

}  // namespace

// ---------------------------------------------------------------------------
// Catalog operations.
// ---------------------------------------------------------------------------

Database::Database(CostModel cost, MetricsRegistry* metrics) : cost_(cost) {
  MetricsRegistry& m =
      metrics != nullptr ? *metrics : MetricsRegistry::Global();
  statements_total_ = m.GetCounter("dbms.statements_total");
  rows_examined_total_ = m.GetCounter("dbms.rows_examined_total");
  rows_written_total_ = m.GetCounter("dbms.rows_written_total");
  index_builds_total_ = m.GetCounter("dbms.index_builds_total");
  index_drops_total_ = m.GetCounter("dbms.index_drops_total");
}

Status Database::CreateTable(const std::string& name,
                             std::vector<Column> columns) {
  if (tables_.count(name)) return Status::AlreadyExists("table " + name);
  if (columns.empty()) return Status::InvalidArgument("table needs columns");
  tables_.emplace(name, std::make_unique<Table>(name, std::move(columns)));
  return Status::Ok();
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) {
    (void)table;
    out.push_back(name);
  }
  return out;
}

Status Database::CreateIndex(const std::string& table, const std::string& column) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  Status st = t->CreateIndex(column);
  if (st.ok()) index_builds_total_->Add();
  return st;
}

Status Database::DropIndex(const std::string& table, const std::string& column) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  Status st = t->DropIndex(column);
  if (st.ok()) index_drops_total_->Add();
  return st;
}

std::vector<std::string> Database::ListIndexes() const {
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) {
    for (const auto& column : table->IndexedColumns()) {
      out.push_back(name + "." + column);
    }
  }
  return out;
}

size_t Database::NumIndexes() const { return ListIndexes().size(); }

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

Result<ExecStats> Database::Execute(const std::string& sql) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt);
}

namespace {

/// Rows matching the sargable predicates of `where` on `table`, using the
/// cheapest real index, or a full scan. Fills examined/used_index stats.
std::vector<RowId> AccessPath(const Table& table, const std::string& qualifier,
                              const Expr* where, const CostModel& cost,
                              ExecStats* stats) {
  std::vector<SargablePredicate> preds;
  CollectSargable(where, table, qualifier, &preds);
  const SargablePredicate* best = nullptr;
  double best_matches = 0;
  for (const auto& p : preds) {
    if (!p.has_value) continue;  // placeholders cannot drive a real probe
    if (!table.HasIndex(p.column)) continue;
    double est = EstimateMatches(table, p);
    if (best == nullptr || est < best_matches) {
      best = &p;
      best_matches = est;
    }
  }
  std::vector<RowId> candidates;
  if (best != nullptr) {
    const OrderedIndex* index = table.GetIndex(best->column);
    if (best->is_equality) {
      if (!best->in_values.empty()) {
        for (const Value& v : best->in_values) {
          for (RowId id : index->EqualMatches(v)) candidates.push_back(id);
        }
      } else {
        candidates = index->EqualMatches(best->equal_value);
      }
    } else {
      candidates = index->RangeMatches(best->has_lo ? &best->lo : nullptr,
                                       best->lo_inclusive,
                                       best->has_hi ? &best->hi : nullptr,
                                       best->hi_inclusive);
    }
    stats->used_index = true;
    stats->index_used = table.name() + "." + best->column;
    stats->rows_examined += candidates.size();
    stats->latency_us += IndexCost(cost, static_cast<double>(table.live_rows()),
                                   static_cast<double>(candidates.size()));
  } else {
    for (RowId id = 0; id < table.allocated_rows(); ++id) {
      if (table.IsLive(id)) candidates.push_back(id);
    }
    stats->rows_examined += candidates.size();
    stats->latency_us += ScanCost(cost, static_cast<double>(table.live_rows()));
  }
  return candidates;
}

bool HasAggregate(const sql::SelectStatement& s) {
  for (const auto& item : s.items) {
    if (item.expr->kind == ExprKind::kFuncCall) return true;
  }
  return false;
}

}  // namespace

Result<ExecStats> Database::Execute(const sql::Statement& stmt) {
  auto stats = ExecuteUncounted(stmt);
  if (stats.ok()) {
    statements_total_->Add();
    rows_examined_total_->Add(stats->rows_examined);
    rows_written_total_->Add(stats->rows_written);
  }
  return stats;
}

Result<ExecStats> Database::ExecuteUncounted(const sql::Statement& stmt) {
  ExecStats stats;
  switch (stmt.type) {
    case StatementType::kSelect: {
      const auto& s = *stmt.select;
      if (s.from.empty()) {  // e.g. SELECT 1
        stats.rows_returned = 1;
        return stats;
      }
      const Table* outer = GetTable(s.from[0].table);
      if (outer == nullptr) return Status::NotFound("no table " + s.from[0].table);
      if (s.from.size() > 1 || s.joins.size() > 1) {
        return Status::InvalidArgument("executor supports at most one join");
      }
      std::string outer_alias =
          s.from[0].alias.empty() ? s.from[0].table : s.from[0].alias;

      std::vector<RowId> outer_rows =
          AccessPath(*outer, outer_alias, s.where.get(), cost_, &stats);

      size_t matched = 0;
      if (s.joins.empty()) {
        Binding binding;
        binding.slots.push_back({outer, outer_alias, nullptr});
        for (RowId id : outer_rows) {
          binding.slots[0].row = &outer->GetRow(id);
          if (s.where == nullptr || EvalPredicate(*s.where, binding)) ++matched;
        }
      } else {
        const auto& join = s.joins[0];
        const Table* inner = GetTable(join.table.table);
        if (inner == nullptr) {
          return Status::NotFound("no table " + join.table.table);
        }
        std::string inner_alias =
            join.table.alias.empty() ? join.table.table : join.table.alias;
        // Nested loop; probe the inner side per outer row (indexed through
        // AccessPath when the ON column is indexed and constant-bound —
        // otherwise inner scan per outer row).
        Binding binding;
        binding.slots.push_back({outer, outer_alias, nullptr});
        binding.slots.push_back({inner, inner_alias, nullptr});
        for (RowId oid : outer_rows) {
          binding.slots[0].row = &outer->GetRow(oid);
          if (s.where != nullptr) {
            // Cheap pre-filter on outer columns only is skipped; the full
            // predicate runs on the combined row below.
          }
          for (RowId iid = 0; iid < inner->allocated_rows(); ++iid) {
            if (!inner->IsLive(iid)) continue;
            binding.slots[1].row = &inner->GetRow(iid);
            ++stats.rows_examined;
            if (join.on != nullptr && !EvalPredicate(*join.on, binding)) continue;
            if (s.where == nullptr || EvalPredicate(*s.where, binding)) ++matched;
          }
        }
        stats.latency_us +=
            static_cast<double>(outer_rows.size()) *
            ScanCost(cost_, static_cast<double>(inner->live_rows())) * 0.1;
      }
      if (HasAggregate(s)) {
        stats.rows_returned = 1;
      } else {
        stats.rows_returned = matched;
        if (s.limit && static_cast<int64_t>(stats.rows_returned) > *s.limit) {
          stats.rows_returned = static_cast<size_t>(*s.limit);
        }
      }
      return stats;
    }
    case StatementType::kInsert: {
      const auto& ins = *stmt.insert;
      Table* table = GetTable(ins.table);
      if (table == nullptr) return Status::NotFound("no table " + ins.table);
      for (const auto& tuple : ins.rows) {
        Row row(table->columns().size(), std::monostate{});
        // Default auto-increment id in the first column.
        if (table->columns()[0].is_int) {
          row[0] = static_cast<int64_t>(table->allocated_rows() + 1);
        }
        if (!ins.columns.empty()) {
          if (tuple.size() != ins.columns.size()) {
            return Status::InvalidArgument("VALUES width mismatch");
          }
          for (size_t i = 0; i < ins.columns.size(); ++i) {
            int ci = table->ColumnIndex(ins.columns[i]);
            if (ci < 0) return Status::NotFound("no column " + ins.columns[i]);
            if (tuple[i]->kind != ExprKind::kLiteral) continue;
            row[static_cast<size_t>(ci)] = ValueFromLiteral(
                tuple[i]->literal,
                table->columns()[static_cast<size_t>(ci)].is_int);
          }
        } else {
          for (size_t i = 0; i < tuple.size() && i < row.size(); ++i) {
            if (tuple[i]->kind != ExprKind::kLiteral) continue;
            row[i] = ValueFromLiteral(tuple[i]->literal, table->columns()[i].is_int);
          }
        }
        auto id = table->Insert(std::move(row));
        if (!id.ok()) return id.status();
        ++stats.rows_written;
      }
      stats.latency_us += WriteCost(
          cost_, static_cast<double>(stats.rows_written),
          static_cast<double>(table->IndexedColumns().size()));
      return stats;
    }
    case StatementType::kUpdate: {
      const auto& upd = *stmt.update;
      Table* table = GetTable(upd.table);
      if (table == nullptr) return Status::NotFound("no table " + upd.table);
      std::vector<RowId> candidates =
          AccessPath(*table, upd.table, upd.where.get(), cost_, &stats);
      Binding binding;
      binding.slots.push_back({table, upd.table, nullptr});
      for (RowId id : candidates) {
        binding.slots[0].row = &table->GetRow(id);
        if (upd.where != nullptr && !EvalPredicate(*upd.where, binding)) continue;
        for (const auto& [column, value] : upd.assignments) {
          int ci = table->ColumnIndex(column);
          if (ci < 0) return Status::NotFound("no column " + column);
          if (value->kind != ExprKind::kLiteral) continue;
          Status st = table->UpdateCell(
              id, static_cast<size_t>(ci),
              ValueFromLiteral(value->literal,
                               table->columns()[static_cast<size_t>(ci)].is_int));
          if (!st.ok()) return st;
        }
        ++stats.rows_written;
      }
      stats.latency_us += WriteCost(
          cost_, static_cast<double>(stats.rows_written),
          static_cast<double>(table->IndexedColumns().size()));
      return stats;
    }
    case StatementType::kDelete: {
      const auto& del = *stmt.del;
      Table* table = GetTable(del.table);
      if (table == nullptr) return Status::NotFound("no table " + del.table);
      std::vector<RowId> candidates =
          AccessPath(*table, del.table, del.where.get(), cost_, &stats);
      Binding binding;
      binding.slots.push_back({table, del.table, nullptr});
      std::vector<RowId> to_delete;
      for (RowId id : candidates) {
        binding.slots[0].row = &table->GetRow(id);
        if (del.where == nullptr || EvalPredicate(*del.where, binding)) {
          to_delete.push_back(id);
        }
      }
      for (RowId id : to_delete) {
        Status st = table->Delete(id);
        if (!st.ok()) return st;
        ++stats.rows_written;
      }
      stats.latency_us += WriteCost(
          cost_, static_cast<double>(stats.rows_written),
          static_cast<double>(table->IndexedColumns().size()));
      return stats;
    }
  }
  return Status::Internal("unreachable");
}

Result<double> Database::EstimateCost(
    const sql::Statement& stmt, const std::set<std::string>& hypothetical) const {
  auto has_index = [&](const Table& table, const std::string& column) {
    return table.HasIndex(column) ||
           hypothetical.count(table.name() + "." + column) > 0;
  };
  auto index_count = [&](const Table& table) {
    double count = static_cast<double>(table.IndexedColumns().size());
    for (const auto& hypo : hypothetical) {
      if (hypo.rfind(table.name() + ".", 0) == 0 &&
          !table.HasIndex(hypo.substr(table.name().size() + 1))) {
        count += 1.0;
      }
    }
    return count;
  };
  auto read_cost = [&](const Table& table, const std::string& qualifier,
                       const Expr* where) {
    std::vector<SargablePredicate> preds;
    CollectSargable(where, table, qualifier, &preds);
    double rows = static_cast<double>(table.live_rows());
    double best = ScanCost(cost_, rows);
    for (const auto& p : preds) {
      if (!has_index(table, p.column)) continue;
      best = std::min(best, IndexCost(cost_, rows, EstimateMatches(table, p)));
    }
    return best;
  };

  switch (stmt.type) {
    case StatementType::kSelect: {
      const auto& s = *stmt.select;
      if (s.from.empty()) return 1.0;
      const Table* outer = GetTable(s.from[0].table);
      if (outer == nullptr) return Status::NotFound("no table " + s.from[0].table);
      std::string alias = s.from[0].alias.empty() ? s.from[0].table : s.from[0].alias;
      double cost = read_cost(*outer, alias, s.where.get());
      for (const auto& join : s.joins) {
        const Table* inner = GetTable(join.table.table);
        if (inner == nullptr) continue;
        cost += 0.1 * static_cast<double>(outer->live_rows()) *
                ScanCost(cost_, static_cast<double>(inner->live_rows())) /
                std::max(1.0, static_cast<double>(outer->live_rows()));
      }
      return cost;
    }
    case StatementType::kInsert: {
      const Table* table = GetTable(stmt.insert->table);
      if (table == nullptr) return Status::NotFound("no table");
      double rows = static_cast<double>(stmt.insert->rows.size());
      return WriteCost(cost_, rows, index_count(*table));
    }
    case StatementType::kUpdate: {
      const Table* table = GetTable(stmt.update->table);
      if (table == nullptr) return Status::NotFound("no table");
      std::vector<SargablePredicate> preds;
      CollectSargable(stmt.update->where.get(), *table, stmt.update->table, &preds);
      double matches = preds.empty()
                           ? static_cast<double>(table->live_rows())
                           : EstimateMatches(*table, preds[0]);
      return read_cost(*table, stmt.update->table, stmt.update->where.get()) +
             WriteCost(cost_, matches, index_count(*table));
    }
    case StatementType::kDelete: {
      const Table* table = GetTable(stmt.del->table);
      if (table == nullptr) return Status::NotFound("no table");
      std::vector<SargablePredicate> preds;
      CollectSargable(stmt.del->where.get(), *table, stmt.del->table, &preds);
      double matches = preds.empty()
                           ? static_cast<double>(table->live_rows())
                           : EstimateMatches(*table, preds[0]);
      return read_cost(*table, stmt.del->table, stmt.del->where.get()) +
             WriteCost(cost_, matches, index_count(*table));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace qb5000::dbms

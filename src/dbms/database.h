#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "dbms/table.h"
#include "sql/ast.h"

namespace qb5000::dbms {

/// Deterministic cost model parameters. Latencies are simulated from page
/// and row counts so experiments are reproducible and hardware-independent;
/// the *relative* behavior (point index lookup << sequential scan; writes
/// pay per maintained index) mirrors the paper's MySQL/PostgreSQL targets.
struct CostModel {
  double rows_per_page = 64;
  /// Buffer-pool size in pages; the paper sizes it at 1/5 of the database.
  double buffer_pool_pages = 4000;
  double page_miss_us = 120.0;
  double page_hit_us = 1.0;
  double row_cpu_us = 0.1;
  double index_probe_us = 3.0;  ///< tree descent per lookup
  double row_write_us = 4.0;    ///< base write cost per row
  double index_maintain_us = 3.0;  ///< extra write cost per index per row
};

/// Execution outcome and its simulated cost.
struct ExecStats {
  size_t rows_examined = 0;
  size_t rows_returned = 0;
  size_t rows_written = 0;
  bool used_index = false;
  std::string index_used;  ///< "table.column" when used_index
  double latency_us = 0.0;
};

/// The miniature single-node engine: catalog + heap tables + ordered
/// secondary indexes + a predicate-driven executor with a page-based cost
/// model. Stands in for MySQL/PostgreSQL in the Section 7.6/7.7
/// index-selection experiments (see DESIGN.md substitutions).
class Database {
 public:
  Database() : Database(CostModel()) {}
  /// `metrics` receives `dbms.*` instruments; nullptr = the process global.
  explicit Database(CostModel cost, MetricsRegistry* metrics = nullptr);

  Status CreateTable(const std::string& name, std::vector<Column> columns);
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  Status CreateIndex(const std::string& table, const std::string& column);
  Status DropIndex(const std::string& table, const std::string& column);
  /// All secondary indexes as "table.column".
  std::vector<std::string> ListIndexes() const;
  size_t NumIndexes() const;

  /// Parses and executes one statement.
  Result<ExecStats> Execute(const std::string& sql);
  Result<ExecStats> Execute(const sql::Statement& stmt);

  /// What-if cost (simulated microseconds) of a statement if the indexes in
  /// `hypothetical` ("table.column") existed in addition to the real ones.
  /// Uses table statistics only — nothing is built or touched.
  Result<double> EstimateCost(const sql::Statement& stmt,
                              const std::set<std::string>& hypothetical) const;

  const CostModel& cost_model() const { return cost_; }

 private:
  /// Execute(stmt) body; the public wrapper folds the outcome into the
  /// dbms.* counters.
  Result<ExecStats> ExecuteUncounted(const sql::Statement& stmt);

  CostModel cost_;
  std::map<std::string, std::unique_ptr<Table>> tables_;

  // Instrument handles (owned by the registry; see DESIGN.md §10).
  Counter* statements_total_ = nullptr;  ///< Execute() calls that ran
  Counter* rows_examined_total_ = nullptr;
  Counter* rows_written_total_ = nullptr;
  Counter* index_builds_total_ = nullptr;
  Counter* index_drops_total_ = nullptr;
};

}  // namespace qb5000::dbms

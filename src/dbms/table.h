#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "dbms/value.h"

namespace qb5000::dbms {

/// Column metadata. `distinct_estimate` is the engine's (perfectly accurate
/// in this simulator) NDV statistic used for selectivity estimation.
struct Column {
  std::string name;
  bool is_int = true;
  int64_t distinct_estimate = 1000;
};

using Row = std::vector<Value>;
using RowId = size_t;

/// Ordered secondary index over one column: a red-black-tree multimap, the
/// in-memory analogue of the B+-tree secondary indexes the paper's DBMSs
/// build. Maintained on every insert/update/delete.
class OrderedIndex {
 public:
  explicit OrderedIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }
  void Insert(const Value& key, RowId row);
  void Erase(const Value& key, RowId row);

  /// Row ids with key == v.
  std::vector<RowId> EqualMatches(const Value& v) const;

  /// Row ids with lo <= key <= hi (either bound optional via nullptr).
  std::vector<RowId> RangeMatches(const Value* lo, bool lo_inclusive,
                                  const Value* hi, bool hi_inclusive) const;

  size_t size() const { return entries_.size(); }

 private:
  size_t column_;
  std::multimap<Value, RowId, ValueCompare> entries_;
};

/// Heap table: rows in insertion order with a deleted bitmap, plus any
/// number of single-column secondary indexes.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Appends a row (width must match). Returns its RowId.
  Result<RowId> Insert(Row row);

  /// Marks a row deleted and removes it from all indexes.
  Status Delete(RowId row);

  /// Replaces column `col` of `row` with `v`, maintaining indexes.
  Status UpdateCell(RowId row, size_t col, Value v);

  bool IsLive(RowId row) const { return row < live_.size() && live_[row]; }

  /// Precondition: row < allocated_rows(). Deleted rows remain readable
  /// (callers filter with IsLive); out-of-range ids abort.
  const Row& GetRow(RowId row) const {
    QB_CHECK_LT(row, rows_.size());
    return rows_[row];
  }
  size_t live_rows() const { return live_count_; }
  size_t allocated_rows() const { return rows_.size(); }

  /// Creates a secondary index on `column` (no-op error if it exists).
  Status CreateIndex(const std::string& column);
  Status DropIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  const OrderedIndex* GetIndex(const std::string& column) const;
  std::vector<std::string> IndexedColumns() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::map<std::string, std::unique_ptr<OrderedIndex>> indexes_;
};

}  // namespace qb5000::dbms

#include "dbms/loader.h"

#include <algorithm>

#include "common/check.h"

namespace qb5000::dbms {

Status LoadWorkloadSchema(Database& db, const SyntheticWorkload& workload,
                          Rng& rng, double row_scale) {
  for (const auto& spec : workload.schema()) {
    std::vector<Column> columns;
    columns.reserve(spec.columns.size());
    for (const auto& col : spec.columns) {
      Column column;
      column.name = col.name;
      column.is_int = col.type == ColumnSpec::Type::kInt;
      column.distinct_estimate = std::max<int64_t>(1, col.cardinality);
      columns.push_back(std::move(column));
    }
    Status st = db.CreateTable(spec.name, std::move(columns));
    if (!st.ok()) return st;

    Table* table = db.GetTable(spec.name);
    QB_CHECK(table != nullptr);  // CreateTable just succeeded
    int64_t rows = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(spec.row_count) * row_scale));
    for (int64_t r = 0; r < rows; ++r) {
      Row row;
      row.reserve(spec.columns.size());
      for (size_t c = 0; c < spec.columns.size(); ++c) {
        const auto& col = spec.columns[c];
        if (c == 0 && col.type == ColumnSpec::Type::kInt) {
          row.emplace_back(r + 1);  // primary-key-style id column
          continue;
        }
        int64_t v = rng.UniformInt(1, std::max<int64_t>(1, col.cardinality));
        if (col.type == ColumnSpec::Type::kInt) {
          row.emplace_back(v);
        } else {
          row.emplace_back("v" + std::to_string(v));
        }
      }
      auto id = table->Insert(std::move(row));
      if (!id.ok()) return id.status();
    }
  }
  return Status::Ok();
}

}  // namespace qb5000::dbms

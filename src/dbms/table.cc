#include "dbms/table.h"

#include <algorithm>

namespace qb5000::dbms {

void OrderedIndex::Insert(const Value& key, RowId row) {
  entries_.emplace(key, row);
}

void OrderedIndex::Erase(const Value& key, RowId row) {
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == row) {
      entries_.erase(it);
      return;
    }
  }
}

std::vector<RowId> OrderedIndex::EqualMatches(const Value& v) const {
  std::vector<RowId> out;
  auto [lo, hi] = entries_.equal_range(v);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<RowId> OrderedIndex::RangeMatches(const Value* lo, bool lo_inclusive,
                                              const Value* hi,
                                              bool hi_inclusive) const {
  auto begin = lo != nullptr
                   ? (lo_inclusive ? entries_.lower_bound(*lo)
                                   : entries_.upper_bound(*lo))
                   : entries_.begin();
  auto end = hi != nullptr
                 ? (hi_inclusive ? entries_.upper_bound(*hi)
                                 : entries_.lower_bound(*hi))
                 : entries_.end();
  std::vector<RowId> out;
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<RowId> Table::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width mismatch on " + name_);
  }
  RowId id = rows_.size();
  for (auto& [column, index] : indexes_) {
    index->Insert(row[index->column()], id);
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  return id;
}

Status Table::Delete(RowId row) {
  if (row >= rows_.size() || !live_[row]) {
    return Status::NotFound("row not live");
  }
  for (auto& [column, index] : indexes_) {
    index->Erase(rows_[row][index->column()], row);
  }
  live_[row] = false;
  --live_count_;
  return Status::Ok();
}

Status Table::UpdateCell(RowId row, size_t col, Value v) {
  if (row >= rows_.size() || !live_[row]) {
    return Status::NotFound("row not live");
  }
  if (col >= columns_.size()) return Status::OutOfRange("bad column");
  for (auto& [column, index] : indexes_) {
    if (index->column() == col) {
      index->Erase(rows_[row][col], row);
      index->Insert(v, row);
    }
  }
  rows_[row][col] = std::move(v);
  return Status::Ok();
}

Status Table::CreateIndex(const std::string& column) {
  int col = ColumnIndex(column);
  if (col < 0) return Status::NotFound("no column " + column + " on " + name_);
  if (indexes_.count(column)) {
    return Status::AlreadyExists("index exists on " + name_ + "." + column);
  }
  auto index = std::make_unique<OrderedIndex>(static_cast<size_t>(col));
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (live_[id]) index->Insert(rows_[id][static_cast<size_t>(col)], id);
  }
  indexes_.emplace(column, std::move(index));
  return Status::Ok();
}

Status Table::DropIndex(const std::string& column) {
  if (indexes_.erase(column) == 0) {
    return Status::NotFound("no index on " + name_ + "." + column);
  }
  return Status::Ok();
}

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

const OrderedIndex* Table::GetIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> out;
  for (const auto& [column, index] : indexes_) {
    (void)index;
    out.push_back(column);
  }
  return out;
}

}  // namespace qb5000::dbms

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "sql/ast.h"

namespace qb5000::dbms {

/// A cell value in the miniature engine: NULL, 64-bit integer, or string.
/// (Floats from SQL literals are stored as strings by string columns and
/// truncated by integer columns; the engine exists to model index
/// selection cost, not numeric fidelity.)
using Value = std::variant<std::monostate, int64_t, std::string>;

inline bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Total order across values: NULL < ints < strings; within a type, the
/// natural order. Gives the ordered index a single comparator.
bool ValueLess(const Value& a, const Value& b);
bool ValueEquals(const Value& a, const Value& b);

struct ValueCompare {
  bool operator()(const Value& a, const Value& b) const {
    return ValueLess(a, b);
  }
};

/// Converts a SQL literal to a Value appropriate for an integer column
/// (`as_int` = true) or a string column.
Value ValueFromLiteral(const sql::Literal& literal, bool as_int);

/// Debug/printing form.
std::string ValueToString(const Value& v);

}  // namespace qb5000::dbms

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace qb5000::sql {

/// Tokenizes a SQL string. Normalization happens here: keywords are
/// uppercased, identifiers lowercased, string quotes stripped. Comments
/// (`--` to end of line, `/* */`) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace qb5000::sql

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace qb5000 {
class Arena;
}  // namespace qb5000

namespace qb5000::sql {

/// Tokenizes a SQL string. Normalization happens here: keywords are
/// uppercased, identifiers lowercased, string quotes stripped. Comments
/// (`--` to end of line, `/* */`) are skipped.
///
/// Zero-copy: token text aliases `sql` where the source span is already
/// canonical and `arena` where it is not (mixed-case identifiers, escaped
/// strings). The returned tokens are valid only while both live.
Result<std::vector<Token>> Tokenize(std::string_view sql, Arena* arena);

/// One-pass, parameter-insensitive canonical form of a statement — the
/// template-cache key (DESIGN.md §11). Shares the scanner's character rules
/// with Tokenize so that NormalizeQuery succeeds iff Tokenize succeeds on
/// the same bytes, with identical error messages.
struct NormalizedQuery {
  /// Canonical text: tokens separated by ' ', keywords uppercased,
  /// identifiers lowercased, literals replaced by type-tagged markers
  /// ("#i" / "#f" / "#s" — '#' can never appear in a real token, so the
  /// markers cannot collide). Typed markers matter because the grammar is
  /// literal-type-sensitive (e.g. LIMIT requires an integer token), so two
  /// statements differing only in literal *type* must not share a key.
  std::string key;
  /// 64-bit mixing hash of `key` (word-at-a-time, not FNV — scan latency
  /// matters more than avalanche here); used for cache-map hashing and for
  /// striping batched arrivals across shards. Not stable across versions:
  /// never persist it.
  uint64_t hash = 0;
  /// The literal values encountered, in token order (string escapes
  /// resolved). The cache-hit path samples parameters from these.
  std::vector<Literal> literals;
  /// Number of real tokens (end-of-input marker excluded).
  size_t token_count = 0;
};

/// Computes the normalized cache key for `sql` into `out`, reusing `out`'s
/// buffers (clears, does not shrink). Fails exactly when Tokenize fails.
Status NormalizeQuery(std::string_view sql, NormalizedQuery* out);

}  // namespace qb5000::sql

#include "sql/printer.h"

namespace qb5000::sql {
namespace {

void PrintExprTo(const Expr& e, std::string& out);

void PrintLiteral(const Literal& lit, std::string& out) {
  switch (lit.type) {
    case LiteralType::kInteger:
    case LiteralType::kFloat:
      out += lit.text;
      break;
    case LiteralType::kString:
      out += '\'';
      for (char c : lit.text) {
        if (c == '\'') out += '\'';
        out += c;
      }
      out += '\'';
      break;
    case LiteralType::kBoolean:
      out += lit.text;
      break;
    case LiteralType::kNull:
      out += "NULL";
      break;
  }
}

/// Parenthesizes nested boolean operators so precedence survives reparsing.
bool NeedsParens(const Expr& parent, const Expr& child) {
  if (child.kind != ExprKind::kBinary) return false;
  bool child_bool = child.op == "AND" || child.op == "OR";
  bool parent_bool = parent.op == "AND" || parent.op == "OR";
  if (!child_bool) return false;
  if (!parent_bool) return true;
  return parent.op == "AND" && child.op == "OR";
}

void PrintChild(const Expr& parent, const Expr& child, std::string& out) {
  bool parens = NeedsParens(parent, child);
  if (parens) out += '(';
  PrintExprTo(child, out);
  if (parens) out += ')';
}

void PrintExprTo(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      if (!e.table.empty()) {
        out += e.table;
        out += '.';
      }
      out += e.column;
      break;
    case ExprKind::kLiteral:
      PrintLiteral(e.literal, out);
      break;
    case ExprKind::kPlaceholder:
      out += '?';
      break;
    case ExprKind::kStar:
      if (!e.table.empty()) {
        out += e.table;
        out += '.';
      }
      out += '*';
      break;
    case ExprKind::kBinary:
      PrintChild(e, *e.left, out);
      out += ' ';
      if (e.negated) out += "NOT ";
      out += e.op;
      out += ' ';
      PrintChild(e, *e.right, out);
      break;
    case ExprKind::kUnary:
      if (e.op == "IS NULL" || e.op == "IS NOT NULL") {
        PrintExprTo(*e.left, out);
        out += ' ';
        out += e.op;
      } else if (e.op == "-") {
        out += '-';
        PrintExprTo(*e.left, out);
      } else {  // NOT
        out += e.op;
        out += ' ';
        if (e.left->kind == ExprKind::kBinary) {
          out += '(';
          PrintExprTo(*e.left, out);
          out += ')';
        } else {
          PrintExprTo(*e.left, out);
        }
      }
      break;
    case ExprKind::kFuncCall:
      out += e.func;
      out += '(';
      if (e.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < e.list.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExprTo(*e.list[i], out);
      }
      out += ')';
      break;
    case ExprKind::kInList:
      PrintExprTo(*e.left, out);
      out += e.negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < e.list.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExprTo(*e.list[i], out);
      }
      out += ')';
      break;
    case ExprKind::kBetween:
      PrintExprTo(*e.left, out);
      out += e.negated ? " NOT BETWEEN " : " BETWEEN ";
      PrintExprTo(*e.list[0], out);
      out += " AND ";
      PrintExprTo(*e.list[1], out);
      break;
  }
}

void PrintTableRef(const TableRef& ref, std::string& out) {
  out += ref.table;
  if (!ref.alias.empty()) {
    out += " AS ";
    out += ref.alias;
  }
}

void PrintSelect(const SelectStatement& s, std::string& out) {
  out += "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    PrintExprTo(*s.items[i].expr, out);
    if (!s.items[i].alias.empty()) {
      out += " AS ";
      out += s.items[i].alias;
    }
  }
  if (!s.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < s.from.size(); ++i) {
      if (i > 0) out += ", ";
      PrintTableRef(s.from[i], out);
    }
    for (const auto& join : s.joins) {
      out += ' ';
      out += join.join_type;
      out += ' ';
      PrintTableRef(join.table, out);
      if (join.on) {
        out += " ON ";
        PrintExprTo(*join.on, out);
      }
    }
  }
  if (s.where) {
    out += " WHERE ";
    PrintExprTo(*s.where, out);
  }
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExprTo(*s.group_by[i], out);
    }
  }
  if (s.having) {
    out += " HAVING ";
    PrintExprTo(*s.having, out);
  }
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExprTo(*s.order_by[i].expr, out);
      if (s.order_by[i].descending) out += " DESC";
    }
  }
  if (s.limit) {
    out += " LIMIT ";
    out += std::to_string(*s.limit);
  }
  if (s.offset) {
    out += " OFFSET ";
    out += std::to_string(*s.offset);
  }
}

void PrintInsert(const InsertStatement& s, std::string& out) {
  out += "INSERT INTO ";
  out += s.table;
  if (!s.columns.empty()) {
    out += " (";
    for (size_t i = 0; i < s.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += s.columns[i];
    }
    out += ')';
  }
  out += " VALUES ";
  for (size_t r = 0; r < s.rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += '(';
    for (size_t i = 0; i < s.rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      PrintExprTo(*s.rows[r][i], out);
    }
    out += ')';
  }
}

void PrintUpdate(const UpdateStatement& s, std::string& out) {
  out += "UPDATE ";
  out += s.table;
  out += " SET ";
  for (size_t i = 0; i < s.assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.assignments[i].first;
    out += " = ";
    PrintExprTo(*s.assignments[i].second, out);
  }
  if (s.where) {
    out += " WHERE ";
    PrintExprTo(*s.where, out);
  }
}

void PrintDelete(const DeleteStatement& s, std::string& out) {
  out += "DELETE FROM ";
  out += s.table;
  if (s.where) {
    out += " WHERE ";
    PrintExprTo(*s.where, out);
  }
}

}  // namespace

std::string Print(const Statement& stmt) {
  std::string out;
  switch (stmt.type) {
    case StatementType::kSelect:
      PrintSelect(*stmt.select, out);
      break;
    case StatementType::kInsert:
      PrintInsert(*stmt.insert, out);
      break;
    case StatementType::kUpdate:
      PrintUpdate(*stmt.update, out);
      break;
    case StatementType::kDelete:
      PrintDelete(*stmt.del, out);
      break;
  }
  return out;
}

std::string PrintExpr(const Expr& expr) {
  std::string out;
  PrintExprTo(expr, out);
  return out;
}

}  // namespace qb5000::sql

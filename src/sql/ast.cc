#include "sql/ast.h"

#include "common/arena.h"

namespace qb5000::sql {

ExprPtr NewExpr(Arena* arena) {
  if (arena == nullptr) return ExprPtr(new Expr());
  Expr* e = arena->Make<Expr>();
  e->arena_owned = true;
  return ExprPtr(e);
}

ExprPtr Expr::Clone() const {
  ExprPtr out = NewExpr();
  out->kind = kind;
  out->table = table;
  out->column = column;
  out->literal = literal;
  out->op = op;
  out->func = func;
  out->distinct = distinct;
  out->negated = negated;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  out->list.reserve(list.size());
  for (const auto& e : list) out->list.push_back(e ? e->Clone() : nullptr);
  return out;
}

ExprPtr MakeColumnRef(std::string table, std::string column, Arena* arena) {
  ExprPtr e = NewExpr(arena);
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeLiteral(Literal literal, Arena* arena) {
  ExprPtr e = NewExpr(arena);
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(literal);
  return e;
}

ExprPtr MakePlaceholder(Arena* arena) {
  ExprPtr e = NewExpr(arena);
  e->kind = ExprKind::kPlaceholder;
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr left, ExprPtr right, Arena* arena) {
  ExprPtr e = NewExpr(arena);
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

}  // namespace qb5000::sql

#include "sql/parser.h"

#include <cctype>
#include <charconv>

#include "common/arena.h"
#include "sql/lexer.h"

namespace qb5000::sql {
namespace {

/// Recursive-descent parser over the token stream. Grammar follows standard
/// SQL precedence: OR < AND < NOT < comparison < additive < multiplicative.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Arena* arena)
      : tokens_(std::move(tokens)), arena_(arena) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (MatchKeyword("SELECT")) {
      stmt.type = StatementType::kSelect;
      auto select = ParseSelect();
      if (!select.ok()) return select.status();
      stmt.select = std::make_unique<SelectStatement>(std::move(select.value()));
    } else if (MatchKeyword("INSERT")) {
      stmt.type = StatementType::kInsert;
      auto insert = ParseInsert();
      if (!insert.ok()) return insert.status();
      stmt.insert = std::make_unique<InsertStatement>(std::move(insert.value()));
    } else if (MatchKeyword("UPDATE")) {
      stmt.type = StatementType::kUpdate;
      auto update = ParseUpdate();
      if (!update.ok()) return update.status();
      stmt.update = std::make_unique<UpdateStatement>(std::move(update.value()));
    } else if (MatchKeyword("DELETE")) {
      stmt.type = StatementType::kDelete;
      auto del = ParseDelete();
      if (!del.ok()) return del.status();
      stmt.del = std::make_unique<DeleteStatement>(std::move(del.value()));
    } else {
      return Error("expected SELECT, INSERT, UPDATE, or DELETE");
    }
    Match(TokenType::kSemicolon);
    if (!Check(TokenType::kEnd)) return Error("trailing tokens after statement");
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().position));
  }

  Result<std::string> ExpectIdentifier() {
    if (!Check(TokenType::kIdentifier)) return Error("expected identifier");
    return std::string(Advance().text);
  }

  Status Expect(TokenType type, const char* what) {
    if (!Match(type)) return Error(std::string("expected ") + what);
    return Status::Ok();
  }

  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(std::string("expected ") + kw);
    return Status::Ok();
  }

  // ---- expressions ------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left.status();
    ExprPtr node = std::move(left.value());
    while (MatchKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right.status();
      node = MakeBinary("OR", std::move(node), std::move(right.value()), arena_);
    }
    return node;
  }

  Result<ExprPtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left.status();
    ExprPtr node = std::move(left.value());
    while (MatchKeyword("AND")) {
      auto right = ParseNot();
      if (!right.ok()) return right.status();
      node = MakeBinary("AND", std::move(node), std::move(right.value()), arena_);
    }
    return node;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      auto operand = ParseNot();
      if (!operand.ok()) return operand.status();
      ExprPtr node = NewExpr(arena_);
      node->kind = ExprKind::kUnary;
      node->op = "NOT";
      node->left = std::move(operand.value());
      return node;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto left = ParseAdditive();
    if (!left.ok()) return left.status();
    ExprPtr node = std::move(left.value());

    bool negated = false;
    if (CheckKeyword("NOT")) {
      // lookahead: NOT IN / NOT BETWEEN / NOT LIKE
      const Token& next = tokens_[pos_ + 1];
      if (next.type == TokenType::kKeyword &&
          (next.text == "IN" || next.text == "BETWEEN" || next.text == "LIKE")) {
        ++pos_;
        negated = true;
      }
    }

    if (MatchKeyword("IN")) {
      auto st = Expect(TokenType::kLeftParen, "(");
      if (!st.ok()) return st;
      ExprPtr in = NewExpr(arena_);
      in->kind = ExprKind::kInList;
      in->negated = negated;
      in->left = std::move(node);
      do {
        auto item = ParseExpr();
        if (!item.ok()) return item.status();
        in->list.push_back(std::move(item.value()));
      } while (Match(TokenType::kComma));
      st = Expect(TokenType::kRightParen, ")");
      if (!st.ok()) return st;
      return ExprPtr(std::move(in));
    }

    if (MatchKeyword("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo.status();
      auto st = ExpectKeyword("AND");
      if (!st.ok()) return st;
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi.status();
      ExprPtr between = NewExpr(arena_);
      between->kind = ExprKind::kBetween;
      between->negated = negated;
      between->left = std::move(node);
      between->list.push_back(std::move(lo.value()));
      between->list.push_back(std::move(hi.value()));
      return ExprPtr(std::move(between));
    }

    if (MatchKeyword("LIKE")) {
      auto pattern = ParseAdditive();
      if (!pattern.ok()) return pattern.status();
      auto like = MakeBinary("LIKE", std::move(node), std::move(pattern.value()), arena_);
      like->negated = negated;
      return like;
    }

    if (MatchKeyword("IS")) {
      bool is_not = MatchKeyword("NOT");
      auto st = ExpectKeyword("NULL");
      if (!st.ok()) return st;
      ExprPtr is_null = NewExpr(arena_);
      is_null->kind = ExprKind::kUnary;
      is_null->op = is_not ? "IS NOT NULL" : "IS NULL";
      is_null->left = std::move(node);
      return ExprPtr(std::move(is_null));
    }

    if (Check(TokenType::kOperator)) {
      std::string_view op = Peek().text;
      if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
          op == ">=") {
        std::string saved(op);
        ++pos_;
        auto right = ParseAdditive();
        if (!right.ok()) return right.status();
        return MakeBinary(saved, std::move(node), std::move(right.value()), arena_);
      }
    }
    return node;
  }

  Result<ExprPtr> ParseAdditive() {
    auto left = ParseMultiplicative();
    if (!left.ok()) return left.status();
    ExprPtr node = std::move(left.value());
    while (Check(TokenType::kOperator) &&
           (Peek().text == "+" || Peek().text == "-" || Peek().text == "||")) {
      std::string op(Advance().text);
      auto right = ParseMultiplicative();
      if (!right.ok()) return right.status();
      node = MakeBinary(op, std::move(node), std::move(right.value()), arena_);
    }
    return node;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto left = ParsePrimary();
    if (!left.ok()) return left.status();
    ExprPtr node = std::move(left.value());
    while (Check(TokenType::kOperator) &&
           (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
      std::string op(Advance().text);
      auto right = ParsePrimary();
      if (!right.ok()) return right.status();
      node = MakeBinary(op, std::move(node), std::move(right.value()), arena_);
    }
    return node;
  }

  Result<ExprPtr> ParsePrimary() {
    // Every deeply-nestable construct — parenthesized expressions, chained
    // unary minus, function-call arguments — recurses through here, so one
    // depth guard bounds the whole expression grammar. Without it an
    // adversarial input like "SELECT ((((…1…))))" overflows the stack
    // (found by tests/sql_fuzz_test.cc).
    ++expr_depth_;
    struct DepthGuard {
      int* depth;
      ~DepthGuard() { --*depth; }
    } guard{&expr_depth_};
    if (expr_depth_ > kMaxExprDepth) {
      return Error("expression nested too deeply");
    }
    // Unary minus on a numeric literal folds into the literal.
    if (Check(TokenType::kOperator) && Peek().text == "-") {
      ++pos_;
      auto operand = ParsePrimary();
      if (!operand.ok()) return operand.status();
      if (operand.value()->kind == ExprKind::kLiteral &&
          (operand.value()->literal.type == LiteralType::kInteger ||
           operand.value()->literal.type == LiteralType::kFloat)) {
        operand.value()->literal.text = "-" + operand.value()->literal.text;
        return std::move(operand.value());
      }
      ExprPtr node = NewExpr(arena_);
      node->kind = ExprKind::kUnary;
      node->op = "-";
      node->left = std::move(operand.value());
      return ExprPtr(std::move(node));
    }
    if (Match(TokenType::kLeftParen)) {
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      auto st = Expect(TokenType::kRightParen, ")");
      if (!st.ok()) return st;
      return std::move(inner.value());
    }
    if (Check(TokenType::kInteger) || Check(TokenType::kFloat)) {
      const Token& tok = Advance();
      Literal lit;
      lit.type = tok.type == TokenType::kInteger ? LiteralType::kInteger
                                                 : LiteralType::kFloat;
      lit.text = tok.text;
      return MakeLiteral(std::move(lit), arena_);
    }
    if (Check(TokenType::kString)) {
      Literal lit;
      lit.type = LiteralType::kString;
      lit.text = Advance().text;
      return MakeLiteral(std::move(lit), arena_);
    }
    if (Check(TokenType::kPlaceholder)) {
      ++pos_;
      return MakePlaceholder(arena_);
    }
    if (MatchKeyword("NULL")) {
      Literal lit;
      lit.type = LiteralType::kNull;
      return MakeLiteral(std::move(lit), arena_);
    }
    if (CheckKeyword("TRUE") || CheckKeyword("FALSE")) {
      Literal lit;
      lit.type = LiteralType::kBoolean;
      lit.text = Advance().text;
      return MakeLiteral(std::move(lit), arena_);
    }
    if (Check(TokenType::kOperator) && Peek().text == "*") {
      ++pos_;
      ExprPtr star = NewExpr(arena_);
      star->kind = ExprKind::kStar;
      return ExprPtr(std::move(star));
    }
    // Aggregate functions lexed as keywords.
    if (CheckKeyword("COUNT") || CheckKeyword("SUM") || CheckKeyword("AVG") ||
        CheckKeyword("MIN") || CheckKeyword("MAX")) {
      std::string func(Advance().text);
      auto st = Expect(TokenType::kLeftParen, "(");
      if (!st.ok()) return st;
      ExprPtr call = NewExpr(arena_);
      call->kind = ExprKind::kFuncCall;
      call->func = func;
      call->distinct = MatchKeyword("DISTINCT");
      if (!Check(TokenType::kRightParen)) {
        do {
          auto arg = ParseExpr();
          if (!arg.ok()) return arg.status();
          call->list.push_back(std::move(arg.value()));
        } while (Match(TokenType::kComma));
      }
      st = Expect(TokenType::kRightParen, ")");
      if (!st.ok()) return st;
      return ExprPtr(std::move(call));
    }
    if (Check(TokenType::kIdentifier)) {
      std::string name(Advance().text);
      // Scalar function call.
      if (Check(TokenType::kLeftParen)) {
        ++pos_;
        ExprPtr call = NewExpr(arena_);
        call->kind = ExprKind::kFuncCall;
        std::string upper;
        for (char c : name) upper += static_cast<char>(std::toupper(c));
        call->func = upper;
        if (!Check(TokenType::kRightParen)) {
          do {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg.status();
            call->list.push_back(std::move(arg.value()));
          } while (Match(TokenType::kComma));
        }
        auto st = Expect(TokenType::kRightParen, ")");
        if (!st.ok()) return st;
        return ExprPtr(std::move(call));
      }
      // table.column or table.* qualified reference.
      if (Match(TokenType::kDot)) {
        if (Check(TokenType::kOperator) && Peek().text == "*") {
          ++pos_;
          ExprPtr star = NewExpr(arena_);
          star->kind = ExprKind::kStar;
          star->table = name;
          return ExprPtr(std::move(star));
        }
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        return MakeColumnRef(name, std::move(col.value()), arena_);
      }
      return MakeColumnRef("", std::move(name), arena_);
    }
    return Error("unexpected token '" + std::string(Peek().text) + "'");
  }

  // ---- clauses ----------------------------------------------------------

  Result<TableRef> ParseTableRef() {
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    TableRef ref;
    ref.table = std::move(table.value());
    if (MatchKeyword("AS")) {
      auto alias = ExpectIdentifier();
      if (!alias.ok()) return alias.status();
      ref.alias = std::move(alias.value());
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<SelectStatement> ParseSelect() {
    SelectStatement select;
    select.distinct = MatchKeyword("DISTINCT");
    do {
      SelectItem item;
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr.value());
      if (MatchKeyword("AS")) {
        auto alias = ExpectIdentifier();
        if (!alias.ok()) return alias.status();
        item.alias = std::move(alias.value());
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
      select.items.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    if (MatchKeyword("FROM")) {
      auto first = ParseTableRef();
      if (!first.ok()) return first.status();
      select.from.push_back(std::move(first.value()));
      while (true) {
        if (Match(TokenType::kComma)) {
          auto next = ParseTableRef();
          if (!next.ok()) return next.status();
          select.from.push_back(std::move(next.value()));
          continue;
        }
        std::string join_type;
        if (MatchKeyword("INNER")) {
          join_type = "JOIN";
          auto st = ExpectKeyword("JOIN");
          if (!st.ok()) return st;
        } else if (MatchKeyword("LEFT")) {
          MatchKeyword("OUTER");
          join_type = "LEFT JOIN";
          auto st = ExpectKeyword("JOIN");
          if (!st.ok()) return st;
        } else if (MatchKeyword("RIGHT")) {
          MatchKeyword("OUTER");
          join_type = "RIGHT JOIN";
          auto st = ExpectKeyword("JOIN");
          if (!st.ok()) return st;
        } else if (MatchKeyword("CROSS")) {
          join_type = "CROSS JOIN";
          auto st = ExpectKeyword("JOIN");
          if (!st.ok()) return st;
        } else if (MatchKeyword("JOIN")) {
          join_type = "JOIN";
        } else {
          break;
        }
        JoinClause join;
        join.join_type = join_type;
        auto tref = ParseTableRef();
        if (!tref.ok()) return tref.status();
        join.table = std::move(tref.value());
        if (join_type != "CROSS JOIN") {
          auto st = ExpectKeyword("ON");
          if (!st.ok()) return st;
          auto on = ParseExpr();
          if (!on.ok()) return on.status();
          join.on = std::move(on.value());
        }
        select.joins.push_back(std::move(join));
      }
    }

    if (MatchKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      select.where = std::move(where.value());
    }
    if (MatchKeyword("GROUP")) {
      auto st = ExpectKeyword("BY");
      if (!st.ok()) return st;
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        select.group_by.push_back(std::move(expr.value()));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("HAVING")) {
      auto having = ParseExpr();
      if (!having.ok()) return having.status();
      select.having = std::move(having.value());
    }
    if (MatchKeyword("ORDER")) {
      auto st = ExpectKeyword("BY");
      if (!st.ok()) return st;
      do {
        OrderItem item;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr.value());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        select.order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (!Check(TokenType::kInteger)) return Error("expected LIMIT count");
      select.limit = ParseInt64(Advance().text);
    }
    if (MatchKeyword("OFFSET")) {
      if (!Check(TokenType::kInteger)) return Error("expected OFFSET count");
      select.offset = ParseInt64(Advance().text);
    }
    return select;
  }

  Result<InsertStatement> ParseInsert() {
    auto st = ExpectKeyword("INTO");
    if (!st.ok()) return st;
    InsertStatement insert;
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    insert.table = std::move(table.value());
    if (Match(TokenType::kLeftParen)) {
      do {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        insert.columns.push_back(std::move(col.value()));
      } while (Match(TokenType::kComma));
      st = Expect(TokenType::kRightParen, ")");
      if (!st.ok()) return st;
    }
    st = ExpectKeyword("VALUES");
    if (!st.ok()) return st;
    do {
      st = Expect(TokenType::kLeftParen, "(");
      if (!st.ok()) return st;
      std::vector<ExprPtr> row;
      do {
        auto value = ParseExpr();
        if (!value.ok()) return value.status();
        row.push_back(std::move(value.value()));
      } while (Match(TokenType::kComma));
      st = Expect(TokenType::kRightParen, ")");
      if (!st.ok()) return st;
      insert.rows.push_back(std::move(row));
    } while (Match(TokenType::kComma));
    return insert;
  }

  Result<UpdateStatement> ParseUpdate() {
    UpdateStatement update;
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    update.table = std::move(table.value());
    auto st = ExpectKeyword("SET");
    if (!st.ok()) return st;
    do {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      if (!Match(TokenType::kOperator) || tokens_[pos_ - 1].text != "=") {
        return Error("expected = in SET clause");
      }
      auto value = ParseExpr();
      if (!value.ok()) return value.status();
      update.assignments.emplace_back(std::move(col.value()),
                                      std::move(value.value()));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      update.where = std::move(where.value());
    }
    return update;
  }

  Result<DeleteStatement> ParseDelete() {
    auto st = ExpectKeyword("FROM");
    if (!st.ok()) return st;
    DeleteStatement del;
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    del.table = std::move(table.value());
    if (MatchKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      del.where = std::move(where.value());
    }
    return del;
  }

  static int64_t ParseInt64(std::string_view digits) {
    int64_t value = 0;
    std::from_chars(digits.data(), digits.data() + digits.size(), value);
    return value;
  }

  /// Bound on ParsePrimary recursion. Must admit 200 nested parens (the
  /// executor-robustness contract) — each paren level re-enters ParsePrimary
  /// through the full precedence chain — while keeping worst-case stack use
  /// bounded against adversarial input (tests/sql_fuzz_test.cc).
  static constexpr int kMaxExprDepth = 512;

  std::vector<Token> tokens_;
  Arena* arena_ = nullptr;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  // One arena per parse: the lexer's rewritten token text and every AST
  // node the parser builds live there, so a cold parse does O(blocks)
  // allocations instead of one per node. The statement keeps the arena
  // alive for as long as its nodes are reachable.
  auto arena = std::make_shared<Arena>();
  auto tokens = Tokenize(sql, arena.get());
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()), arena.get());
  auto stmt = parser.ParseStatement();
  if (!stmt.ok()) return stmt.status();
  stmt.value().arena = std::move(arena);
  return std::move(stmt.value());
}

}  // namespace qb5000::sql

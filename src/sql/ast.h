#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qb5000 {
class Arena;
}  // namespace qb5000

namespace qb5000::sql {

/// Literal value kinds appearing in SQL text.
enum class LiteralType { kInteger, kFloat, kString, kBoolean, kNull };

struct Literal {
  LiteralType type = LiteralType::kNull;
  std::string text;  ///< source text (string value without quotes)
};

/// Expression node kinds. A single tagged struct keeps the tree walkable
/// without a visitor hierarchy; only the fields relevant to `kind` are set.
enum class ExprKind {
  kColumnRef,    ///< table (optional) + column
  kLiteral,      ///< constant; the Pre-Processor turns these into placeholders
  kPlaceholder,  ///< `?` from an already-prepared statement or templatization
  kBinary,       ///< op with left/right (=, <, AND, OR, LIKE, +, ...)
  kUnary,        ///< op with operand in left (NOT, -, IS NULL, IS NOT NULL)
  kFuncCall,     ///< aggregate or scalar function with args
  kInList,       ///< left IN (list...)
  kBetween,      ///< left BETWEEN list[0] AND list[1]
  kStar,         ///< `*` in projections and COUNT(*)
};

struct Expr;

/// Deleter behind ExprPtr: heap nodes are deleted, arena nodes are left for
/// their Arena to finalize (the arena registered ~Expr at creation and runs
/// it exactly once at teardown). This lets the parser bump-allocate nodes
/// while every existing ExprPtr consumer keeps ordinary ownership semantics.
struct ExprDelete {
  void operator()(Expr* e) const;
};
using ExprPtr = std::unique_ptr<Expr, ExprDelete>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  /// True when the node's storage and destructor belong to an Arena;
  /// ExprDelete must not delete it. Set only by NewExpr(arena).
  bool arena_owned = false;

  // kColumnRef
  std::string table;   ///< optional qualifier
  std::string column;

  // kLiteral
  Literal literal;

  // kBinary / kUnary: `op` plus children. For kUnary only `left` is set.
  std::string op;
  ExprPtr left;
  ExprPtr right;

  // kFuncCall
  std::string func;       ///< uppercased function name
  bool distinct = false;  ///< COUNT(DISTINCT x)

  // kFuncCall args, kInList members, kBetween bounds
  std::vector<ExprPtr> list;

  bool negated = false;  ///< NOT IN / NOT BETWEEN / NOT LIKE

  /// Deep copy (always heap-allocated, even when `this` is arena-owned).
  ExprPtr Clone() const;
};

inline void ExprDelete::operator()(Expr* e) const {
  if (e != nullptr && !e->arena_owned) delete e;
}

/// Allocates a blank node from `arena`, or from the heap when nullptr.
ExprPtr NewExpr(Arena* arena = nullptr);

ExprPtr MakeColumnRef(std::string table, std::string column,
                      Arena* arena = nullptr);
ExprPtr MakeLiteral(Literal literal, Arena* arena = nullptr);
ExprPtr MakePlaceholder(Arena* arena = nullptr);
ExprPtr MakeBinary(std::string op, ExprPtr left, ExprPtr right,
                   Arena* arena = nullptr);

struct TableRef {
  std::string table;
  std::string alias;  ///< empty if none
};

struct JoinClause {
  std::string join_type;  ///< "JOIN", "LEFT JOIN", ...
  TableRef table;
  ExprPtr on;  ///< may be null for CROSS JOIN
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;  ///< null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;        ///< may be empty (implicit order)
  std::vector<std::vector<ExprPtr>> rows;  ///< one entry per VALUES tuple
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

enum class StatementType { kSelect, kInsert, kUpdate, kDelete };

/// A parsed SQL statement. Exactly one of the four bodies is non-null,
/// matching `type`.
struct Statement {
  /// The arena owning this statement's Expr nodes (null for trees built
  /// entirely on the heap). Declared first: members are destroyed in
  /// reverse declaration order, so the bodies — and every ExprPtr they
  /// hold — go away before the arena finalizes the nodes' storage.
  std::shared_ptr<Arena> arena;
  StatementType type = StatementType::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;
};

}  // namespace qb5000::sql

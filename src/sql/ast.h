#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qb5000::sql {

/// Literal value kinds appearing in SQL text.
enum class LiteralType { kInteger, kFloat, kString, kBoolean, kNull };

struct Literal {
  LiteralType type = LiteralType::kNull;
  std::string text;  ///< source text (string value without quotes)
};

/// Expression node kinds. A single tagged struct keeps the tree walkable
/// without a visitor hierarchy; only the fields relevant to `kind` are set.
enum class ExprKind {
  kColumnRef,    ///< table (optional) + column
  kLiteral,      ///< constant; the Pre-Processor turns these into placeholders
  kPlaceholder,  ///< `?` from an already-prepared statement or templatization
  kBinary,       ///< op with left/right (=, <, AND, OR, LIKE, +, ...)
  kUnary,        ///< op with operand in left (NOT, -, IS NULL, IS NOT NULL)
  kFuncCall,     ///< aggregate or scalar function with args
  kInList,       ///< left IN (list...)
  kBetween,      ///< left BETWEEN list[0] AND list[1]
  kStar,         ///< `*` in projections and COUNT(*)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef
  std::string table;   ///< optional qualifier
  std::string column;

  // kLiteral
  Literal literal;

  // kBinary / kUnary: `op` plus children. For kUnary only `left` is set.
  std::string op;
  ExprPtr left;
  ExprPtr right;

  // kFuncCall
  std::string func;       ///< uppercased function name
  bool distinct = false;  ///< COUNT(DISTINCT x)

  // kFuncCall args, kInList members, kBetween bounds
  std::vector<ExprPtr> list;

  bool negated = false;  ///< NOT IN / NOT BETWEEN / NOT LIKE

  /// Deep copy.
  ExprPtr Clone() const;
};

ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeLiteral(Literal literal);
ExprPtr MakePlaceholder();
ExprPtr MakeBinary(std::string op, ExprPtr left, ExprPtr right);

struct TableRef {
  std::string table;
  std::string alias;  ///< empty if none
};

struct JoinClause {
  std::string join_type;  ///< "JOIN", "LEFT JOIN", ...
  TableRef table;
  ExprPtr on;  ///< may be null for CROSS JOIN
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;  ///< null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;        ///< may be empty (implicit order)
  std::vector<std::vector<ExprPtr>> rows;  ///< one entry per VALUES tuple
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

enum class StatementType { kSelect, kInsert, kUpdate, kDelete };

/// A parsed SQL statement. Exactly one of the four bodies is non-null,
/// matching `type`.
struct Statement {
  StatementType type = StatementType::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;
};

}  // namespace qb5000::sql

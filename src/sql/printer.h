#pragma once

#include <string>

#include "sql/ast.h"

namespace qb5000::sql {

/// Renders a statement back to canonical SQL: uppercase keywords, lowercase
/// identifiers, single spaces, normalized parentheses. Two statements that
/// differ only in constants, casing, or whitespace print identically after
/// templatization, which is exactly the property the Pre-Processor needs.
std::string Print(const Statement& stmt);

/// Renders a single expression (used in tests and template fingerprints).
std::string PrintExpr(const Expr& expr);

}  // namespace qb5000::sql

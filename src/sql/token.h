#pragma once

#include <cstddef>
#include <string_view>

namespace qb5000::sql {

/// Lexical token categories for the SQL dialect the library parses.
enum class TokenType {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (uppercased in `text`)
  kIdentifier,  ///< table/column names (lowercased in `text`)
  kInteger,     ///< integer literal
  kFloat,       ///< floating-point literal
  kString,      ///< quoted string literal, quotes stripped in `text`
  kOperator,    ///< = <> != < <= > >= + - * / % ||
  kComma,
  kLeftParen,
  kRightParen,
  kDot,
  kSemicolon,
  kPlaceholder,  ///< ? or $N (already-prepared statements)
  kEnd,
};

/// A lexed token. `text` is zero-copy: it aliases either the source SQL
/// (already-normalized spans), a static canonical string (keywords,
/// placeholders), or the Arena passed to Tokenize (spans that needed
/// rewriting, e.g. mixed-case identifiers or escaped string literals). It is
/// valid only while both the source string and that arena are alive.
struct Token {
  TokenType type;
  std::string_view text;
  size_t position;  ///< byte offset in the source string, for error messages
};

/// True if `word` (uppercase) is a reserved keyword of the dialect.
bool IsKeyword(std::string_view upper_word);

}  // namespace qb5000::sql

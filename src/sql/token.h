#pragma once

#include <string>

namespace qb5000::sql {

/// Lexical token categories for the SQL dialect the library parses.
enum class TokenType {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (uppercased in `text`)
  kIdentifier,  ///< table/column names (lowercased in `text`)
  kInteger,     ///< integer literal
  kFloat,       ///< floating-point literal
  kString,      ///< quoted string literal, quotes stripped in `text`
  kOperator,    ///< = <> != < <= > >= + - * / % ||
  kComma,
  kLeftParen,
  kRightParen,
  kDot,
  kSemicolon,
  kPlaceholder,  ///< ? or $N (already-prepared statements)
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  size_t position;  ///< byte offset in the source string, for error messages
};

/// True if `word` (uppercase) is a reserved keyword of the dialect.
bool IsKeyword(const std::string& upper_word);

}  // namespace qb5000::sql

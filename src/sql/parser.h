#pragma once

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace qb5000::sql {

/// Parses one SQL statement (SELECT / INSERT / UPDATE / DELETE). A trailing
/// semicolon is accepted. Returns a ParseError status on malformed input;
/// the Pre-Processor falls back to token-level templatization in that case.
Result<Statement> Parse(const std::string& sql);

}  // namespace qb5000::sql

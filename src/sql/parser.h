#pragma once

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace qb5000::sql {

/// Parses one SQL statement (SELECT / INSERT / UPDATE / DELETE). A trailing
/// semicolon is accepted. Returns a ParseError status on malformed input;
/// the Pre-Processor falls back to token-level templatization in that case.
/// The returned Statement owns the per-parse Arena its Expr nodes live in;
/// `sql` itself is not referenced after Parse returns.
Result<Statement> Parse(std::string_view sql);

}  // namespace qb5000::sql

#include "sql/lexer.h"

#include <array>

#include "common/arena.h"
#include "common/check.h"

namespace qb5000::sql {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

constexpr uint64_t FnvStep(uint64_t h, char c) {
  return (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
}

/// Per-byte character classes for the scan hot path. Equivalent to the
/// <cctype> C-locale predicates but a single table load instead of a libc
/// call per character.
enum CharClass : uint8_t {
  kClassSpace = 1,       ///< isspace
  kClassDigit = 2,       ///< isdigit
  kClassIdentStart = 4,  ///< isalpha or '_'
  kClassIdentChar = 8,   ///< isalnum or '_'
};

constexpr std::array<uint8_t, 256> MakeCharClassTable() {
  std::array<uint8_t, 256> t{};
  for (int c = 0; c < 256; ++c) {
    uint8_t f = 0;
    if (c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
        c == '\r') {
      f |= kClassSpace;
    }
    if (c >= '0' && c <= '9') f |= kClassDigit | kClassIdentChar;
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      f |= kClassIdentStart | kClassIdentChar;
    }
    t[static_cast<size_t>(c)] = f;
  }
  return t;
}

constexpr std::array<uint8_t, 256> kCharClass = MakeCharClassTable();

bool HasClass(char c, uint8_t mask) {
  return (kCharClass[static_cast<unsigned char>(c)] & mask) != 0;
}

bool IsIdentStart(char c) { return HasClass(c, kClassIdentStart); }

bool IsIdentChar(char c) { return HasClass(c, kClassIdentChar); }

bool IsSpace(char c) { return HasClass(c, kClassSpace); }

bool IsDigit(char c) { return HasClass(c, kClassDigit); }

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiUpper(char c) {
  return c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c;
}

constexpr size_t kMaxKeywordLength = 8;  // DISTINCT

/// The dialect's reserved words, open-addressed by the FNV-1a hash of the
/// canonical uppercase spelling. The scanner computes that hash during the
/// uppercase copy it already makes, so a keyword probe costs one table
/// index plus (usually) one memcmp — no libstdc++ hash, no node chasing.
/// Slots hold views of string literals, so a hit yields token text with
/// static storage duration.
struct KeywordTable {
  static constexpr size_t kSlots = 128;  // 45 keywords => <40% load
  std::array<std::string_view, kSlots> slots{};
  /// prefilter[letter] bit L set <=> some keyword of length L starts with
  /// that letter. One load rejects most identifiers before the uppercase
  /// copy / hash / probe (e.g. no keyword is 1 long, so `o` never probes).
  std::array<uint16_t, 26> prefilter{};

  void Insert(std::string_view word) {
    uint64_t h = kFnvOffset;
    for (char c : word) h = FnvStep(h, c);
    size_t idx = static_cast<size_t>(h) & (kSlots - 1);
    while (!slots[idx].empty()) idx = (idx + 1) & (kSlots - 1);
    slots[idx] = word;
    prefilter[static_cast<size_t>(word[0] - 'A')] |=
        static_cast<uint16_t>(1u << word.size());
  }

  bool MightBeKeyword(char first, size_t length) const {
    char upper = AsciiUpper(first);
    if (upper < 'A' || upper > 'Z') return false;
    return (prefilter[static_cast<size_t>(upper - 'A')] >> length) & 1u;
  }

  /// Returns the canonical static span, or empty if not a keyword.
  std::string_view Find(std::string_view upper_word, uint64_t hash) const {
    size_t idx = static_cast<size_t>(hash) & (kSlots - 1);
    while (!slots[idx].empty()) {
      if (slots[idx] == upper_word) return slots[idx];
      idx = (idx + 1) & (kSlots - 1);
    }
    return {};
  }
};

const KeywordTable& Keywords() {
  static const KeywordTable* table = [] {
    auto* t = new KeywordTable();
    for (std::string_view word :
         {"SELECT",   "FROM",  "WHERE",  "INSERT", "INTO",    "VALUES",
          "UPDATE",   "SET",   "DELETE", "AND",    "OR",      "NOT",
          "IN",       "IS",    "NULL",   "LIKE",   "BETWEEN", "JOIN",
          "INNER",    "LEFT",  "RIGHT",  "OUTER",  "ON",      "AS",
          "GROUP",    "BY",    "HAVING", "ORDER",  "ASC",     "DESC",
          "LIMIT",    "OFFSET", "DISTINCT", "COUNT", "SUM",   "AVG",
          "MIN",      "MAX",   "TRUE",   "FALSE",  "EXISTS",  "UNION",
          "ALL",      "CROSS", "FULL"}) {
      t->Insert(word);
    }
    return t;
  }();
  return *table;
}

/// A pre-materialization token: `span` aliases the source (or a static
/// canonical string for keywords/placeholders/normalized operators), and
/// `rewrite` marks spans that are not yet canonical (mixed-case
/// identifiers, string literals containing escapes). Tokenize and
/// NormalizeQuery decide how to materialize those; the scanning rules —
/// and therefore the accept/reject behavior — are shared here.
struct RawToken {
  TokenType type = TokenType::kEnd;
  std::string_view span;
  size_t pos = 0;
  bool rewrite = false;
};

class Scanner {
 public:
  explicit Scanner(std::string_view sql)
      : sql_(sql), keywords_(Keywords()) {}

  /// Scans the next token into `tok`; returns false on a scan error (the
  /// error is in status()). Success does not construct a Status — the
  /// per-token return is one bool, which matters at ~45 tokens/statement.
  bool Next(RawToken* tok) {
    const std::string_view sql = sql_;
    const size_t n = sql.size();
    size_t i = i_;
    while (i < n) {
      char c = sql[i];
      if (IsSpace(c)) {
        ++i;
        continue;
      }
      // Comments.
      if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
        while (i < n && sql[i] != '\n') ++i;
        continue;
      }
      if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
        size_t close = sql.find("*/", i + 2);
        if (close == std::string_view::npos) {
          return Fail("unterminated block comment");
        }
        i = close + 2;
        continue;
      }
      size_t start = i;
      tok->pos = start;
      tok->rewrite = false;
      // Identifiers and keywords.
      if (IsIdentStart(c)) {
        bool has_upper = false;
        while (i < n && IsIdentChar(sql[i])) {
          has_upper = has_upper || (sql[i] >= 'A' && sql[i] <= 'Z');
          ++i;
        }
        std::string_view word = sql.substr(start, i - start);
        if (word.size() <= kMaxKeywordLength &&
            keywords_.MightBeKeyword(word[0], word.size())) {
          char upper[kMaxKeywordLength];
          uint64_t h = kFnvOffset;
          for (size_t k = 0; k < word.size(); ++k) {
            upper[k] = AsciiUpper(word[k]);
            h = FnvStep(h, upper[k]);
          }
          std::string_view canonical =
              keywords_.Find(std::string_view(upper, word.size()), h);
          if (!canonical.empty()) {
            tok->type = TokenType::kKeyword;
            tok->span = canonical;  // static canonical uppercase text
            i_ = i;
            return true;
          }
        }
        tok->type = TokenType::kIdentifier;
        tok->span = word;
        tok->rewrite = has_upper;  // needs lowercasing
        i_ = i;
        return true;
      }
      // Quoted identifiers (treated as identifiers, normalized to lowercase).
      if (c == '`' || c == '"') {
        char quote = c;
        ++i;
        size_t qstart = i;
        bool has_upper = false;
        while (i < n && sql[i] != quote) {
          has_upper = has_upper || (sql[i] >= 'A' && sql[i] <= 'Z');
          ++i;
        }
        if (i >= n) return Fail("unterminated quoted identifier");
        tok->type = TokenType::kIdentifier;
        tok->span = sql.substr(qstart, i - qstart);
        tok->rewrite = has_upper;
        i_ = i + 1;
        return true;
      }
      // String literals with '' and backslash escaping.
      if (c == '\'') {
        ++i;
        size_t vstart = i;
        bool closed = false;
        bool has_escape = false;
        while (i < n) {
          if (sql[i] == '\'') {
            if (i + 1 < n && sql[i + 1] == '\'') {
              has_escape = true;
              i += 2;
              continue;
            }
            closed = true;
            break;
          }
          if (sql[i] == '\\' && i + 1 < n) {
            has_escape = true;
            i += 2;
            continue;
          }
          ++i;
        }
        if (!closed) return Fail("unterminated string literal");
        tok->type = TokenType::kString;
        tok->span = sql.substr(vstart, i - vstart);
        tok->rewrite = has_escape;  // escapes still need resolving
        i_ = i + 1;
        return true;
      }
      // Numbers (optional leading sign is handled by the parser).
      if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
        bool is_float = false;
        while (i < n && IsDigit(sql[i])) ++i;
        if (i < n && sql[i] == '.') {
          is_float = true;
          ++i;
          while (i < n && IsDigit(sql[i])) ++i;
        }
        if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
          size_t save = i;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
          if (i < n && IsDigit(sql[i])) {
            is_float = true;
            while (i < n && IsDigit(sql[i])) ++i;
          } else {
            i = save;
          }
        }
        tok->type = is_float ? TokenType::kFloat : TokenType::kInteger;
        tok->span = sql.substr(start, i - start);
        i_ = i;
        return true;
      }
      // Placeholders.
      if (c == '?') {
        tok->type = TokenType::kPlaceholder;
        tok->span = "?";
        i_ = i + 1;
        return true;
      }
      if (c == '$' && i + 1 < n && IsDigit(sql[i + 1])) {
        ++i;
        while (i < n && IsDigit(sql[i])) ++i;
        tok->type = TokenType::kPlaceholder;
        tok->span = "?";
        i_ = i;
        return true;
      }
      // Multi-char operators.
      if (i + 1 < n) {
        std::string_view two = sql.substr(i, 2);
        if (two == "<>" || two == "!=" || two == "<=" || two == ">=" ||
            two == "||") {
          tok->type = TokenType::kOperator;
          tok->span = two == "!=" ? std::string_view("<>") : two;
          i_ = i + 2;
          return true;
        }
      }
      switch (c) {
        case ',':
          tok->type = TokenType::kComma;
          break;
        case '(':
          tok->type = TokenType::kLeftParen;
          break;
        case ')':
          tok->type = TokenType::kRightParen;
          break;
        case '.':
          tok->type = TokenType::kDot;
          break;
        case ';':
          tok->type = TokenType::kSemicolon;
          break;
        case '=':
        case '<':
        case '>':
        case '+':
        case '-':
        case '*':
        case '/':
        case '%':
          tok->type = TokenType::kOperator;
          break;
        default:
          return Fail("unexpected character '" + std::string(1, c) +
                      "' at offset " + std::to_string(start));
      }
      tok->span = sql.substr(i, 1);
      i_ = i + 1;
      return true;
    }
    tok->type = TokenType::kEnd;
    tok->span = {};
    tok->pos = n;
    i_ = n;
    return true;
  }

  const Status& status() const { return status_; }

 private:
  bool Fail(std::string message) {
    status_ = Status::ParseError(std::move(message));
    return false;
  }

  std::string_view sql_;
  size_t i_ = 0;
  Status status_;
  const KeywordTable& keywords_;  ///< guard-checked once per statement
};

/// Appends `raw` (a string literal's inner span) with '' and backslash
/// escapes resolved, via `emit(char)`.
template <typename Emit>
void ResolveEscapes(std::string_view raw, Emit emit) {
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] == '\'' && i + 1 < raw.size() && raw[i + 1] == '\'') {
      emit('\'');
      i += 2;
      continue;
    }
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      emit(raw[i + 1]);
      i += 2;
      continue;
    }
    emit(raw[i]);
    ++i;
  }
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (char c : s) h = FnvStep(h, c);
  return h;
}

/// Word-at-a-time mixing hash for normalized keys. FNV-1a's byte-serial
/// multiply chain costs ~3 cycles/byte of pure latency; on a ~200-byte key
/// that is most of a microsecond-scale budget. This reads 8 bytes per
/// round over the just-built key (L1-resident) instead. Quality only needs
/// to cover hash-map bucketing and batch shard striping — collisions cost
/// a memcmp, never correctness.
uint64_t HashKey(std::string_view s) {
  constexpr uint64_t kMul = 0x9DDFEA08EB382D69ULL;  // Murmur-style mixer
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ (static_cast<uint64_t>(s.size()) * kFnvPrime);
  size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    uint64_t word;
    __builtin_memcpy(&word, s.data() + i, 8);
    h = (h ^ word) * kMul;
    h ^= h >> 32;
  }
  uint64_t tail = 0;
  for (size_t shift = 0; i < s.size(); ++i, shift += 8) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(s[i])) << shift;
  }
  h = (h ^ tail) * kMul;
  h ^= h >> 29;
  return h;
}

}  // namespace

bool IsKeyword(std::string_view upper_word) {
  return !Keywords().Find(upper_word, Fnv1a64(upper_word)).empty();
}

Result<std::vector<Token>> Tokenize(std::string_view sql, Arena* arena) {
  QB_CHECK(arena != nullptr);
  std::vector<Token> tokens;
  Scanner scanner(sql);
  RawToken raw;
  for (;;) {
    if (!scanner.Next(&raw)) return scanner.status();
    std::string_view text = raw.span;
    if (raw.rewrite) {
      if (raw.type == TokenType::kIdentifier) {
        char* mem = static_cast<char*>(arena->Allocate(raw.span.size(), 1));
        for (size_t k = 0; k < raw.span.size(); ++k) {
          mem[k] = AsciiLower(raw.span[k]);
        }
        text = {mem, raw.span.size()};
      } else {  // kString: resolve escapes (never grows the span)
        char* mem = static_cast<char*>(arena->Allocate(raw.span.size(), 1));
        size_t len = 0;
        ResolveEscapes(raw.span, [&](char c) { mem[len++] = c; });
        text = {mem, len};
      }
    }
    tokens.push_back({raw.type, text, raw.pos});
    if (raw.type == TokenType::kEnd) break;
  }
  return tokens;
}

Status NormalizeQuery(std::string_view sql, NormalizedQuery* out) {
  out->key.clear();
  out->hash = 0;
  out->token_count = 0;
  // Literal slots are assigned in place so their string buffers survive
  // across calls (the doc contract: clears, does not shrink); the resize at
  // the end trims to this call's count.
  size_t literal_count = 0;
  auto literal_slot = [&](LiteralType type) -> std::string& {
    if (literal_count < out->literals.size()) {
      Literal& lit = out->literals[literal_count++];
      lit.type = type;
      return lit.text;
    }
    out->literals.push_back({type, std::string()});
    return out->literals[literal_count++].text;
  };
  out->key.reserve(sql.size() + 8);
  Scanner scanner(sql);
  RawToken raw;
  for (;;) {
    if (!scanner.Next(&raw)) {
      out->literals.resize(literal_count);
      return scanner.status();
    }
    if (raw.type == TokenType::kEnd) break;
    ++out->token_count;
    if (!out->key.empty()) out->key.push_back(' ');
    switch (raw.type) {
      case TokenType::kInteger:
        out->key.append("#i");
        literal_slot(LiteralType::kInteger).assign(raw.span);
        break;
      case TokenType::kFloat:
        out->key.append("#f");
        literal_slot(LiteralType::kFloat).assign(raw.span);
        break;
      case TokenType::kString: {
        out->key.append("#s");
        std::string& value = literal_slot(LiteralType::kString);
        if (raw.rewrite) {
          value.clear();
          value.reserve(raw.span.size());
          ResolveEscapes(raw.span, [&](char c) { value.push_back(c); });
        } else {
          value.assign(raw.span);
        }
        break;
      }
      case TokenType::kIdentifier:
        if (raw.rewrite) {
          for (char c : raw.span) out->key.push_back(AsciiLower(c));
        } else {
          out->key.append(raw.span);
        }
        break;
      default:
        out->key.append(raw.span);
        break;
    }
  }
  out->literals.resize(literal_count);
  out->hash = HashKey(out->key);
  return Status::Ok();
}

}  // namespace qb5000::sql

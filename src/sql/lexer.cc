#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace qb5000::sql {
namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT",   "FROM",   "WHERE",  "INSERT",   "INTO",    "VALUES",
      "UPDATE",   "SET",    "DELETE", "AND",      "OR",      "NOT",
      "IN",       "IS",     "NULL",   "LIKE",     "BETWEEN", "JOIN",
      "INNER",    "LEFT",   "RIGHT",  "OUTER",    "ON",      "AS",
      "GROUP",    "BY",     "HAVING", "ORDER",    "ASC",     "DESC",
      "LIMIT",    "OFFSET", "DISTINCT", "COUNT",  "SUM",     "AVG",
      "MIN",      "MAX",    "TRUE",   "FALSE",    "EXISTS",  "UNION",
      "ALL",      "CROSS",  "FULL",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  return KeywordSet().count(upper_word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t close = sql.find("*/", i + 2);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated block comment");
      }
      i = close + 2;
      continue;
    }
    size_t start = i;
    // Identifiers and keywords.
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, ToLower(word), start});
      }
      continue;
    }
    // Quoted identifiers (treated as identifiers, normalized to lowercase).
    if (c == '`' || c == '"') {
      char quote = c;
      ++i;
      size_t qstart = i;
      while (i < n && sql[i] != quote) ++i;
      if (i >= n) return Status::ParseError("unterminated quoted identifier");
      tokens.push_back(
          {TokenType::kIdentifier, ToLower(sql.substr(qstart, i - qstart)), start});
      ++i;
      continue;
    }
    // String literals with '' escaping.
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (sql[i] == '\\' && i + 1 < n) {
          value += sql[i + 1];
          i += 2;
          continue;
        }
        value += sql[i];
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      tokens.push_back({TokenType::kString, value, start});
      continue;
    }
    // Numbers (with optional leading sign handled by the parser).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = save;
        }
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    // Placeholders.
    if (c == '?') {
      tokens.push_back({TokenType::kPlaceholder, "?", start});
      ++i;
      continue;
    }
    if (c == '$' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
      ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      tokens.push_back({TokenType::kPlaceholder, "?", start});
      continue;
    }
    // Multi-char operators.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=" || two == "||") {
        tokens.push_back({TokenType::kOperator, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        break;
      case '(':
        tokens.push_back({TokenType::kLeftParen, "(", start});
        break;
      case ')':
        tokens.push_back({TokenType::kRightParen, ")", start});
        break;
      case '.':
        tokens.push_back({TokenType::kDot, ".", start});
        break;
      case ';':
        tokens.push_back({TokenType::kSemicolon, ";", start});
        break;
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
        tokens.push_back({TokenType::kOperator, std::string(1, c), start});
        break;
      default:
        return Status::ParseError("unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(start));
    }
    ++i;
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace qb5000::sql

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// One query arrival in a materialized trace.
struct TraceEvent {
  Timestamp timestamp = 0;
  std::string sql;
};

/// Column description for the miniature DBMS the index-selection
/// experiments run against.
struct ColumnSpec {
  std::string name;
  enum class Type { kInt, kString } type = Type::kInt;
  /// Number of distinct values the generators draw for this column; also
  /// drives index selectivity in the cost model.
  int64_t cardinality = 1000;
};

struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
  int64_t row_count = 10000;  ///< rows to preload in the mini-DBMS
};

/// One query template with its own arrival-rate process. The SQL factory
/// draws fresh parameters each call; every materialization templatizes to
/// the same generic template.
struct TemplateStream {
  std::string name;
  /// Produces one concrete SQL string.
  std::function<std::string(Rng&)> make_sql;
  /// Expected arrivals per minute at time `ts` (before noise).
  std::function<double(Timestamp)> rate_per_minute;
  Timestamp active_from = 0;
  Timestamp active_until = std::numeric_limits<Timestamp>::max();
};

/// Table 1-style workload summary, filled from what was actually generated.
struct WorkloadStats {
  std::string workload;
  std::string dbms;  ///< the engine the paper ran this trace on
  size_t num_tables = 0;
  double trace_days = 0;
  double avg_queries_per_day = 0;
  double selects = 0, inserts = 0, updates = 0, deletes = 0;
};

/// A synthetic database application workload: schema + template streams.
/// Substitutes for the paper's proprietary traces (see DESIGN.md): the
/// generators reproduce the arrival-rate *shapes* (cycles, growth + spikes,
/// evolution, noise) at laptop scale over real SQL.
class SyntheticWorkload {
 public:
  SyntheticWorkload(std::string label, std::string dbms_label,
                    std::vector<TableSpec> schema,
                    std::vector<TemplateStream> streams)
      : label_(std::move(label)),
        dbms_label_(std::move(dbms_label)),
        schema_(std::move(schema)),
        streams_(std::move(streams)) {}

  const std::string& label() const { return label_; }
  const std::string& dbms_label() const { return dbms_label_; }
  const std::vector<TableSpec>& schema() const { return schema_; }
  const std::vector<TemplateStream>& streams() const { return streams_; }

  /// Feeds [from, to) into the Pre-Processor as aggregated per-step arrival
  /// counts (Poisson around the stream rate). Far cheaper than materializing
  /// every SQL string; each stream is templatized once.
  Status FeedAggregated(PreProcessor& pre, Timestamp from, Timestamp to,
                        int64_t step_seconds, uint64_t seed) const;

  /// Materializes individual query events over [from, to). `max_per_step`
  /// caps arrivals per stream per step so replay stays bounded.
  std::vector<TraceEvent> Materialize(Timestamp from, Timestamp to,
                                      int64_t step_seconds, uint64_t seed,
                                      double volume_scale = 1.0,
                                      int64_t max_per_step = 1000) const;

  /// Summarizes what FeedAggregated(pre, 0, days) produced.
  WorkloadStats Stats(const PreProcessor& pre, double trace_days) const;

 private:
  std::string label_;
  std::string dbms_label_;
  std::vector<TableSpec> schema_;
  std::vector<TemplateStream> streams_;
};

/// Options shared by the workload factories. Scales are chosen so the full
/// benches run in minutes; the paper's absolute volumes are documented in
/// the Table 1 bench output for comparison.
struct WorkloadOptions {
  uint64_t seed = 7;
  double volume_scale = 1.0;
};

/// BusTracker: strong diurnal cycles with morning/evening rush peaks
/// (Figure 1a), run on PostgreSQL in the paper.
SyntheticWorkload MakeBusTracker(const WorkloadOptions& options = {});

/// Admissions: diurnal baseline + growth toward application deadlines with
/// sharp annual spikes (Figure 1b), run on MySQL in the paper. Deadlines
/// fall on days `deadline_day % 365` of each simulated year.
SyntheticWorkload MakeAdmissions(const WorkloadOptions& options = {});

/// MOOC: evolving workload where a feature release activates new templates
/// and retires old ones (Figure 1c), run on MySQL in the paper.
SyntheticWorkload MakeMooc(const WorkloadOptions& options = {});

/// Appendix D's noisy composite: eight OLTP-Bench-style benchmarks executed
/// back-to-back (10 hours each) with 50%-variance white noise and random
/// anomaly spikes.
SyntheticWorkload MakeNoisyComposite(const WorkloadOptions& options = {});

}  // namespace qb5000

#include <string>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Rush-hour shape shared by the rider-facing queries (Figure 1a): diurnal
/// baseline with morning and evening commute peaks, quieter weekends, and
/// a day-level demand drift (weather, events) that makes far-out horizons
/// genuinely harder to predict than near ones.
double RiderShape(Timestamp ts) {
  double peaks = 1.6 * HourBump(ts, 8.0, 1.3) + 1.4 * HourBump(ts, 17.5, 1.6);
  double drift =
      1.0 + 0.25 * PseudoNoise(ts, /*salt=*/909, /*bucket=*/kSecondsPerDay);
  return drift * WeekdayFactor(ts, 0.45) * (0.35 * DiurnalShape(ts) + peaks);
}

std::string RandomCoord(Rng& rng) {
  return std::to_string(40.0 + rng.Uniform(0.0, 0.9)).substr(0, 8);
}

}  // namespace

SyntheticWorkload MakeBusTracker(const WorkloadOptions& options) {
  double v = options.volume_scale;

  std::vector<TableSpec> schema = {
      {"buses", {{"bus_id"}, {"route_id", ColumnSpec::Type::kInt, 80},
                 {"lat", ColumnSpec::Type::kString, 100000},
                 {"lon", ColumnSpec::Type::kString, 100000},
                 {"updated_at", ColumnSpec::Type::kInt, 1000000}},
       600},
      {"bus_positions", {{"pos_id"}, {"bus_id", ColumnSpec::Type::kInt, 600},
                         {"route_id", ColumnSpec::Type::kInt, 80},
                         {"lat", ColumnSpec::Type::kString, 100000},
                         {"lon", ColumnSpec::Type::kString, 100000},
                         {"recorded_at", ColumnSpec::Type::kInt, 1000000}},
       60000},
      {"routes", {{"route_id"}, {"route_name", ColumnSpec::Type::kString, 80},
                  {"is_active", ColumnSpec::Type::kInt, 2}},
       80},
      {"stops", {{"stop_id"}, {"route_id", ColumnSpec::Type::kInt, 80},
                 {"stop_name", ColumnSpec::Type::kString, 2500},
                 {"lat", ColumnSpec::Type::kString, 100000},
                 {"lon", ColumnSpec::Type::kString, 100000}},
       2500},
      {"stop_times", {{"row_id"}, {"stop_id", ColumnSpec::Type::kInt, 2500},
                      {"route_id", ColumnSpec::Type::kInt, 80},
                      {"arrival_minute", ColumnSpec::Type::kInt, 1440}},
       40000},
      {"riders", {{"rider_id"}, {"email", ColumnSpec::Type::kString, 50000},
                  {"created_at", ColumnSpec::Type::kInt, 1000000}},
       50000},
      {"favorites", {{"fav_id"}, {"rider_id", ColumnSpec::Type::kInt, 50000},
                     {"stop_id", ColumnSpec::Type::kInt, 2500}},
       120000},
      {"alerts", {{"alert_id"}, {"route_id", ColumnSpec::Type::kInt, 80},
                  {"severity", ColumnSpec::Type::kInt, 4},
                  {"message", ColumnSpec::Type::kString, 500}},
       500},
  };

  std::vector<TemplateStream> streams;

  // Transit-feed ingest: steady, hardware-driven, day and night.
  streams.push_back(
      {"ingest_positions",
       [](Rng& rng) {
         return "INSERT INTO bus_positions (bus_id, route_id, lat, lon, "
                "recorded_at) VALUES (" +
                std::to_string(rng.UniformInt(1, 600)) + ", " +
                std::to_string(rng.UniformInt(1, 80)) + ", '" + RandomCoord(rng) +
                "', '" + RandomCoord(rng) + "', " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp) { return 60.0 * v; }});
  streams.push_back(
      {"refresh_bus",
       [](Rng& rng) {
         return "UPDATE buses SET lat = '" + RandomCoord(rng) + "', lon = '" +
                RandomCoord(rng) + "', updated_at = " +
                std::to_string(rng.UniformInt(0, 1000000)) +
                " WHERE bus_id = " + std::to_string(rng.UniformInt(1, 600));
       },
       [v](Timestamp) { return 30.0 * v; }});

  // Rider-facing group: these four share the rush-hour shape and should
  // land in one cluster (the paper's Figure 3 cluster).
  streams.push_back(
      {"rider_next_arrivals",
       [](Rng& rng) {
         return "SELECT arrival_minute FROM stop_times WHERE stop_id = " +
                std::to_string(rng.UniformInt(1, 2500)) +
                " AND route_id = " + std::to_string(rng.UniformInt(1, 80)) +
                " ORDER BY arrival_minute LIMIT 5";
       },
       [v](Timestamp ts) { return 220.0 * v * RiderShape(ts); }});
  streams.push_back(
      {"rider_bus_location",
       [](Rng& rng) {
         return "SELECT lat, lon, updated_at FROM buses WHERE route_id = " +
                std::to_string(rng.UniformInt(1, 80));
       },
       [v](Timestamp ts) { return 150.0 * v * RiderShape(ts); }});
  streams.push_back(
      {"rider_nearby_stops",
       [](Rng& rng) {
         return "SELECT stop_id, stop_name, lat, lon FROM stops WHERE "
                "route_id = " +
                std::to_string(rng.UniformInt(1, 80)) + " LIMIT 10";
       },
       [v](Timestamp ts) { return 90.0 * v * RiderShape(ts); }});
  streams.push_back(
      {"rider_favorites",
       [](Rng& rng) {
         return "SELECT stop_id FROM favorites WHERE rider_id = " +
                std::to_string(rng.UniformInt(1, 50000));
       },
       [v](Timestamp ts) { return 45.0 * v * RiderShape(ts); }});

  // Alerts skew toward the evening commute.
  streams.push_back(
      {"rider_alerts",
       [](Rng& rng) {
         return "SELECT message, severity FROM alerts WHERE route_id = " +
                std::to_string(rng.UniformInt(1, 80)) + " AND severity > 1";
       },
       [v](Timestamp ts) {
         return 25.0 * v * WeekdayFactor(ts) *
                (0.2 + 1.8 * HourBump(ts, 17.0, 2.5));
       }});

  // Registrations and favorites trickle in during the day.
  streams.push_back(
      {"signup",
       [](Rng& rng) {
         return "INSERT INTO riders (email, created_at) VALUES ('user" +
                std::to_string(rng.UniformInt(1, 999999)) + "@example.com', " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp ts) { return 2.0 * v * DiurnalShape(ts); }});
  streams.push_back(
      {"add_favorite",
       [](Rng& rng) {
         return "INSERT INTO favorites (rider_id, stop_id) VALUES (" +
                std::to_string(rng.UniformInt(1, 50000)) + ", " +
                std::to_string(rng.UniformInt(1, 2500)) + ")";
       },
       [v](Timestamp ts) { return 4.0 * v * DiurnalShape(ts); }});

  // Nightly retention job.
  streams.push_back(
      {"purge_stale_positions",
       [](Rng& rng) {
         return "DELETE FROM bus_positions WHERE recorded_at < " +
                std::to_string(rng.UniformInt(0, 1000000));
       },
       [v](Timestamp ts) { return 1.5 * v * HourBump(ts, 3.0, 0.8); }});

  // Long tail of secondary features with their own shapes: these form the
  // small clusters behind the big rush-hour ones.
  streams.push_back(
      {"route_planner",
       [](Rng& rng) {
         return "SELECT stop_id, arrival_minute FROM stop_times WHERE "
                "route_id = " +
                std::to_string(rng.UniformInt(1, 80)) +
                " AND arrival_minute BETWEEN " +
                std::to_string(rng.UniformInt(0, 700)) + " AND " +
                std::to_string(rng.UniformInt(701, 1439));
       },
       [v](Timestamp ts) {
         return 12.0 * v * WeekdayFactor(ts) * HourBump(ts, 12.5, 3.0);
       }});
  streams.push_back(
      {"driver_checkin",
       [](Rng& rng) {
         return "UPDATE buses SET updated_at = " +
                std::to_string(rng.UniformInt(0, 1000000)) +
                " WHERE route_id = " + std::to_string(rng.UniformInt(1, 80));
       },
       [v](Timestamp ts) {
         return 8.0 * v * WeekdayFactor(ts, 0.7) * HourBump(ts, 5.0, 0.9);
       }});
  streams.push_back(
      {"stop_detail_page",
       [](Rng& rng) {
         return "SELECT stop_name, lat, lon FROM stops WHERE stop_id = " +
                std::to_string(rng.UniformInt(1, 2500));
       },
       [v](Timestamp ts) {
         return 10.0 * v * (0.3 * DiurnalShape(ts) + HourBump(ts, 19.0, 2.2));
       }});
  streams.push_back(
      {"weekend_schedule_browse",
       [](Rng& rng) {
         return "SELECT route_name FROM routes WHERE is_active = 1 AND "
                "route_id > " +
                std::to_string(rng.UniformInt(0, 79));
       },
       [v](Timestamp ts) {
         // Inverse weekday pattern: leisure riders planning weekend trips.
         double weekend = WeekdayFactor(ts, 2.5);
         return 6.0 * v * DiurnalShape(ts) * weekend;
       }});
  streams.push_back(
      {"ops_dashboard",
       [](Rng& rng) {
         return "SELECT COUNT(*), MAX(recorded_at) FROM bus_positions WHERE "
                "route_id = " +
                std::to_string(rng.UniformInt(1, 80));
       },
       [v](Timestamp ts) {
         return 3.0 * v * WeekdayFactor(ts, 0.15) * HourBump(ts, 9.5, 3.5);
       }});
  streams.push_back(
      {"remove_favorite",
       [](Rng& rng) {
         return "DELETE FROM favorites WHERE rider_id = " +
                std::to_string(rng.UniformInt(1, 50000)) +
                " AND stop_id = " + std::to_string(rng.UniformInt(1, 2500));
       },
       [v](Timestamp ts) { return 1.2 * v * DiurnalShape(ts); }});
  streams.push_back(
      {"alert_publish",
       [](Rng& rng) {
         return "INSERT INTO alerts (route_id, severity, message) VALUES (" +
                std::to_string(rng.UniformInt(1, 80)) + ", " +
                std::to_string(rng.UniformInt(1, 4)) + ", 'detour notice')";
       },
       [v](Timestamp ts) {
         return 0.8 * v * WeekdayFactor(ts, 0.4) * DiurnalShape(ts);
       }});

  return SyntheticWorkload("BusTracker", "PostgreSQL", std::move(schema),
                           std::move(streams));
}

}  // namespace qb5000

#include <string>
#include <vector>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Application deadlines: two per simulated year, landing on days 334 and
/// 348 of each year (the paper's Dec 1 / Dec 15 deadlines repeat annually,
/// Figures 1b and 9).
std::vector<Timestamp> Deadlines() {
  std::vector<Timestamp> out;
  for (int year = 0; year < 3; ++year) {
    out.push_back((365 * year + 334) * kSecondsPerDay + 12 * kSecondsPerHour);
    out.push_back((365 * year + 348) * kSecondsPerDay + 12 * kSecondsPerHour);
  }
  return out;
}

/// Applicant activity: diurnal base plus exponential pressure toward each
/// deadline with a sharp spike on the deadline itself.
double ApplicantShape(Timestamp ts) {
  static const std::vector<Timestamp>& kDeadlines = *new auto(Deadlines());
  double pressure = 0.0;
  for (Timestamp deadline : kDeadlines) {
    if (ts <= deadline) {
      pressure += 4.0 * DeadlinePressure(ts, deadline, 5.0, 0.0);
    }
    pressure += 14.0 * SpikeAt(ts, deadline, 7.0);
  }
  return DiurnalShape(ts) * (0.12 + pressure);
}

/// Faculty review activity: switches on after each deadline and decays over
/// roughly a month.
double ReviewShape(Timestamp ts) {
  static const std::vector<Timestamp>& kDeadlines = *new auto(Deadlines());
  double level = 0.0;
  for (Timestamp deadline : kDeadlines) {
    if (ts <= deadline) continue;
    double days_after = static_cast<double>(ts - deadline) /
                        static_cast<double>(kSecondsPerDay);
    level += std::exp(-days_after / 18.0);
  }
  return DiurnalShape(ts) * WeekdayFactor(ts, 0.3) * level;
}

}  // namespace

SyntheticWorkload MakeAdmissions(const WorkloadOptions& options) {
  double v = options.volume_scale;

  std::vector<TableSpec> schema = {
      {"applicants", {{"applicant_id"},
                      {"email", ColumnSpec::Type::kString, 60000},
                      {"country", ColumnSpec::Type::kString, 150},
                      {"created_at", ColumnSpec::Type::kInt, 1000000}},
       60000},
      {"applications", {{"app_id"},
                        {"applicant_id", ColumnSpec::Type::kInt, 60000},
                        {"program_id", ColumnSpec::Type::kInt, 120},
                        {"status", ColumnSpec::Type::kInt, 6},
                        {"submitted_at", ColumnSpec::Type::kInt, 1000000}},
       80000},
      {"documents", {{"doc_id"},
                     {"app_id", ColumnSpec::Type::kInt, 80000},
                     {"doc_type", ColumnSpec::Type::kInt, 8},
                     {"uploaded_at", ColumnSpec::Type::kInt, 1000000}},
       200000},
      {"recommendations", {{"rec_id"},
                           {"app_id", ColumnSpec::Type::kInt, 80000},
                           {"recommender_email", ColumnSpec::Type::kString, 40000},
                           {"received", ColumnSpec::Type::kInt, 2}},
       150000},
      {"programs", {{"program_id"},
                    {"dept_id", ColumnSpec::Type::kInt, 40},
                    {"program_name", ColumnSpec::Type::kString, 120},
                    {"deadline_day", ColumnSpec::Type::kInt, 365}},
       120},
      {"departments", {{"dept_id"},
                       {"dept_name", ColumnSpec::Type::kString, 40}},
       40},
      {"reviews", {{"review_id"},
                   {"app_id", ColumnSpec::Type::kInt, 80000},
                   {"reviewer_id", ColumnSpec::Type::kInt, 400},
                   {"score", ColumnSpec::Type::kInt, 10}},
       120000},
      {"decisions", {{"decision_id"},
                     {"app_id", ColumnSpec::Type::kInt, 80000},
                     {"outcome", ColumnSpec::Type::kInt, 3},
                     {"decided_at", ColumnSpec::Type::kInt, 1000000}},
       60000},
  };

  std::vector<TemplateStream> streams;

  // Applicant group (deadline-driven, Figure 1b / 9 shapes).
  streams.push_back(
      {"check_status",
       [](Rng& rng) {
         return "SELECT status, submitted_at FROM applications WHERE "
                "applicant_id = " +
                std::to_string(rng.UniformInt(1, 60000));
       },
       [v](Timestamp ts) { return 180.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"browse_programs",
       [](Rng& rng) {
         return "SELECT program_name, deadline_day FROM programs WHERE "
                "dept_id = " +
                std::to_string(rng.UniformInt(1, 40));
       },
       [v](Timestamp ts) { return 90.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"upload_document",
       [](Rng& rng) {
         return "INSERT INTO documents (app_id, doc_type, uploaded_at) "
                "VALUES (" +
                std::to_string(rng.UniformInt(1, 80000)) + ", " +
                std::to_string(rng.UniformInt(1, 8)) + ", " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp ts) { return 40.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"update_application",
       [](Rng& rng) {
         return "UPDATE applications SET status = " +
                std::to_string(rng.UniformInt(1, 6)) + ", submitted_at = " +
                std::to_string(rng.UniformInt(0, 1000000)) +
                " WHERE app_id = " + std::to_string(rng.UniformInt(1, 80000));
       },
       [v](Timestamp ts) { return 30.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"check_recommendations",
       [](Rng& rng) {
         return "SELECT received FROM recommendations WHERE app_id = " +
                std::to_string(rng.UniformInt(1, 80000));
       },
       [v](Timestamp ts) { return 60.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"create_applicant",
       [](Rng& rng) {
         return "INSERT INTO applicants (email, country, created_at) VALUES "
                "('a" +
                std::to_string(rng.UniformInt(1, 999999)) +
                "@mail.test', 'US', " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp ts) { return 8.0 * v * ApplicantShape(ts); }});

  // Faculty review group (post-deadline).
  streams.push_back(
      {"review_queue",
       [](Rng& rng) {
         return "SELECT app_id, status FROM applications WHERE program_id = " +
                std::to_string(rng.UniformInt(1, 120)) +
                " AND status = 2 ORDER BY submitted_at LIMIT 25";
       },
       [v](Timestamp ts) { return 50.0 * v * ReviewShape(ts); }});
  streams.push_back(
      {"submit_review",
       [](Rng& rng) {
         return "INSERT INTO reviews (app_id, reviewer_id, score) VALUES (" +
                std::to_string(rng.UniformInt(1, 80000)) + ", " +
                std::to_string(rng.UniformInt(1, 400)) + ", " +
                std::to_string(rng.UniformInt(1, 10)) + ")";
       },
       [v](Timestamp ts) { return 18.0 * v * ReviewShape(ts); }});
  streams.push_back(
      {"record_decision",
       [](Rng& rng) {
         return "UPDATE decisions SET outcome = " +
                std::to_string(rng.UniformInt(1, 3)) + ", decided_at = " +
                std::to_string(rng.UniformInt(0, 1000000)) +
                " WHERE app_id = " + std::to_string(rng.UniformInt(1, 80000));
       },
       [v](Timestamp ts) { return 9.0 * v * ReviewShape(ts); }});

  // Year-round administrative background load.
  streams.push_back(
      {"admin_dashboard",
       [](Rng& rng) {
         return "SELECT COUNT(*) FROM applications WHERE program_id = " +
                std::to_string(rng.UniformInt(1, 120)) + " AND status = " +
                std::to_string(rng.UniformInt(1, 6));
       },
       [v](Timestamp ts) {
         return 6.0 * v * DiurnalShape(ts) * WeekdayFactor(ts, 0.2);
       }});
  streams.push_back(
      {"purge_drafts",
       [](Rng& rng) {
         return "DELETE FROM applications WHERE status = 1 AND submitted_at < " +
                std::to_string(rng.UniformInt(0, 1000000));
       },
       [v](Timestamp ts) { return 0.6 * v * HourBump(ts, 2.0, 0.7); }});

  // Secondary features with their own shapes.
  streams.push_back(
      {"login_lookup",
       [](Rng& rng) {
         return "SELECT applicant_id FROM applicants WHERE email = 'a" +
                std::to_string(rng.UniformInt(1, 999999)) + "@mail.test'";
       },
       [v](Timestamp ts) { return 25.0 * v * ApplicantShape(ts); }});
  streams.push_back(
      {"download_document",
       [](Rng& rng) {
         return "SELECT doc_type, uploaded_at FROM documents WHERE app_id = " +
                std::to_string(rng.UniformInt(1, 80000)) + " AND doc_type = " +
                std::to_string(rng.UniformInt(1, 8));
       },
       [v](Timestamp ts) { return 14.0 * v * ReviewShape(ts); }});
  streams.push_back(
      {"reviewer_scores",
       [](Rng& rng) {
         return "SELECT AVG(score), COUNT(*) FROM reviews WHERE app_id = " +
                std::to_string(rng.UniformInt(1, 80000));
       },
       [v](Timestamp ts) { return 7.0 * v * ReviewShape(ts); }});
  streams.push_back(
      {"reminder_update",
       [](Rng& rng) {
         return "UPDATE recommendations SET received = 0 WHERE rec_id = " +
                std::to_string(rng.UniformInt(1, 150000));
       },
       [v](Timestamp ts) {
         // Reminder blasts go out nightly during application season only.
         return 2.0 * v * ApplicantShape(ts) * HourBump(ts, 1.0, 0.6) * 8.0;
       }});
  streams.push_back(
      {"dept_report",
       [](Rng& rng) {
         return "SELECT COUNT(*) FROM applications WHERE program_id IN (" +
                std::to_string(rng.UniformInt(1, 40)) + ", " +
                std::to_string(rng.UniformInt(41, 80)) + ", " +
                std::to_string(rng.UniformInt(81, 120)) + ")";
       },
       [v](Timestamp ts) {
         return 1.0 * v * WeekdayFactor(ts, 0.1) * HourBump(ts, 14.0, 2.0);
       }});

  return SyntheticWorkload("Admissions", "MySQL", std::move(schema),
                           std::move(streams));
}

}  // namespace qb5000

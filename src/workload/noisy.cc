#include <string>
#include <vector>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Appendix D runs eight OLTP-Bench benchmarks back-to-back, 10 hours each.
constexpr int64_t kSegmentSeconds = 10 * kSecondsPerHour;

struct BenchmarkSpec {
  const char* name;
  const char* table;
  double mean_rate;  ///< queries/min at volume_scale 1
};

/// Mean arrival rates differ per benchmark so the segment boundaries are
/// visible level shifts, as in Figure 17.
constexpr BenchmarkSpec kBenchmarks[] = {
    {"wikipedia", "wiki_page", 220.0}, {"tatp", "tatp_subscriber", 340.0},
    {"ycsb", "ycsb_usertable", 160.0}, {"smallbank", "sb_accounts", 420.0},
    {"tpcc", "tpcc_orders", 120.0},    {"twitter", "tw_tweets", 520.0},
    {"epinions", "ep_reviews", 90.0},  {"voter", "vt_votes", 610.0},
};

/// White noise with variance equal to 50% of the mean, plus occasional
/// anomaly spikes (Appendix D), all deterministic in the timestamp.
double Noisy(double mean, Timestamp ts, uint64_t salt) {
  double noise = PseudoNoise(ts, salt) * std::sqrt(0.5 * mean);
  double spike = 0.0;
  // ~1 anomaly per segment: minute buckets where the hash falls in a narrow
  // band get a short multiplicative burst.
  double h = PseudoNoise(ts, salt * 7919 + 13, 20 * kSecondsPerMinute);
  if (h > 0.995) spike = 2.5 * mean;
  double v = mean + noise + spike;
  return v > 0.0 ? v : 0.0;
}

}  // namespace

SyntheticWorkload MakeNoisyComposite(const WorkloadOptions& options) {
  double v = options.volume_scale;

  std::vector<TableSpec> schema;
  std::vector<TemplateStream> streams;
  int index = 0;
  for (const BenchmarkSpec& bench : kBenchmarks) {
    std::string table = bench.table;
    schema.push_back({table,
                      {{"id"},
                       {"k", ColumnSpec::Type::kInt, 100000},
                       {"v", ColumnSpec::Type::kString, 100000},
                       {"t", ColumnSpec::Type::kInt, 1000000}},
                      50000});
    Timestamp begin = index * kSegmentSeconds;
    Timestamp end = begin + kSegmentSeconds;
    double mean = bench.mean_rate * v;
    uint64_t salt = 1000 + static_cast<uint64_t>(index);

    // Three templates per benchmark: point SELECT, write, scan-style read.
    streams.push_back(
        {std::string(bench.name) + "_read",
         [table](Rng& rng) {
           return "SELECT v FROM " + table +
                  " WHERE id = " + std::to_string(rng.UniformInt(1, 50000));
         },
         [mean, salt](Timestamp ts) { return Noisy(0.6 * mean, ts, salt); },
         begin, end});
    streams.push_back(
        {std::string(bench.name) + "_write",
         [table](Rng& rng) {
           return "UPDATE " + table + " SET v = 'x" +
                  std::to_string(rng.UniformInt(1, 99999)) +
                  "', t = " + std::to_string(rng.UniformInt(0, 1000000)) +
                  " WHERE id = " + std::to_string(rng.UniformInt(1, 50000));
         },
         [mean, salt](Timestamp ts) { return Noisy(0.3 * mean, ts, salt + 1); },
         begin, end});
    streams.push_back(
        {std::string(bench.name) + "_scan",
         [table](Rng& rng) {
           return "SELECT id, v FROM " + table + " WHERE k BETWEEN " +
                  std::to_string(rng.UniformInt(1, 50000)) + " AND " +
                  std::to_string(rng.UniformInt(50001, 100000)) + " LIMIT 50";
         },
         [mean, salt](Timestamp ts) { return Noisy(0.1 * mean, ts, salt + 2); },
         begin, end});
    ++index;
  }

  return SyntheticWorkload("NoisyComposite", "OLTP-Bench", std::move(schema),
                           std::move(streams));
}

}  // namespace qb5000

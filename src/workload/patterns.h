#pragma once

#include <cmath>

#include "common/clock.h"

namespace qb5000 {

/// Fraction of the day in [0, 1) at `ts`.
inline double DayFraction(Timestamp ts) {
  int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<double>(rem) / static_cast<double>(kSecondsPerDay);
}

/// Day index (0-based) of `ts`.
inline int64_t DayIndex(Timestamp ts) {
  int64_t day = ts / kSecondsPerDay;
  if (ts < 0 && day * kSecondsPerDay > ts) --day;
  return day;
}

/// Smooth bump centered at `center_hour` with the given width (hours),
/// peaking at 1. Used to compose rush-hour peaks.
inline double HourBump(Timestamp ts, double center_hour, double width_hours) {
  double hour = DayFraction(ts) * 24.0;
  double d = hour - center_hour;
  // Wrap across midnight.
  if (d > 12.0) d -= 24.0;
  if (d < -12.0) d += 24.0;
  return std::exp(-(d * d) / (2.0 * width_hours * width_hours));
}

/// Generic human diurnal curve: low overnight, high during the day.
inline double DiurnalShape(Timestamp ts) {
  double hour = DayFraction(ts) * 24.0;
  return 0.25 + 0.75 * 0.5 * (1.0 - std::cos(2.0 * M_PI * (hour - 4.0) / 24.0));
}

/// Weekday factor: ~1 on weekdays, `weekend_level` on days 5 and 6 of each
/// 7-day cycle.
inline double WeekdayFactor(Timestamp ts, double weekend_level = 0.6) {
  int64_t dow = DayIndex(ts) % 7;
  if (dow < 0) dow += 7;
  return (dow == 5 || dow == 6) ? weekend_level : 1.0;
}

/// Exponential pressure building toward a deadline at `deadline` with time
/// constant `tau_days`, collapsing to `after_level` once passed (Figure 1b).
inline double DeadlinePressure(Timestamp ts, Timestamp deadline, double tau_days,
                               double after_level = 0.15) {
  if (ts > deadline) return after_level;
  double days_left =
      static_cast<double>(deadline - ts) / static_cast<double>(kSecondsPerDay);
  return std::exp(-days_left / tau_days);
}

/// Gaussian spike of height 1 centered at `center` with width `width_hours`.
inline double SpikeAt(Timestamp ts, Timestamp center, double width_hours) {
  double dh = static_cast<double>(ts - center) / static_cast<double>(kSecondsPerHour);
  return std::exp(-(dh * dh) / (2.0 * width_hours * width_hours));
}

/// Deterministic pseudo-noise in [-1, 1] derived from (bucket, salt) via
/// splitmix64. Lets rate functions carry reproducible white noise without
/// threading an Rng through them.
inline double PseudoNoise(Timestamp ts, uint64_t salt,
                          int64_t bucket_seconds = kSecondsPerMinute) {
  uint64_t z = static_cast<uint64_t>(ts / bucket_seconds) * 0x9E3779B97F4A7C15ULL +
               salt * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return 2.0 * (static_cast<double>(z >> 11) /
                static_cast<double>(1ULL << 53)) - 1.0;
}

}  // namespace qb5000

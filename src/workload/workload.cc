#include "workload/workload.h"

#include <algorithm>
#include <set>

#include "preprocessor/templatizer.h"

namespace qb5000 {

Status SyntheticWorkload::FeedAggregated(PreProcessor& pre, Timestamp from,
                                         Timestamp to, int64_t step_seconds,
                                         uint64_t seed) const {
  if (step_seconds <= 0) return Status::InvalidArgument("bad step");
  Rng rng(seed);
  double step_minutes =
      static_cast<double>(step_seconds) / static_cast<double>(kSecondsPerMinute);
  for (const auto& stream : streams_) {
    // Templatize a representative materialization once per stream.
    auto tmpl = Templatize(stream.make_sql(rng));
    if (!tmpl.ok()) return tmpl.status();
    Timestamp begin = std::max(from, stream.active_from);
    Timestamp end = std::min(to, stream.active_until);
    for (Timestamp ts = begin; ts < end; ts += step_seconds) {
      double expected = stream.rate_per_minute(ts) * step_minutes;
      if (expected <= 0.0) continue;
      double count = expected < 50.0
                         ? static_cast<double>(rng.Poisson(expected))
                         : std::max(0.0, expected + rng.Gaussian(0.0, std::sqrt(expected)));
      if (count <= 0.0) continue;
      pre.IngestTemplatized(*tmpl, ts, count);
    }
  }
  return Status::Ok();
}

std::vector<TraceEvent> SyntheticWorkload::Materialize(
    Timestamp from, Timestamp to, int64_t step_seconds, uint64_t seed,
    double volume_scale, int64_t max_per_step) const {
  Rng rng(seed);
  std::vector<TraceEvent> events;
  double step_minutes =
      static_cast<double>(step_seconds) / static_cast<double>(kSecondsPerMinute);
  for (const auto& stream : streams_) {
    Timestamp begin = std::max(from, stream.active_from);
    Timestamp end = std::min(to, stream.active_until);
    for (Timestamp ts = begin; ts < end; ts += step_seconds) {
      double expected = stream.rate_per_minute(ts) * step_minutes * volume_scale;
      if (expected <= 0.0) continue;
      int64_t count = std::min(rng.Poisson(expected), max_per_step);
      for (int64_t i = 0; i < count; ++i) {
        Timestamp jitter = rng.UniformInt(0, step_seconds - 1);
        events.push_back({ts + jitter, stream.make_sql(rng)});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.timestamp < b.timestamp;
            });
  return events;
}

WorkloadStats SyntheticWorkload::Stats(const PreProcessor& pre,
                                       double trace_days) const {
  WorkloadStats stats;
  stats.workload = label_;
  stats.dbms = dbms_label_;
  std::set<std::string> tables;
  for (const auto& table : schema_) tables.insert(table.name);
  stats.num_tables = tables.size();
  stats.trace_days = trace_days;
  stats.selects = pre.QueriesOfType(sql::StatementType::kSelect);
  stats.inserts = pre.QueriesOfType(sql::StatementType::kInsert);
  stats.updates = pre.QueriesOfType(sql::StatementType::kUpdate);
  stats.deletes = pre.QueriesOfType(sql::StatementType::kDelete);
  stats.avg_queries_per_day =
      trace_days > 0 ? pre.total_queries() / trace_days : 0;
  return stats;
}

}  // namespace qb5000

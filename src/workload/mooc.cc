#include <string>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Day the application ships its new feature (Figure 1c's "New Release").
constexpr int64_t kReleaseDay = 45;
constexpr Timestamp kRelease = kReleaseDay * kSecondsPerDay;

double StudentShape(Timestamp ts) {
  // Students work during the day with a strong late-evening bump before
  // assignment due-times.
  return WeekdayFactor(ts, 0.8) *
         (0.5 * DiurnalShape(ts) + 1.2 * HourBump(ts, 21.0, 2.0));
}

/// Post-release adoption: ramps from 0 to 1 over ~10 days after launch.
double AdoptionRamp(Timestamp ts) {
  if (ts < kRelease) return 0.0;
  double days = static_cast<double>(ts - kRelease) /
                static_cast<double>(kSecondsPerDay);
  return 1.0 - std::exp(-days / 10.0);
}

}  // namespace

SyntheticWorkload MakeMooc(const WorkloadOptions& options) {
  double v = options.volume_scale;

  std::vector<TableSpec> schema = {
      {"courses", {{"course_id"},
                   {"title", ColumnSpec::Type::kString, 800},
                   {"instructor_id", ColumnSpec::Type::kInt, 300}},
       800},
      {"students", {{"student_id"},
                    {"email", ColumnSpec::Type::kString, 90000},
                    {"joined_at", ColumnSpec::Type::kInt, 1000000}},
       90000},
      {"enrollments", {{"enroll_id"},
                       {"student_id", ColumnSpec::Type::kInt, 90000},
                       {"course_id", ColumnSpec::Type::kInt, 800},
                       {"enrolled_at", ColumnSpec::Type::kInt, 1000000}},
       250000},
      {"materials", {{"material_id"},
                     {"course_id", ColumnSpec::Type::kInt, 800},
                     {"kind", ColumnSpec::Type::kInt, 6},
                     {"title", ColumnSpec::Type::kString, 20000}},
       20000},
      {"assignments", {{"assignment_id"},
                       {"course_id", ColumnSpec::Type::kInt, 800},
                       {"due_at", ColumnSpec::Type::kInt, 1000000}},
       8000},
      {"submissions", {{"submission_id"},
                       {"assignment_id", ColumnSpec::Type::kInt, 8000},
                       {"student_id", ColumnSpec::Type::kInt, 90000},
                       {"submitted_at", ColumnSpec::Type::kInt, 1000000},
                       {"grade", ColumnSpec::Type::kInt, 101}},
       400000},
      {"forum_posts", {{"post_id"},
                       {"course_id", ColumnSpec::Type::kInt, 800},
                       {"student_id", ColumnSpec::Type::kInt, 90000},
                       {"created_at", ColumnSpec::Type::kInt, 1000000},
                       {"body", ColumnSpec::Type::kString, 500000}},
       300000},
      {"quiz_attempts", {{"attempt_id"},
                         {"student_id", ColumnSpec::Type::kInt, 90000},
                         {"quiz_id", ColumnSpec::Type::kInt, 4000},
                         {"score", ColumnSpec::Type::kInt, 101},
                         {"attempted_at", ColumnSpec::Type::kInt, 1000000}},
       150000},
  };

  std::vector<TemplateStream> streams;

  // Stable student group (always on).
  streams.push_back(
      {"view_materials",
       [](Rng& rng) {
         return "SELECT title, kind FROM materials WHERE course_id = " +
                std::to_string(rng.UniformInt(1, 800)) + " ORDER BY material_id";
       },
       [v](Timestamp ts) { return 140.0 * v * StudentShape(ts); }});
  streams.push_back(
      {"list_assignments",
       [](Rng& rng) {
         return "SELECT assignment_id, due_at FROM assignments WHERE "
                "course_id = " +
                std::to_string(rng.UniformInt(1, 800));
       },
       [v](Timestamp ts) { return 70.0 * v * StudentShape(ts); }});
  streams.push_back(
      {"submit_assignment",
       [](Rng& rng) {
         return "INSERT INTO submissions (assignment_id, student_id, "
                "submitted_at, grade) VALUES (" +
                std::to_string(rng.UniformInt(1, 8000)) + ", " +
                std::to_string(rng.UniformInt(1, 90000)) + ", " +
                std::to_string(rng.UniformInt(0, 1000000)) + ", 0)";
       },
       [v](Timestamp ts) { return 25.0 * v * StudentShape(ts); }});
  streams.push_back(
      {"check_grades",
       [](Rng& rng) {
         return "SELECT grade FROM submissions WHERE student_id = " +
                std::to_string(rng.UniformInt(1, 90000)) +
                " AND assignment_id = " + std::to_string(rng.UniformInt(1, 8000));
       },
       [v](Timestamp ts) { return 55.0 * v * StudentShape(ts); }});
  streams.push_back(
      {"enroll",
       [](Rng& rng) {
         return "INSERT INTO enrollments (student_id, course_id, enrolled_at) "
                "VALUES (" +
                std::to_string(rng.UniformInt(1, 90000)) + ", " +
                std::to_string(rng.UniformInt(1, 800)) + ", " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp ts) { return 6.0 * v * DiurnalShape(ts); }});

  // Instructor group: mornings, weekdays.
  streams.push_back(
      {"grade_submissions",
       [](Rng& rng) {
         return "UPDATE submissions SET grade = " +
                std::to_string(rng.UniformInt(0, 100)) +
                " WHERE submission_id = " +
                std::to_string(rng.UniformInt(1, 400000));
       },
       [v](Timestamp ts) {
         return 20.0 * v * WeekdayFactor(ts, 0.25) * HourBump(ts, 10.0, 2.5);
       }});
  streams.push_back(
      {"upload_material",
       [](Rng& rng) {
         return "INSERT INTO materials (course_id, kind, title) VALUES (" +
                std::to_string(rng.UniformInt(1, 800)) + ", " +
                std::to_string(rng.UniformInt(1, 6)) + ", 'lecture " +
                std::to_string(rng.UniformInt(1, 9999)) + "')";
       },
       [v](Timestamp ts) {
         return 3.0 * v * WeekdayFactor(ts, 0.25) * HourBump(ts, 10.0, 2.5);
       }});

  // Legacy feature retired at the release (workload evolution, out).
  streams.push_back(
      {"legacy_progress_page",
       [](Rng& rng) {
         return "SELECT submitted_at FROM submissions WHERE student_id = " +
                std::to_string(rng.UniformInt(1, 90000)) +
                " ORDER BY submitted_at DESC LIMIT 20";
       },
       [v](Timestamp ts) { return 35.0 * v * StudentShape(ts); },
       0, kRelease});

  // New feature launched at the release (workload evolution, in): quizzes
  // and a redesigned forum.
  streams.push_back(
      {"quiz_attempt",
       [](Rng& rng) {
         return "INSERT INTO quiz_attempts (student_id, quiz_id, score, "
                "attempted_at) VALUES (" +
                std::to_string(rng.UniformInt(1, 90000)) + ", " +
                std::to_string(rng.UniformInt(1, 4000)) + ", " +
                std::to_string(rng.UniformInt(0, 100)) + ", " +
                std::to_string(rng.UniformInt(0, 1000000)) + ")";
       },
       [v](Timestamp ts) { return 50.0 * v * StudentShape(ts) * AdoptionRamp(ts); },
       kRelease});
  streams.push_back(
      {"quiz_leaderboard",
       [](Rng& rng) {
         return "SELECT student_id, MAX(score) FROM quiz_attempts WHERE "
                "quiz_id = " +
                std::to_string(rng.UniformInt(1, 4000)) +
                " GROUP BY student_id ORDER BY MAX(score) DESC LIMIT 10";
       },
       [v](Timestamp ts) { return 30.0 * v * StudentShape(ts) * AdoptionRamp(ts); },
       kRelease});
  streams.push_back(
      {"forum_feed",
       [](Rng& rng) {
         return "SELECT post_id, body FROM forum_posts WHERE course_id = " +
                std::to_string(rng.UniformInt(1, 800)) +
                " ORDER BY created_at DESC LIMIT 30";
       },
       [v](Timestamp ts) { return 45.0 * v * StudentShape(ts) * AdoptionRamp(ts); },
       kRelease});
  streams.push_back(
      {"forum_post",
       [](Rng& rng) {
         return "INSERT INTO forum_posts (course_id, student_id, created_at, "
                "body) VALUES (" +
                std::to_string(rng.UniformInt(1, 800)) + ", " +
                std::to_string(rng.UniformInt(1, 90000)) + ", " +
                std::to_string(rng.UniformInt(0, 1000000)) + ", 'post text')";
       },
       [v](Timestamp ts) { return 12.0 * v * StudentShape(ts) * AdoptionRamp(ts); },
       kRelease});

  // Secondary student features with their own shapes.
  streams.push_back(
      {"course_search",
       [](Rng& rng) {
         return "SELECT course_id, title FROM courses WHERE instructor_id = " +
                std::to_string(rng.UniformInt(1, 300)) + " LIMIT 20";
       },
       [v](Timestamp ts) { return 18.0 * v * DiurnalShape(ts); }});
  streams.push_back(
      {"deadline_rush_list",
       [](Rng& rng) {
         return "SELECT assignment_id FROM assignments WHERE due_at BETWEEN " +
                std::to_string(rng.UniformInt(0, 500000)) + " AND " +
                std::to_string(rng.UniformInt(500001, 1000000)) +
                " ORDER BY due_at LIMIT 10";
       },
       [v](Timestamp ts) {
         return 9.0 * v * HourBump(ts, 22.5, 1.2);  // last-minute checkers
       }});
  streams.push_back(
      {"drop_enrollment",
       [](Rng& rng) {
         return "DELETE FROM enrollments WHERE student_id = " +
                std::to_string(rng.UniformInt(1, 90000)) + " AND course_id = " +
                std::to_string(rng.UniformInt(1, 800));
       },
       [v](Timestamp ts) { return 1.0 * v * DiurnalShape(ts); }});

  // Long tail of instructor-built course dashboards appearing over time:
  // drives the accumulating distinct-template curve of Figure 1c. Each
  // stream is structurally unique (different table / aggregate / filter
  // combination) so each one registers as a new template.
  const char* kAggs[] = {"COUNT(*)", "AVG(grade)", "MAX(submitted_at)"};
  const char* kTables[] = {"submissions", "quiz_attempts", "forum_posts",
                           "enrollments"};
  const char* kIdColumns[] = {"assignment_id", "quiz_id", "course_id",
                              "course_id"};
  const char* kAggsQuiz[] = {"COUNT(*)", "AVG(score)", "MAX(attempted_at)"};
  const char* kAggsForum[] = {"COUNT(*)", "MIN(created_at)", "MAX(created_at)"};
  const char* kAggsEnroll[] = {"COUNT(*)", "MIN(enrolled_at)",
                               "MAX(enrolled_at)"};
  for (int i = 0; i < 24; ++i) {
    int table = i % 4;
    int agg = (i / 4) % 3;
    bool extra = (i / 12) % 2 == 1;
    const char* agg_expr = table == 0   ? kAggs[agg]
                           : table == 1 ? kAggsQuiz[agg]
                           : table == 2 ? kAggsForum[agg]
                                        : kAggsEnroll[agg];
    std::string base = std::string("SELECT ") + agg_expr + " FROM " +
                       kTables[table] + " WHERE " + kIdColumns[table] + " = ";
    std::string extra_pred =
        extra ? std::string(" AND student_id > ") : std::string();
    Timestamp appears = (5 + 4 * i) * kSecondsPerDay;
    streams.push_back(
        {"custom_dashboard_" + std::to_string(i),
         [base, extra_pred](Rng& rng) {
           std::string sql = base + std::to_string(rng.UniformInt(1, 4000));
           if (!extra_pred.empty()) {
             sql += extra_pred + std::to_string(rng.UniformInt(1, 90000));
           }
           return sql;
         },
         [v, appears](Timestamp ts) {
           if (ts < appears) return 0.0;
           return 1.5 * v * DiurnalShape(ts);
         },
         appears});
  }

  return SyntheticWorkload("MOOC", "MySQL", std::move(schema),
                           std::move(streams));
}

}  // namespace qb5000

// Checkpoint format v2: the durable representation of a whole QueryBot5000
// pipeline. See core/checkpoint.h for the container layout and the recovery
// ladder, and DESIGN.md "Durability & crash recovery" for the rationale.
#include "core/checkpoint.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/chaos.h"
#include "common/io.h"
#include "common/mutex.h"
#include "core/qb5000.h"
#include "preprocessor/snapshot.h"

namespace qb5000 {
namespace {

constexpr char kSectionPreprocessor[] = "preprocessor";
constexpr char kSectionClusterer[] = "clusterer";
constexpr char kSectionController[] = "controller";
constexpr char kSectionMetrics[] = "metrics";

// Delta sidecar sections (format doc: core/checkpoint.h).
constexpr char kSectionDeltaMeta[] = "delta-meta";
constexpr char kSectionDeltaTemplates[] = "new-templates";
constexpr char kSectionDeltaArrivals[] = "arrivals";

std::string DeltaPath(const std::string& checkpoint_path) {
  return checkpoint_path + ".delta";
}

// Length-prefixed string records, same wire idiom as the Snapshot stream so
// template text with embedded newlines/spaces round-trips exactly.
void WriteString(std::ostream& out, const std::string& s) {
  out << s.size() << '\n' << s << '\n';
}

bool ReadString(std::istream& in, std::string* out) {
  size_t length = 0;
  if (!(in >> length)) return false;
  in.get();  // the '\n' after the length
  out->resize(length);
  if (length > 0) in.read(out->data(), static_cast<std::streamsize>(length));
  in.get();  // trailing '\n'
  return static_cast<bool>(in);
}

// --- container --------------------------------------------------------------

struct Section {
  std::string payload;
  bool crc_ok = false;
};

struct Container {
  std::map<std::string, Section> sections;
  bool complete = false;  ///< header parsed and `end` marker reached
  std::string error;      ///< structural problem, when !complete
};

void AppendSection(AtomicFileWriter& writer, const std::string& name,
                   const std::string& payload) {
  std::ostringstream header;
  header << "section " << name << ' ' << payload.size() << ' '
         << Crc32(payload) << '\n';
  (void)writer.Append(header.str()).ok();  // errors are sticky; Commit reports
  (void)writer.Append(payload).ok();
  (void)writer.Append("\n").ok();
}

/// Parses as much of the container as is structurally sound. Sections with a
/// failing CRC are kept (flagged) so the caller can report *what* is corrupt;
/// a truncated or garbled tail stops the parse with `complete == false`.
/// Shared by the full checkpoint and the delta sidecar — only the expected
/// header differs.
Container ParseContainer(const std::string& data, const char* magic_expected,
                         int version_expected) {
  Container out;
  size_t pos = 0;
  auto read_line = [&](std::string* line) {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) return false;
    *line = data.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };

  std::string line;
  {
    if (!read_line(&line)) {
      out.error = "missing header";
      return out;
    }
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != magic_expected) {
      out.error = std::string("not a ") + magic_expected + " document";
      return out;
    }
    if (version != version_expected) {
      out.error = std::string("unsupported ") + magic_expected + " version";
      return out;
    }
  }

  while (true) {
    if (!read_line(&line)) {
      out.error = "truncated before end marker";
      return out;
    }
    if (line == "end") {
      out.complete = true;
      return out;
    }
    std::istringstream header(line);
    std::string keyword, name;
    size_t length = 0;
    uint32_t crc = 0;
    if (!(header >> keyword >> name >> length >> crc) ||
        keyword != "section") {
      out.error = "garbled section header";
      return out;
    }
    if (pos + length >= data.size() || data[pos + length] != '\n') {
      out.error = "truncated section " + name;
      return out;
    }
    Section section;
    section.payload = data.substr(pos, length);
    section.crc_ok = Crc32(section.payload) == crc;
    pos += length + 1;
    out.sections.emplace(std::move(name), std::move(section));
  }
}

// --- clusterer section ------------------------------------------------------

std::string SerializeClusterer(const OnlineClusterer& clusterer) {
  std::ostringstream out;
  out.precision(17);  // doubles must round-trip exactly
  out << "clusterer-v1\n";
  out << "next_id " << clusterer.next_cluster_id() << " last_update "
      << clusterer.last_update_time() << " clusters "
      << clusterer.clusters().size() << '\n';
  for (const auto& [id, cluster] : clusterer.clusters()) {
    out << "cluster " << id << ' ' << cluster.volume << ' '
        << cluster.center.size() << ' ' << cluster.members.size() << '\n';
    for (size_t i = 0; i < cluster.center.size(); ++i) {
      if (i > 0) out << ' ';
      out << cluster.center[i];
    }
    out << '\n';
    bool first = true;
    for (TemplateId member : cluster.members) {
      if (!first) out << ' ';
      out << member;
      first = false;
    }
    out << '\n';
  }
  return out.str();
}

Status ParseClusterer(const std::string& payload, OnlineClusterer& clusterer) {
  std::istringstream in(payload);
  std::string tag;
  if (!(in >> tag) || tag != "clusterer-v1") {
    return Status::ParseError("bad clusterer section tag");
  }
  ClusterId next_id = 0;
  Timestamp last_update = 0;
  size_t count = 0;
  std::string kw_next, kw_last, kw_clusters;
  if (!(in >> kw_next >> next_id >> kw_last >> last_update >> kw_clusters >>
        count) ||
      kw_next != "next_id" || kw_last != "last_update" ||
      kw_clusters != "clusters") {
    return Status::ParseError("bad clusterer section header");
  }
  std::map<ClusterId, OnlineClusterer::Cluster> clusters;
  for (size_t i = 0; i < count; ++i) {
    std::string keyword;
    OnlineClusterer::Cluster cluster;
    size_t dim = 0, members = 0;
    if (!(in >> keyword >> cluster.id >> cluster.volume >> dim >> members) ||
        keyword != "cluster") {
      return Status::ParseError("bad cluster record");
    }
    cluster.center.resize(dim);
    for (size_t j = 0; j < dim; ++j) {
      if (!(in >> cluster.center[j])) {
        return Status::ParseError("truncated cluster center");
      }
    }
    for (size_t j = 0; j < members; ++j) {
      TemplateId member = 0;
      if (!(in >> member)) return Status::ParseError("truncated member list");
      cluster.members.insert(member);
    }
    ClusterId id = cluster.id;
    if (!clusters.emplace(id, std::move(cluster)).second) {
      return Status::ParseError("duplicate cluster id");
    }
  }
  return clusterer.RestoreState(std::move(clusters), next_id, last_update);
}

// --- controller section -----------------------------------------------------

struct ControllerState {
  bool has_maintenance = false;
  Timestamp last_maintenance = 0;
  std::vector<ClusterId> modeled;
};

Result<ControllerState> ParseController(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag, keyword;
  if (!(in >> tag) || tag != "controller-v1") {
    return Status::ParseError("bad controller section tag");
  }
  ControllerState state;
  int has = 0;
  if (!(in >> keyword >> has >> state.last_maintenance) ||
      keyword != "last_maintenance" || (has != 0 && has != 1)) {
    return Status::ParseError("bad controller maintenance record");
  }
  state.has_maintenance = has == 1;
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "modeled") {
    return Status::ParseError("bad controller modeled record");
  }
  for (size_t i = 0; i < count; ++i) {
    ClusterId id = 0;
    if (!(in >> id)) return Status::ParseError("truncated modeled list");
    state.modeled.push_back(id);
  }
  return state;
}

Timestamp MaxLastSeen(const PreProcessor& pre) {
  Timestamp latest = 0;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    if (info != nullptr) latest = std::max(latest, info->last_seen);
  }
  return latest;
}

// --- delta sidecar ----------------------------------------------------------

struct ParsedDelta {
  struct Shell {
    TemplateId id = 0;
    std::string fingerprint;
    std::string text;
    int type = 0;
    std::vector<std::string> tables;
    Timestamp first_seen = 0;
  };
  struct Arrival {
    TemplateId id = 0;
    Timestamp ts = 0;
    double count = 1.0;
  };
  uint32_t base_crc = 0;
  TemplateId base_next_id = 1;
  bool has_evict = false;
  Timestamp evict_cutoff = 0;
  std::vector<Shell> shells;
  std::vector<Arrival> arrivals;
};

/// A delta is small and rewritten whole every period, so unlike the full
/// checkpoint it has no degraded mode: any structural or CRC problem makes
/// the whole sidecar unusable and Restore falls back to the bare full
/// snapshot (old state), which is exactly the old-or-new contract.
Result<ParsedDelta> ParseDelta(const std::string& data) {
  Container container = ParseContainer(data, kDeltaMagic, kDeltaVersion);
  if (!container.complete) return Status::ParseError(container.error);
  auto section = [&container](const char* name) -> const std::string* {
    auto it = container.sections.find(name);
    if (it == container.sections.end() || !it->second.crc_ok) return nullptr;
    return &it->second.payload;
  };

  ParsedDelta out;
  const std::string* meta = section(kSectionDeltaMeta);
  if (meta == nullptr) {
    return Status::ParseError("delta-meta section missing or corrupt");
  }
  {
    std::istringstream in(*meta);
    std::string tag, kw_crc, kw_next, kw_evict;
    int has_evict = 0;
    if (!(in >> tag >> kw_crc >> out.base_crc >> kw_next >> out.base_next_id >>
          kw_evict >> has_evict >> out.evict_cutoff) ||
        tag != "delta-meta-v1" || kw_crc != "base_crc" ||
        kw_next != "base_next_id" || kw_evict != "evict" ||
        (has_evict != 0 && has_evict != 1)) {
      return Status::ParseError("bad delta-meta section");
    }
    out.has_evict = has_evict == 1;
  }

  const std::string* templates = section(kSectionDeltaTemplates);
  if (templates == nullptr) {
    return Status::ParseError("new-templates section missing or corrupt");
  }
  {
    std::istringstream in(*templates);
    std::string tag, kw_count;
    size_t count = 0;
    if (!(in >> tag >> kw_count >> count) || tag != "new-templates-v1" ||
        kw_count != "count") {
      return Status::ParseError("bad new-templates section header");
    }
    for (size_t i = 0; i < count; ++i) {
      ParsedDelta::Shell shell;
      std::string keyword, kw_tables;
      size_t tables = 0;
      if (!(in >> keyword >> shell.id >> shell.type >> shell.first_seen) ||
          keyword != "template" || !ReadString(in, &shell.fingerprint) ||
          !ReadString(in, &shell.text) || !(in >> kw_tables >> tables) ||
          kw_tables != "tables") {
        return Status::ParseError("bad template shell record");
      }
      in.get();  // '\n' after the table count
      shell.tables.resize(tables);
      for (size_t j = 0; j < tables; ++j) {
        if (!ReadString(in, &shell.tables[j])) {
          return Status::ParseError("truncated template table list");
        }
      }
      out.shells.push_back(std::move(shell));
    }
  }

  const std::string* arrivals = section(kSectionDeltaArrivals);
  if (arrivals == nullptr) {
    return Status::ParseError("arrivals section missing or corrupt");
  }
  {
    std::istringstream in(*arrivals);
    std::string tag, kw_count;
    size_t count = 0;
    if (!(in >> tag >> kw_count >> count) || tag != "arrivals-v1" ||
        kw_count != "count") {
      return Status::ParseError("bad arrivals section header");
    }
    out.arrivals.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      ParsedDelta::Arrival a;
      if (!(in >> a.id >> a.ts >> a.count)) {
        return Status::ParseError("truncated arrivals list");
      }
      out.arrivals.push_back(a);
    }
  }
  return out;
}

/// Replays a parsed delta onto a freshly restored preprocessor: template
/// shells first (identity only, zero totals), then every recorded arrival
/// through the same bookkeeping ingest uses, then the live process's last
/// eviction cutoff so replay does not resurrect templates it evicted.
void ApplyDelta(PreProcessor& pre, const ParsedDelta& delta,
                size_t sample_capacity, RestoreReport& report) {
  size_t dropped = 0;
  for (const auto& shell : delta.shells) {
    PreProcessor::TemplateInfo info(sample_capacity);
    info.id = shell.id;
    info.fingerprint = shell.fingerprint;
    info.text = shell.text;
    info.type = static_cast<sql::StatementType>(shell.type);
    info.tables = shell.tables;
    info.first_seen = shell.first_seen;
    info.last_seen = shell.first_seen;
    if (!pre.RestoreTemplate(std::move(info)).ok()) ++dropped;
  }
  for (const auto& a : delta.arrivals) {
    if (!pre.ReplayArrival(a.id, a.ts, a.count)) ++dropped;
  }
  if (delta.has_evict) (void)pre.EvictIdleTemplates(delta.evict_cutoff);
  if (dropped > 0) {
    report.detail +=
        std::to_string(dropped) + " delta record(s) unreplayable; skipped. ";
  }
}

}  // namespace

// --- QueryBot5000 entry points ----------------------------------------------

// Defined here rather than in qb5000.cc because it is half of the checkpoint
// format. QB_REQUIRES_SHARED(state_mu_) (declaration, qb5000.h): Checkpoint()
// already holds the shared lock when it serializes, and SharedMutex is not
// recursive, so this must read the guarded fields directly — the annotation
// makes an unlocked call a compile error instead of a latent deadlock.
std::string QueryBot5000::SerializeControllerLocked() const {
  std::ostringstream out;
  bool has_run =
      last_maintenance_ != std::numeric_limits<Timestamp>::min();
  out << "controller-v1\n";
  out << "last_maintenance " << (has_run ? 1 : 0) << ' '
      << (has_run ? last_maintenance_ : 0) << '\n';
  const auto& modeled = forecaster_->modeled_clusters();
  out << "modeled " << modeled.size();
  for (ClusterId id : modeled) out << ' ' << id;
  out << '\n';
  return out.str();
}

Status QueryBot5000::Checkpoint(const std::string& path, Env* env) const {
  ScopedTimer checkpoint_timer(
      metrics_->GetHistogram("core.checkpoint_seconds"));
  // Serialize the sections into memory under the shared state lock — a
  // consistent snapshot that other readers (Forecast) can overlap with —
  // then do the file I/O with the lock released so a slow disk never blocks
  // the pipeline.
  std::string pre_str, clusterer_str, controller_str, metrics_str;
  {
    Stopwatch lock_wait;
    ReaderLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    ScopedSpan span(tracer_.get(), "checkpoint/serialize");
    std::ostringstream pre_payload;
    pre_payload.precision(17);
    Status st = Snapshot::Save(pre_, pre_payload);
    if (!st.ok()) return st;
    pre_str = pre_payload.str();
    clusterer_str = SerializeClusterer(clusterer_);
    controller_str = SerializeControllerLocked();
    // Counters/gauges ride along in the checkpoint so totals survive a
    // restart (histograms describe the dead process; they do not).
    metrics_str = metrics_->SerializeState();
  }

  ScopedSpan io_span(tracer_.get(), "checkpoint/io");
  AtomicFileWriter writer(env, path);
  std::ostringstream header;
  header << kCheckpointMagic << ' ' << kCheckpointVersion << '\n';
  (void)writer.Append(header.str()).ok();  // sticky errors; Commit reports
  AppendSection(writer, kSectionPreprocessor, pre_str);
  AppendSection(writer, kSectionClusterer, clusterer_str);
  AppendSection(writer, kSectionController, controller_str);
  AppendSection(writer, kSectionMetrics, metrics_str);
  (void)writer.Append("end\n").ok();
  Status committed = writer.Commit();
  if (committed.ok()) {
    metrics_->GetCounter("checkpoint.writes_total")->Add();
    metrics_->GetCounter("checkpoint.bytes_written_total")
        ->Add(pre_str.size() + clusterer_str.size() + controller_str.size() +
              metrics_str.size());
  }
  return committed;
}

Result<QueryBot5000> QueryBot5000::RestoreFromData(
    const std::string& data, const Config& config, bool allow_degraded,
    RestoreReport& report, const std::vector<std::string>* deltas) {
  Container container =
      ParseContainer(data, kCheckpointMagic, kCheckpointVersion);
  if (!container.complete && !allow_degraded) {
    return Status::ParseError(container.error);
  }

  // The preprocessor section is the one piece that cannot be rebuilt from
  // anywhere else; without it the document is unusable at any strictness.
  auto pre_it = container.sections.find(kSectionPreprocessor);
  if (pre_it == container.sections.end()) {
    return Status::ParseError(container.error.empty()
                                  ? "missing preprocessor section"
                                  : container.error);
  }
  if (!pre_it->second.crc_ok) {
    return Status::ParseError("preprocessor section checksum mismatch");
  }

  QueryBot5000 bot(config);
  // The bot is local, but the restore ladder below writes straight into its
  // guarded fields; holding the writer lock keeps those accesses provable
  // by Thread Safety Analysis (and costs nothing — it is uncontended).
  // Released by scope exit on every return path, before the caller can
  // publish the bot to other threads.
  WriterLock state_lock(bot.state_mu_);
  size_t crc_failures = 0;
  for (const auto& [name, section] : container.sections) {
    (void)name;
    if (!section.crc_ok) ++crc_failures;
  }
  bot.metrics_->GetCounter("checkpoint.crc_failures_total")->Add(crc_failures);

  // Restore persisted counters/gauges first: the rebuild work below (gauge
  // refreshes, degraded re-clustering, retraining) then accumulates on top
  // of the restored totals. A bad metrics section is never fatal — the
  // pipeline state does not depend on its own statistics.
  auto metrics_it = container.sections.find(kSectionMetrics);
  if (metrics_it != container.sections.end() && metrics_it->second.crc_ok) {
    Status st = bot.metrics_->RestoreState(metrics_it->second.payload);
    if (!st.ok()) {
      report.detail += "metrics section unusable: " + st.ToString() + ". ";
    }
  } else if (metrics_it != container.sections.end()) {
    report.detail += "metrics section checksum mismatch; counters reset. ";
  }

  // Load into the bot's config copy so the restored PreProcessor writes to
  // the bot's registry, not to whatever the caller's Options pointed at.
  std::istringstream pre_stream(pre_it->second.payload);
  auto pre = Snapshot::Load(pre_stream, bot.config_.preprocessor);
  if (!pre.ok()) return pre.status();
  bot.pre_ = std::move(*pre);

  // Delta sidecar: replay the first candidate that parses *and* is bound
  // (by base CRC) to the exact document restored above. A sidecar bound to
  // some other base — stale after compaction, or paired with the file this
  // rung did not load — is silently the wrong delta, and skipping it is the
  // correct old-state outcome.
  if (deltas != nullptr && !deltas->empty()) {
    const uint32_t data_crc = Crc32(data);
    for (const std::string& candidate : *deltas) {
      auto parsed = ParseDelta(candidate);
      if (!parsed.ok()) {
        report.detail +=
            "delta sidecar unusable: " + parsed.status().ToString() + ". ";
        continue;
      }
      if (parsed->base_crc != data_crc) continue;
      ApplyDelta(bot.pre_, *parsed,
                 bot.config_.preprocessor.param_sample_capacity, report);
      report.delta_applied = true;
      break;
    }
  }

  // Clusterer section: restore, or (degraded) rebuild from the histories.
  bool clusterer_ok = false;
  std::string clusterer_error;
  auto clu_it = container.sections.find(kSectionClusterer);
  if (clu_it == container.sections.end()) {
    clusterer_error = "clusterer section missing";
  } else if (!clu_it->second.crc_ok) {
    clusterer_error = "clusterer section checksum mismatch";
  } else {
    Status st = ParseClusterer(clu_it->second.payload, bot.clusterer_);
    if (st.ok()) {
      clusterer_ok = true;
    } else {
      clusterer_error = st.ToString();
    }
  }
  if (!clusterer_ok && !allow_degraded) {
    return Status::ParseError(clusterer_error);
  }

  // Controller section: restore, or (degraded) fall back to defaults.
  ControllerState controller;
  bool controller_ok = false;
  std::string controller_error;
  auto ctl_it = container.sections.find(kSectionController);
  if (ctl_it == container.sections.end()) {
    controller_error = "controller section missing";
  } else if (!ctl_it->second.crc_ok) {
    controller_error = "controller section checksum mismatch";
  } else {
    auto parsed = ParseController(ctl_it->second.payload);
    if (parsed.ok()) {
      controller = std::move(*parsed);
      controller_ok = true;
    } else {
      controller_error = parsed.status().ToString();
    }
  }
  if (!controller_ok && !allow_degraded) {
    return Status::ParseError(controller_error);
  }

  if (controller_ok && controller.has_maintenance) {
    bot.last_maintenance_ = controller.last_maintenance;
  }
  if (!controller_ok) {
    report.controller_defaults = true;
    report.detail += controller_error + "; controller state reset. ";
  }

  // The reference time for rebuilding/retraining: the last maintenance run
  // if we know it, else the newest arrival in the restored histories.
  bool has_run = bot.last_maintenance_ != std::numeric_limits<Timestamp>::min();
  Timestamp now = has_run ? bot.last_maintenance_ : MaxLastSeen(bot.pre_);
  if (!clusterer_ok) {
    report.reclustered = true;
    report.detail += clusterer_error + "; re-clustered from histories. ";
    bot.clusterer_.Update(bot.pre_, now);
    controller.modeled = bot.ModeledClustersLocked();
  }

  // Forecasting models are never persisted: retrain them from the restored
  // histories (Table 4: seconds). An untrainable state (e.g. too little
  // history) is not a restore failure — Forecast() stays unavailable until
  // the next successful RunMaintenance(), exactly as on a cold start.
  if (!controller.modeled.empty()) {
    Forecaster staged = *bot.forecaster_;
    Status trained = staged.Train(bot.pre_, bot.clusterer_,
                                  controller.modeled, now, config.horizons);
    bot.PublishModelsLocked(std::move(staged));
    if (trained.ok()) {
      report.forecaster_trained = true;
    } else {
      report.detail += "forecaster retrain failed: " + trained.ToString() +
                       "; models unavailable until next maintenance. ";
    }
  }
  return bot;
}

Result<QueryBot5000> QueryBot5000::Restore(const std::string& path,
                                           Config config, Env* env,
                                           RestoreReport* report) {
  RestoreReport local;
  RestoreReport& rep = report != nullptr ? *report : local;
  rep = RestoreReport();
  if (env == nullptr) env = Env::Default();

  // Stamps the surviving bot with which ladder rung recovered it (1-4) and
  // how long the whole ladder took. Discarded attempts leave no trace: their
  // registries die with their bots.
  Stopwatch restore_timer;
  auto finish = [&restore_timer](QueryBot5000& bot, int rung) {
    bot.metrics_->GetCounter("checkpoint.restores_total")->Add();
    bot.metrics_->GetGauge("checkpoint.recovery_rung")
        ->Set(static_cast<double>(rung));
    bot.metrics_->GetHistogram("core.restore_seconds")
        ->Observe(restore_timer.ElapsedSeconds());
  };

  // Recovery ladder: (1) primary, fully intact; (2) backup, fully intact;
  // (3) primary, salvaging what validates; (4) backup, same. A complete
  // older checkpoint beats a degraded newer one — degradation loses the
  // clusterer's id stability, a complete .bak loses at most one period.
  const std::string backup = AtomicFileWriter::BackupPath(path);
  auto primary = ReadFileToString(env, path);
  Status first_error =
      primary.ok() ? Status::Ok() : primary.status();

  // Delta sidecar candidates, newest first (the sidecar's own `.bak` covers
  // a crash mid-rewrite). Every rung gets both: the base-CRC binding inside
  // RestoreFromData decides which — if either — applies to that rung's
  // document, so a delta bound to the primary is never replayed onto the
  // backup.
  const std::string delta_path = DeltaPath(path);
  std::vector<std::string> deltas;
  if (auto d = ReadFileToString(env, delta_path); d.ok()) {
    deltas.push_back(std::move(*d));
  }
  if (auto d = ReadFileToString(env, AtomicFileWriter::BackupPath(delta_path));
      d.ok()) {
    deltas.push_back(std::move(*d));
  }

  if (primary.ok()) {
    rep = RestoreReport();
    auto bot = RestoreFromData(*primary, config, /*allow_degraded=*/false, rep,
                               &deltas);
    if (bot.ok()) {
      finish(*bot, 1);
      return bot;
    }
    first_error = bot.status();
  }

  auto fallback = ReadFileToString(env, backup);
  if (fallback.ok()) {
    rep = RestoreReport();
    auto bot = RestoreFromData(*fallback, config, /*allow_degraded=*/false, rep,
                               &deltas);
    if (bot.ok()) {
      rep.used_backup = true;
      finish(*bot, 2);
      return bot;
    }
  }

  if (primary.ok()) {
    rep = RestoreReport();
    auto bot = RestoreFromData(*primary, config, /*allow_degraded=*/true, rep,
                               &deltas);
    if (bot.ok()) {
      finish(*bot, 3);
      return bot;
    }
  }
  if (fallback.ok()) {
    rep = RestoreReport();
    auto bot = RestoreFromData(*fallback, config, /*allow_degraded=*/true, rep,
                               &deltas);
    if (bot.ok()) {
      rep.used_backup = true;
      finish(*bot, 4);
      return bot;
    }
  }
  return Status(first_error.code(),
                "checkpoint unrecoverable (" + path + "): " +
                    first_error.message());
}

// --- service-mode incremental checkpointing ---------------------------------

// Defined here with the rest of the checkpoint format. Both run on the
// service consumer (the background thread or a DrainForTest caller), which
// by the ServiceThread contract is the only thread touching service_'s
// consumer-side fields — so the delta log needs no lock of its own.

Status QueryBot5000::WriteDeltaCheckpoint() {
  ServiceState& svc = *service_;
  ScopedSpan span(tracer_.get(), "checkpoint/delta");
  ChaosHarness::Global().MaybeStall("checkpoint.delta");
  if (ChaosHarness::Global().FailAlloc("checkpoint.delta")) {
    metrics_->GetCounter("checkpoint.delta_failures_total")->Add();
    return Status::Internal("chaos: delta serialization buffer denied");
  }

  std::ostringstream meta;
  meta.precision(17);
  bool has_evict =
      svc.delta.evict_cutoff != std::numeric_limits<Timestamp>::min();
  meta << "delta-meta-v1\n";
  meta << "base_crc " << svc.delta.base_crc << '\n';
  meta << "base_next_id " << svc.delta.base_next_id << '\n';
  meta << "evict " << (has_evict ? 1 : 0) << ' '
       << (has_evict ? svc.delta.evict_cutoff : 0) << '\n';

  // Shells for templates born after the full snapshot. The shared lock is
  // brief — identity fields only; histories/totals are rebuilt on restore
  // by replaying the arrival triples below.
  std::ostringstream tpl;
  tpl.precision(17);
  {
    Stopwatch lock_wait;
    ReaderLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    std::vector<const PreProcessor::TemplateInfo*> fresh;
    for (TemplateId id : pre_.TemplateIds()) {
      if (id < svc.delta.base_next_id) continue;
      const auto* info = pre_.GetTemplate(id);
      if (info != nullptr) fresh.push_back(info);
    }
    tpl << "new-templates-v1\ncount " << fresh.size() << '\n';
    for (const auto* info : fresh) {
      tpl << "template " << info->id << ' ' << static_cast<int>(info->type)
          << ' ' << info->first_seen << '\n';
      WriteString(tpl, info->fingerprint);
      WriteString(tpl, info->text);
      tpl << "tables " << info->tables.size() << '\n';
      for (const std::string& table : info->tables) WriteString(tpl, table);
    }
  }

  std::ostringstream arr;
  arr.precision(17);
  arr << "arrivals-v1\ncount " << svc.delta.arrivals.size() << '\n';
  for (const auto& a : svc.delta.arrivals) {
    arr << a.id << ' ' << a.ts << ' ' << a.count << '\n';
  }

  Env* env = svc.options.env != nullptr ? svc.options.env : Env::Default();
  AtomicFileWriter writer(env, DeltaPath(svc.options.checkpoint_path));
  std::ostringstream header;
  header << kDeltaMagic << ' ' << kDeltaVersion << '\n';
  (void)writer.Append(header.str()).ok();  // sticky errors; Commit reports
  AppendSection(writer, kSectionDeltaMeta, meta.str());
  AppendSection(writer, kSectionDeltaTemplates, tpl.str());
  AppendSection(writer, kSectionDeltaArrivals, arr.str());
  (void)writer.Append("end\n").ok();
  Status committed = writer.Commit();
  if (committed.ok()) {
    metrics_->GetCounter("checkpoint.delta_writes_total")->Add();
    svc.dirty = false;
    ++svc.deltas_since_full;
  } else {
    metrics_->GetCounter("checkpoint.delta_failures_total")->Add();
  }
  return committed;
}

Status QueryBot5000::ServiceFullCheckpoint() {
  ServiceState& svc = *service_;
  Env* env = svc.options.env != nullptr ? svc.options.env : Env::Default();
  Status st = Checkpoint(svc.options.checkpoint_path, env);
  if (!st.ok()) return st;

  // The delta binds to the exact bytes on disk, so rebase from the file
  // just committed rather than trusting an in-memory re-serialization to
  // be byte-identical.
  auto data = ReadFileToString(env, svc.options.checkpoint_path);
  if (!data.ok()) return data.status();
  svc.delta = DeltaLog();
  svc.delta.base_crc = Crc32(*data);
  {
    Stopwatch lock_wait;
    ReaderLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    svc.delta.base_next_id = pre_.next_template_id();
  }
  svc.delta.base_valid = true;
  svc.deltas_since_full = 0;
  svc.dirty = false;

  // A leftover sidecar is bound to the *previous* base — the CRC check
  // would reject it anyway, but deleting it keeps a post-compaction restore
  // on rung 1 with no detail noise.
  const std::string delta_path = DeltaPath(svc.options.checkpoint_path);
  (void)env->DeleteFile(delta_path);
  (void)env->DeleteFile(AtomicFileWriter::BackupPath(delta_path));
  return Status::Ok();
}

}  // namespace qb5000

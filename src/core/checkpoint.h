#pragma once

#include <string>

namespace qb5000 {

/// Checkpoint container format v2 (written by QueryBot5000::Checkpoint,
/// core/checkpoint.cc):
///
///   qb5000-checkpoint 2\n
///   section <name> <byte-length> <crc32>\n
///   <payload bytes>\n
///   ... more sections ...
///   end\n
///
/// Sections in write order: `preprocessor` (the Snapshot v1 stream for the
/// Pre-Processor's templates/histories/samples), `clusterer` (centers,
/// assignments, volumes, id counter), `controller` (maintenance state and
/// modeled clusters), `metrics` (the registry's counters and gauges, so
/// lifetime totals survive a restart; histograms are not persisted, and a
/// corrupt metrics section degrades to reset counters instead of failing
/// the restore). Each payload carries its own CRC32 so corruption is
/// detected per section; unknown section names are skipped on read for
/// forward compatibility.
inline constexpr char kCheckpointMagic[] = "qb5000-checkpoint";
inline constexpr int kCheckpointVersion = 2;

/// What QueryBot5000::Restore() had to do to come back up. All-false plus
/// `forecaster_trained` means a clean, full restore.
struct RestoreReport {
  /// The primary file was missing or unusable; `path.bak` was loaded.
  bool used_backup = false;
  /// The clusterer section was corrupt or missing: the preprocessor was
  /// restored and the clusterer rebuilt by re-clustering the histories.
  bool reclustered = false;
  /// The controller section was corrupt or missing: maintenance state was
  /// reset to defaults (next RunMaintenance() call will be due).
  bool controller_defaults = false;
  /// Forecasting models were retrained from the restored history.
  bool forecaster_trained = false;
  /// Human-readable notes on every degradation step taken.
  std::string detail;
};

}  // namespace qb5000

#pragma once

#include <string>

namespace qb5000 {

/// Checkpoint container format v2 (written by QueryBot5000::Checkpoint,
/// core/checkpoint.cc):
///
///   qb5000-checkpoint 2\n
///   section <name> <byte-length> <crc32>\n
///   <payload bytes>\n
///   ... more sections ...
///   end\n
///
/// Sections in write order: `preprocessor` (the Snapshot v1 stream for the
/// Pre-Processor's templates/histories/samples), `clusterer` (centers,
/// assignments, volumes, id counter), `controller` (maintenance state and
/// modeled clusters), `metrics` (the registry's counters and gauges, so
/// lifetime totals survive a restart; histograms are not persisted, and a
/// corrupt metrics section degrades to reset counters instead of failing
/// the restore). Each payload carries its own CRC32 so corruption is
/// detected per section; unknown section names are skipped on read for
/// forward compatibility.
inline constexpr char kCheckpointMagic[] = "qb5000-checkpoint";
inline constexpr int kCheckpointVersion = 2;

/// Incremental delta sidecar, `<checkpoint-path>.delta` (written by the
/// always-on service between full checkpoints, core/checkpoint.cc). Same
/// section container as the full checkpoint but with its own magic:
///
///   qb5000-delta 1\n
///   section delta-meta <len> <crc32>\n       base_crc / base_next_id / evict
///   section new-templates <len> <crc32>\n    shells for ids >= base_next_id
///   section arrivals <len> <crc32>\n         (id, ts, count) triples
///   end\n
///
/// `delta-meta` binds the sidecar to one exact full-checkpoint file by the
/// CRC32 of that file's committed bytes; Restore() replays a delta only
/// when the binding matches the document it actually loaded, so a crash
/// anywhere in the write/compact cycle degrades to old-or-new state, never
/// to a delta applied onto the wrong base. New-template shells carry
/// identity only (fingerprint, text, type, tables, first_seen); totals and
/// histories are rebuilt by replaying the arrival triples, and parameter
/// samples from the delta window are deliberately not persisted.
inline constexpr char kDeltaMagic[] = "qb5000-delta";
inline constexpr int kDeltaVersion = 1;

/// What QueryBot5000::Restore() had to do to come back up. All-false plus
/// `forecaster_trained` means a clean, full restore.
struct RestoreReport {
  /// The primary file was missing or unusable; `path.bak` was loaded.
  bool used_backup = false;
  /// The clusterer section was corrupt or missing: the preprocessor was
  /// restored and the clusterer rebuilt by re-clustering the histories.
  bool reclustered = false;
  /// The controller section was corrupt or missing: maintenance state was
  /// reset to defaults (next RunMaintenance() call will be due).
  bool controller_defaults = false;
  /// Forecasting models were retrained from the restored history.
  bool forecaster_trained = false;
  /// A delta sidecar bound to the restored full checkpoint was replayed on
  /// top of it (new-template shells, arrival deltas, eviction cutoff).
  bool delta_applied = false;
  /// Human-readable notes on every degradation step taken.
  std::string detail;
};

}  // namespace qb5000

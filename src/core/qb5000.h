#pragma once

#include <limits>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/status.h"
#include "forecaster/forecaster.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// The QueryBot 5000 controller (Figure 2): wires the Pre-Processor,
/// Clusterer, and Forecaster into the pipeline a self-driving DBMS consumes.
///
/// Usage:
///   QueryBot5000 bot(config);
///   bot.Ingest(sql, now);              // continuously, per query
///   bot.RunMaintenance(now);           // periodically (e.g. daily)
///   auto f = bot.Forecast(now, kSecondsPerHour);  // per-cluster rates
class QueryBot5000 {
 public:
  struct Config {
    PreProcessor::Options preprocessor;
    OnlineClusterer::Options clusterer;
    Forecaster::Options forecaster;
    /// Model the top clusters covering this fraction of workload volume...
    double coverage_target = 0.95;
    /// ...but never more than this many (Section 7.2 models 3-5 clusters).
    size_t max_modeled_clusters = 5;
    /// Horizons to maintain models for, in seconds.
    std::vector<int64_t> horizons = {kSecondsPerHour, 12 * kSecondsPerHour,
                                     kSecondsPerDay};
    /// How often RunMaintenance() re-clusters and re-trains, unless the
    /// new-template trigger fires earlier.
    int64_t maintenance_period_seconds = kSecondsPerDay;
    /// Templates idle longer than this are evicted (Section 5.2).
    int64_t template_eviction_seconds = 30 * kSecondsPerDay;
  };

  QueryBot5000() : QueryBot5000(Config()) {}
  explicit QueryBot5000(Config config);

  /// Ingests one query arriving at `ts`.
  Status Ingest(const std::string& sql, Timestamp ts, double count = 1.0);

  /// Ingests an already-templatized arrival (bulk/generator path).
  void IngestTemplatized(const TemplatizeOutput& templatized, Timestamp ts,
                         double count = 1.0);

  /// Re-clusters and re-trains if the maintenance period elapsed or the
  /// workload-shift trigger fired. Call as often as you like; cheap when
  /// nothing is due. `force` bypasses the period check.
  Status RunMaintenance(Timestamp now, bool force = false);

  /// A workload forecast: expected queries per forecasting interval for
  /// each modeled cluster, `horizon_seconds` from `now`.
  struct WorkloadForecast {
    std::vector<ClusterId> clusters;
    Vector queries_per_interval;  ///< parallel to `clusters`
    int64_t interval_seconds = 0;
  };
  Result<WorkloadForecast> Forecast(Timestamp now, int64_t horizon_seconds) const;

  /// The clusters currently modeled (top by volume under coverage_target).
  std::vector<ClusterId> ModeledClusters() const;

  const PreProcessor& preprocessor() const { return pre_; }
  /// Mutable access for bulk feeders (e.g. SyntheticWorkload::FeedAggregated).
  PreProcessor& mutable_preprocessor() { return pre_; }
  const OnlineClusterer& clusterer() const { return clusterer_; }
  const Forecaster& forecaster() const { return forecaster_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  PreProcessor pre_;
  OnlineClusterer clusterer_;
  Forecaster forecaster_;
  Timestamp last_maintenance_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace qb5000

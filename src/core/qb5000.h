#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/mpsc_queue.h"
#include "common/mutex.h"
#include "common/service.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/tracing.h"
#include "forecaster/forecaster.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

class Env;
struct RestoreReport;

/// The QueryBot 5000 controller (Figure 2): wires the Pre-Processor,
/// Clusterer, and Forecaster into the pipeline a self-driving DBMS consumes.
///
/// Usage:
///   QueryBot5000 bot(config);
///   bot.Ingest(sql, now);              // continuously, per query
///   bot.RunMaintenance(now);           // periodically (e.g. daily)
///   auto f = bot.Forecast(now, kSecondsPerHour);  // per-cluster rates
///
/// Thread safety (DESIGN.md §9): mutators (Ingest, IngestTemplatized,
/// RunMaintenance) take the state lock exclusively; readers (Forecast,
/// ModeledClusters, Checkpoint) take it shared, so forecasting and
/// checkpointing proceed concurrently with each other but never against a
/// mutation. The unlocked accessors (preprocessor(), mutable_preprocessor(),
/// ...) are for single-threaded setup and inspection only.
class QueryBot5000 {
 public:
  struct Config {
    PreProcessor::Options preprocessor;
    OnlineClusterer::Options clusterer;
    Forecaster::Options forecaster;
    /// Model the top clusters covering this fraction of workload volume...
    double coverage_target = 0.95;
    /// ...but never more than this many (Section 7.2 models 3-5 clusters).
    size_t max_modeled_clusters = 5;
    /// Horizons to maintain models for, in seconds.
    std::vector<int64_t> horizons = {kSecondsPerHour, 12 * kSecondsPerHour,
                                     kSecondsPerDay};
    /// How often RunMaintenance() re-clusters and re-trains, unless the
    /// new-template trigger fires earlier.
    int64_t maintenance_period_seconds = kSecondsPerDay;
    /// Templates idle longer than this are evicted (Section 5.2).
    int64_t template_eviction_seconds = 30 * kSecondsPerDay;
    /// Forward clock steps are tolerated up to maintenance_period plus this
    /// slack; a larger apparent gap between maintenance passes (an NTP
    /// step, a resumed VM) is treated as a clock jump and the housekeeping
    /// anchors (template eviction, history compaction) advance by only the
    /// tolerated amount, so a stepped clock cannot mass-evict live
    /// templates or compact fresh history (DESIGN.md §13).
    int64_t max_clock_step_seconds = kSecondsPerDay;
    /// Admission gate (DESIGN.md §13): Ingest/IngestBatch arrivals in
    /// flight may not exceed this backlog; excess arrivals are shed with
    /// kOverloaded (counted in core.sheds_total) for the caller to retry
    /// with backoff (common/retry.h). Generous by default — the gate
    /// exists to bound memory and lock convoys under ingest storms, not to
    /// police steady-state traffic. 0 turns the gate off (unbounded).
    size_t max_pending_arrivals = size_t{1} << 20;
  };

  QueryBot5000() : QueryBot5000(Config()) {}
  explicit QueryBot5000(Config config);
  /// Stops a running service (see StartService) before tearing down state.
  ~QueryBot5000();
  /// Movable while quiescent only: the service round captures `this`, so a
  /// controller must never be moved between StartService and StopService.
  QueryBot5000(QueryBot5000&&) = default;
  QueryBot5000& operator=(QueryBot5000&&) = default;

  /// Always-on service mode (DESIGN.md §14). StartService turns this
  /// controller into the paper's embedded deployment shape: producers hand
  /// arrivals to EnqueueBatch, which copies them into a bounded lock-free
  /// ring and returns without ever touching the state lock; a dedicated
  /// background thread drains the ring, merges templates, runs maintenance
  /// when it falls due against the *arrival* clock (timestamps are virtual),
  /// trains on a staged model copy under a shared lock so Forecast stays
  /// concurrent, and publishes the result by pointer swap (model_epoch()
  /// counts publications). With a checkpoint path configured it also keeps
  /// durability incremental: arrival deltas accrue into `path + ".delta"`
  /// between periodic full-snapshot compactions, so neither training nor
  /// checkpointing ever stalls the producers.
  struct ServiceOptions {
    /// Ring capacity in enqueued chunks (one EnqueueBatch call = one
    /// chunk), rounded up to a power of two. A full ring makes EnqueueBatch
    /// return kOverloaded — the queue *is* the service-mode admission gate.
    size_t queue_capacity = 256;
    /// False runs no thread: work queues up until DrainForTest() applies it
    /// inline on the caller. That is the deterministic mode tests use for
    /// exact-count metric assertions; production wants the default.
    bool background = true;
    /// False leaves maintenance caller-driven (RunMaintenance), making the
    /// service a pure buffered-ingest layer — what the sync-equivalence
    /// tests compare, and what deployments owning their own maintenance
    /// schedule want. True runs maintenance from the drain loop whenever
    /// it falls due against the arrival clock; a failed pass is retried
    /// only after new work arrives, so an untrainable workload can never
    /// busy-loop the service thread.
    bool auto_maintenance = true;
    /// Incremental checkpointing (empty path disables it): the service
    /// rewrites `checkpoint_path + ".delta"` atomically once per
    /// `checkpoint_period_seconds` of virtual (arrival-clock) time, and
    /// compacts into a fresh full checkpoint every `compact_every`-th
    /// write. Restore() picks the delta up automatically.
    std::string checkpoint_path;
    int64_t checkpoint_period_seconds = 0;
    size_t compact_every = 16;
    /// Sharded drain width (DESIGN.md §14): number of DrainPool workers
    /// that run the off-lock prepare phases (normalize, hash-stripe
    /// sharding, speculative parse) of claimed chunks in parallel. 0 (the
    /// default) keeps the classic inline drain — the consumer prepares and
    /// merges each chunk itself. N >= 1 starts N workers at StartService;
    /// the consumer claims a bounded run of chunks from the ring, hands
    /// their preparation to the pool, and merges strictly in queue (pop)
    /// order — so template ids, histories, and exact counters stay
    /// bit-identical to the inline drain (and to synchronous ingest) at any
    /// width. Exported as the core.drain_workers gauge.
    size_t drain_workers = 0;
    Env* env = nullptr;  ///< filesystem seam; nullptr = Env::Default()
  };

  /// Starts service mode. Fails if the service is already running. Not
  /// thread-safe against other lifecycle calls or producers.
  Status StartService(ServiceOptions options);

  /// Drains the queue, stops the background thread (if any), flushes a
  /// final delta/full checkpoint when checkpointing is configured, and
  /// returns the controller to synchronous mode. Producers must have
  /// quiesced first (shutdown ordering, DESIGN.md §14). Returns the flush
  /// status; the service is torn down either way.
  Status StopService();

  /// Producer-side ingest for service mode: copies the arrivals (SQL bytes
  /// included) into one owned chunk and enqueues it. Lock-free: never takes
  /// state_mu_, never blocks on maintenance. kOverloaded (counted in
  /// core.queue_enqueue_stalls_total) means the ring is full — true
  /// backpressure, retryable with backoff. kFailedPrecondition when the
  /// service is not running.
  Status EnqueueBatch(std::span<const QueryArrival> arrivals);

  /// Blocks until everything enqueued before this call has been applied and
  /// the service is idle. In background mode this waits on the service
  /// thread; in manual mode (background=false) it runs the drain inline.
  void DrainForTest();

  bool service_running() const { return service_ != nullptr; }

  /// Number of model publications (epoch-style pointer swaps) so far; also
  /// exported as the core.model_epoch gauge. Starts at 0; each maintenance
  /// pass that reaches training bumps it exactly once.
  uint64_t model_epoch() const {
    return resilience_->model_epoch.load(std::memory_order_acquire);
  }

  /// Ingests one query arriving at `ts`. Returns kOverloaded (without
  /// touching any state) when the admission gate's backlog bound is hit;
  /// that failure is retryable — see common/retry.h.
  Status Ingest(std::string_view sql, Timestamp ts, double count = 1.0);
  Status Ingest(const std::string& sql,  // lint:string-ref-ok
                Timestamp ts, double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }
  Status Ingest(const char* sql, Timestamp ts, double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }

  /// Batched, sharded ingest (DESIGN.md §11): normalize/parse phases run on
  /// the thread pool outside the state lock; the merge holds it exclusively
  /// once per batch instead of once per query. Returns the TemplateId per
  /// arrival (0 = rejected, counted in preprocessor.parse_failures_total).
  /// Bit-identical ids/histories/counters to per-query Ingest at any thread
  /// count for integer-valued counts. The whole batch is admitted or shed
  /// as a unit: kOverloaded (retryable, core.sheds_total) means no arrival
  /// in it was ingested.
  Result<std::vector<TemplateId>> IngestBatch(
      std::span<const QueryArrival> arrivals);

  /// Ingests an already-templatized arrival (bulk/generator path). Not
  /// admission-gated: generators feed synthetic volume deliberately and own
  /// their own pacing.
  void IngestTemplatized(const TemplatizeOutput& templatized, Timestamp ts,
                         double count = 1.0);

  /// Re-clusters and re-trains if the maintenance period elapsed or the
  /// workload-shift trigger fired. Call as often as you like; cheap when
  /// nothing is due. `force` bypasses the period check.
  ///
  /// Safe to drive directly while a service runs, incremental checkpointing
  /// included: the eviction cutoff a direct pass applies is published to
  /// the service consumer (a monotonic-max handoff), folded into the delta
  /// log before its next write, and replayed on restore — so a restore can
  /// never resurrect templates a caller-driven pass evicted. The usual
  /// lifecycle contract still applies: don't race this against
  /// StartService/StopService themselves.
  Status RunMaintenance(Timestamp now, bool force = false);

  /// A workload forecast: expected queries per forecasting interval for
  /// each modeled cluster, `horizon_seconds` from `now`.
  struct WorkloadForecast {
    std::vector<ClusterId> clusters;
    Vector queries_per_interval;  ///< parallel to `clusters`
    int64_t interval_seconds = 0;
  };
  Result<WorkloadForecast> Forecast(Timestamp now, int64_t horizon_seconds) const;

  /// Deadline-bounded forecast (DESIGN.md §13): spends at most
  /// `budget_seconds` of wall time, degrading down the ladder instead of
  /// blocking — full model stack, then linear-only once the budget is
  /// nearly spent, then the precomputed history-average snapshot when even
  /// the state lock cannot be had in time (e.g. maintenance is mid-train
  /// or wedged). Per-rung accounting in core.forecast_rung_*_total;
  /// `rung_used` (optional) reports the serving rung. A non-positive
  /// budget is unbounded (identical to the overload above).
  Result<WorkloadForecast> Forecast(Timestamp now, int64_t horizon_seconds,
                                    double budget_seconds,
                                    ForecastRung* rung_used = nullptr) const;

  /// The clusters currently modeled (top by volume under coverage_target).
  std::vector<ClusterId> ModeledClusters() const;

  /// Writes a crash-safe checkpoint of the whole pipeline (format v2,
  /// core/checkpoint.cc): the Pre-Processor's templates and histories, the
  /// Clusterer's centers/assignments/volumes, and the controller's
  /// maintenance state, each section CRC32-protected, committed with an
  /// atomic write-temp/fsync/rename so the previous checkpoint survives a
  /// crash at any point. Forecaster models are not persisted — Restore()
  /// retrains them from history (Table 4: cheap). `env == nullptr` means
  /// Env::Default(); tests pass a FaultInjectingEnv.
  Status Checkpoint(const std::string& path, Env* env = nullptr) const;

  /// Restores a pipeline from Checkpoint() output. Recovery ladder:
  /// `path` first, then `path.bak` (the rotated last-good checkpoint); a
  /// corrupt clusterer/controller section degrades to re-clustering from
  /// restored histories rather than failing the restore, and the forecaster
  /// is retrained from the restored state. `report` (optional) describes
  /// any degradation taken.
  static Result<QueryBot5000> Restore(const std::string& path, Config config,
                                      Env* env = nullptr,
                                      RestoreReport* report = nullptr);

  /// When maintenance last ran; meaningful only if maintenance_has_run().
  /// Unlocked by design (single-threaded setup/inspection only, like the
  /// component accessors below); concurrent callers must hold state_mu_
  /// through a public reader instead.
  Timestamp last_maintenance() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return last_maintenance_;
  }
  bool maintenance_has_run() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return last_maintenance_ != std::numeric_limits<Timestamp>::min();
  }

  // Component accessors. Deliberately unlocked — they hand out references
  // into guarded state for single-threaded setup and test inspection, so
  // they opt out of the analysis rather than pretend to a capability the
  // caller cannot name. Do not call them concurrently with mutators.
  const PreProcessor& preprocessor() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return pre_;
  }
  /// Mutable access for bulk feeders (e.g. SyntheticWorkload::FeedAggregated).
  PreProcessor& mutable_preprocessor() QB_NO_THREAD_SAFETY_ANALYSIS {
    return pre_;
  }
  const OnlineClusterer& clusterer() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return clusterer_;
  }
  const Forecaster& forecaster() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return *forecaster_;
  }
  const Config& config() const { return config_; }

  /// This instance's metrics registry. Every pipeline component writes here
  /// (the constructor overrides any registry set in the component Options).
  /// Thread-safe: export concurrently with ingest/maintenance. DESIGN.md §10.
  MetricsRegistry& Metrics() const { return *metrics_; }
  /// This instance's tracer; records spans for the cold paths only
  /// (maintenance, forecast, checkpoint, restore — never per-query Ingest).
  Tracer& Trace() const { return *tracer_; }

 private:
  struct ArrivalChunk;
  struct ServiceState;

  /// Parses one checkpoint document (core/checkpoint.cc). `allow_degraded`
  /// permits recovering with a rebuilt clusterer / default controller state
  /// when those sections are unusable; a strict pass requires every section
  /// intact so the ladder can prefer a complete `.bak` over a salvage.
  /// `deltas` (optional): delta-sidecar candidates in preference order; the
  /// first one that parses and whose base CRC matches `data` is replayed.
  static Result<QueryBot5000> RestoreFromData(
      const std::string& data, const Config& config, bool allow_degraded,
      RestoreReport& report, const std::vector<std::string>* deltas = nullptr);

  /// ModeledClusters body for callers already holding state_mu_
  /// (RunMaintenance holds it exclusively; SharedMutex is not recursive).
  /// The annotation is what lets Thread Safety Analysis prove the
  /// public/`...Locked()` split: the public reader acquires and delegates,
  /// and any unlocked call of the helper is a compile error under Clang.
  std::vector<ClusterId> ModeledClustersLocked() const
      QB_REQUIRES_SHARED(state_mu_);

  /// Controller checkpoint section (core/checkpoint.cc). A `...Locked()`
  /// member rather than a free function so Checkpoint() can serialize under
  /// the shared lock it already holds without a recursive acquisition.
  std::string SerializeControllerLocked() const QB_REQUIRES_SHARED(state_mu_);

  /// Shared Forecast body for the bounded and unbounded entry points;
  /// callers hold state_mu_ (shared suffices). Increments the full/linear
  /// rung counters; the fallback rung is the callers' business (it runs
  /// precisely when this body cannot).
  Result<WorkloadForecast> ForecastLocked(Timestamp now,
                                          int64_t horizon_seconds,
                                          const Deadline* deadline,
                                          ForecastRung* rung_used) const
      QB_REQUIRES_SHARED(state_mu_);

  /// Serves the degradation ladder's last rung from the published
  /// history-average snapshot. Never touches state_mu_ — this is what
  /// keeps bounded Forecasts answerable while maintenance holds the state
  /// lock for seconds at a time.
  Result<WorkloadForecast> FallbackForecast() const;

  /// Recomputes and publishes the fallback snapshot for `clusters`.
  /// RunMaintenance calls it after cluster selection but *before*
  /// training, so even a training round that stalls or fails leaves a
  /// fresh snapshot behind.
  void RefreshFallbackLocked(const std::vector<ClusterId>& clusters,
                             Timestamp now) QB_REQUIRES_SHARED(state_mu_);

  /// Admission gate: reserves backlog for `n` arrivals. False = shed (the
  /// caller returns kOverloaded and counts core.sheds_total).
  bool AdmitArrivals(size_t n);
  void ReleaseArrivals(size_t n);

  /// Maintenance phase A: backwards clock re-anchor plus the due/trigger
  /// check. False ⇒ not due (skip counter bumped); true ⇒ the pass runs
  /// (runs counter bumped).
  bool MaintenanceDueLocked(Timestamp now, bool force) QB_REQUIRES(state_mu_);

  /// Maintenance phases B–D: forward-clamped housekeeping (eviction,
  /// compaction), re-clustering, cluster selection + coverage gauges, and
  /// the fallback-snapshot refresh. Returns the clusters to model; empty ⇒
  /// nothing to model yet (last_maintenance_ already advanced). The
  /// eviction cutoff used is reported through `evict_cutoff` (if non-null)
  /// so the service's delta checkpoint can replay it on restore.
  std::vector<ClusterId> MaintenanceHousekeepLocked(
      Timestamp now, Timestamp* evict_cutoff) QB_REQUIRES(state_mu_);

  /// Maintenance phase F: swaps the staged (freshly trained or rolled-back)
  /// model snapshot in as the published one and bumps the model epoch.
  void PublishModelsLocked(Forecaster&& staged) QB_REQUIRES(state_mu_);

  /// One unit of service work: drain the ring, then maintenance if due
  /// against the arrival clock, then a delta/full checkpoint if due. True ⇒
  /// something was done. Runs on the service thread (background mode) or
  /// the DrainForTest caller (manual mode) — never both.
  bool ServiceRound();

  /// Applies one dequeued chunk through the batched-ingest merge path and
  /// accrues the returned template ids into the delta log.
  void ApplyChunk(const ArrivalChunk& chunk);

  /// Rebuilds the borrowed QueryArrival views over a chunk's owned bytes.
  static std::vector<QueryArrival> ChunkViews(const ArrivalChunk& chunk);

  /// Consumer-side bookkeeping shared by the inline and sharded drains:
  /// highwater advance, delta-log accrual, dirty/chunks_applied.
  void RecordChunkApplied(const ArrivalChunk& chunk,
                          const std::vector<TemplateId>& ids);

  /// Sharded drain (DESIGN.md §14): repeatedly claims a bounded run of
  /// chunks — the retry stash first, then ring pops — preps them on the
  /// DrainPool, and merges in claim order. True ⇒ at least one run was
  /// claimed.
  bool DrainSharded();

  /// Preps and merges one claimed run. Returns the number of chunks merged;
  /// fewer than run.size() means the service.merge alloc-fail probe fired
  /// and the caller must stash the remainder for the next round.
  size_t ApplyRunSharded(std::span<ArrivalChunk> run);

  /// Satellite of the delta log: consumes any eviction cutoff published by
  /// direct RunMaintenance calls (ServiceState::external_evict_cutoff) into
  /// delta.evict_cutoff, marking the log dirty when it advanced.
  void FoldExternalEvictCutoff();

  /// Due check + the three-phase service maintenance pass (exclusive
  /// housekeeping, staged training under the *shared* lock, exclusive
  /// publish). True ⇒ a pass ran.
  bool MaybeServiceMaintenance();
  Status ServiceMaintenance(Timestamp now);

  /// Incremental durability (core/checkpoint.cc): rewrite the delta file,
  /// or compact to a full snapshot every compact_every-th write. True ⇒ a
  /// write was attempted.
  bool MaybeDeltaCheckpoint();
  Status WriteDeltaCheckpoint();   ///< path + ".delta", atomic old-or-new
  Status ServiceFullCheckpoint();  ///< full snapshot; rebases the delta log

  /// Returns `config` with every component Options pointed at `metrics`
  /// (the per-instance registry always wins over caller-set registries).
  static Config BindObservability(Config config, MetricsRegistry* metrics);

  /// Observability owners. Declared before the components so the
  /// constructor can bind the registry into their Options; shared_ptr keeps
  /// cached instrument pointers valid across controller moves.
  std::shared_ptr<MetricsRegistry> metrics_ =
      std::make_shared<MetricsRegistry>();
  std::shared_ptr<Tracer> tracer_ = std::make_shared<Tracer>();

  /// Guards pre_/clusterer_/forecaster_/last_maintenance_. Heap-allocated so
  /// the controller stays movable (Restore returns by value; moves happen
  /// only before any concurrent use). All annotations name the raw alias
  /// `state_mu_` — Thread Safety Analysis unifies raw-pointer capability
  /// expressions but cannot see through a unique_ptr dereference — and the
  /// alias survives moves because the heap mutex address is stable.
  std::unique_ptr<SharedMutex> state_mu_owner_ = std::make_unique<SharedMutex>(
      lock_level::kControllerState, "core.state");
  SharedMutex* state_mu_ = state_mu_owner_.get();  // non-const: keeps moves

  /// Resilience state (DESIGN.md §13), heap-allocated for the same
  /// movability reason as the state mutex: atomics and mutexes pin their
  /// addresses, and the controller must stay movable for Restore().
  /// `fallback_mu` is leaf-level so publishing under the exclusively-held
  /// state lock (maintenance) and reading with *no* state lock (the shed
  /// path of a bounded Forecast) are both legal acquisitions.
  struct ResilienceState {
    /// Arrivals currently admitted into Ingest/IngestBatch.
    std::atomic<int64_t> pending_arrivals{0};  // lint:raw-atomic-ok (gate)
    /// Model publications so far; written under the exclusive state lock,
    /// readable without any lock (monitoring, model_epoch()).
    std::atomic<uint64_t> model_epoch{0};  // lint:raw-atomic-ok (epoch)
    Mutex fallback_mu{lock_level::kLeaf, "core.fallback"};
    WorkloadForecast fallback QB_GUARDED_BY(fallback_mu);
    bool fallback_valid QB_GUARDED_BY(fallback_mu) = false;
  };
  std::unique_ptr<ResilienceState> resilience_ =
      std::make_unique<ResilienceState>();

  /// One EnqueueBatch call, copied into owned storage: producers may reuse
  /// their buffers the moment EnqueueBatch returns, so the SQL bytes are
  /// concatenated here and each item borrows a (offset, length) window.
  struct ArrivalChunk {
    struct Item {
      uint32_t offset = 0;
      uint32_t length = 0;
      Timestamp ts = 0;
      double count = 1.0;
    };
    std::string bytes;
    std::vector<Item> items;
  };

  /// The arrival deltas accrued since the last *full* checkpoint. Owned by
  /// the service consumer (single-threaded by the ServiceThread contract);
  /// serialized by WriteDeltaCheckpoint (core/checkpoint.cc).
  struct DeltaLog {
    struct Arrival {
      TemplateId id = 0;
      Timestamp ts = 0;
      double count = 1.0;
    };
    std::vector<Arrival> arrivals;
    /// Template ids >= this were created after the full snapshot; the delta
    /// carries their shells (text/fingerprint/type) so replay can rebuild.
    TemplateId base_next_id = 1;
    /// CRC32 of the full-checkpoint file the delta builds on. Restore
    /// applies a delta only when this matches the snapshot it actually
    /// loaded — a crash between compaction steps degrades to old-or-new,
    /// never to a delta replayed onto the wrong base.
    uint32_t base_crc = 0;
    bool base_valid = false;
    /// Latest eviction cutoff maintenance used; replayed after the arrivals
    /// so restore does not resurrect templates the live process evicted.
    Timestamp evict_cutoff = std::numeric_limits<Timestamp>::min();
  };

  /// Everything service mode owns. Fields below the queue are consumer-only
  /// state: touched by ServiceRound (on the service thread or the manual
  /// DrainForTest caller) and by StopService after the thread has joined.
  struct ServiceState {
    explicit ServiceState(ServiceOptions opts)
        : options(std::move(opts)), queue(options.queue_capacity) {}
    ServiceOptions options;
    MpscRingQueue<ArrivalChunk> queue;
    ServiceThread thread;
    DrainPool pool;  ///< started iff options.drain_workers >= 1

    /// Chunks claimed from the ring whose merge was cut short (the
    /// service.merge alloc-fail chaos seam): re-applied, still in claim
    /// order, at the head of the next round's run before any new pops — so
    /// a failed merge round degrades to a retry, never to reordering or
    /// loss, and the previously published models keep serving meanwhile.
    std::deque<ArrivalChunk> retry;

    /// Eviction cutoff published by direct RunMaintenance calls while this
    /// checkpointing service runs (monotonic max; min() = none pending).
    /// The consumer folds it into delta.evict_cutoff before deciding each
    /// delta write, so restores replay caller-driven evictions too. Atomic
    /// because the caller publishes from its own thread (under the
    /// exclusive state lock) while the consumer folds without it.
    std::atomic<Timestamp> external_evict_cutoff{  // lint:raw-atomic-ok (cutoff handoff)
        std::numeric_limits<Timestamp>::min()};

    /// High-watermark arrival timestamp — the service's virtual "now" for
    /// maintenance and checkpoint due-checks.
    Timestamp highwater = std::numeric_limits<Timestamp>::min();
    Timestamp last_checkpoint = std::numeric_limits<Timestamp>::min();
    size_t deltas_since_full = 0;
    bool dirty = false;  ///< un-checkpointed work since the last write
    DeltaLog delta;

    /// Maintenance retry gate: chunks applied so far, and the value of that
    /// counter when maintenance was last *attempted*. A pass whose training
    /// failed leaves last_maintenance_ unmoved (still due), so without this
    /// gate an idle drain loop would re-attempt it forever; gating on new
    /// chunks retries exactly when new data could change the outcome.
    uint64_t chunks_applied = 0;
    uint64_t maintenance_attempt_chunks =
        std::numeric_limits<uint64_t>::max();

    bool checkpointing() const {
      return !options.checkpoint_path.empty() &&
             options.checkpoint_period_seconds > 0;
    }
  };
  std::unique_ptr<ServiceState> service_;

  Config config_;
  PreProcessor pre_ QB_GUARDED_BY(state_mu_);
  OnlineClusterer clusterer_ QB_GUARDED_BY(state_mu_);
  /// The published model snapshot (DESIGN.md §14): immutable once swapped
  /// in, so a maintenance pass trains a *copy* off the exclusive lock and
  /// PublishModelsLocked replaces the pointer in O(1). Readers holding the
  /// shared lock dereference it for the duration of one forecast; the
  /// shared_ptr keeps a superseded snapshot alive until its last reader
  /// returns.
  std::shared_ptr<const Forecaster> forecaster_ QB_GUARDED_BY(state_mu_);
  Timestamp last_maintenance_ QB_GUARDED_BY(state_mu_) =
      std::numeric_limits<Timestamp>::min();

  // Controller instruments (owned by *metrics_; see DESIGN.md §10).
  Counter* maintenance_runs_total_ = nullptr;
  Counter* maintenance_skipped_total_ = nullptr;  ///< called but not due
  Counter* forecasts_total_ = nullptr;
  Counter* sheds_total_ = nullptr;  ///< arrivals rejected by the gate
  Counter* rung_full_total_ = nullptr;      ///< forecasts: full model stack
  Counter* rung_linear_total_ = nullptr;    ///< forecasts: linear-only rung
  Counter* rung_fallback_total_ = nullptr;  ///< forecasts: history average
  Gauge* coverage_gauge_ = nullptr;  ///< volume fraction covered by models
  Gauge* modeled_clusters_gauge_ = nullptr;
  Histogram* maintenance_seconds_ = nullptr;
  Histogram* forecast_seconds_ = nullptr;
  Histogram* lock_wait_seconds_ = nullptr;  ///< cold-path acquisitions only
  // Service health (DESIGN.md §14).
  Gauge* queue_depth_gauge_ = nullptr;   ///< ring occupancy, approximate
  Counter* queue_stalls_total_ = nullptr;  ///< EnqueueBatch hit a full ring
  Counter* bg_rounds_total_ = nullptr;   ///< service rounds that did work
  Gauge* model_epoch_gauge_ = nullptr;   ///< publications, mirrors epoch
  Gauge* drain_workers_gauge_ = nullptr;  ///< configured width; 0 = inline
  Counter* drain_merge_waits_total_ = nullptr;  ///< ordered-merge head-of-line stalls
};

}  // namespace qb5000

#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/tracing.h"
#include "forecaster/forecaster.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

class Env;
struct RestoreReport;

/// The QueryBot 5000 controller (Figure 2): wires the Pre-Processor,
/// Clusterer, and Forecaster into the pipeline a self-driving DBMS consumes.
///
/// Usage:
///   QueryBot5000 bot(config);
///   bot.Ingest(sql, now);              // continuously, per query
///   bot.RunMaintenance(now);           // periodically (e.g. daily)
///   auto f = bot.Forecast(now, kSecondsPerHour);  // per-cluster rates
///
/// Thread safety (DESIGN.md §9): mutators (Ingest, IngestTemplatized,
/// RunMaintenance) take the state lock exclusively; readers (Forecast,
/// ModeledClusters, Checkpoint) take it shared, so forecasting and
/// checkpointing proceed concurrently with each other but never against a
/// mutation. The unlocked accessors (preprocessor(), mutable_preprocessor(),
/// ...) are for single-threaded setup and inspection only.
class QueryBot5000 {
 public:
  struct Config {
    PreProcessor::Options preprocessor;
    OnlineClusterer::Options clusterer;
    Forecaster::Options forecaster;
    /// Model the top clusters covering this fraction of workload volume...
    double coverage_target = 0.95;
    /// ...but never more than this many (Section 7.2 models 3-5 clusters).
    size_t max_modeled_clusters = 5;
    /// Horizons to maintain models for, in seconds.
    std::vector<int64_t> horizons = {kSecondsPerHour, 12 * kSecondsPerHour,
                                     kSecondsPerDay};
    /// How often RunMaintenance() re-clusters and re-trains, unless the
    /// new-template trigger fires earlier.
    int64_t maintenance_period_seconds = kSecondsPerDay;
    /// Templates idle longer than this are evicted (Section 5.2).
    int64_t template_eviction_seconds = 30 * kSecondsPerDay;
    /// Forward clock steps are tolerated up to maintenance_period plus this
    /// slack; a larger apparent gap between maintenance passes (an NTP
    /// step, a resumed VM) is treated as a clock jump and the housekeeping
    /// anchors (template eviction, history compaction) advance by only the
    /// tolerated amount, so a stepped clock cannot mass-evict live
    /// templates or compact fresh history (DESIGN.md §13).
    int64_t max_clock_step_seconds = kSecondsPerDay;
    /// Admission gate (DESIGN.md §13): Ingest/IngestBatch arrivals in
    /// flight may not exceed this backlog; excess arrivals are shed with
    /// kOverloaded (counted in core.sheds_total) for the caller to retry
    /// with backoff (common/retry.h). Generous by default — the gate
    /// exists to bound memory and lock convoys under ingest storms, not to
    /// police steady-state traffic. 0 turns the gate off (unbounded).
    size_t max_pending_arrivals = size_t{1} << 20;
  };

  QueryBot5000() : QueryBot5000(Config()) {}
  explicit QueryBot5000(Config config);

  /// Ingests one query arriving at `ts`. Returns kOverloaded (without
  /// touching any state) when the admission gate's backlog bound is hit;
  /// that failure is retryable — see common/retry.h.
  Status Ingest(std::string_view sql, Timestamp ts, double count = 1.0);
  Status Ingest(const std::string& sql,  // lint:string-ref-ok
                Timestamp ts, double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }
  Status Ingest(const char* sql, Timestamp ts, double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }

  /// Batched, sharded ingest (DESIGN.md §11): normalize/parse phases run on
  /// the thread pool outside the state lock; the merge holds it exclusively
  /// once per batch instead of once per query. Returns the TemplateId per
  /// arrival (0 = rejected, counted in preprocessor.parse_failures_total).
  /// Bit-identical ids/histories/counters to per-query Ingest at any thread
  /// count for integer-valued counts. The whole batch is admitted or shed
  /// as a unit: kOverloaded (retryable, core.sheds_total) means no arrival
  /// in it was ingested.
  Result<std::vector<TemplateId>> IngestBatch(
      std::span<const QueryArrival> arrivals);

  /// Ingests an already-templatized arrival (bulk/generator path). Not
  /// admission-gated: generators feed synthetic volume deliberately and own
  /// their own pacing.
  void IngestTemplatized(const TemplatizeOutput& templatized, Timestamp ts,
                         double count = 1.0);

  /// Re-clusters and re-trains if the maintenance period elapsed or the
  /// workload-shift trigger fired. Call as often as you like; cheap when
  /// nothing is due. `force` bypasses the period check.
  Status RunMaintenance(Timestamp now, bool force = false);

  /// A workload forecast: expected queries per forecasting interval for
  /// each modeled cluster, `horizon_seconds` from `now`.
  struct WorkloadForecast {
    std::vector<ClusterId> clusters;
    Vector queries_per_interval;  ///< parallel to `clusters`
    int64_t interval_seconds = 0;
  };
  Result<WorkloadForecast> Forecast(Timestamp now, int64_t horizon_seconds) const;

  /// Deadline-bounded forecast (DESIGN.md §13): spends at most
  /// `budget_seconds` of wall time, degrading down the ladder instead of
  /// blocking — full model stack, then linear-only once the budget is
  /// nearly spent, then the precomputed history-average snapshot when even
  /// the state lock cannot be had in time (e.g. maintenance is mid-train
  /// or wedged). Per-rung accounting in core.forecast_rung_*_total;
  /// `rung_used` (optional) reports the serving rung. A non-positive
  /// budget is unbounded (identical to the overload above).
  Result<WorkloadForecast> Forecast(Timestamp now, int64_t horizon_seconds,
                                    double budget_seconds,
                                    ForecastRung* rung_used = nullptr) const;

  /// The clusters currently modeled (top by volume under coverage_target).
  std::vector<ClusterId> ModeledClusters() const;

  /// Writes a crash-safe checkpoint of the whole pipeline (format v2,
  /// core/checkpoint.cc): the Pre-Processor's templates and histories, the
  /// Clusterer's centers/assignments/volumes, and the controller's
  /// maintenance state, each section CRC32-protected, committed with an
  /// atomic write-temp/fsync/rename so the previous checkpoint survives a
  /// crash at any point. Forecaster models are not persisted — Restore()
  /// retrains them from history (Table 4: cheap). `env == nullptr` means
  /// Env::Default(); tests pass a FaultInjectingEnv.
  Status Checkpoint(const std::string& path, Env* env = nullptr) const;

  /// Restores a pipeline from Checkpoint() output. Recovery ladder:
  /// `path` first, then `path.bak` (the rotated last-good checkpoint); a
  /// corrupt clusterer/controller section degrades to re-clustering from
  /// restored histories rather than failing the restore, and the forecaster
  /// is retrained from the restored state. `report` (optional) describes
  /// any degradation taken.
  static Result<QueryBot5000> Restore(const std::string& path, Config config,
                                      Env* env = nullptr,
                                      RestoreReport* report = nullptr);

  /// When maintenance last ran; meaningful only if maintenance_has_run().
  /// Unlocked by design (single-threaded setup/inspection only, like the
  /// component accessors below); concurrent callers must hold state_mu_
  /// through a public reader instead.
  Timestamp last_maintenance() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return last_maintenance_;
  }
  bool maintenance_has_run() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return last_maintenance_ != std::numeric_limits<Timestamp>::min();
  }

  // Component accessors. Deliberately unlocked — they hand out references
  // into guarded state for single-threaded setup and test inspection, so
  // they opt out of the analysis rather than pretend to a capability the
  // caller cannot name. Do not call them concurrently with mutators.
  const PreProcessor& preprocessor() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return pre_;
  }
  /// Mutable access for bulk feeders (e.g. SyntheticWorkload::FeedAggregated).
  PreProcessor& mutable_preprocessor() QB_NO_THREAD_SAFETY_ANALYSIS {
    return pre_;
  }
  const OnlineClusterer& clusterer() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return clusterer_;
  }
  const Forecaster& forecaster() const QB_NO_THREAD_SAFETY_ANALYSIS {
    return forecaster_;
  }
  const Config& config() const { return config_; }

  /// This instance's metrics registry. Every pipeline component writes here
  /// (the constructor overrides any registry set in the component Options).
  /// Thread-safe: export concurrently with ingest/maintenance. DESIGN.md §10.
  MetricsRegistry& Metrics() const { return *metrics_; }
  /// This instance's tracer; records spans for the cold paths only
  /// (maintenance, forecast, checkpoint, restore — never per-query Ingest).
  Tracer& Trace() const { return *tracer_; }

 private:
  /// Parses one checkpoint document (core/checkpoint.cc). `allow_degraded`
  /// permits recovering with a rebuilt clusterer / default controller state
  /// when those sections are unusable; a strict pass requires every section
  /// intact so the ladder can prefer a complete `.bak` over a salvage.
  static Result<QueryBot5000> RestoreFromData(const std::string& data,
                                              const Config& config,
                                              bool allow_degraded,
                                              RestoreReport& report);

  /// ModeledClusters body for callers already holding state_mu_
  /// (RunMaintenance holds it exclusively; SharedMutex is not recursive).
  /// The annotation is what lets Thread Safety Analysis prove the
  /// public/`...Locked()` split: the public reader acquires and delegates,
  /// and any unlocked call of the helper is a compile error under Clang.
  std::vector<ClusterId> ModeledClustersLocked() const
      QB_REQUIRES_SHARED(state_mu_);

  /// Controller checkpoint section (core/checkpoint.cc). A `...Locked()`
  /// member rather than a free function so Checkpoint() can serialize under
  /// the shared lock it already holds without a recursive acquisition.
  std::string SerializeControllerLocked() const QB_REQUIRES_SHARED(state_mu_);

  /// Shared Forecast body for the bounded and unbounded entry points;
  /// callers hold state_mu_ (shared suffices). Increments the full/linear
  /// rung counters; the fallback rung is the callers' business (it runs
  /// precisely when this body cannot).
  Result<WorkloadForecast> ForecastLocked(Timestamp now,
                                          int64_t horizon_seconds,
                                          const Deadline* deadline,
                                          ForecastRung* rung_used) const
      QB_REQUIRES_SHARED(state_mu_);

  /// Serves the degradation ladder's last rung from the published
  /// history-average snapshot. Never touches state_mu_ — this is what
  /// keeps bounded Forecasts answerable while maintenance holds the state
  /// lock for seconds at a time.
  Result<WorkloadForecast> FallbackForecast() const;

  /// Recomputes and publishes the fallback snapshot for `clusters`.
  /// RunMaintenance calls it after cluster selection but *before*
  /// training, so even a training round that stalls or fails leaves a
  /// fresh snapshot behind.
  void RefreshFallbackLocked(const std::vector<ClusterId>& clusters,
                             Timestamp now) QB_REQUIRES_SHARED(state_mu_);

  /// Admission gate: reserves backlog for `n` arrivals. False = shed (the
  /// caller returns kOverloaded and counts core.sheds_total).
  bool AdmitArrivals(size_t n);
  void ReleaseArrivals(size_t n);

  /// Returns `config` with every component Options pointed at `metrics`
  /// (the per-instance registry always wins over caller-set registries).
  static Config BindObservability(Config config, MetricsRegistry* metrics);

  /// Observability owners. Declared before the components so the
  /// constructor can bind the registry into their Options; shared_ptr keeps
  /// cached instrument pointers valid across controller moves.
  std::shared_ptr<MetricsRegistry> metrics_ =
      std::make_shared<MetricsRegistry>();
  std::shared_ptr<Tracer> tracer_ = std::make_shared<Tracer>();

  /// Guards pre_/clusterer_/forecaster_/last_maintenance_. Heap-allocated so
  /// the controller stays movable (Restore returns by value; moves happen
  /// only before any concurrent use). All annotations name the raw alias
  /// `state_mu_` — Thread Safety Analysis unifies raw-pointer capability
  /// expressions but cannot see through a unique_ptr dereference — and the
  /// alias survives moves because the heap mutex address is stable.
  std::unique_ptr<SharedMutex> state_mu_owner_ = std::make_unique<SharedMutex>(
      lock_level::kControllerState, "core.state");
  SharedMutex* state_mu_ = state_mu_owner_.get();  // non-const: keeps moves

  /// Resilience state (DESIGN.md §13), heap-allocated for the same
  /// movability reason as the state mutex: atomics and mutexes pin their
  /// addresses, and the controller must stay movable for Restore().
  /// `fallback_mu` is leaf-level so publishing under the exclusively-held
  /// state lock (maintenance) and reading with *no* state lock (the shed
  /// path of a bounded Forecast) are both legal acquisitions.
  struct ResilienceState {
    /// Arrivals currently admitted into Ingest/IngestBatch.
    std::atomic<int64_t> pending_arrivals{0};
    Mutex fallback_mu{lock_level::kLeaf, "core.fallback"};
    WorkloadForecast fallback QB_GUARDED_BY(fallback_mu);
    bool fallback_valid QB_GUARDED_BY(fallback_mu) = false;
  };
  std::unique_ptr<ResilienceState> resilience_ =
      std::make_unique<ResilienceState>();

  Config config_;
  PreProcessor pre_ QB_GUARDED_BY(state_mu_);
  OnlineClusterer clusterer_ QB_GUARDED_BY(state_mu_);
  Forecaster forecaster_ QB_GUARDED_BY(state_mu_);
  Timestamp last_maintenance_ QB_GUARDED_BY(state_mu_) =
      std::numeric_limits<Timestamp>::min();

  // Controller instruments (owned by *metrics_; see DESIGN.md §10).
  Counter* maintenance_runs_total_ = nullptr;
  Counter* maintenance_skipped_total_ = nullptr;  ///< called but not due
  Counter* forecasts_total_ = nullptr;
  Counter* sheds_total_ = nullptr;  ///< arrivals rejected by the gate
  Counter* rung_full_total_ = nullptr;      ///< forecasts: full model stack
  Counter* rung_linear_total_ = nullptr;    ///< forecasts: linear-only rung
  Counter* rung_fallback_total_ = nullptr;  ///< forecasts: history average
  Gauge* coverage_gauge_ = nullptr;  ///< volume fraction covered by models
  Gauge* modeled_clusters_gauge_ = nullptr;
  Histogram* maintenance_seconds_ = nullptr;
  Histogram* forecast_seconds_ = nullptr;
  Histogram* lock_wait_seconds_ = nullptr;  ///< cold-path acquisitions only
};

}  // namespace qb5000

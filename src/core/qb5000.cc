#include "core/qb5000.h"

#include "common/mutex.h"

namespace qb5000 {

QueryBot5000::Config QueryBot5000::BindObservability(Config config,
                                                     MetricsRegistry* metrics) {
  config.preprocessor.metrics = metrics;
  config.clusterer.metrics = metrics;
  config.forecaster.metrics = metrics;
  return config;
}

QueryBot5000::QueryBot5000(Config config)
    : config_(BindObservability(std::move(config), metrics_.get())),
      pre_(config_.preprocessor),
      clusterer_(config_.clusterer),
      forecaster_(config_.forecaster) {
  maintenance_runs_total_ = metrics_->GetCounter("core.maintenance_runs_total");
  maintenance_skipped_total_ =
      metrics_->GetCounter("core.maintenance_skipped_total");
  forecasts_total_ = metrics_->GetCounter("core.forecasts_total");
  coverage_gauge_ = metrics_->GetGauge("core.coverage");
  modeled_clusters_gauge_ = metrics_->GetGauge("core.modeled_clusters");
  maintenance_seconds_ = metrics_->GetHistogram("core.maintenance_seconds");
  forecast_seconds_ = metrics_->GetHistogram("core.forecast_seconds");
  lock_wait_seconds_ = metrics_->GetHistogram("core.lock_wait_seconds");
}

Status QueryBot5000::Ingest(std::string_view sql, Timestamp ts, double count) {
  WriterLock lock(state_mu_);
  auto id = pre_.Ingest(sql, ts, count);
  return id.ok() ? Status::Ok() : id.status();
}

// The PreProcessor takes the lock itself: shared for the cache probe,
// exclusive only for the merge; normalize/parse phases run unlocked. That
// hand-off protocol — pre_ touched only inside the phases IngestBatch locks —
// is beyond what Thread Safety Analysis can follow, so this one entry point
// opts out and tests/tsan carry the proof instead.
std::vector<TemplateId> QueryBot5000::IngestBatch(
    std::span<const QueryArrival> arrivals) QB_NO_THREAD_SAFETY_ANALYSIS {
  return pre_.IngestBatch(arrivals, state_mu_);
}

void QueryBot5000::IngestTemplatized(const TemplatizeOutput& templatized,
                                     Timestamp ts, double count) {
  WriterLock lock(state_mu_);
  pre_.IngestTemplatized(templatized, ts, count);
}

std::vector<ClusterId> QueryBot5000::ModeledClusters() const {
  ReaderLock lock(state_mu_);
  return ModeledClustersLocked();
}

std::vector<ClusterId> QueryBot5000::ModeledClustersLocked() const {
  // Take the highest-volume clusters until coverage_target of the total
  // volume is covered, capped at max_modeled_clusters (Section 5.3).
  std::vector<ClusterId> top =
      clusterer_.TopClustersByVolume(config_.max_modeled_clusters);
  double total = clusterer_.TotalVolume();
  if (total <= 0.0) return top;
  std::vector<ClusterId> chosen;
  double covered = 0.0;
  for (ClusterId id : top) {
    chosen.push_back(id);
    covered += clusterer_.clusters().at(id).volume;
    if (covered / total >= config_.coverage_target) break;
  }
  return chosen;
}

Status QueryBot5000::RunMaintenance(Timestamp now, bool force) {
  Stopwatch lock_wait;
  WriterLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  // last_maintenance_ starts at Timestamp::min() meaning "never ran";
  // `now - min()` is signed overflow (UB, UBSan-fatal), so test the
  // sentinel before forming the difference.
  bool never_ran =
      last_maintenance_ == std::numeric_limits<Timestamp>::min();
  if (!never_ran && now < last_maintenance_) {
    // The clock went backwards (NTP step, VM migration). Re-anchor the
    // timer to the regressed clock: leaving last_maintenance_ in the future
    // would silently disable periodic maintenance until the clock catches
    // back up past it plus a full period.
    last_maintenance_ = now;
  }
  bool due = never_ran ||
             now - last_maintenance_ >= config_.maintenance_period_seconds;
  bool triggered = clusterer_.ShouldTrigger(pre_);
  if (!force && !due && !triggered) {
    maintenance_skipped_total_->Add();
    return Status::Ok();
  }

  maintenance_runs_total_->Add();
  ScopedTimer maintenance_timer(maintenance_seconds_);
  ScopedSpan maintenance_span(tracer_.get(), "maintenance");
  {
    ScopedSpan span(tracer_.get(), "maintenance/evict");
    pre_.EvictIdleTemplates(now - config_.template_eviction_seconds);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/compact");
    pre_.CompactBefore(now);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/cluster");
    clusterer_.Update(pre_, now);
  }

  std::vector<ClusterId> clusters = ModeledClustersLocked();
  modeled_clusters_gauge_->Set(static_cast<double>(clusters.size()));
  double total_volume = clusterer_.TotalVolume();
  if (total_volume > 0.0) {
    double covered = 0.0;
    for (ClusterId id : clusters) {
      covered += clusterer_.clusters().at(id).volume;
    }
    coverage_gauge_->Set(covered / total_volume);
  } else {
    coverage_gauge_->Set(0.0);
  }
  if (clusters.empty()) {
    last_maintenance_ = now;
    return Status::Ok();  // nothing to model yet
  }
  Status st;
  {
    ScopedSpan span(tracer_.get(), "maintenance/train");
    st = forecaster_.Train(pre_, clusterer_, clusters, now, config_.horizons);
  }
  if (!st.ok()) return st;
  last_maintenance_ = now;
  return Status::Ok();
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds) const {
  Stopwatch lock_wait;
  ReaderLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  forecasts_total_->Add();
  ScopedTimer forecast_timer(forecast_seconds_);
  ScopedSpan forecast_span(tracer_.get(), "forecast");
  if (!forecaster_.trained()) {
    return Status::FailedPrecondition(
        "no trained models; call RunMaintenance first");
  }
  auto rates = forecaster_.Forecast(pre_, clusterer_, now, horizon_seconds);
  if (!rates.ok()) return rates.status();
  WorkloadForecast forecast;
  forecast.clusters = forecaster_.modeled_clusters();
  forecast.queries_per_interval = std::move(*rates);
  forecast.interval_seconds = config_.forecaster.interval_seconds;
  // Models predict the cluster *center* (the members' average arrival
  // rate); the planning-facing number is the cluster total.
  for (size_t i = 0; i < forecast.clusters.size() &&
                     i < forecast.queries_per_interval.size();
       ++i) {
    auto it = clusterer_.clusters().find(forecast.clusters[i]);
    if (it != clusterer_.clusters().end()) {
      forecast.queries_per_interval[i] *=
          static_cast<double>(it->second.members.size());
    }
  }
  return forecast;
}

}  // namespace qb5000

#include "core/qb5000.h"

#include "common/chaos.h"
#include "common/finite.h"
#include "common/mutex.h"

namespace qb5000 {

QueryBot5000::Config QueryBot5000::BindObservability(Config config,
                                                     MetricsRegistry* metrics) {
  config.preprocessor.metrics = metrics;
  config.clusterer.metrics = metrics;
  config.forecaster.metrics = metrics;
  return config;
}

QueryBot5000::QueryBot5000(Config config)
    : config_(BindObservability(std::move(config), metrics_.get())),
      pre_(config_.preprocessor),
      clusterer_(config_.clusterer),
      forecaster_(config_.forecaster) {
  maintenance_runs_total_ = metrics_->GetCounter("core.maintenance_runs_total");
  maintenance_skipped_total_ =
      metrics_->GetCounter("core.maintenance_skipped_total");
  forecasts_total_ = metrics_->GetCounter("core.forecasts_total");
  sheds_total_ = metrics_->GetCounter("core.sheds_total");
  rung_full_total_ = metrics_->GetCounter("core.forecast_rung_full_total");
  rung_linear_total_ = metrics_->GetCounter("core.forecast_rung_linear_total");
  rung_fallback_total_ =
      metrics_->GetCounter("core.forecast_rung_fallback_total");
  coverage_gauge_ = metrics_->GetGauge("core.coverage");
  modeled_clusters_gauge_ = metrics_->GetGauge("core.modeled_clusters");
  maintenance_seconds_ = metrics_->GetHistogram("core.maintenance_seconds");
  forecast_seconds_ = metrics_->GetHistogram("core.forecast_seconds");
  lock_wait_seconds_ = metrics_->GetHistogram("core.lock_wait_seconds");
}

bool QueryBot5000::AdmitArrivals(size_t n) {
  if (config_.max_pending_arrivals == 0 || n == 0) return true;
  auto& pending = resilience_->pending_arrivals;
  int64_t limit = static_cast<int64_t>(config_.max_pending_arrivals);
  // Backlog-bound semantics: admit while the backlog is below the limit,
  // whatever the increment — so one oversized batch against an idle
  // pipeline is admitted (and briefly overshoots) rather than being
  // unservable at any capacity. Shedding starts only under sustained
  // concurrent pressure, which is what the gate exists to bound.
  int64_t before = pending.fetch_add(static_cast<int64_t>(n),
                                     std::memory_order_acq_rel);
  if (before >= limit) {
    pending.fetch_sub(static_cast<int64_t>(n), std::memory_order_acq_rel);
    sheds_total_->Add(static_cast<uint64_t>(n));
    return false;
  }
  return true;
}

void QueryBot5000::ReleaseArrivals(size_t n) {
  if (config_.max_pending_arrivals == 0 || n == 0) return;
  resilience_->pending_arrivals.fetch_sub(static_cast<int64_t>(n),
                                          std::memory_order_acq_rel);
}

Status QueryBot5000::Ingest(std::string_view sql, Timestamp ts, double count) {
  if (!AdmitArrivals(1)) {
    return Status::Overloaded("ingest backlog full; retry with backoff");
  }
  Status out;
  {
    WriterLock lock(state_mu_);
    auto id = pre_.Ingest(sql, ts, count);
    out = id.ok() ? Status::Ok() : id.status();
  }
  ReleaseArrivals(1);
  return out;
}

// The PreProcessor takes the lock itself: shared for the cache probe,
// exclusive only for the merge; normalize/parse phases run unlocked. That
// hand-off protocol — pre_ touched only inside the phases IngestBatch locks —
// is beyond what Thread Safety Analysis can follow, so this one entry point
// opts out and tests/tsan carry the proof instead.
Result<std::vector<TemplateId>> QueryBot5000::IngestBatch(
    std::span<const QueryArrival> arrivals) QB_NO_THREAD_SAFETY_ANALYSIS {
  if (!AdmitArrivals(arrivals.size())) {
    return Status::Overloaded(
        "ingest backlog full; batch shed, retry with backoff");
  }
  // Chaos probe: parks the batch *after* admission, holding its backlog
  // reservation, so tests can deterministically drive concurrent arrivals
  // into the shed path while this batch is "in flight".
  ChaosHarness::Global().MaybeStall("ingest.batch");
  std::vector<TemplateId> ids = pre_.IngestBatch(arrivals, state_mu_);
  ReleaseArrivals(arrivals.size());
  return ids;
}

void QueryBot5000::IngestTemplatized(const TemplatizeOutput& templatized,
                                     Timestamp ts, double count) {
  WriterLock lock(state_mu_);
  pre_.IngestTemplatized(templatized, ts, count);
}

std::vector<ClusterId> QueryBot5000::ModeledClusters() const {
  ReaderLock lock(state_mu_);
  return ModeledClustersLocked();
}

std::vector<ClusterId> QueryBot5000::ModeledClustersLocked() const {
  // Take the highest-volume clusters until coverage_target of the total
  // volume is covered, capped at max_modeled_clusters (Section 5.3).
  std::vector<ClusterId> top =
      clusterer_.TopClustersByVolume(config_.max_modeled_clusters);
  double total = clusterer_.TotalVolume();
  if (total <= 0.0) return top;
  std::vector<ClusterId> chosen;
  double covered = 0.0;
  for (ClusterId id : top) {
    chosen.push_back(id);
    covered += clusterer_.clusters().at(id).volume;
    if (covered / total >= config_.coverage_target) break;
  }
  return chosen;
}

Status QueryBot5000::RunMaintenance(Timestamp now, bool force) {
  // Chaos probe: a clock step (NTP, VM resume) reaches maintenance through
  // its real entry value — timestamps are virtual, so this is the seam.
  now = ChaosHarness::Global().MaybeJumpClock("maintenance.clock", now);
  Stopwatch lock_wait;
  WriterLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  // last_maintenance_ starts at Timestamp::min() meaning "never ran";
  // `now - min()` is signed overflow (UB, UBSan-fatal), so test the
  // sentinel before forming the difference.
  bool never_ran =
      last_maintenance_ == std::numeric_limits<Timestamp>::min();
  if (!never_ran && now < last_maintenance_) {
    // The clock went backwards (NTP step, VM migration). Re-anchor the
    // timer to the regressed clock: leaving last_maintenance_ in the future
    // would silently disable periodic maintenance until the clock catches
    // back up past it plus a full period.
    last_maintenance_ = now;
  }
  bool due = never_ran ||
             now - last_maintenance_ >= config_.maintenance_period_seconds;
  bool triggered = clusterer_.ShouldTrigger(pre_);
  if (!force && !due && !triggered) {
    maintenance_skipped_total_->Add();
    return Status::Ok();
  }

  maintenance_runs_total_->Add();
  ScopedTimer maintenance_timer(maintenance_seconds_);
  ScopedSpan maintenance_span(tracer_.get(), "maintenance");
  // Forward-jump clamp, mirroring the backwards re-anchor above: after a
  // forward clock step the apparent gap since the last pass can dwarf any
  // real elapsed time, and anchoring housekeeping at the stepped `now`
  // would mass-evict live templates and compact still-fresh history. Cap
  // the housekeeping anchor at the tolerated step past the last pass;
  // training and the maintenance timer still use the live clock (after the
  // step, the new time *is* the time — only the gap was fictitious).
  Timestamp housekeep_now = now;
  if (!never_ran) {
    int64_t tolerated =
        config_.maintenance_period_seconds + config_.max_clock_step_seconds;
    if (now - last_maintenance_ > tolerated) {
      housekeep_now = last_maintenance_ + tolerated;
    }
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/evict");
    pre_.EvictIdleTemplates(housekeep_now - config_.template_eviction_seconds);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/compact");
    pre_.CompactBefore(housekeep_now);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/cluster");
    clusterer_.Update(pre_, now);
  }

  std::vector<ClusterId> clusters = ModeledClustersLocked();
  modeled_clusters_gauge_->Set(static_cast<double>(clusters.size()));
  double total_volume = clusterer_.TotalVolume();
  if (total_volume > 0.0) {
    double covered = 0.0;
    for (ClusterId id : clusters) {
      covered += clusterer_.clusters().at(id).volume;
    }
    coverage_gauge_->Set(covered / total_volume);
  } else {
    coverage_gauge_->Set(0.0);
  }
  if (clusters.empty()) {
    last_maintenance_ = now;
    return Status::Ok();  // nothing to model yet
  }
  // Refresh the forecast fallback snapshot *before* training: if the train
  // below stalls or fails, bounded Forecasts still degrade onto current
  // history instead of a snapshot from the previous period.
  RefreshFallbackLocked(clusters, now);
  Status st;
  {
    ScopedSpan span(tracer_.get(), "maintenance/train");
    ChaosHarness::Global().MaybeStall("maintenance.train");
    st = forecaster_.Train(pre_, clusterer_, clusters, now, config_.horizons);
  }
  if (!st.ok()) return st;
  last_maintenance_ = now;
  return Status::Ok();
}

void QueryBot5000::RefreshFallbackLocked(
    const std::vector<ClusterId>& clusters, Timestamp now) {
  WorkloadForecast snapshot;
  snapshot.interval_seconds = config_.forecaster.interval_seconds;
  int64_t interval = config_.forecaster.interval_seconds;
  Timestamp from =
      now - static_cast<int64_t>(config_.forecaster.input_window) * interval;
  for (ClusterId id : clusters) {
    auto center = clusterer_.CenterSeries(pre_, id, interval, from, now);
    if (!center.ok()) continue;
    double sum = 0.0;
    size_t n = center->values().size();
    for (double v : center->values()) sum += v;
    double avg = n > 0 ? sum / static_cast<double>(n) : 0.0;
    auto it = clusterer_.clusters().find(id);
    double members =
        it != clusterer_.clusters().end()
            ? static_cast<double>(it->second.members.size())
            : 1.0;
    snapshot.clusters.push_back(id);
    snapshot.queries_per_interval.push_back(FiniteOr(avg, 0.0) * members);
  }
  MutexLock fb(&resilience_->fallback_mu);
  resilience_->fallback = std::move(snapshot);
  resilience_->fallback_valid = !resilience_->fallback.clusters.empty();
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::FallbackForecast() const {
  MutexLock fb(&resilience_->fallback_mu);
  if (!resilience_->fallback_valid) {
    return Status::FailedPrecondition(
        "no fallback snapshot; maintenance has not selected clusters yet");
  }
  return resilience_->fallback;
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::ForecastLocked(
    Timestamp now, int64_t horizon_seconds, const Deadline* deadline,
    ForecastRung* rung_used) const {
  if (!forecaster_.trained()) {
    return Status::FailedPrecondition(
        "no trained models; call RunMaintenance first");
  }
  ForecastRung rung = ForecastRung::kFull;
  auto rates = forecaster_.Forecast(pre_, clusterer_, now, horizon_seconds,
                                    deadline, &rung);
  if (!rates.ok()) return rates.status();
  if (rung_used != nullptr) *rung_used = rung;
  (rung == ForecastRung::kFull ? rung_full_total_ : rung_linear_total_)->Add();
  WorkloadForecast forecast;
  forecast.clusters = forecaster_.modeled_clusters();
  forecast.queries_per_interval = std::move(*rates);
  forecast.interval_seconds = config_.forecaster.interval_seconds;
  // Models predict the cluster *center* (the members' average arrival
  // rate); the planning-facing number is the cluster total.
  for (size_t i = 0; i < forecast.clusters.size() &&
                     i < forecast.queries_per_interval.size();
       ++i) {
    auto it = clusterer_.clusters().find(forecast.clusters[i]);
    if (it != clusterer_.clusters().end()) {
      forecast.queries_per_interval[i] *=
          static_cast<double>(it->second.members.size());
    }
  }
  return forecast;
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds) const {
  Stopwatch lock_wait;
  ReaderLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  forecasts_total_->Add();
  ScopedTimer forecast_timer(forecast_seconds_);
  ScopedSpan forecast_span(tracer_.get(), "forecast");
  return ForecastLocked(now, horizon_seconds, /*deadline=*/nullptr,
                        /*rung_used=*/nullptr);
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds, double budget_seconds,
    ForecastRung* rung_used) const {
  if (budget_seconds <= 0.0) {
    // Unbounded, but still reporting the rung for symmetric call sites.
    Stopwatch lock_wait;
    ReaderLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    forecasts_total_->Add();
    ScopedTimer forecast_timer(forecast_seconds_);
    ScopedSpan forecast_span(tracer_.get(), "forecast");
    return ForecastLocked(now, horizon_seconds, nullptr, rung_used);
  }
  Deadline deadline(budget_seconds);
  Stopwatch lock_wait;
  // Spend at most half the budget waiting for the state lock; the
  // remainder is for gathering inputs and predicting. A writer that holds
  // the lock longer than that (maintenance mid-train, or wedged) must not
  // make Forecast miss its bound — the fallback rung serves lock-free.
  TimedReaderLock lock(state_mu_, budget_seconds * 0.5);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  forecasts_total_->Add();
  ScopedTimer forecast_timer(forecast_seconds_);
  ScopedSpan forecast_span(tracer_.get(), "forecast");
  if (lock.held()) {
    auto result = ForecastLocked(now, horizon_seconds, &deadline, rung_used);
    StatusCode code = result.ok() ? StatusCode::kOk : result.status().code();
    bool degrade_to_fallback = code == StatusCode::kDeadlineExceeded ||
                               code == StatusCode::kFailedPrecondition;
    if (!degrade_to_fallback) return result;
    // Budget spent before any model could run, or no trained models at
    // all (e.g. the first training round was rejected by the health
    // gate): the history-average snapshot is the documented last rung.
    auto fallback = FallbackForecast();
    if (!fallback.ok()) return result;  // surface the original verdict
    if (rung_used != nullptr) *rung_used = ForecastRung::kFallback;
    rung_fallback_total_->Add();
    return fallback;
  }
  auto fallback = FallbackForecast();
  if (!fallback.ok()) return fallback.status();
  if (rung_used != nullptr) *rung_used = ForecastRung::kFallback;
  rung_fallback_total_->Add();
  return fallback;
}

}  // namespace qb5000

#include "core/qb5000.h"

#include "common/chaos.h"
#include "common/finite.h"
#include "common/mutex.h"

namespace qb5000 {

QueryBot5000::Config QueryBot5000::BindObservability(Config config,
                                                     MetricsRegistry* metrics) {
  config.preprocessor.metrics = metrics;
  config.clusterer.metrics = metrics;
  config.forecaster.metrics = metrics;
  return config;
}

QueryBot5000::QueryBot5000(Config config)
    : config_(BindObservability(std::move(config), metrics_.get())),
      pre_(config_.preprocessor),
      clusterer_(config_.clusterer),
      forecaster_(std::make_shared<const Forecaster>(config_.forecaster)) {
  maintenance_runs_total_ = metrics_->GetCounter("core.maintenance_runs_total");
  maintenance_skipped_total_ =
      metrics_->GetCounter("core.maintenance_skipped_total");
  forecasts_total_ = metrics_->GetCounter("core.forecasts_total");
  sheds_total_ = metrics_->GetCounter("core.sheds_total");
  rung_full_total_ = metrics_->GetCounter("core.forecast_rung_full_total");
  rung_linear_total_ = metrics_->GetCounter("core.forecast_rung_linear_total");
  rung_fallback_total_ =
      metrics_->GetCounter("core.forecast_rung_fallback_total");
  coverage_gauge_ = metrics_->GetGauge("core.coverage");
  modeled_clusters_gauge_ = metrics_->GetGauge("core.modeled_clusters");
  maintenance_seconds_ = metrics_->GetHistogram("core.maintenance_seconds");
  forecast_seconds_ = metrics_->GetHistogram("core.forecast_seconds");
  lock_wait_seconds_ = metrics_->GetHistogram("core.lock_wait_seconds");
  queue_depth_gauge_ = metrics_->GetGauge("core.queue_depth");
  queue_stalls_total_ =
      metrics_->GetCounter("core.queue_enqueue_stalls_total");
  bg_rounds_total_ = metrics_->GetCounter("core.bg_rounds_total");
  model_epoch_gauge_ = metrics_->GetGauge("core.model_epoch");
  drain_workers_gauge_ = metrics_->GetGauge("core.drain_workers");
  drain_merge_waits_total_ =
      metrics_->GetCounter("core.drain_merge_waits_total");
}

QueryBot5000::~QueryBot5000() {
  if (service_ != nullptr) (void)StopService();
}

bool QueryBot5000::AdmitArrivals(size_t n) {
  if (config_.max_pending_arrivals == 0 || n == 0) return true;
  auto& pending = resilience_->pending_arrivals;
  int64_t limit = static_cast<int64_t>(config_.max_pending_arrivals);
  // Backlog-bound semantics: admit while the backlog is below the limit,
  // whatever the increment — so one oversized batch against an idle
  // pipeline is admitted (and briefly overshoots) rather than being
  // unservable at any capacity. Shedding starts only under sustained
  // concurrent pressure, which is what the gate exists to bound.
  int64_t before = pending.fetch_add(static_cast<int64_t>(n),
                                     std::memory_order_acq_rel);
  if (before >= limit) {
    pending.fetch_sub(static_cast<int64_t>(n), std::memory_order_acq_rel);
    sheds_total_->Add(static_cast<uint64_t>(n));
    return false;
  }
  return true;
}

void QueryBot5000::ReleaseArrivals(size_t n) {
  if (config_.max_pending_arrivals == 0 || n == 0) return;
  resilience_->pending_arrivals.fetch_sub(static_cast<int64_t>(n),
                                          std::memory_order_acq_rel);
}

Status QueryBot5000::Ingest(std::string_view sql, Timestamp ts, double count) {
  if (!AdmitArrivals(1)) {
    return Status::Overloaded("ingest backlog full; retry with backoff");
  }
  Status out;
  {
    WriterLock lock(state_mu_);
    auto id = pre_.Ingest(sql, ts, count);
    out = id.ok() ? Status::Ok() : id.status();
  }
  ReleaseArrivals(1);
  return out;
}

// The PreProcessor takes the lock itself: shared for the cache probe,
// exclusive only for the merge; normalize/parse phases run unlocked. That
// hand-off protocol — pre_ touched only inside the phases IngestBatch locks —
// is beyond what Thread Safety Analysis can follow, so this one entry point
// opts out and tests/tsan carry the proof instead.
Result<std::vector<TemplateId>> QueryBot5000::IngestBatch(
    std::span<const QueryArrival> arrivals) QB_NO_THREAD_SAFETY_ANALYSIS {
  if (!AdmitArrivals(arrivals.size())) {
    return Status::Overloaded(
        "ingest backlog full; batch shed, retry with backoff");
  }
  // Chaos probe: parks the batch *after* admission, holding its backlog
  // reservation, so tests can deterministically drive concurrent arrivals
  // into the shed path while this batch is "in flight".
  ChaosHarness::Global().MaybeStall("ingest.batch");
  std::vector<TemplateId> ids = pre_.IngestBatch(arrivals, state_mu_);
  ReleaseArrivals(arrivals.size());
  return ids;
}

void QueryBot5000::IngestTemplatized(const TemplatizeOutput& templatized,
                                     Timestamp ts, double count) {
  WriterLock lock(state_mu_);
  pre_.IngestTemplatized(templatized, ts, count);
}

std::vector<ClusterId> QueryBot5000::ModeledClusters() const {
  ReaderLock lock(state_mu_);
  return ModeledClustersLocked();
}

std::vector<ClusterId> QueryBot5000::ModeledClustersLocked() const {
  // Take the highest-volume clusters until coverage_target of the total
  // volume is covered, capped at max_modeled_clusters (Section 5.3).
  std::vector<ClusterId> top =
      clusterer_.TopClustersByVolume(config_.max_modeled_clusters);
  double total = clusterer_.TotalVolume();
  if (total <= 0.0) return top;
  std::vector<ClusterId> chosen;
  double covered = 0.0;
  for (ClusterId id : top) {
    chosen.push_back(id);
    covered += clusterer_.clusters().at(id).volume;
    if (covered / total >= config_.coverage_target) break;
  }
  return chosen;
}

bool QueryBot5000::MaintenanceDueLocked(Timestamp now, bool force) {
  // last_maintenance_ starts at Timestamp::min() meaning "never ran";
  // `now - min()` is signed overflow (UB, UBSan-fatal), so test the
  // sentinel before forming the difference.
  bool never_ran =
      last_maintenance_ == std::numeric_limits<Timestamp>::min();
  if (!never_ran && now < last_maintenance_) {
    // The clock went backwards (NTP step, VM migration). Re-anchor the
    // timer to the regressed clock: leaving last_maintenance_ in the future
    // would silently disable periodic maintenance until the clock catches
    // back up past it plus a full period.
    last_maintenance_ = now;
  }
  bool due = never_ran ||
             now - last_maintenance_ >= config_.maintenance_period_seconds;
  bool triggered = clusterer_.ShouldTrigger(pre_);
  if (!force && !due && !triggered) {
    maintenance_skipped_total_->Add();
    return false;
  }
  maintenance_runs_total_->Add();
  return true;
}

std::vector<ClusterId> QueryBot5000::MaintenanceHousekeepLocked(
    Timestamp now, Timestamp* evict_cutoff) {
  // Forward-jump clamp, mirroring the backwards re-anchor in the due check:
  // after a forward clock step the apparent gap since the last pass can
  // dwarf any real elapsed time, and anchoring housekeeping at the stepped
  // `now` would mass-evict live templates and compact still-fresh history.
  // Cap the housekeeping anchor at the tolerated step past the last pass;
  // training and the maintenance timer still use the live clock (after the
  // step, the new time *is* the time — only the gap was fictitious).
  bool never_ran =
      last_maintenance_ == std::numeric_limits<Timestamp>::min();
  Timestamp housekeep_now = now;
  if (!never_ran) {
    int64_t tolerated =
        config_.maintenance_period_seconds + config_.max_clock_step_seconds;
    if (now - last_maintenance_ > tolerated) {
      housekeep_now = last_maintenance_ + tolerated;
    }
  }
  Timestamp cutoff = housekeep_now - config_.template_eviction_seconds;
  if (evict_cutoff != nullptr) *evict_cutoff = cutoff;
  {
    ScopedSpan span(tracer_.get(), "maintenance/evict");
    pre_.EvictIdleTemplates(cutoff);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/compact");
    pre_.CompactBefore(housekeep_now);
  }
  {
    // Spill-tier maintenance rides the same pass (and the same forward
    // clamp): idle histories go cold, resident bytes come under budget, and
    // the spill file is GC'd once dead payloads dominate. A no-op beyond
    // gauge refresh when no spill path is configured.
    ScopedSpan span(tracer_.get(), "maintenance/history_budget");
    pre_.EnforceHistoryBudget(housekeep_now);
  }
  {
    ScopedSpan span(tracer_.get(), "maintenance/cluster");
    clusterer_.Update(pre_, now);
  }

  std::vector<ClusterId> clusters = ModeledClustersLocked();
  modeled_clusters_gauge_->Set(static_cast<double>(clusters.size()));
  double total_volume = clusterer_.TotalVolume();
  if (total_volume > 0.0) {
    double covered = 0.0;
    for (ClusterId id : clusters) {
      covered += clusterer_.clusters().at(id).volume;
    }
    coverage_gauge_->Set(covered / total_volume);
  } else {
    coverage_gauge_->Set(0.0);
  }
  if (clusters.empty()) {
    last_maintenance_ = now;  // nothing to model yet
    return clusters;
  }
  // Refresh the forecast fallback snapshot *before* training: if the train
  // that follows stalls or fails, bounded Forecasts still degrade onto
  // current history instead of a snapshot from the previous period.
  RefreshFallbackLocked(clusters, now);
  return clusters;
}

void QueryBot5000::PublishModelsLocked(Forecaster&& staged) {
  forecaster_ = std::make_shared<const Forecaster>(std::move(staged));
  uint64_t epoch = resilience_->model_epoch.fetch_add(
                       1, std::memory_order_acq_rel) + 1;
  model_epoch_gauge_->Set(static_cast<double>(epoch));
}

Status QueryBot5000::RunMaintenance(Timestamp now, bool force) {
  // Chaos probe: a clock step (NTP, VM resume) reaches maintenance through
  // its real entry value — timestamps are virtual, so this is the seam.
  now = ChaosHarness::Global().MaybeJumpClock("maintenance.clock", now);
  Stopwatch lock_wait;
  WriterLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  if (!MaintenanceDueLocked(now, force)) return Status::Ok();

  ScopedTimer maintenance_timer(maintenance_seconds_);
  ScopedSpan maintenance_span(tracer_.get(), "maintenance");
  Timestamp evict_cutoff = std::numeric_limits<Timestamp>::min();
  std::vector<ClusterId> clusters =
      MaintenanceHousekeepLocked(now, &evict_cutoff);
  if (service_ != nullptr && service_->checkpointing() &&
      evict_cutoff != std::numeric_limits<Timestamp>::min()) {
    // A caller-driven pass while a checkpointing service runs: publish the
    // cutoff (monotonic max) for the consumer to fold into the delta log —
    // delta state itself is consumer-owned, so it is never written here.
    // Publishing under the exclusive lock means any delta write serialized
    // after this pass observes both the evictions and the cutoff.
    auto& ext = service_->external_evict_cutoff;
    Timestamp cur = ext.load(std::memory_order_relaxed);
    while (evict_cutoff > cur &&
           !ext.compare_exchange_weak(cur, evict_cutoff,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
    }
  }
  if (clusters.empty()) return Status::Ok();
  // Train a staged copy and swap it in whole — the synchronous path pays
  // the copy too so its observable state (rollback bookkeeping included)
  // stays bit-identical to the service path's off-lock training.
  Forecaster staged = *forecaster_;
  Status st;
  {
    ScopedSpan span(tracer_.get(), "maintenance/train");
    ChaosHarness::Global().MaybeStall("maintenance.train");
    st = staged.Train(pre_, clusterer_, clusters, now, config_.horizons);
  }
  PublishModelsLocked(std::move(staged));
  if (!st.ok()) return st;
  last_maintenance_ = now;
  return Status::Ok();
}

void QueryBot5000::RefreshFallbackLocked(
    const std::vector<ClusterId>& clusters, Timestamp now) {
  WorkloadForecast snapshot;
  snapshot.interval_seconds = config_.forecaster.interval_seconds;
  int64_t interval = config_.forecaster.interval_seconds;
  Timestamp from =
      now - static_cast<int64_t>(config_.forecaster.input_window) * interval;
  for (ClusterId id : clusters) {
    auto center = clusterer_.CenterSeries(pre_, id, interval, from, now);
    if (!center.ok()) continue;
    double sum = 0.0;
    size_t n = center->values().size();
    for (double v : center->values()) sum += v;
    double avg = n > 0 ? sum / static_cast<double>(n) : 0.0;
    auto it = clusterer_.clusters().find(id);
    double members =
        it != clusterer_.clusters().end()
            ? static_cast<double>(it->second.members.size())
            : 1.0;
    snapshot.clusters.push_back(id);
    snapshot.queries_per_interval.push_back(FiniteOr(avg, 0.0) * members);
  }
  MutexLock fb(&resilience_->fallback_mu);
  resilience_->fallback = std::move(snapshot);
  resilience_->fallback_valid = !resilience_->fallback.clusters.empty();
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::FallbackForecast() const {
  MutexLock fb(&resilience_->fallback_mu);
  if (!resilience_->fallback_valid) {
    return Status::FailedPrecondition(
        "no fallback snapshot; maintenance has not selected clusters yet");
  }
  return resilience_->fallback;
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::ForecastLocked(
    Timestamp now, int64_t horizon_seconds, const Deadline* deadline,
    ForecastRung* rung_used) const {
  if (!forecaster_->trained()) {
    return Status::FailedPrecondition(
        "no trained models; call RunMaintenance first");
  }
  ForecastRung rung = ForecastRung::kFull;
  auto rates = forecaster_->Forecast(pre_, clusterer_, now, horizon_seconds,
                                    deadline, &rung);
  if (!rates.ok()) return rates.status();
  if (rung_used != nullptr) *rung_used = rung;
  (rung == ForecastRung::kFull ? rung_full_total_ : rung_linear_total_)->Add();
  WorkloadForecast forecast;
  forecast.clusters = forecaster_->modeled_clusters();
  forecast.queries_per_interval = std::move(*rates);
  forecast.interval_seconds = config_.forecaster.interval_seconds;
  // Models predict the cluster *center* (the members' average arrival
  // rate); the planning-facing number is the cluster total.
  for (size_t i = 0; i < forecast.clusters.size() &&
                     i < forecast.queries_per_interval.size();
       ++i) {
    auto it = clusterer_.clusters().find(forecast.clusters[i]);
    if (it != clusterer_.clusters().end()) {
      forecast.queries_per_interval[i] *=
          static_cast<double>(it->second.members.size());
    }
  }
  return forecast;
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds) const {
  Stopwatch lock_wait;
  ReaderLock lock(state_mu_);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  forecasts_total_->Add();
  ScopedTimer forecast_timer(forecast_seconds_);
  ScopedSpan forecast_span(tracer_.get(), "forecast");
  return ForecastLocked(now, horizon_seconds, /*deadline=*/nullptr,
                        /*rung_used=*/nullptr);
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds, double budget_seconds,
    ForecastRung* rung_used) const {
  if (budget_seconds <= 0.0) {
    // Unbounded, but still reporting the rung for symmetric call sites.
    Stopwatch lock_wait;
    ReaderLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    forecasts_total_->Add();
    ScopedTimer forecast_timer(forecast_seconds_);
    ScopedSpan forecast_span(tracer_.get(), "forecast");
    return ForecastLocked(now, horizon_seconds, nullptr, rung_used);
  }
  Deadline deadline(budget_seconds);
  Stopwatch lock_wait;
  // Spend at most half the budget waiting for the state lock; the
  // remainder is for gathering inputs and predicting. A writer that holds
  // the lock longer than that (maintenance mid-train, or wedged) must not
  // make Forecast miss its bound — the fallback rung serves lock-free.
  TimedReaderLock lock(state_mu_, budget_seconds * 0.5);
  lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
  forecasts_total_->Add();
  ScopedTimer forecast_timer(forecast_seconds_);
  ScopedSpan forecast_span(tracer_.get(), "forecast");
  if (lock.held()) {
    auto result = ForecastLocked(now, horizon_seconds, &deadline, rung_used);
    StatusCode code = result.ok() ? StatusCode::kOk : result.status().code();
    bool degrade_to_fallback = code == StatusCode::kDeadlineExceeded ||
                               code == StatusCode::kFailedPrecondition;
    if (!degrade_to_fallback) return result;
    // Budget spent before any model could run, or no trained models at
    // all (e.g. the first training round was rejected by the health
    // gate): the history-average snapshot is the documented last rung.
    auto fallback = FallbackForecast();
    if (!fallback.ok()) return result;  // surface the original verdict
    if (rung_used != nullptr) *rung_used = ForecastRung::kFallback;
    rung_fallback_total_->Add();
    return fallback;
  }
  auto fallback = FallbackForecast();
  if (!fallback.ok()) return fallback.status();
  if (rung_used != nullptr) *rung_used = ForecastRung::kFallback;
  rung_fallback_total_->Add();
  return fallback;
}

// --- Always-on service mode (DESIGN.md §14) --------------------------------

Status QueryBot5000::StartService(ServiceOptions options) {
  if (service_ != nullptr) {
    return Status::FailedPrecondition("service already running");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  if (options.compact_every == 0) options.compact_every = 1;
  service_ = std::make_unique<ServiceState>(std::move(options));
  queue_depth_gauge_->Set(0.0);
  drain_workers_gauge_->Set(
      static_cast<double>(service_->options.drain_workers));
  if (service_->options.drain_workers > 0) {
    service_->pool.Start(service_->options.drain_workers);
  }
  if (service_->options.background) {
    service_->thread.Start([this] { return ServiceRound(); });
  }
  return Status::Ok();
}

Status QueryBot5000::StopService() {
  if (service_ == nullptr) {
    return Status::FailedPrecondition("service not running");
  }
  ServiceState& svc = *service_;
  // Shutdown ordering: producers have quiesced (caller's contract), so
  // stopping the thread — which drains to idle before joining — leaves the
  // queue empty and the consumer-only state single-threaded again.
  if (svc.options.background) {
    svc.thread.Stop();
  } else {
    while (ServiceRound()) {
    }
  }
  // The drain reached idle, so the retry stash drained with the ring and
  // the prep pool has no run in flight — safe to retire the workers.
  svc.pool.Stop();
  // Final durability flush: anything applied since the last periodic write,
  // caller-driven eviction cutoffs included.
  Status st = Status::Ok();
  if (svc.checkpointing()) {
    FoldExternalEvictCutoff();
    if (!svc.delta.base_valid) {
      st = ServiceFullCheckpoint();
    } else if (svc.dirty) {
      st = WriteDeltaCheckpoint();
    }
  }
  service_.reset();
  queue_depth_gauge_->Set(0.0);
  drain_workers_gauge_->Set(0.0);
  return st;
}

Status QueryBot5000::EnqueueBatch(std::span<const QueryArrival> arrivals) {
  ServiceState* svc = service_.get();
  if (svc == nullptr) {
    return Status::FailedPrecondition("service not running; StartService first");
  }
  if (arrivals.empty()) return Status::Ok();
  ArrivalChunk chunk;
  size_t total_bytes = 0;
  for (const QueryArrival& a : arrivals) total_bytes += a.sql.size();
  chunk.bytes.reserve(total_bytes);
  chunk.items.reserve(arrivals.size());
  for (const QueryArrival& a : arrivals) {
    ArrivalChunk::Item item;
    item.offset = static_cast<uint32_t>(chunk.bytes.size());
    item.length = static_cast<uint32_t>(a.sql.size());
    item.ts = a.ts;
    item.count = a.count;
    chunk.bytes.append(a.sql);
    chunk.items.push_back(item);
  }
  if (!svc->queue.TryPush(std::move(chunk))) {
    queue_stalls_total_->Add();
    return Status::Overloaded("service ingest queue full; retry with backoff");
  }
  queue_depth_gauge_->Set(static_cast<double>(svc->queue.ApproxSize()));
  if (svc->options.background) svc->thread.Wake();
  return Status::Ok();
}

void QueryBot5000::DrainForTest() {
  if (service_ == nullptr) return;
  if (service_->options.background) {
    service_->thread.WaitIdle();
    return;
  }
  while (ServiceRound()) {
  }
}

bool QueryBot5000::ServiceRound() {
  ServiceState& svc = *service_;
  bool did_work = false;
  if (svc.pool.workers() > 0) {
    did_work = DrainSharded();
  } else {
    ArrivalChunk chunk;
    while (svc.queue.TryPop(&chunk)) {
      // Chaos probe: a wedged drain (slow page-in, noisy neighbor) — the
      // queue must absorb producers meanwhile, and EnqueueBatch must shed
      // with kOverloaded once it fills, never block.
      ChaosHarness::Global().MaybeStall("service.drain");
      ApplyChunk(chunk);
      queue_depth_gauge_->Set(static_cast<double>(svc.queue.ApproxSize()));
      did_work = true;
    }
  }
  if (MaybeServiceMaintenance()) did_work = true;
  if (MaybeDeltaCheckpoint()) did_work = true;
  if (did_work) bg_rounds_total_->Add();
  return did_work;
}

std::vector<QueryArrival> QueryBot5000::ChunkViews(const ArrivalChunk& chunk) {
  std::vector<QueryArrival> arrivals;
  arrivals.reserve(chunk.items.size());
  for (const ArrivalChunk::Item& item : chunk.items) {
    QueryArrival a;
    a.sql = std::string_view(chunk.bytes.data() + item.offset, item.length);
    a.ts = item.ts;
    a.count = item.count;
    arrivals.push_back(a);
  }
  return arrivals;
}

void QueryBot5000::RecordChunkApplied(const ArrivalChunk& chunk,
                                      const std::vector<TemplateId>& ids) {
  ServiceState& svc = *service_;
  bool log_delta = svc.checkpointing();
  for (size_t i = 0; i < chunk.items.size(); ++i) {
    if (chunk.items[i].ts > svc.highwater) svc.highwater = chunk.items[i].ts;
    if (log_delta && i < ids.size() && ids[i] != 0) {
      DeltaLog::Arrival rec;
      rec.id = ids[i];
      rec.ts = chunk.items[i].ts;
      rec.count = chunk.items[i].count;
      svc.delta.arrivals.push_back(rec);
    }
  }
  if (!chunk.items.empty()) {
    svc.dirty = true;
    ++svc.chunks_applied;
  }
}

// Same hand-off protocol (and the same analysis opt-out) as IngestBatch:
// pre_ is touched only inside the phases IngestBatch locks internally.
void QueryBot5000::ApplyChunk(const ArrivalChunk& chunk)
    QB_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<QueryArrival> arrivals = ChunkViews(chunk);
  std::vector<TemplateId> ids = pre_.IngestBatch(arrivals, state_mu_);
  RecordChunkApplied(chunk, ids);
}

namespace {
/// Run-size cap for the sharded drain: enough claimed chunks to keep every
/// prep worker busy ahead of the merge without materializing the whole ring
/// at once. Claim order == pop order == the order the inline drain applies,
/// so the cap affects pipelining only, never results.
constexpr size_t kDrainRunChunks = 16;
}  // namespace

bool QueryBot5000::DrainSharded() {
  ServiceState& svc = *service_;
  bool did_work = false;
  for (;;) {
    // Assemble a run: chunks stashed by a cut-short merge first (they were
    // claimed earlier, so they stay ahead of anything still in the ring).
    std::vector<ArrivalChunk> run;
    run.reserve(kDrainRunChunks);
    while (run.size() < kDrainRunChunks && !svc.retry.empty()) {
      run.push_back(std::move(svc.retry.front()));
      svc.retry.pop_front();
    }
    size_t base = run.size();
    run.resize(kDrainRunChunks);
    size_t got =
        svc.queue.TryPopBatch(run.data() + base, kDrainRunChunks - base);
    run.resize(base + got);
    if (run.empty()) return did_work;
    did_work = true;
    // Chaos probe: same wedged-drain seam as the inline path, once per run.
    ChaosHarness::Global().MaybeStall("service.drain");
    size_t merged = ApplyRunSharded(std::span<ArrivalChunk>(run));
    queue_depth_gauge_->Set(static_cast<double>(svc.queue.ApproxSize()));
    if (merged < run.size()) {
      // The service.merge alloc-fail probe cut the run short: stash the
      // unmerged tail in order and let the next round retry it. Previously
      // published models keep serving; nothing is lost or reordered.
      for (size_t i = run.size(); i-- > merged;) {
        svc.retry.push_front(std::move(run[i]));
      }
      return true;
    }
  }
}

// Prep runs on the DrainPool workers (shared-lock cache probe inside
// PrepareBatch), the ordered merge on this thread (exclusive lock inside
// MergePrepared) — the same phased hand-off protocol, and the same analysis
// opt-out, as IngestBatch.
size_t QueryBot5000::ApplyRunSharded(std::span<ArrivalChunk> run)
    QB_NO_THREAD_SAFETY_ANALYSIS {
  ServiceState& svc = *service_;
  struct PreparedChunk {
    std::vector<QueryArrival> arrivals;  ///< views into the chunk's bytes
    PreProcessor::PreparedBatch batch;
  };
  std::vector<PreparedChunk> prepped(run.size());
  svc.pool.BeginRun(run.size(), [&](size_t i) {
    // Chaos probe: one slow shard worker (page-in, noisy neighbor) must
    // delay the ordered merge, never reorder it.
    ChaosHarness::Global().MaybeStall("service.shard");
    prepped[i].arrivals = ChunkViews(run[i]);
    prepped[i].batch = pre_.PrepareBatch(prepped[i].arrivals, state_mu_);
  });
  size_t merged = 0;
  bool aborted = false;
  for (size_t i = 0; i < run.size(); ++i) {
    // Await in claim order even after an abort: EndRun requires every job
    // retired, and the stalled-worker chaos test relies on the wait.
    bool waited = svc.pool.AwaitPrepared(i);
    if (aborted) continue;
    if (waited) drain_merge_waits_total_->Add();
    if (ChaosHarness::Global().FailAlloc("service.merge")) {
      aborted = true;
      continue;
    }
    std::vector<TemplateId> ids = pre_.MergePrepared(
        std::move(prepped[i].batch), prepped[i].arrivals, state_mu_);
    RecordChunkApplied(run[i], ids);
    ++merged;
  }
  svc.pool.EndRun();
  return merged;
}

void QueryBot5000::FoldExternalEvictCutoff() {
  ServiceState& svc = *service_;
  Timestamp ext = svc.external_evict_cutoff.exchange(
      std::numeric_limits<Timestamp>::min(), std::memory_order_acq_rel);
  if (ext == std::numeric_limits<Timestamp>::min()) return;
  if (ext > svc.delta.evict_cutoff) {
    svc.delta.evict_cutoff = ext;
    // An eviction with no new arrivals still changes restorable state.
    svc.dirty = true;
  }
}

bool QueryBot5000::MaybeServiceMaintenance() {
  ServiceState& svc = *service_;
  if (!svc.options.auto_maintenance) return false;
  if (svc.highwater == std::numeric_limits<Timestamp>::min()) return false;
  // Retry gate: nothing new arrived since the last attempt, so a re-run
  // could only reproduce the same outcome (or spin on a failing train).
  if (svc.maintenance_attempt_chunks == svc.chunks_applied) return false;
  {
    // Cheap pre-check under the shared lock so idle rounds neither take the
    // exclusive lock nor churn the skipped counter. The service thread is
    // the only mutator of last_maintenance_ while the service runs, so the
    // verdict cannot go stale between this check and the pass itself.
    ReaderLock lock(state_mu_);
    bool never_ran =
        last_maintenance_ == std::numeric_limits<Timestamp>::min();
    bool due = never_ran ||
               svc.highwater - last_maintenance_ >=
                   config_.maintenance_period_seconds ||
               svc.highwater < last_maintenance_;
    if (!due && !clusterer_.ShouldTrigger(pre_)) return false;
  }
  svc.maintenance_attempt_chunks = svc.chunks_applied;
  (void)ServiceMaintenance(svc.highwater);
  return true;
}

Status QueryBot5000::ServiceMaintenance(Timestamp now) {
  ServiceState& svc = *service_;
  now = ChaosHarness::Global().MaybeJumpClock("maintenance.clock", now);
  ScopedTimer maintenance_timer(maintenance_seconds_);
  ScopedSpan maintenance_span(tracer_.get(), "maintenance");
  // Phase 1 (exclusive, brief): housekeeping, clustering, selection, and a
  // copy of the published models to stage the train on.
  Forecaster staged(config_.forecaster);
  std::vector<ClusterId> clusters;
  {
    Stopwatch lock_wait;
    WriterLock lock(state_mu_);
    lock_wait_seconds_->Observe(lock_wait.ElapsedSeconds());
    if (!MaintenanceDueLocked(now, /*force=*/false)) return Status::Ok();
    Timestamp evict_cutoff = std::numeric_limits<Timestamp>::min();
    clusters = MaintenanceHousekeepLocked(now, &evict_cutoff);
    if (evict_cutoff > svc.delta.evict_cutoff) {
      svc.delta.evict_cutoff = evict_cutoff;
    }
    if (clusters.empty()) return Status::Ok();
    staged = *forecaster_;
  }
  // Phase 2 (shared): the expensive train runs on the staged copy while
  // Forecast readers proceed concurrently — this is the lock-hold the old
  // synchronous path paid exclusively and the degradation ladder had to
  // absorb on every retrain.
  Status st;
  {
    ReaderLock lock(state_mu_);
    ScopedSpan span(tracer_.get(), "maintenance/train");
    ChaosHarness::Global().MaybeStall("maintenance.train");
    st = staged.Train(pre_, clusterer_, clusters, now, config_.horizons);
  }
  // Phase 3 (exclusive, O(1)): pointer-swap the snapshot in. Published even
  // when the train failed or was health-gate rejected, exactly like the
  // synchronous path — the rollback bookkeeping (last_recovery) must be
  // observable, and a rejected train kept the previous models anyway.
  {
    WriterLock lock(state_mu_);
    PublishModelsLocked(std::move(staged));
    if (st.ok()) last_maintenance_ = now;
  }
  return st;
}

bool QueryBot5000::MaybeDeltaCheckpoint() {
  ServiceState& svc = *service_;
  if (!svc.checkpointing()) return false;
  // Caller-driven maintenance may have evicted templates since the last
  // write; fold its cutoff in so the dirty check below sees it.
  FoldExternalEvictCutoff();
  if (svc.highwater == std::numeric_limits<Timestamp>::min()) return false;
  if (!svc.delta.base_valid) {
    // First write of this service session establishes the delta's base.
    (void)ServiceFullCheckpoint();
    svc.last_checkpoint = svc.highwater;
    return true;
  }
  bool has_last =
      svc.last_checkpoint != std::numeric_limits<Timestamp>::min();
  if (has_last && svc.highwater - svc.last_checkpoint <
                      svc.options.checkpoint_period_seconds) {
    return false;
  }
  if (!svc.dirty) {
    svc.last_checkpoint = svc.highwater;
    return false;
  }
  // Failures leave the log intact and retry next period (the arrival clock
  // advanced past this attempt either way, so there is no busy-loop).
  if (svc.deltas_since_full + 1 >= svc.options.compact_every) {
    (void)ServiceFullCheckpoint();
  } else {
    (void)WriteDeltaCheckpoint();
  }
  svc.last_checkpoint = svc.highwater;
  return true;
}

}  // namespace qb5000

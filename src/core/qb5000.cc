#include "core/qb5000.h"

#include <mutex>
#include <shared_mutex>

namespace qb5000 {

QueryBot5000::QueryBot5000(Config config)
    : config_(config),
      pre_(config.preprocessor),
      clusterer_(config.clusterer),
      forecaster_(config.forecaster) {}

Status QueryBot5000::Ingest(const std::string& sql, Timestamp ts, double count) {
  std::unique_lock<std::shared_mutex> lock(*state_mu_);
  auto id = pre_.Ingest(sql, ts, count);
  return id.ok() ? Status::Ok() : id.status();
}

void QueryBot5000::IngestTemplatized(const TemplatizeOutput& templatized,
                                     Timestamp ts, double count) {
  std::unique_lock<std::shared_mutex> lock(*state_mu_);
  pre_.IngestTemplatized(templatized, ts, count);
}

std::vector<ClusterId> QueryBot5000::ModeledClusters() const {
  std::shared_lock<std::shared_mutex> lock(*state_mu_);
  return ModeledClustersLocked();
}

std::vector<ClusterId> QueryBot5000::ModeledClustersLocked() const {
  // Take the highest-volume clusters until coverage_target of the total
  // volume is covered, capped at max_modeled_clusters (Section 5.3).
  std::vector<ClusterId> top =
      clusterer_.TopClustersByVolume(config_.max_modeled_clusters);
  double total = clusterer_.TotalVolume();
  if (total <= 0.0) return top;
  std::vector<ClusterId> chosen;
  double covered = 0.0;
  for (ClusterId id : top) {
    chosen.push_back(id);
    covered += clusterer_.clusters().at(id).volume;
    if (covered / total >= config_.coverage_target) break;
  }
  return chosen;
}

Status QueryBot5000::RunMaintenance(Timestamp now, bool force) {
  std::unique_lock<std::shared_mutex> lock(*state_mu_);
  // last_maintenance_ starts at Timestamp::min() meaning "never ran";
  // `now - min()` is signed overflow (UB, UBSan-fatal), so test the
  // sentinel before forming the difference.
  bool never_ran =
      last_maintenance_ == std::numeric_limits<Timestamp>::min();
  if (!never_ran && now < last_maintenance_) {
    // The clock went backwards (NTP step, VM migration). Re-anchor the
    // timer to the regressed clock: leaving last_maintenance_ in the future
    // would silently disable periodic maintenance until the clock catches
    // back up past it plus a full period.
    last_maintenance_ = now;
  }
  bool due = never_ran ||
             now - last_maintenance_ >= config_.maintenance_period_seconds;
  bool triggered = clusterer_.ShouldTrigger(pre_);
  if (!force && !due && !triggered) return Status::Ok();

  pre_.EvictIdleTemplates(now - config_.template_eviction_seconds);
  pre_.CompactBefore(now);
  clusterer_.Update(pre_, now);

  std::vector<ClusterId> clusters = ModeledClustersLocked();
  if (clusters.empty()) {
    last_maintenance_ = now;
    return Status::Ok();  // nothing to model yet
  }
  Status st = forecaster_.Train(pre_, clusterer_, clusters, now,
                                config_.horizons);
  if (!st.ok()) return st;
  last_maintenance_ = now;
  return Status::Ok();
}

Result<QueryBot5000::WorkloadForecast> QueryBot5000::Forecast(
    Timestamp now, int64_t horizon_seconds) const {
  std::shared_lock<std::shared_mutex> lock(*state_mu_);
  if (!forecaster_.trained()) {
    return Status::FailedPrecondition(
        "no trained models; call RunMaintenance first");
  }
  auto rates = forecaster_.Forecast(pre_, clusterer_, now, horizon_seconds);
  if (!rates.ok()) return rates.status();
  WorkloadForecast forecast;
  forecast.clusters = forecaster_.modeled_clusters();
  forecast.queries_per_interval = std::move(*rates);
  forecast.interval_seconds = config_.forecaster.interval_seconds;
  // Models predict the cluster *center* (the members' average arrival
  // rate); the planning-facing number is the cluster total.
  for (size_t i = 0; i < forecast.clusters.size() &&
                     i < forecast.queries_per_interval.size();
       ++i) {
    auto it = clusterer_.clusters().find(forecast.clusters[i]);
    if (it != clusterer_.clusters().end()) {
      forecast.queries_per_interval[i] *=
          static_cast<double>(it->second.members.size());
    }
  }
  return forecast;
}

}  // namespace qb5000

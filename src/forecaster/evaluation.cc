#include "forecaster/evaluation.h"

#include <algorithm>

#include "common/metrics.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

}  // namespace

Result<EvaluationResult> EvaluateModel(ModelKind kind,
                                       const std::vector<TimeSeries>& series,
                                       size_t input_window, size_t horizon_steps,
                                       double train_fraction,
                                       const ModelOptions& base_options) {
  ModelOptions options = base_options;
  options.input_window = input_window;
  options.num_series = series.size();

  auto dataset = BuildDataset(series, input_window, horizon_steps);
  if (!dataset.ok()) return dataset.status();
  size_t n = dataset->x.rows();
  size_t train_n = static_cast<size_t>(static_cast<double>(n) * train_fraction);
  train_n = std::clamp<size_t>(train_n, 1, n - 1);
  if (n < 2) return Status::InvalidArgument("not enough examples to evaluate");

  Matrix train_x = SubMatrix(dataset->x, train_n);
  Matrix train_y = SubMatrix(dataset->y, train_n);

  EvaluationResult result;
  Stopwatch train_timer;

  // HYBRID needs its KR component trained with a (possibly longer) window.
  std::shared_ptr<KernelRegressionModel> hybrid_kr;
  std::unique_ptr<ForecastModel> model;
  size_t kr_window = options.kr_input_window > 0 ? options.kr_input_window
                                                 : input_window;
  ForecastDataset kr_dataset;
  if (kind == ModelKind::kHybrid) {
    auto lr = std::make_shared<LinearRegressionModel>(options);
    auto rnn = std::make_shared<RnnModel>(options);
    Status st = lr->Fit(train_x, train_y);
    if (!st.ok()) return st;
    st = rnn->Fit(train_x, train_y);
    if (!st.ok()) return st;
    auto ensemble = std::make_shared<EnsembleModel>(lr, rnn);

    ModelOptions kr_options = options;
    kr_options.input_window = kr_window;
    hybrid_kr = std::make_shared<KernelRegressionModel>(kr_options);
    auto kr_data = BuildDataset(series, kr_window, horizon_steps);
    if (kr_data.ok()) {
      // Restrict KR training rows to targets inside the training range.
      size_t kr_n = kr_data->x.rows();
      size_t limit = train_n + input_window >= kr_window
                         ? std::min(kr_n, train_n + input_window - kr_window + 1)
                         : 0;
      if (limit >= 2) {
        Status st_kr = hybrid_kr->Fit(SubMatrix(kr_data->x, limit),
                                      SubMatrix(kr_data->y, limit));
        if (!st_kr.ok()) return st_kr;
        kr_dataset = std::move(*kr_data);
      } else {
        hybrid_kr.reset();
      }
    } else {
      hybrid_kr.reset();
    }
    if (hybrid_kr != nullptr) {
      model = std::make_unique<HybridModel>(ensemble, hybrid_kr, options.gamma);
    } else {
      model.reset(new EnsembleModel(lr, rnn));
    }
  } else {
    model = CreateModel(kind, options);
    if (model == nullptr) return Status::InvalidArgument("unknown model kind");
    Status st = model->Fit(train_x, train_y);
    if (!st.ok()) return st;
  }
  result.train_seconds = train_timer.ElapsedSeconds();

  // Walk-forward over the test rows.
  Vector actual_flat, predicted_flat;
  auto* hybrid = dynamic_cast<HybridModel*>(model.get());
  for (size_t i = train_n; i < n; ++i) {
    Vector x = dataset->x.Row(i);
    Result<Vector> pred = Status::Internal("unset");
    if (hybrid != nullptr && hybrid_kr != nullptr) {
      // The KR row whose window ends where this example's window ends.
      int64_t kr_row = static_cast<int64_t>(i) + static_cast<int64_t>(input_window) -
                       static_cast<int64_t>(kr_window);
      if (kr_row >= 0 &&
          kr_row < static_cast<int64_t>(kr_dataset.x.rows())) {
        pred = hybrid->PredictWithKrInput(
            x, kr_dataset.x.Row(static_cast<size_t>(kr_row)));
      } else {
        pred = hybrid->Predict(x);
      }
    } else {
      pred = model->Predict(x);
    }
    if (!pred.ok()) return pred.status();
    Vector pred_rates = ToArrivalRates(*pred);
    Vector actual_rates = ToArrivalRates(dataset->y.Row(i));
    for (size_t j = 0; j < pred_rates.size(); ++j) {
      predicted_flat.push_back(pred_rates[j]);
      actual_flat.push_back(actual_rates[j]);
    }
    size_t target_index = i + input_window + horizon_steps - 1;
    result.times.push_back(series[0].TimeAt(target_index));
    result.predicted.push_back(std::move(pred_rates));
    result.actual.push_back(std::move(actual_rates));
  }
  result.log_mse = LogSpaceMse(actual_flat, predicted_flat);
  return result;
}

std::vector<double> SumAcrossSeries(const std::vector<Vector>& per_point) {
  std::vector<double> out;
  out.reserve(per_point.size());
  for (const auto& v : per_point) {
    double sum = 0.0;
    for (double x : v) sum += x;
    out.push_back(sum);
  }
  return out;
}

}  // namespace qb5000

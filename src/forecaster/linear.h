#pragma once

#include <vector>

#include "common/finite.h"
#include "forecaster/model.h"

namespace qb5000 {

/// Linear auto-regression (Section 6.1's LR): multi-output ridge regression
/// with a bias term, solved in closed form. The workhorse for short
/// prediction horizons.
class LinearRegressionModel : public ForecastModel {
 public:
  explicit LinearRegressionModel(const ModelOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "LR"; }
  ModelTraits traits() const override { return {true, false, false}; }
  bool ParametersFinite() const override {
    return AllFinite(weights_.data());
  }

  /// Learned weights ((input_dim + 1) x output_dim, last row = bias).
  const Matrix& weights() const { return weights_; }

 private:
  ModelOptions options_;
  Matrix weights_;
  bool fitted_ = false;
};

/// Autoregressive moving average (ARMA): an AR part fit like LR plus an MA
/// correction regressed on the AR model's lagged in-sample residuals. The
/// residual state is carried from the (chronologically ordered) training
/// rows, matching how ARMA uses all previous observations through its
/// residual memory.
class ArmaModel : public ForecastModel {
 public:
  explicit ArmaModel(const ModelOptions& options) : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "ARMA"; }
  ModelTraits traits() const override { return {true, true, false}; }
  bool ParametersFinite() const override {
    if (!AllFinite(ar_weights_.data()) || !AllFinite(ma_weights_.data())) {
      return false;
    }
    for (const Vector& r : recent_residuals_) {
      if (!AllFinite(r)) return false;
    }
    return true;
  }

 private:
  ModelOptions options_;
  Matrix ar_weights_;
  Matrix ma_weights_;  ///< (ma_order x output_dim): per-lag residual weights
  std::vector<Vector> recent_residuals_;  ///< last ma_order training residuals
  bool fitted_ = false;
};

}  // namespace qb5000

#pragma once

#include <vector>

#include "common/finite.h"
#include "common/rng.h"
#include "forecaster/model.h"

namespace qb5000 {

/// Per-column z-scoring fitted on the training data. The neural models
/// standardize inputs and targets (log1p arrival rates sit at magnitude
/// ~10, which saturates tanh units) and invert the target transform on
/// prediction.
class Standardizer {
 public:
  /// Fits column statistics on `data` and returns the transformed copy.
  Matrix FitTransform(const Matrix& data);
  /// Applies fitted statistics to one row vector.
  Vector Transform(const Vector& row) const;
  /// Inverts the transform on one (predicted) row vector.
  Vector Inverse(const Vector& row) const;
  bool fitted() const { return !mean_.empty(); }

  /// True iff the fitted statistics are usable (all finite). FitTransform
  /// scrubs poisoned columns to the identity transform, so this holds after
  /// any fit; it exists so model health checks cover the transform state.
  bool Finite() const { return AllFinite(mean_) && AllFinite(std_); }

 private:
  Vector mean_;
  Vector std_;
};

/// Feed-forward network (the paper's FNN baseline): one tanh hidden layer
/// over the flattened input window, trained with Adam and early stopping on
/// a held-out validation tail.
class FnnModel : public ForecastModel {
 public:
  explicit FnnModel(const ModelOptions& options) : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "FNN"; }
  ModelTraits traits() const override { return {false, false, false}; }
  bool ParametersFinite() const override {
    return AllFinite(params_) && x_std_.Finite() && y_std_.Finite();
  }

 private:
  ModelOptions options_;
  size_t in_dim_ = 0, hidden_ = 0, out_dim_ = 0;
  std::vector<double> params_;
  Standardizer x_std_;
  Standardizer y_std_;
  bool fitted_ = false;
};

/// LSTM recurrent network (the paper's RNN): linear embedding of each
/// interval's per-cluster rates, a stack of LSTM layers, and a linear head
/// from the final hidden state. Trained with truncated-to-window BPTT and
/// Adam; training stops when validation loss stops improving (Section 7.5).
class RnnModel : public ForecastModel {
 public:
  explicit RnnModel(const ModelOptions& options) : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "RNN"; }
  ModelTraits traits() const override { return {false, true, false}; }
  bool ParametersFinite() const override {
    return AllFinite(params_) && x_std_.Finite() && y_std_.Finite();
  }

 private:
  ModelOptions options_;
  size_t seq_len_ = 0, in_dim_ = 0, out_dim_ = 0;
  std::vector<double> params_;
  Standardizer x_std_;
  Standardizer y_std_;
  bool fitted_ = false;
};

/// Predictive State RNN (simplified reproduction of [17]): a single-layer
/// vanilla RNN whose parameters are initialized by a method-of-moments
/// style two-stage ridge regression (past window -> future observation)
/// before BPTT refinement, rather than randomly. This captures PSRNN's
/// distinguishing property — a principled initialization that may or may
/// not beat LSTM depending on data volume — without the full Hilbert-space
/// embedding machinery (see DESIGN.md substitutions).
class PsrnnModel : public ForecastModel {
 public:
  explicit PsrnnModel(const ModelOptions& options) : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "PSRNN"; }
  ModelTraits traits() const override { return {false, true, true}; }
  bool ParametersFinite() const override {
    return AllFinite(params_) && x_std_.Finite() && y_std_.Finite();
  }

 private:
  ModelOptions options_;
  size_t seq_len_ = 0, in_dim_ = 0, hidden_ = 0, out_dim_ = 0;
  std::vector<double> params_;
  Standardizer x_std_;
  Standardizer y_std_;
  bool fitted_ = false;
};

}  // namespace qb5000

#pragma once

#include <memory>

#include "forecaster/model.h"

namespace qb5000 {

/// ENSEMBLE (Section 6.1): the unweighted average of LR and RNN predictions.
/// The paper found equal averaging beats history-weighted averaging (which
/// overfits), so no weighting knob is exposed.
class EnsembleModel : public ForecastModel {
 public:
  explicit EnsembleModel(const ModelOptions& options);

  /// Constructs from already-trained components (lets benches share one
  /// trained LR/RNN across ENSEMBLE and HYBRID instead of retraining).
  EnsembleModel(std::shared_ptr<ForecastModel> lr,
                std::shared_ptr<ForecastModel> rnn);

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "ENSEMBLE"; }
  ModelTraits traits() const override { return {false, true, false}; }
  bool ParametersFinite() const override {
    return (lr_ == nullptr || lr_->ParametersFinite()) &&
           (rnn_ == nullptr || rnn_->ParametersFinite());
  }

  /// The LR component — the degradation ladder's linear-only rung predicts
  /// through it when the budget cannot afford the RNN/KR components.
  const std::shared_ptr<ForecastModel>& lr() const { return lr_; }

 private:
  std::shared_ptr<ForecastModel> lr_;
  std::shared_ptr<ForecastModel> rnn_;
  bool prefitted_ = false;
};

/// HYBRID (Section 6.1): uses ENSEMBLE's prediction unless KR forecasts a
/// volume more than (1 + gamma) times higher — the spike-detection rule that
/// lets QB5000 anticipate rare events like annual deadlines. Components may
/// be trained on different datasets (the paper trains KR on the full history
/// at one-hour intervals); use the prefitted constructor for that.
class HybridModel : public ForecastModel {
 public:
  explicit HybridModel(const ModelOptions& options);

  HybridModel(std::shared_ptr<ForecastModel> ensemble,
              std::shared_ptr<ForecastModel> kr, double gamma);

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;

  /// Predict with a dedicated KR input (when KR was trained with a different
  /// window than the ensemble, per Section 6.2).
  Result<Vector> PredictWithKrInput(const Vector& ensemble_x,
                                    const Vector& kr_x) const;

  std::string_view name() const override { return "HYBRID"; }
  ModelTraits traits() const override { return {false, true, true}; }
  bool ParametersFinite() const override {
    return (ensemble_ == nullptr || ensemble_->ParametersFinite()) &&
           (kr_ == nullptr || kr_->ParametersFinite());
  }

 private:
  std::shared_ptr<ForecastModel> ensemble_;
  std::shared_ptr<ForecastModel> kr_;
  double gamma_;
  bool prefitted_ = false;
};

}  // namespace qb5000

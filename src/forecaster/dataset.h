#pragma once

#include <vector>

#include "common/status.h"
#include "common/timeseries.h"
#include "math/matrix.h"

namespace qb5000 {

/// Sliding-window training data for the forecasting models. Built from the
/// aligned cluster-center series: each example's input is the log1p arrival
/// rates of all clusters over `input_window` consecutive intervals, and its
/// target is the log1p rates `horizon_steps` intervals after the window.
struct ForecastDataset {
  Matrix x;  ///< n x (input_window * num_series), chronological rows
  Matrix y;  ///< n x num_series
  size_t input_window = 0;
  size_t num_series = 0;
  size_t horizon_steps = 0;
};

/// Builds a dataset from `series` (all must share start, interval, and
/// length). Requires enough data for at least one example.
Result<ForecastDataset> BuildDataset(const std::vector<TimeSeries>& series,
                                     size_t input_window, size_t horizon_steps);

/// The most recent input window of `series`, log1p-transformed — the vector
/// passed to ForecastModel::Predict for a live forecast.
Result<Vector> LatestWindow(const std::vector<TimeSeries>& series,
                            size_t input_window);

/// Maps a model output (log1p space) back to arrival rates.
Vector ToArrivalRates(const Vector& log_space);

/// Maps arrival rates into the models' log1p space.
Vector ToLogSpace(const Vector& rates);

}  // namespace qb5000

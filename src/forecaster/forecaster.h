#pragma once

#include <map>
#include <memory>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "forecaster/model.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// The Forecaster (Section 6): trains one model per prediction horizon on
/// the arrival-rate series of the highest-volume clusters and answers
/// "how many queries will each cluster receive at now + horizon?".
///
/// One model jointly predicts all modeled clusters (the paper shares
/// information across clusters this way). The per-minute history is
/// aggregated to `interval_seconds` for training, and HYBRID's KR component
/// is trained on the full recorded history at one-hour intervals so it can
/// recognize long-period spikes.
class Forecaster {
 public:
  struct Options {
    /// Prediction interval (Section 6.2); one hour by default.
    int64_t interval_seconds = kSecondsPerHour;
    /// Number of intervals per input window ("the last day's arrival rate").
    size_t input_window = 24;
    /// Training data span; the paper uses up to three weeks.
    int64_t training_window_seconds = 21 * kSecondsPerDay;
    /// Model family to deploy.
    ModelKind kind = ModelKind::kHybrid;
    ModelOptions model;
    /// Registry receiving `forecaster.*` metrics; nullptr = the process
    /// global. QueryBot5000 overrides this with its per-instance registry.
    MetricsRegistry* metrics = nullptr;
  };

  Forecaster() : Forecaster(Options()) {}
  explicit Forecaster(Options options);

  /// Trains models for every horizon (seconds) over the given clusters'
  /// center series ending at `now`. Replaces any previously trained models.
  Status Train(const PreProcessor& pre, const OnlineClusterer& clusterer,
               const std::vector<ClusterId>& clusters, Timestamp now,
               const std::vector<int64_t>& horizons_seconds);

  /// Predicts each modeled cluster's arrival rate (queries per interval)
  /// for the interval at `now + horizon`. `now` may be later than the
  /// training time; the freshest history is used as input.
  Result<Vector> Forecast(const PreProcessor& pre,
                          const OnlineClusterer& clusterer, Timestamp now,
                          int64_t horizon_seconds) const;

  const std::vector<ClusterId>& modeled_clusters() const { return clusters_; }
  std::vector<int64_t> horizons() const;
  bool trained() const { return !models_.empty(); }

 private:
  /// Aligned center series for the modeled clusters over [from, to).
  Result<std::vector<TimeSeries>> GatherSeries(const PreProcessor& pre,
                                               const OnlineClusterer& clusterer,
                                               int64_t interval, Timestamp from,
                                               Timestamp to) const;

  struct HorizonModel {
    std::shared_ptr<ForecastModel> model;
    size_t horizon_steps = 0;
    size_t kr_window = 0;  ///< nonzero when the model is HYBRID
  };

  /// Fits the model (or HYBRID stack) for one horizon into `out`. Touches
  /// only const state plus `out`, so Train can fit horizons concurrently.
  Status FitHorizon(const PreProcessor& pre, const OnlineClusterer& clusterer,
                    const std::vector<TimeSeries>& series, Timestamp now,
                    int64_t horizon, HorizonModel* out) const;

  /// Registers (or looks up) a per-horizon instrument, e.g.
  /// HorizonHistogram("train_seconds", 3600) -> forecaster.train_seconds.h3600.
  /// Safe from ParallelFor workers: the registry handles concurrent lookups.
  Histogram* HorizonHistogram(const char* what, int64_t horizon) const;
  Gauge* HorizonGauge(const char* what, int64_t horizon) const;

  Options options_;
  MetricsRegistry* registry_ = nullptr;  ///< resolved from Options::metrics
  Counter* trainings_total_ = nullptr;   ///< Train() calls
  Counter* predictions_total_ = nullptr; ///< Forecast() calls
  std::vector<ClusterId> clusters_;
  std::map<int64_t, HorizonModel> models_;  ///< keyed by horizon seconds
  /// Per-cluster cap on log-space predictions: the training-history peak
  /// plus headroom. Guards against models extrapolating to absurd volumes
  /// when live inputs fall outside the training distribution (e.g. during
  /// a workload shift, Appendix D).
  Vector prediction_cap_log_;
};

}  // namespace qb5000

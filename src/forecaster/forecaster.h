#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "forecaster/model.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// How a Forecast was served — the degradation ladder (DESIGN.md §13).
/// Budgeted calls walk down the ladder instead of blocking or failing:
/// each rung trades accuracy for a hard latency bound.
enum class ForecastRung {
  kFull = 0,        ///< the trained model stack (HYBRID/ENSEMBLE/...)
  kLinearOnly = 1,  ///< just the LR component — one closed-form mat-vec
  kFallback = 2,    ///< precomputed history-average snapshot (controller)
};

/// What a training round did when something went wrong — the runtime
/// sibling of checkpointing's RestoreReport (DESIGN.md §8): callers learn
/// whether they are serving fresh models, rolled-back last-good models, or
/// nothing.
struct RecoveryReport {
  /// The health gate rejected at least one freshly-fitted horizon
  /// (non-finite parameters or an in-sample MSE blow-up).
  bool health_check_failed = false;
  /// The previous (last-good) model set was kept serving; the staged
  /// models were discarded.
  bool rolled_back = false;
  /// There was no last-good set to keep — the forecaster is untrained.
  bool discarded = false;
  /// Horizons (seconds) whose staged model failed validation or fitting.
  std::vector<int64_t> failed_horizons;
  /// Human-readable cause for logs and test diagnostics.
  std::string detail;
};

/// The Forecaster (Section 6): trains one model per prediction horizon on
/// the arrival-rate series of the highest-volume clusters and answers
/// "how many queries will each cluster receive at now + horizon?".
///
/// One model jointly predicts all modeled clusters (the paper shares
/// information across clusters this way). The per-minute history is
/// aggregated to `interval_seconds` for training, and HYBRID's KR component
/// is trained on the full recorded history at one-hour intervals so it can
/// recognize long-period spikes.
///
/// Resilience (DESIGN.md §13): Train() stages the whole new model set and
/// commits it only after every horizon passes the health gate; a failed or
/// rejected round leaves the previous (last-good) models serving, recorded
/// in `forecaster.rollbacks_total` and the RecoveryReport. Forecast() takes
/// an optional Deadline and degrades to the linear-only rung when the
/// budget runs out mid-prediction.
class Forecaster {
 public:
  struct Options {
    /// Prediction interval (Section 6.2); one hour by default.
    int64_t interval_seconds = kSecondsPerHour;
    /// Number of intervals per input window ("the last day's arrival rate").
    size_t input_window = 24;
    /// Training data span; the paper uses up to three weeks.
    int64_t training_window_seconds = 21 * kSecondsPerDay;
    /// Model family to deploy.
    ModelKind kind = ModelKind::kHybrid;
    ModelOptions model;
    /// Health gate (DESIGN.md §13): validate every freshly-fitted model
    /// (finite parameters; in-sample MSE not exploding vs. the previous
    /// round) before it replaces the last-good set. Rarely disabled
    /// outside tests that study unhealthy models directly.
    bool health_gate = true;
    /// A staged model whose in-sample MSE exceeds this multiple of the
    /// previous model's (same horizon, same cluster set) fails the gate.
    /// Generous by design: workloads legitimately get harder to predict;
    /// the gate is for divergence (orders of magnitude), not drift.
    double health_mse_multiple = 16.0;
    /// Registry receiving `forecaster.*` metrics; nullptr = the process
    /// global. QueryBot5000 overrides this with its per-instance registry.
    MetricsRegistry* metrics = nullptr;
  };

  Forecaster() : Forecaster(Options()) {}
  explicit Forecaster(Options options);

  /// Trains models for every horizon (seconds) over the given clusters'
  /// center series ending at `now`, then atomically swaps them in iff the
  /// whole set passes the health gate. On a gate rejection with a previous
  /// trained set, rolls back (keeps it) and returns Ok — the service is
  /// degraded-but-sane, which `report` / last_recovery() and the
  /// `forecaster.rollbacks_total` counter record. Returns an error only
  /// when nothing trainable results (fit error, or a rejected first round
  /// with no last-good set to keep — the forecaster stays untrained).
  Status Train(const PreProcessor& pre, const OnlineClusterer& clusterer,
               const std::vector<ClusterId>& clusters, Timestamp now,
               const std::vector<int64_t>& horizons_seconds,
               RecoveryReport* report = nullptr);

  /// Predicts each modeled cluster's arrival rate (queries per interval)
  /// for the interval at `now + horizon`. `now` may be later than the
  /// training time; the freshest history is used as input.
  ///
  /// `deadline` (nullptr = unbounded) bounds the call: once exceeded, the
  /// prediction degrades to the linear-only rung (one mat-vec over the
  /// already-gathered window) instead of running the RNN/KR components,
  /// and if even the input gather cannot complete in budget the call
  /// returns kDeadlineExceeded so the controller can serve its
  /// history-average fallback. `rung_used` (optional) reports the rung
  /// that actually produced the value.
  Result<Vector> Forecast(const PreProcessor& pre,
                          const OnlineClusterer& clusterer, Timestamp now,
                          int64_t horizon_seconds,
                          const Deadline* deadline = nullptr,
                          ForecastRung* rung_used = nullptr) const;

  const std::vector<ClusterId>& modeled_clusters() const { return clusters_; }
  std::vector<int64_t> horizons() const;
  bool trained() const { return !models_.empty(); }

  /// What the most recent Train() round did (rollback/discard accounting).
  const RecoveryReport& last_recovery() const { return last_recovery_; }

 private:
  struct HorizonModel {
    std::shared_ptr<ForecastModel> model;
    /// The LR component backing the linear-only rung: the model itself for
    /// linear kinds, the shared LR inside ENSEMBLE/HYBRID stacks, nullptr
    /// when the deployed kind has no linear component (KR, pure neural).
    std::shared_ptr<ForecastModel> linear;
    size_t horizon_steps = 0;
    size_t kr_window = 0;  ///< nonzero when the model is HYBRID
    /// In-sample log-space MSE over the newest training rows; < 0 when it
    /// could not be evaluated. The health gate compares successive rounds.
    double train_mse = -1.0;
  };

  /// Aligned center series for `clusters` over [from, to). Takes the
  /// cluster list explicitly (not clusters_) so Train can gather for a
  /// staged set without mutating committed state.
  Result<std::vector<TimeSeries>> GatherSeries(
      const PreProcessor& pre, const OnlineClusterer& clusterer,
      const std::vector<ClusterId>& clusters, int64_t interval,
      Timestamp from, Timestamp to) const;

  /// Fits the model (or HYBRID stack) for one horizon into `out`. Touches
  /// only const state plus `out`, so Train can fit horizons concurrently.
  Status FitHorizon(const PreProcessor& pre, const OnlineClusterer& clusterer,
                    const std::vector<ClusterId>& clusters,
                    const std::vector<TimeSeries>& series, Timestamp now,
                    int64_t horizon, HorizonModel* out) const;

  /// Health gate for one staged horizon: finite parameters, and (when the
  /// modeled cluster set is unchanged, so the series are comparable) an
  /// in-sample MSE within health_mse_multiple of the previous round's.
  bool HorizonHealthy(const HorizonModel& staged, int64_t horizon,
                      bool same_clusters) const;

  /// Registers (or looks up) a per-horizon instrument, e.g.
  /// HorizonHistogram("train_seconds", 3600) -> forecaster.train_seconds.h3600.
  /// Safe from ParallelFor workers: the registry handles concurrent lookups.
  Histogram* HorizonHistogram(const char* what, int64_t horizon) const;
  Gauge* HorizonGauge(const char* what, int64_t horizon) const;

  Options options_;
  MetricsRegistry* registry_ = nullptr;  ///< resolved from Options::metrics
  Counter* trainings_total_ = nullptr;   ///< Train() calls
  Counter* predictions_total_ = nullptr; ///< Forecast() calls
  Counter* rollbacks_total_ = nullptr;   ///< rounds that kept last-good models
  Counter* health_failures_total_ = nullptr;  ///< per failing staged horizon
  std::vector<ClusterId> clusters_;
  std::map<int64_t, HorizonModel> models_;  ///< keyed by horizon seconds
  /// Per-cluster cap on log-space predictions: the training-history peak
  /// plus headroom. Guards against models extrapolating to absurd volumes
  /// when live inputs fall outside the training distribution (e.g. during
  /// a workload shift, Appendix D).
  Vector prediction_cap_log_;
  RecoveryReport last_recovery_;
};

}  // namespace qb5000

#pragma once

#include "common/finite.h"
#include "forecaster/model.h"

namespace qb5000 {

/// Nadaraya-Watson kernel regression (Section 6.1's KR): the prediction is
/// a kernel-weighted average of training targets, with RBF weights that
/// decay exponentially in the distance between the query window and each
/// training window. No iterative training; the model memorizes the data.
///
/// This is the only model in the paper able to predict rare repeating
/// spikes (Section 7.3 / Appendix B): inputs preceding a spike sit far from
/// "normal" inputs in kernel space, so when a spike-like window recurs the
/// nearby (spiky) training targets dominate the average.
class KernelRegressionModel : public ForecastModel {
 public:
  explicit KernelRegressionModel(const ModelOptions& options)
      : options_(options) {}

  Status Fit(const Matrix& x, const Matrix& y) override;
  Result<Vector> Predict(const Vector& x) const override;
  std::string_view name() const override { return "KR"; }
  ModelTraits traits() const override { return {false, false, true}; }
  bool ParametersFinite() const override {
    return IsFinite(bandwidth_) && bandwidth_ > 0.0 &&
           AllFinite(train_x_.data()) && AllFinite(train_y_.data());
  }

  double bandwidth() const { return bandwidth_; }

 private:
  ModelOptions options_;
  Matrix train_x_;
  Matrix train_y_;
  double bandwidth_ = 1.0;
  bool fitted_ = false;
};

}  // namespace qb5000

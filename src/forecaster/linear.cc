#include "forecaster/linear.h"

#include <algorithm>

#include "math/linalg.h"

namespace qb5000 {
namespace {

/// Appends a constant-1 bias column.
Matrix WithBias(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) out(i, j) = x(i, j);
    out(i, x.cols()) = 1.0;
  }
  return out;
}

Vector WithBias(const Vector& x) {
  Vector out = x;
  out.push_back(1.0);
  return out;
}

Vector ApplyWeights(const Matrix& weights, const Vector& x_with_bias) {
  Vector out(weights.cols(), 0.0);
  for (size_t j = 0; j < weights.cols(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < weights.rows(); ++i) {
      sum += weights(i, j) * x_with_bias[i];
    }
    out[j] = sum;
  }
  return out;
}

}  // namespace

Status LinearRegressionModel::Fit(const Matrix& x, const Matrix& y) {
  auto w = RidgeRegression(WithBias(x), y, options_.ridge_lambda);
  if (!w.ok()) return w.status();
  weights_ = std::move(*w);
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> LinearRegressionModel::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("LR model not fitted");
  if (x.size() + 1 != weights_.rows()) {
    return Status::InvalidArgument("LR input dimension mismatch");
  }
  return ApplyWeights(weights_, WithBias(x));
}

Status ArmaModel::Fit(const Matrix& x, const Matrix& y) {
  // AR part: identical to LR.
  auto ar = RidgeRegression(WithBias(x), y, options_.ridge_lambda);
  if (!ar.ok()) return ar.status();
  ar_weights_ = std::move(*ar);

  // In-sample residuals, in chronological order.
  size_t n = x.rows();
  size_t d = y.cols();
  std::vector<Vector> residuals(n);
  for (size_t i = 0; i < n; ++i) {
    Vector pred = ApplyWeights(ar_weights_, WithBias(x.Row(i)));
    Vector r(d);
    for (size_t j = 0; j < d; ++j) r[j] = y(i, j) - pred[j];
    residuals[i] = std::move(r);
  }

  // MA part: per-series regression of the residual at t on the previous
  // ma_order residuals of the same series.
  size_t q = std::min(options_.ma_order, n > 1 ? n - 1 : 0);
  ma_weights_ = Matrix(q, d);
  if (q > 0 && n > q) {
    for (size_t s = 0; s < d; ++s) {
      Matrix rx(n - q, q);
      Matrix ry(n - q, 1);
      for (size_t i = q; i < n; ++i) {
        for (size_t lag = 0; lag < q; ++lag) {
          rx(i - q, lag) = residuals[i - 1 - lag][s];
        }
        ry(i - q, 0) = residuals[i][s];
      }
      auto mw = RidgeRegression(rx, ry, options_.ridge_lambda);
      if (mw.ok()) {
        for (size_t lag = 0; lag < q; ++lag) ma_weights_(lag, s) = (*mw)(lag, 0);
      }
    }
  }

  // Keep the last q residuals as the prediction-time state.
  recent_residuals_.assign(residuals.end() - static_cast<long>(std::min(q, n)),
                           residuals.end());
  std::reverse(recent_residuals_.begin(), recent_residuals_.end());  // newest first
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> ArmaModel::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("ARMA model not fitted");
  if (x.size() + 1 != ar_weights_.rows()) {
    return Status::InvalidArgument("ARMA input dimension mismatch");
  }
  Vector pred = ApplyWeights(ar_weights_, WithBias(x));
  for (size_t s = 0; s < pred.size(); ++s) {
    for (size_t lag = 0; lag < ma_weights_.rows() && lag < recent_residuals_.size();
         ++lag) {
      pred[s] += ma_weights_(lag, s) * recent_residuals_[lag][s];
    }
  }
  return pred;
}

}  // namespace qb5000

#include "forecaster/model.h"

#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"

namespace qb5000 {

std::unique_ptr<ForecastModel> CreateModel(ModelKind kind,
                                           const ModelOptions& options) {
  switch (kind) {
    case ModelKind::kLr:
      return std::make_unique<LinearRegressionModel>(options);
    case ModelKind::kArma:
      return std::make_unique<ArmaModel>(options);
    case ModelKind::kKr:
      return std::make_unique<KernelRegressionModel>(options);
    case ModelKind::kFnn:
      return std::make_unique<FnnModel>(options);
    case ModelKind::kRnn:
      return std::make_unique<RnnModel>(options);
    case ModelKind::kPsrnn:
      return std::make_unique<PsrnnModel>(options);
    case ModelKind::kEnsemble:
      return std::make_unique<EnsembleModel>(options);
    case ModelKind::kHybrid:
      return std::make_unique<HybridModel>(options);
  }
  return nullptr;
}

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLr:
      return "LR";
    case ModelKind::kArma:
      return "ARMA";
    case ModelKind::kKr:
      return "KR";
    case ModelKind::kFnn:
      return "FNN";
    case ModelKind::kRnn:
      return "RNN";
    case ModelKind::kPsrnn:
      return "PSRNN";
    case ModelKind::kEnsemble:
      return "ENSEMBLE";
    case ModelKind::kHybrid:
      return "HYBRID";
  }
  return "UNKNOWN";
}

ModelTraits TraitsOf(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLr:
      return {true, false, false};
    case ModelKind::kArma:
      return {true, true, false};
    case ModelKind::kKr:
      return {false, false, true};
    case ModelKind::kFnn:
      return {false, false, false};
    case ModelKind::kRnn:
      return {false, true, false};
    case ModelKind::kPsrnn:
      return {false, true, true};
    case ModelKind::kEnsemble:
      return {false, true, false};
    case ModelKind::kHybrid:
      return {false, true, true};
  }
  return {};
}

}  // namespace qb5000

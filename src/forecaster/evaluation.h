#pragma once

#include <vector>

#include "common/status.h"
#include "common/timeseries.h"
#include "forecaster/model.h"

namespace qb5000 {

/// Output of a walk-forward evaluation: a model trained on the leading
/// fraction of the series and tested on every subsequent window.
struct EvaluationResult {
  /// The paper's metric: log of the MSE over log1p-space rates (Figure 7).
  double log_mse = 0.0;
  /// Per-test-point predictions and actuals in raw arrival-rate space,
  /// flattened across series (sum across clusters for single-line plots).
  std::vector<Vector> predicted;
  std::vector<Vector> actual;
  /// Timestamps of the predicted points.
  std::vector<Timestamp> times;
  /// Wall-clock seconds spent in Fit().
  double train_seconds = 0.0;
};

/// Trains `kind` on the first `train_fraction` of the aligned `series` and
/// evaluates one-shot predictions at `horizon_steps` over the remainder.
/// HYBRID trains its KR component on the same training range but with
/// options.kr_input_window (falling back to input_window when 0).
Result<EvaluationResult> EvaluateModel(ModelKind kind,
                                       const std::vector<TimeSeries>& series,
                                       size_t input_window, size_t horizon_steps,
                                       double train_fraction,
                                       const ModelOptions& options);

/// Sums a per-series vector sequence into one combined series (for plots of
/// total cluster volume such as Figures 9 and 16).
std::vector<double> SumAcrossSeries(const std::vector<Vector>& per_point);

}  // namespace qb5000

#include "forecaster/kernel_regression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "math/stats.h"

namespace qb5000 {

Status KernelRegressionModel::Fit(const Matrix& x, const Matrix& y) {
  if (x.rows() == 0 || x.rows() != y.rows()) {
    return Status::InvalidArgument("KR: bad training shapes");
  }
  train_x_ = x;
  train_y_ = y;
  if (options_.kr_bandwidth > 0.0) {
    bandwidth_ = options_.kr_bandwidth;
  } else {
    // Distance-quantile heuristic over a bounded subsample of row pairs.
    // A low quantile keeps the kernel local: only windows genuinely close
    // to the query influence its prediction, which is what lets KR isolate
    // spike precursors from the mass of "normal" windows (Appendix B).
    size_t n = x.rows();
    size_t stride = std::max<size_t>(1, n / 128);
    std::vector<double> distances;
    for (size_t i = 0; i < n; i += stride) {
      for (size_t j = i + stride; j < n; j += stride) {
        double d = std::sqrt(SquaredL2Distance(x.Row(i), x.Row(j)));
        if (d > 1e-9) distances.push_back(d);
      }
    }
    double q = Quantile(distances, 0.1);
    if (q <= 1e-9) q = Quantile(distances, 0.5);
    bandwidth_ = q > 1e-9 ? 0.5 * q : 1.0;
  }
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> KernelRegressionModel::Predict(const Vector& x) const {
  if (!fitted_) return Status::FailedPrecondition("KR model not fitted");
  if (x.size() != train_x_.cols()) {
    return Status::InvalidArgument("KR input dimension mismatch");
  }
  size_t n = train_x_.rows();
  size_t d = train_y_.cols();
  double denom = 2.0 * bandwidth_ * bandwidth_;
  const auto& xd = train_x_.data();

  // Training rows are scanned in fixed chunks of kChunk (a partitioning
  // that never depends on thread count), each chunk producing its own
  // partial sums. Reducing the partials in chunk index order makes the
  // result bit-identical at any concurrency; within a chunk the scan is
  // the sequential loop.
  constexpr size_t kChunk = 256;
  struct Partial {
    Vector numerator;
    double weight_sum = 0.0;
    double best_distance = std::numeric_limits<double>::infinity();
    size_t nearest = 0;
  };
  size_t num_chunks = (n + kChunk - 1) / kChunk;
  std::vector<Partial> partials(num_chunks);
  ParallelFor(0, n, kChunk, [&](size_t lo, size_t hi) {
    Partial& part = partials[lo / kChunk];
    part.numerator.assign(d, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      double dist_sq = 0.0;
      const double* row = &xd[i * train_x_.cols()];
      for (size_t j = 0; j < x.size(); ++j) {
        double diff = row[j] - x[j];
        dist_sq += diff * diff;
      }
      if (dist_sq < part.best_distance) {
        part.best_distance = dist_sq;
        part.nearest = i;
      }
      double w = std::exp(-dist_sq / denom);
      part.weight_sum += w;
      for (size_t j = 0; j < d; ++j) part.numerator[j] += w * train_y_(i, j);
    }
  });
  Vector numerator(d, 0.0);
  double weight_sum = 0.0;
  double best_distance = std::numeric_limits<double>::infinity();
  size_t nearest = 0;
  for (const Partial& part : partials) {
    for (size_t j = 0; j < d; ++j) numerator[j] += part.numerator[j];
    weight_sum += part.weight_sum;
    // Strict < with chunks visited in index order keeps the lowest-index
    // nearest row on ties, matching the sequential scan.
    if (part.best_distance < best_distance) {
      best_distance = part.best_distance;
      nearest = part.nearest;
    }
  }
  if (weight_sum < 1e-300) {
    // Query far outside the data: fall back to the nearest neighbor, the
    // natural limit of the estimator as all weights underflow.
    return train_y_.Row(nearest);
  }
  for (size_t j = 0; j < d; ++j) numerator[j] /= weight_sum;
  return numerator;
}

}  // namespace qb5000

#pragma once

#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/status.h"
#include "forecaster/model.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// Automatic prediction-interval selection — the paper's Section 7.4
/// future-work item. Evaluates candidate intervals by walk-forward
/// accuracy on the cluster series, normalized to a common per-hour target
/// (finer intervals must earn their extra training cost), and scores each
/// candidate by accuracy plus a training-time penalty.
class IntervalSelector {
 public:
  struct Options {
    /// Candidate intervals, seconds. Must be minute multiples; intervals
    /// above one hour are compared by even splitting (Section 7.4).
    std::vector<int64_t> candidates = {10 * kSecondsPerMinute,
                                       20 * kSecondsPerMinute,
                                       30 * kSecondsPerMinute, kSecondsPerHour,
                                       2 * kSecondsPerHour};
    /// Horizon the deployment cares about, seconds.
    int64_t horizon_seconds = kSecondsPerHour;
    /// Input window expressed in hours (converted per interval).
    int64_t input_window_hours = 24;
    /// History used, ending at `now`.
    int64_t history_seconds = 14 * kSecondsPerDay;
    double train_fraction = 0.7;
    /// Score = log_mse + time_weight * log1p(train_seconds): higher weight
    /// biases toward cheaper (coarser) intervals.
    double time_weight = 0.1;
    /// Clusters to model (top by volume).
    size_t max_clusters = 3;
    ModelKind kind = ModelKind::kLr;
    ModelOptions model;
  };

  struct Choice {
    int64_t interval_seconds = 0;
    double log_mse = 0.0;      ///< per-hour-normalized accuracy
    double train_seconds = 0.0;
    double score = 0.0;        ///< lower is better
  };

  /// Evaluates every candidate; returns choices sorted best-first.
  /// Candidates that cannot produce a valid dataset are skipped.
  static Result<std::vector<Choice>> Evaluate(const PreProcessor& pre,
                                              const OnlineClusterer& clusterer,
                                              Timestamp now,
                                              const Options& options);

  /// Convenience: the best interval, or an error if none evaluated.
  static Result<int64_t> Pick(const PreProcessor& pre,
                              const OnlineClusterer& clusterer, Timestamp now,
                              const Options& options);
};

}  // namespace qb5000

#pragma once

#include <memory>
#include <string_view>

#include "common/status.h"
#include "math/matrix.h"

namespace qb5000 {

/// The model families evaluated in the paper (Table 3 plus the two
/// composites built from them, Section 6.1).
enum class ModelKind {
  kLr,        ///< linear auto-regression (closed form)
  kArma,      ///< autoregressive moving average
  kKr,        ///< kernel regression (Nadaraya-Watson)
  kFnn,       ///< feed-forward neural network
  kRnn,       ///< LSTM recurrent network
  kPsrnn,     ///< predictive-state RNN (moment-based initialization)
  kEnsemble,  ///< average of LR and RNN
  kHybrid,    ///< ENSEMBLE corrected by KR above the gamma threshold
};

/// Table 3's property matrix.
struct ModelTraits {
  bool linear = false;
  bool memory = false;
  bool kernel = false;
};

/// Hyperparameters shared across model constructors. The paper fixes one
/// setting across workloads and horizons (Section 7.2); these defaults
/// mirror that (LSTM: embedding 25, two layers of 20 cells).
struct ModelOptions {
  /// Number of past intervals in each input window.
  size_t input_window = 24;
  /// Number of jointly-predicted series (clusters). Input rows have
  /// input_window * num_series columns; outputs have num_series.
  size_t num_series = 1;

  // Linear / ARMA.
  double ridge_lambda = 1e-3;
  size_t ma_order = 8;  ///< MA lag count for ARMA

  // Kernel regression.
  double kr_bandwidth = 0.0;  ///< 0 = median-distance heuristic

  // Neural models.
  size_t embedding_dim = 25;
  size_t hidden_dim = 20;
  size_t num_layers = 2;
  size_t max_epochs = 60;
  size_t patience = 8;  ///< early-stop patience on validation loss
  double learning_rate = 5e-3;
  double validation_fraction = 0.15;
  uint64_t seed = 1234;

  // Hybrid.
  double gamma = 1.5;  ///< KR overrides ENSEMBLE when kr > (1+gamma)*ens
  /// Input window for HYBRID's KR component (Section 6.2 trains KR on the
  /// full history); 0 = same window as the other models.
  size_t kr_input_window = 0;
};

/// A trained arrival-rate forecasting model. Inputs/outputs are in
/// log1p-transformed space (the paper trains on logs, Section 7.2); the
/// ForecastDataset helpers do the transform.
///
/// Fit() rows must be in chronological order: memory-based models (ARMA)
/// exploit the ordering to reconstruct residual state.
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  /// Trains on examples X (n x input_window*num_series) against targets
  /// Y (n x num_series).
  virtual Status Fit(const Matrix& x, const Matrix& y) = 0;

  /// Predicts the target vector for one input window.
  virtual Result<Vector> Predict(const Vector& x) const = 0;

  /// Health-gate hook (DESIGN.md §13): true iff every learned parameter is
  /// finite. A diverged fit (NaN/Inf anywhere in the learned state) fails
  /// this check and the Forecaster rolls back to its last-good models
  /// instead of deploying. The default covers models with no learned state;
  /// every concrete model overrides it over its own parameters.
  virtual bool ParametersFinite() const { return true; }

  virtual std::string_view name() const = 0;
  virtual ModelTraits traits() const = 0;
};

/// Constructs an untrained model of the given kind.
std::unique_ptr<ForecastModel> CreateModel(ModelKind kind,
                                           const ModelOptions& options);

/// Human-readable model name ("LR", "ENSEMBLE", ...).
std::string_view ModelKindName(ModelKind kind);

/// Traits for Table 3 without instantiating a model.
ModelTraits TraitsOf(ModelKind kind);

}  // namespace qb5000

#include "forecaster/forecaster.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/chaos.h"
#include "common/finite.h"
#include "common/thread_pool.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"

namespace qb5000 {
namespace {

/// Newest dataset rows evaluated for the per-horizon train_mse gauge.
constexpr size_t kMseSampleRows = 64;

/// MSE comparison floor: previous-round MSEs below this are treated as
/// this, so a near-perfect previous fit does not make every successor
/// "worse by more than the multiple" on noise alone.
constexpr double kMseFloor = 1e-6;

}  // namespace

Forecaster::Forecaster(Options options) : options_(options) {
  registry_ = options_.metrics != nullptr ? options_.metrics
                                          : &MetricsRegistry::Global();
  trainings_total_ = registry_->GetCounter("forecaster.trainings_total");
  predictions_total_ = registry_->GetCounter("forecaster.predictions_total");
  rollbacks_total_ = registry_->GetCounter("forecaster.rollbacks_total");
  health_failures_total_ =
      registry_->GetCounter("forecaster.health_failures_total");
}

Histogram* Forecaster::HorizonHistogram(const char* what,
                                        int64_t horizon) const {
  return registry_->GetHistogram("forecaster." + std::string(what) + ".h" +
                                 std::to_string(horizon));
}

Gauge* Forecaster::HorizonGauge(const char* what, int64_t horizon) const {
  return registry_->GetGauge("forecaster." + std::string(what) + ".h" +
                             std::to_string(horizon));
}

Result<std::vector<TimeSeries>> Forecaster::GatherSeries(
    const PreProcessor& pre, const OnlineClusterer& clusterer,
    const std::vector<ClusterId>& clusters, int64_t interval, Timestamp from,
    Timestamp to) const {
  std::vector<TimeSeries> series;
  series.reserve(clusters.size());
  for (ClusterId id : clusters) {
    auto center = clusterer.CenterSeries(pre, id, interval, from, to);
    if (!center.ok()) return center.status();
    series.push_back(std::move(*center));
  }
  return series;
}

bool Forecaster::HorizonHealthy(const HorizonModel& staged, int64_t horizon,
                                bool same_clusters) const {
  if (staged.model == nullptr) return false;
  if (!staged.model->ParametersFinite()) return false;
  // An evaluated MSE must at least be a number; NaN here means the model
  // emits non-finite predictions even on its own training data.
  if (staged.train_mse >= 0.0 && !IsFinite(staged.train_mse)) return false;
  if (staged.train_mse < 0.0 && staged.train_mse != -1.0) return false;
  // Regression check against the previous round — only meaningful when the
  // modeled cluster set is unchanged (after a workload shift the series
  // themselves change and a bigger in-sample error is expected, not sick).
  if (same_clusters && staged.train_mse >= 0.0) {
    auto prev = models_.find(horizon);
    if (prev != models_.end() && prev->second.train_mse >= 0.0 &&
        IsFinite(prev->second.train_mse)) {
      double bound = options_.health_mse_multiple *
                     std::max(prev->second.train_mse, kMseFloor);
      if (staged.train_mse > bound) return false;
    }
  }
  return true;
}

Status Forecaster::Train(const PreProcessor& pre,
                         const OnlineClusterer& clusterer,
                         const std::vector<ClusterId>& clusters, Timestamp now,
                         const std::vector<int64_t>& horizons_seconds,
                         RecoveryReport* report) {
  if (clusters.empty()) return Status::InvalidArgument("no clusters to model");
  trainings_total_->Add();
  last_recovery_ = RecoveryReport();
  // Everything below stages into locals and commits at the very end: any
  // early return — gather failure, fit error, health-gate rejection —
  // leaves the previously committed (last-good) models serving untouched.
  auto fail_round = [&](Status st,
                        std::vector<int64_t> failed) -> Status {
    last_recovery_.failed_horizons = std::move(failed);
    last_recovery_.detail = st.ToString();
    if (trained()) {
      last_recovery_.rolled_back = true;
      rollbacks_total_->Add();
    } else {
      last_recovery_.discarded = true;
    }
    if (report != nullptr) *report = last_recovery_;
    return st;
  };

  if (ChaosHarness::Global().FailAlloc("forecaster.train")) {
    return fail_round(
        Status::Internal("chaos: training allocation denied"), {});
  }

  for (int64_t horizon : horizons_seconds) {
    if (horizon <= 0 || horizon % options_.interval_seconds != 0) {
      return Status::InvalidArgument(
          "horizon must be a positive multiple of the interval");
    }
  }

  Timestamp train_from = now - options_.training_window_seconds;
  auto series = GatherSeries(pre, clusterer, clusters,
                             options_.interval_seconds, train_from, now);
  if (!series.ok()) return fail_round(series.status(), {});

  // Cap future predictions at 3x each cluster's training-history peak.
  Vector staged_cap_log(clusters.size(), 0.0);
  for (size_t s = 0; s < series->size(); ++s) {
    double peak = 0.0;
    for (double v : (*series)[s].values()) peak = std::max(peak, v);
    staged_cap_log[s] = std::log1p(3.0 * std::max(peak, 1.0));
  }

  // Fit all horizons concurrently: each FitHorizon call reads only const
  // state and writes its own slot. Statuses are inspected in horizon order,
  // so the reported error is independent of scheduling; the models_ map is
  // assembled sequentially afterwards.
  std::vector<HorizonModel> fitted(horizons_seconds.size());
  std::vector<Status> statuses(horizons_seconds.size(), Status::Ok());
  ParallelFor(0, horizons_seconds.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      statuses[i] = FitHorizon(pre, clusterer, clusters, *series, now,
                               horizons_seconds[i], &fitted[i]);
    }
  });
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      return fail_round(statuses[i], {horizons_seconds[i]});
    }
  }

  // The health gate: every staged horizon must be sane before any of them
  // deploys — a half-swapped model set would mix cluster orderings.
  if (options_.health_gate) {
    bool same_clusters = clusters == clusters_;
    std::vector<int64_t> failed;
    for (size_t i = 0; i < fitted.size(); ++i) {
      if (!HorizonHealthy(fitted[i], horizons_seconds[i], same_clusters)) {
        failed.push_back(horizons_seconds[i]);
        health_failures_total_->Add();
      }
    }
    if (!failed.empty()) {
      bool had_last_good = trained();
      Status verdict = fail_round(
          Status::Internal("health gate rejected staged models"),
          std::move(failed));
      last_recovery_.health_check_failed = true;
      if (report != nullptr) *report = last_recovery_;
      // With a last-good set still serving this round is a degraded
      // success — reporting an error would make the controller retry
      // training on every maintenance pass (a retrain storm) for a
      // condition the rollback already contained.
      if (had_last_good) return Status::Ok();
      return verdict;
    }
  }

  // Commit: the staged set becomes the last-good set.
  clusters_ = clusters;
  prediction_cap_log_ = std::move(staged_cap_log);
  models_.clear();
  for (size_t i = 0; i < horizons_seconds.size(); ++i) {
    models_[horizons_seconds[i]] = std::move(fitted[i]);
  }
  for (const auto& [horizon, hm] : models_) {
    if (hm.train_mse >= 0.0) {
      HorizonGauge("train_mse", horizon)->Set(hm.train_mse);
    }
  }
  if (report != nullptr) *report = last_recovery_;
  return Status::Ok();
}

Status Forecaster::FitHorizon(const PreProcessor& pre,
                              const OnlineClusterer& clusterer,
                              const std::vector<ClusterId>& clusters,
                              const std::vector<TimeSeries>& series,
                              Timestamp now, int64_t horizon,
                              HorizonModel* out) const {
  ScopedTimer train_timer(HorizonHistogram("train_seconds", horizon));
  HorizonModel hm;
  hm.horizon_steps = static_cast<size_t>(horizon / options_.interval_seconds);

  ModelOptions model_options = options_.model;
  model_options.input_window = options_.input_window;
  model_options.num_series = clusters.size();

  auto dataset = BuildDataset(series, options_.input_window, hm.horizon_steps);
  if (!dataset.ok()) return dataset.status();

  // Evaluated for the train_mse gauge; the ensemble stands in for HYBRID
  // (its KR component takes a differently-shaped input).
  const ForecastModel* eval_model = nullptr;

  if (options_.kind == ModelKind::kHybrid) {
    auto lr = std::make_shared<LinearRegressionModel>(model_options);
    auto rnn = std::make_shared<RnnModel>(model_options);
    {
      ScopedTimer t(HorizonHistogram("train_seconds.lr", horizon));
      Status st = lr->Fit(dataset->x, dataset->y);
      if (!st.ok()) return st;
    }
    {
      ScopedTimer t(HorizonHistogram("train_seconds.rnn", horizon));
      Status st = rnn->Fit(dataset->x, dataset->y);
      if (!st.ok()) return st;
    }
    auto ensemble = std::make_shared<EnsembleModel>(lr, rnn);
    hm.linear = lr;

    // KR trains on the full recorded history at one-hour intervals
    // (Section 6.2) so long-period spikes stay in reach of the kernel.
    Timestamp first = now;
    for (ClusterId id : clusters) {
      const auto& cluster = clusterer.clusters().at(id);
      for (TemplateId member : cluster.members) {
        const auto* info = pre.GetTemplate(member);
        if (info != nullptr && info->history.FirstTime() < first) {
          first = info->history.FirstTime();
        }
      }
    }
    size_t kr_window = model_options.kr_input_window > 0
                           ? model_options.kr_input_window
                           : options_.input_window;
    size_t kr_steps =
        std::max<size_t>(1, static_cast<size_t>(horizon / kSecondsPerHour));
    auto full =
        GatherSeries(pre, clusterer, clusters, kSecondsPerHour, first, now);
    std::shared_ptr<KernelRegressionModel> kr;
    if (full.ok()) {
      ModelOptions kr_options = model_options;
      kr_options.input_window = kr_window;
      auto kr_data = BuildDataset(*full, kr_window, kr_steps);
      if (kr_data.ok()) {
        ScopedTimer t(HorizonHistogram("train_seconds.kr", horizon));
        kr = std::make_shared<KernelRegressionModel>(kr_options);
        Status kr_st = kr->Fit(kr_data->x, kr_data->y);
        if (!kr_st.ok()) kr.reset();
      }
    }
    if (kr != nullptr) {
      hm.model =
          std::make_shared<HybridModel>(ensemble, kr, model_options.gamma);
      hm.kr_window = kr_window;
    } else {
      hm.model = ensemble;  // not enough history for KR: fall back
    }
    eval_model = ensemble.get();
  } else {
    std::shared_ptr<ForecastModel> model =
        CreateModel(options_.kind, model_options);
    if (model == nullptr) return Status::InvalidArgument("unknown model kind");
    Status st = model->Fit(dataset->x, dataset->y);
    if (!st.ok()) return st;
    hm.model = std::move(model);
    eval_model = hm.model.get();
    // The linear-only rung: linear kinds serve themselves; an ENSEMBLE
    // exposes its LR component.
    if (hm.model->traits().linear) {
      hm.linear = hm.model;
    } else if (auto* ens = dynamic_cast<EnsembleModel*>(hm.model.get())) {
      hm.linear = ens->lr();
    }
  }

  // In-sample log-space MSE over the newest examples (<= 64 rows keeps the
  // cost a rounding error next to the fit itself) — the live analogue of
  // the paper's Figure 8 training error, and the health gate's regression
  // signal across training rounds.
  if (eval_model != nullptr && dataset->x.rows() > 0) {
    size_t rows = dataset->x.rows();
    size_t start = rows > kMseSampleRows ? rows - kMseSampleRows : 0;
    double se = 0.0;
    size_t terms = 0;
    for (size_t r = start; r < rows; ++r) {
      auto pred = eval_model->Predict(dataset->x.Row(r));
      if (!pred.ok()) break;
      Vector truth = dataset->y.Row(r);
      for (size_t c = 0; c < pred->size() && c < truth.size(); ++c) {
        double d = (*pred)[c] - truth[c];
        se += d * d;
        ++terms;
      }
    }
    if (terms > 0) {
      hm.train_mse = se / static_cast<double>(terms);
    }
  }
  *out = std::move(hm);
  return Status::Ok();
}

Result<Vector> Forecaster::Forecast(const PreProcessor& pre,
                                    const OnlineClusterer& clusterer,
                                    Timestamp now, int64_t horizon_seconds,
                                    const Deadline* deadline,
                                    ForecastRung* rung_used) const {
  auto it = models_.find(horizon_seconds);
  if (it == models_.end()) {
    return Status::NotFound("no model trained for this horizon");
  }
  predictions_total_->Add();
  ScopedTimer predict_timer(HorizonHistogram("predict_seconds", horizon_seconds));
  const HorizonModel& hm = it->second;
  if (rung_used != nullptr) *rung_used = ForecastRung::kFull;

  ChaosHarness::Global().MaybeStall("forecast.gather");
  Timestamp from =
      now - static_cast<int64_t>(options_.input_window) * options_.interval_seconds;
  auto series = GatherSeries(pre, clusterer, clusters_,
                             options_.interval_seconds, from, now);
  if (!series.ok()) return series.status();
  auto window = LatestWindow(*series, options_.input_window);
  if (!window.ok()) return window.status();

  // Ladder checkpoint: the input window is in hand. If the budget is gone,
  // one closed-form LR mat-vec is all we can still afford; without an LR
  // component the controller's history-average fallback takes over.
  bool degrade = DeadlineExceeded(deadline);

  Result<Vector> pred = Status::Internal("unset");
  auto* hybrid = dynamic_cast<HybridModel*>(hm.model.get());
  if (!degrade && hybrid != nullptr && hm.kr_window > 0) {
    ChaosHarness::Global().MaybeStall("forecast.kr");
    // The KR gather walks the full recorded history — the expensive part.
    // Re-check the budget right before paying for it.
    if (DeadlineExceeded(deadline)) {
      degrade = true;
    } else {
      Timestamp kr_from =
          now - static_cast<int64_t>(hm.kr_window) * kSecondsPerHour;
      auto kr_series = GatherSeries(pre, clusterer, clusters_,
                                    kSecondsPerHour, kr_from, now);
      if (!kr_series.ok()) return kr_series.status();
      auto kr_window = LatestWindow(*kr_series, hm.kr_window);
      if (!kr_window.ok()) return kr_window.status();
      pred = hybrid->PredictWithKrInput(*window, *kr_window);
    }
  } else if (!degrade) {
    pred = hm.model->Predict(*window);
  }
  if (degrade) {
    if (hm.linear == nullptr) {
      return Status::DeadlineExceeded(
          "forecast: budget spent and no linear rung for this model kind");
    }
    if (rung_used != nullptr) *rung_used = ForecastRung::kLinearOnly;
    pred = hm.linear->Predict(*window);
  }
  if (!pred.ok()) return pred.status();
  Vector capped = *pred;
  for (size_t s = 0; s < capped.size() && s < prediction_cap_log_.size(); ++s) {
    if (!IsFinite(capped[s])) capped[s] = 0.0;
    capped[s] = std::min(capped[s], prediction_cap_log_[s]);
  }
  return ToArrivalRates(capped);
}

std::vector<int64_t> Forecaster::horizons() const {
  std::vector<int64_t> out;
  out.reserve(models_.size());
  for (const auto& [h, m] : models_) {
    (void)m;
    out.push_back(h);
  }
  return out;
}

}  // namespace qb5000

#include "forecaster/ensemble.h"

#include "forecaster/dataset.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"

namespace qb5000 {

EnsembleModel::EnsembleModel(const ModelOptions& options)
    : lr_(std::make_shared<LinearRegressionModel>(options)),
      rnn_(std::make_shared<RnnModel>(options)) {}

EnsembleModel::EnsembleModel(std::shared_ptr<ForecastModel> lr,
                             std::shared_ptr<ForecastModel> rnn)
    : lr_(std::move(lr)), rnn_(std::move(rnn)), prefitted_(true) {}

Status EnsembleModel::Fit(const Matrix& x, const Matrix& y) {
  if (prefitted_) return Status::Ok();
  Status st = lr_->Fit(x, y);
  if (!st.ok()) return st;
  return rnn_->Fit(x, y);
}

Result<Vector> EnsembleModel::Predict(const Vector& x) const {
  auto lr_pred = lr_->Predict(x);
  if (!lr_pred.ok()) return lr_pred.status();
  auto rnn_pred = rnn_->Predict(x);
  if (!rnn_pred.ok()) return rnn_pred.status();
  Vector out(lr_pred->size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 0.5 * ((*lr_pred)[i] + (*rnn_pred)[i]);
  }
  return out;
}

HybridModel::HybridModel(const ModelOptions& options)
    : ensemble_(std::make_shared<EnsembleModel>(options)),
      kr_(std::make_shared<KernelRegressionModel>(options)),
      gamma_(options.gamma) {}

HybridModel::HybridModel(std::shared_ptr<ForecastModel> ensemble,
                         std::shared_ptr<ForecastModel> kr, double gamma)
    : ensemble_(std::move(ensemble)), kr_(std::move(kr)), gamma_(gamma),
      prefitted_(true) {}

Status HybridModel::Fit(const Matrix& x, const Matrix& y) {
  if (prefitted_) return Status::Ok();
  Status st = ensemble_->Fit(x, y);
  if (!st.ok()) return st;
  return kr_->Fit(x, y);
}

Result<Vector> HybridModel::Predict(const Vector& x) const {
  return PredictWithKrInput(x, x);
}

Result<Vector> HybridModel::PredictWithKrInput(const Vector& ensemble_x,
                                               const Vector& kr_x) const {
  auto ens = ensemble_->Predict(ensemble_x);
  if (!ens.ok()) return ens.status();
  auto kr = kr_->Predict(kr_x);
  if (!kr.ok()) return kr.status();
  if (kr->size() != ens->size()) {
    return Status::Internal("hybrid component output sizes differ");
  }
  // The gamma rule compares predicted *volumes*, so convert out of log space.
  Vector ens_rates = ToArrivalRates(*ens);
  Vector kr_rates = ToArrivalRates(*kr);
  Vector out(ens->size());
  for (size_t i = 0; i < out.size(); ++i) {
    bool spike = kr_rates[i] > (1.0 + gamma_) * ens_rates[i];
    out[i] = spike ? (*kr)[i] : (*ens)[i];
  }
  return out;
}

}  // namespace qb5000

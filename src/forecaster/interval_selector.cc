#include "forecaster/interval_selector.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "forecaster/dataset.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

}  // namespace

Result<std::vector<IntervalSelector::Choice>> IntervalSelector::Evaluate(
    const PreProcessor& pre, const OnlineClusterer& clusterer, Timestamp now,
    const Options& options) {
  auto top = clusterer.TopClustersByVolume(options.max_clusters);
  if (top.empty()) return Status::FailedPrecondition("no clusters to model");
  Timestamp from = now - options.history_seconds;

  std::vector<Choice> choices;
  for (int64_t interval : options.candidates) {
    if (interval <= 0 || interval % kSecondsPerMinute != 0) continue;

    std::vector<TimeSeries> series;
    for (ClusterId id : top) {
      auto center = clusterer.CenterSeries(pre, id, interval, from, now);
      if (center.ok()) series.push_back(std::move(*center));
    }
    if (series.empty()) continue;

    // Window/horizon in steps of this interval; hour-normalized scoring
    // below keeps candidates comparable.
    size_t window = static_cast<size_t>(
        std::max<int64_t>(1, options.input_window_hours * kSecondsPerHour / interval));
    size_t horizon_steps = static_cast<size_t>(
        std::max<int64_t>(1, options.horizon_seconds / interval));
    auto dataset = BuildDataset(series, window, horizon_steps);
    if (!dataset.ok()) continue;
    size_t n = dataset->x.rows();
    size_t train_n =
        static_cast<size_t>(options.train_fraction * static_cast<double>(n));
    if (train_n < 8 || train_n >= n) continue;

    ModelOptions model_options = options.model;
    model_options.input_window = window;
    model_options.num_series = series.size();
    auto model = CreateModel(options.kind, model_options);
    if (model == nullptr) return Status::InvalidArgument("unknown model kind");

    Stopwatch train_timer;
    Status st = model->Fit(SubMatrix(dataset->x, train_n),
                           SubMatrix(dataset->y, train_n));
    if (!st.ok()) continue;
    double train_seconds = train_timer.ElapsedSeconds();

    // Hour-normalized accuracy: group predictions into one-hour buckets
    // (sum sub-hour steps; split super-hour steps evenly).
    size_t steps_per_hour =
        interval <= kSecondsPerHour
            ? static_cast<size_t>(kSecondsPerHour / interval)
            : 1;
    double hour_scale =
        interval <= kSecondsPerHour
            ? 1.0
            : static_cast<double>(kSecondsPerHour) / static_cast<double>(interval);
    Vector actual, predicted;
    bool failed = false;
    for (size_t i = train_n; i + steps_per_hour <= n; i += steps_per_hour) {
      double actual_sum = 0, predicted_sum = 0;
      for (size_t s = 0; s < steps_per_hour && !failed; ++s) {
        auto p = model->Predict(dataset->x.Row(i + s));
        if (!p.ok()) {
          failed = true;
          break;
        }
        Vector pr = ToArrivalRates(*p);
        Vector ar = ToArrivalRates(dataset->y.Row(i + s));
        for (size_t j = 0; j < pr.size(); ++j) {
          predicted_sum += pr[j] * hour_scale;
          actual_sum += ar[j] * hour_scale;
        }
      }
      if (failed) break;
      actual.push_back(actual_sum);
      predicted.push_back(predicted_sum);
    }
    if (failed || actual.empty()) continue;

    Choice choice;
    choice.interval_seconds = interval;
    choice.log_mse = LogSpaceMse(actual, predicted);
    choice.train_seconds = train_seconds;
    choice.score =
        choice.log_mse + options.time_weight * std::log1p(train_seconds);
    choices.push_back(choice);
  }
  if (choices.empty()) {
    return Status::FailedPrecondition("no interval candidate was evaluable");
  }
  std::sort(choices.begin(), choices.end(),
            [](const Choice& a, const Choice& b) { return a.score < b.score; });
  return choices;
}

Result<int64_t> IntervalSelector::Pick(const PreProcessor& pre,
                                       const OnlineClusterer& clusterer,
                                       Timestamp now, const Options& options) {
  auto choices = Evaluate(pre, clusterer, now, options);
  if (!choices.ok()) return choices.status();
  return choices->front().interval_seconds;
}

}  // namespace qb5000

#include "forecaster/neural.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/finite.h"
#include "common/thread_pool.h"
#include "math/adam.h"
#include "math/kernels.h"
#include "math/linalg.h"

namespace qb5000 {

Matrix Standardizer::FitTransform(const Matrix& data) {
  size_t n = data.rows();
  size_t d = data.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean_[j] += data(i, j);
  }
  for (double& m : mean_) {
    m /= static_cast<double>(n > 0 ? n : 1);
    // A poisoned column (NaN/Inf upstream) must not poison the transform:
    // degrade that column to the identity rather than spread the NaN into
    // every standardized feature.
    if (!IsFinite(m)) m = 0.0;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double diff = data(i, j) - mean_[j];
      std_[j] += diff * diff;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n > 1 ? n : 1));
    // Constant column (zero variance — a degenerate single-template
    // cluster flatlines every window) or poisoned column: unit scale, so
    // the transform is centering-only / identity instead of 0/0 = NaN.
    if (!IsFinite(s) || s < 1e-8) s = 1.0;
  }
  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out(i, j) = (data(i, j) - mean_[j]) / std_[j];
  }
  return out;
}

Vector Standardizer::Transform(const Vector& row) const {
  QB_CHECK_EQ(row.size(), mean_.size());
  Vector out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

Vector Standardizer::Inverse(const Vector& row) const {
  QB_CHECK_EQ(row.size(), mean_.size());
  Vector out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = row[j] * std_[j] + mean_[j];
  }
  return out;
}

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Adds `bias[j]` to every row of `m`.
void AddRowBias(Matrix& m, const double* bias) {
  for (size_t i = 0; i < m.rows(); ++i) {
    double* row = &m.mutable_data()[i * m.cols()];
    for (size_t j = 0; j < m.cols(); ++j) row[j] += bias[j];
  }
}

/// out[j] += sum over rows of m(:, j) — the bias-gradient reduction,
/// accumulated row-by-row in index order.
void AccumulateColumnSums(const Matrix& m, double* out) {
  for (size_t i = 0; i < m.rows(); ++i) {
    AxpyInto(out, 1.0, &m.data()[i * m.cols()], m.cols());
  }
}

/// Presents `count` rows of `src` (selected by `rows`) as a contiguous
/// row-major block. A contiguous ascending run (the validation tail, or a
/// single prediction) aliases `src` directly; shuffled training rows are
/// gathered into `scratch`.
const double* GatherRows(const Matrix& src, const size_t* rows, size_t count,
                         Matrix& scratch) {
  bool contiguous = true;
  for (size_t i = 1; i < count; ++i) {
    if (rows[i] != rows[0] + i) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && count > 0) return &src.data()[rows[0] * src.cols()];
  scratch = Matrix(count, src.cols());
  for (size_t i = 0; i < count; ++i) {
    std::copy_n(&src.data()[rows[i] * src.cols()], src.cols(),
                &scratch.mutable_data()[i * src.cols()]);
  }
  return scratch.data().data();
}

/// Sum of half-squared errors of the batch; fills dy = pred - y[rows] when
/// given.
double HalfSquaredErrorBatch(const Matrix& pred, const Matrix& y,
                             const size_t* rows, size_t count, Matrix* dy) {
  double loss = 0.0;
  for (size_t b = 0; b < count; ++b) {
    for (size_t j = 0; j < pred.cols(); ++j) {
      double diff = pred(b, j) - y(rows[b], j);
      loss += 0.5 * diff * diff;
      if (dy != nullptr) (*dy)(b, j) = diff;
    }
  }
  return loss;
}

/// A training objective evaluated over mini-batches of examples. Both
/// methods must be safe to call concurrently (all scratch local): the
/// trainer fans sub-batches of one mini-batch out across the thread pool.
class BatchObjective {
 public:
  virtual ~BatchObjective() = default;

  /// Sum of per-example losses over `rows[0..count)`; accumulates the
  /// summed parameter gradient into `grads` (not scaled by 1/count).
  virtual double BatchLossAndGrad(const size_t* rows, size_t count,
                                  double* grads) const = 0;

  /// Sum of per-example losses without gradients.
  virtual double BatchLoss(const size_t* rows, size_t count) const = 0;
};

/// Mini-batch Adam training with early stopping on a chronological
/// validation tail.
///
/// Parallel structure (DESIGN.md §9): each mini-batch is split into fixed
/// sub-batches of kSubBatch examples — a decomposition that depends only on
/// the batch size, never the thread count. Sub-batches accumulate gradients
/// into their own buffers, possibly concurrently, and the buffers are
/// reduced in sub-batch index order, so the update (and therefore the whole
/// training trajectory) is bit-identical at any concurrency. The shuffle
/// consumes the seed-derived Rng on the calling thread only (Rng stays
/// thread-affine).
///
/// Divergence (DESIGN.md §13): early stopping restores the best-validation
/// snapshot, which quietly absorbs a *transient* bad epoch — but when no
/// epoch ever produced a finite validation loss (a NaN gradient poisoned
/// the very first step, or the loss overflowed immediately), the "best"
/// snapshot is just the random init. Returning that as a trained model
/// would hand the health gate a finite-but-garbage fit, so the divergence
/// is surfaced as an error and the Forecaster's rollback keeps last-good.
Status TrainWithEarlyStopping(const ModelOptions& options, size_t num_examples,
                              std::vector<double>& params,
                              const BatchObjective& objective) {
  size_t val_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_examples) *
                             options.validation_fraction));
  if (val_count >= num_examples) val_count = num_examples / 2;
  size_t train_count = num_examples - val_count;
  if (train_count == 0) return Status::Ok();

  AdamOptimizer::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  AdamOptimizer adam(params.size(), adam_opts);
  Rng rng(options.seed);

  constexpr size_t kBatch = 32;
  constexpr size_t kSubBatch = 8;   ///< fixed grain of the gradient fan-out
  constexpr size_t kValBlock = 64;  ///< fixed grain of the validation fan-out

  std::vector<size_t> order(train_count);
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> val_rows(val_count);
  std::iota(val_rows.begin(), val_rows.end(), train_count);

  size_t max_sub = (kBatch + kSubBatch - 1) / kSubBatch;
  std::vector<std::vector<double>> sub_grads(
      max_sub, std::vector<double>(params.size(), 0.0));
  std::vector<double> grads(params.size(), 0.0);
  size_t num_val_blocks = (val_count + kValBlock - 1) / kValBlock;
  std::vector<double> val_parts(num_val_blocks, 0.0);

  std::vector<double> best_params = params;
  double best_val = std::numeric_limits<double>::infinity();
  size_t since_best = 0;
  size_t epochs_run = 0;

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    ++epochs_run;
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (size_t b = 0; b < train_count; b += kBatch) {
      size_t batch_end = std::min(b + kBatch, train_count);
      size_t num_sub = (batch_end - b + kSubBatch - 1) / kSubBatch;
      ParallelFor(0, num_sub, 1, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          size_t s_lo = b + s * kSubBatch;
          size_t s_hi = std::min(s_lo + kSubBatch, batch_end);
          std::fill(sub_grads[s].begin(), sub_grads[s].end(), 0.0);
          objective.BatchLossAndGrad(&order[s_lo], s_hi - s_lo,
                                     sub_grads[s].data());
        }
      });
      // Ordered reduction: sub-batch 0, 1, 2, ... regardless of which
      // thread produced which buffer.
      std::copy(sub_grads[0].begin(), sub_grads[0].end(), grads.begin());
      for (size_t s = 1; s < num_sub; ++s) {
        AxpyInto(grads.data(), 1.0, sub_grads[s].data(), grads.size());
      }
      double scale = 1.0 / static_cast<double>(batch_end - b);
      for (double& g : grads) g *= scale;
      adam.Step(params, grads);
    }

    ParallelFor(0, num_val_blocks, 1, [&](size_t lo, size_t hi) {
      for (size_t vb = lo; vb < hi; ++vb) {
        size_t v_lo = vb * kValBlock;
        size_t v_hi = std::min(v_lo + kValBlock, val_count);
        val_parts[vb] = objective.BatchLoss(&val_rows[v_lo], v_hi - v_lo);
      }
    });
    double val_loss = 0.0;
    for (double part : val_parts) val_loss += part;
    val_loss /= static_cast<double>(val_count);

    if (val_loss + 1e-9 < best_val) {
      best_val = val_loss;
      best_params = params;
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
  }
  params = best_params;
  // With a validation signal, any sane epoch leaves a finite best_val
  // (anything finite beats infinity). Still-infinite after running epochs
  // means every one was NaN/overflow — diverged, not trained.
  if (val_count > 0 && epochs_run > 0 && !IsFinite(best_val)) {
    return Status::Internal(
        "training diverged: no epoch produced a finite validation loss");
  }
  return Status::Ok();
}

void RandomInit(std::vector<double>& params, size_t from, size_t count,
                double scale, Rng& rng) {
  for (size_t i = from; i < from + count; ++i) {
    params[i] = rng.Gaussian(0.0, scale);
  }
}

// ---------------------------------------------------------------------------
// FNN core: batched forward/backward over a flat parameter vector.
// ---------------------------------------------------------------------------

struct FnnCore {
  size_t in_dim = 0, hidden = 0, out_dim = 0;
  size_t off_w1 = 0, off_b1 = 0, off_w2 = 0, off_b2 = 0;

  size_t Layout() {
    off_w1 = 0;
    off_b1 = off_w1 + hidden * in_dim;
    off_w2 = off_b1 + hidden;
    off_b2 = off_w2 + out_dim * hidden;
    return off_b2 + out_dim;
  }

  struct BatchCache {
    Matrix h;  ///< batch x hidden tanh activations
  };

  /// xb: `batch` rows of `in_dim` features with row stride `xb_stride`.
  /// Fills y (batch x out_dim); `cache`, when given, keeps the hidden
  /// activations for the backward pass.
  void ForwardBatch(const double* params, const double* xb, size_t xb_stride,
                    size_t batch, Matrix& y, BatchCache* cache) const {
    Matrix h(batch, hidden);
    GemmTransBInto(xb, xb_stride, params + off_w1, in_dim,
                   h.mutable_data().data(), hidden, batch, in_dim, hidden,
                   /*accumulate=*/false);
    AddRowBias(h, params + off_b1);
    for (double& v : h.mutable_data()) v = std::tanh(v);
    GemmTransBInto(h.data().data(), hidden, params + off_w2, hidden,
                   y.mutable_data().data(), out_dim, batch, hidden, out_dim,
                   /*accumulate=*/false);
    AddRowBias(y, params + off_b2);
    if (cache != nullptr) cache->h = std::move(h);
  }

  void BackwardBatch(const double* params, const double* xb, size_t xb_stride,
                     size_t batch, const BatchCache& cache, const Matrix& dy,
                     double* grads) const {
    const Matrix& h = cache.h;
    // Output layer: gb2 += colsum(dy), gW2 += dy^T h, dh = dy W2.
    AccumulateColumnSums(dy, grads + off_b2);
    GemmTransAInto(dy.data().data(), out_dim, h.data().data(), hidden,
                   grads + off_w2, hidden, batch, out_dim, hidden,
                   /*accumulate=*/true);
    Matrix dh(batch, hidden);
    GemmInto(dy.data().data(), out_dim, params + off_w2, hidden,
             dh.mutable_data().data(), hidden, batch, out_dim, hidden,
             /*accumulate=*/false);
    // Through tanh.
    for (size_t b = 0; b < batch; ++b) {
      for (size_t j = 0; j < hidden; ++j) {
        dh(b, j) *= 1.0 - h(b, j) * h(b, j);
      }
    }
    AccumulateColumnSums(dh, grads + off_b1);
    GemmTransAInto(dh.data().data(), hidden, xb, xb_stride, grads + off_w1,
                   in_dim, batch, hidden, in_dim, /*accumulate=*/true);
  }
};

// ---------------------------------------------------------------------------
// LSTM core: batched parameter layout and forward/backward shared by
// RnnModel. Every per-step, per-layer operation is a GEMM over the batch.
// ---------------------------------------------------------------------------

/// Gate block order within the 4H pre-activation: input, forget, output, cell.
struct LstmCore {
  size_t in_dim = 0;     ///< raw per-step input dimension (num_series)
  size_t embed = 0;      ///< linear embedding width
  size_t hidden = 0;     ///< LSTM cells per layer
  size_t layers = 0;
  size_t out_dim = 0;
  size_t seq_len = 0;

  // Parameter offsets into the flat vector.
  size_t off_e = 0, off_be = 0, off_wo = 0, off_bo = 0;
  std::vector<size_t> off_w;  ///< per layer: 4H x (in_l + H)
  std::vector<size_t> off_b;  ///< per layer: 4H

  size_t LayerInput(size_t layer) const { return layer == 0 ? embed : hidden; }

  size_t Layout() {
    size_t offset = 0;
    off_e = offset;
    offset += embed * in_dim;
    off_be = offset;
    offset += embed;
    off_w.resize(layers);
    off_b.resize(layers);
    for (size_t l = 0; l < layers; ++l) {
      off_w[l] = offset;
      offset += 4 * hidden * (LayerInput(l) + hidden);
      off_b[l] = offset;
      offset += 4 * hidden;
    }
    off_wo = offset;
    offset += out_dim * hidden;
    off_bo = offset;
    offset += out_dim;
    return offset;
  }

  void Init(std::vector<double>& params, uint64_t seed) const {
    Rng rng(seed);
    RandomInit(params, off_e, embed * in_dim,
               1.0 / std::sqrt(static_cast<double>(in_dim)), rng);
    for (size_t l = 0; l < layers; ++l) {
      size_t in_l = LayerInput(l);
      RandomInit(params, off_w[l], 4 * hidden * (in_l + hidden),
                 1.0 / std::sqrt(static_cast<double>(in_l + hidden)), rng);
      // Forget-gate bias of 1 keeps early memory open (standard practice).
      for (size_t i = 0; i < hidden; ++i) params[off_b[l] + hidden + i] = 1.0;
    }
    RandomInit(params, off_wo, out_dim * hidden,
               1.0 / std::sqrt(static_cast<double>(hidden)), rng);
  }

  /// Forward activations for one sub-batch, kept for the backward pass.
  /// Slot index: t * layers + l.
  struct BatchCache {
    std::vector<Matrix> concat;  ///< batch x (in_l + H): layer input | h_prev
    std::vector<Matrix> gate_i, gate_f, gate_o, gate_g;  ///< batch x H
    std::vector<Matrix> cell, tanh_cell, hidden_state;   ///< batch x H
    std::vector<Matrix> embed_out;                       ///< per t: batch x E
  };

  /// xb: `batch` example sequences, row-major, row stride `xb_stride`
  /// (each row is seq_len * in_dim features; step t occupies columns
  /// [t*in_dim, (t+1)*in_dim)). Fills y (batch x out_dim).
  void ForwardBatch(const double* params, const double* xb, size_t xb_stride,
                    size_t batch, Matrix& y, BatchCache* cache) const {
    if (cache != nullptr) {
      size_t slots = seq_len * layers;
      cache->concat.assign(slots, {});
      cache->gate_i.assign(slots, {});
      cache->gate_f.assign(slots, {});
      cache->gate_o.assign(slots, {});
      cache->gate_g.assign(slots, {});
      cache->cell.assign(slots, {});
      cache->tanh_cell.assign(slots, {});
      cache->hidden_state.assign(slots, {});
      cache->embed_out.assign(seq_len, {});
    }
    std::vector<Matrix> h(layers, Matrix(batch, hidden));
    std::vector<Matrix> c(layers, Matrix(batch, hidden));
    for (size_t t = 0; t < seq_len; ++t) {
      // Linear embedding of the raw step input: e = x_t E^T + be.
      Matrix e(batch, embed);
      GemmTransBInto(xb + t * in_dim, xb_stride, params + off_e, in_dim,
                     e.mutable_data().data(), embed, batch, in_dim, embed,
                     /*accumulate=*/false);
      AddRowBias(e, params + off_be);
      if (cache != nullptr) cache->embed_out[t] = e;
      const Matrix* input = &e;
      for (size_t l = 0; l < layers; ++l) {
        size_t in_l = LayerInput(l);
        size_t width = in_l + hidden;
        Matrix concat(batch, width);
        for (size_t b = 0; b < batch; ++b) {
          double* row = &concat.mutable_data()[b * width];
          std::copy_n(&input->data()[b * in_l], in_l, row);
          std::copy_n(&h[l].data()[b * hidden], hidden, row + in_l);
        }
        // All four gates in one GEMM: z = concat W_l^T + b_l (batch x 4H).
        Matrix z(batch, 4 * hidden);
        GemmTransBInto(concat.data().data(), width, params + off_w[l], width,
                       z.mutable_data().data(), 4 * hidden, batch, width,
                       4 * hidden, /*accumulate=*/false);
        AddRowBias(z, params + off_b[l]);
        Matrix zi(batch, hidden), zf(batch, hidden), zo(batch, hidden),
            zg(batch, hidden);
        Matrix new_c(batch, hidden), tanh_c(batch, hidden);
        for (size_t b = 0; b < batch; ++b) {
          const double* zrow = &z.data()[b * 4 * hidden];
          for (size_t j = 0; j < hidden; ++j) {
            double gi = Sigmoid(zrow[j]);
            double gf = Sigmoid(zrow[hidden + j]);
            double go = Sigmoid(zrow[2 * hidden + j]);
            double gg = std::tanh(zrow[3 * hidden + j]);
            zi(b, j) = gi;
            zf(b, j) = gf;
            zo(b, j) = go;
            zg(b, j) = gg;
            double nc = gf * c[l](b, j) + gi * gg;
            double tc = std::tanh(nc);
            new_c(b, j) = nc;
            tanh_c(b, j) = tc;
            h[l](b, j) = go * tc;
          }
        }
        c[l] = std::move(new_c);
        if (cache != nullptr) {
          size_t slot = t * layers + l;
          cache->concat[slot] = std::move(concat);
          cache->gate_i[slot] = std::move(zi);
          cache->gate_f[slot] = std::move(zf);
          cache->gate_o[slot] = std::move(zo);
          cache->gate_g[slot] = std::move(zg);
          cache->cell[slot] = c[l];
          cache->tanh_cell[slot] = std::move(tanh_c);
          cache->hidden_state[slot] = h[l];
        }
        input = &h[l];
      }
    }
    GemmTransBInto(h[layers - 1].data().data(), hidden, params + off_wo, hidden,
                   y.mutable_data().data(), out_dim, batch, hidden, out_dim,
                   /*accumulate=*/false);
    AddRowBias(y, params + off_bo);
  }

  /// Accumulates the sub-batch's summed gradients given dy (batch x out_dim).
  void BackwardBatch(const double* params, const double* xb, size_t xb_stride,
                     size_t batch, const BatchCache& cache, const Matrix& dy,
                     double* grads) const {
    // Output head: gbo += colsum(dy), gWo += dy^T h_last, dh_last = dy Wo.
    const Matrix& h_last =
        cache.hidden_state[(seq_len - 1) * layers + (layers - 1)];
    AccumulateColumnSums(dy, grads + off_bo);
    GemmTransAInto(dy.data().data(), out_dim, h_last.data().data(), hidden,
                   grads + off_wo, hidden, batch, out_dim, hidden,
                   /*accumulate=*/true);
    std::vector<Matrix> dh(seq_len * layers, Matrix(batch, hidden));
    GemmInto(dy.data().data(), out_dim, params + off_wo, hidden,
             dh[(seq_len - 1) * layers + (layers - 1)].mutable_data().data(),
             hidden, batch, out_dim, hidden, /*accumulate=*/false);

    // dc carried backwards per layer.
    std::vector<Matrix> dc(layers, Matrix(batch, hidden));
    std::vector<Matrix> dembed(seq_len, Matrix(batch, embed));
    Matrix dz(batch, 4 * hidden);
    for (size_t ti = seq_len; ti-- > 0;) {
      for (size_t li = layers; li-- > 0;) {
        size_t slot = ti * layers + li;
        size_t in_l = LayerInput(li);
        size_t width = in_l + hidden;
        const Matrix& zi = cache.gate_i[slot];
        const Matrix& zf = cache.gate_f[slot];
        const Matrix& zo = cache.gate_o[slot];
        const Matrix& zg = cache.gate_g[slot];
        const Matrix& tanh_c = cache.tanh_cell[slot];
        const Matrix& concat = cache.concat[slot];
        // Previous cell state (zeros at t=0).
        const Matrix* c_prev =
            ti > 0 ? &cache.cell[(ti - 1) * layers + li] : nullptr;
        for (size_t b = 0; b < batch; ++b) {
          double* dzrow = &dz.mutable_data()[b * 4 * hidden];
          for (size_t j = 0; j < hidden; ++j) {
            double dhi = dh[slot](b, j);
            double tc = tanh_c(b, j);
            double dci = dc[li](b, j) + dhi * zo(b, j) * (1.0 - tc * tc);
            double doi = dhi * tc;
            double cprev = c_prev != nullptr ? (*c_prev)(b, j) : 0.0;
            dzrow[j] = dci * zg(b, j) * zi(b, j) * (1.0 - zi(b, j));
            dzrow[hidden + j] = dci * cprev * zf(b, j) * (1.0 - zf(b, j));
            dzrow[2 * hidden + j] = doi * zo(b, j) * (1.0 - zo(b, j));
            dzrow[3 * hidden + j] =
                dci * zi(b, j) * (1.0 - zg(b, j) * zg(b, j));
            dc[li](b, j) = dci * zf(b, j);  // carried to t-1
          }
        }
        // Weight/bias gradients and the upstream delta, all as GEMMs:
        // gW += dz^T concat, gb += colsum(dz), dconcat = dz W.
        GemmTransAInto(dz.data().data(), 4 * hidden, concat.data().data(),
                       width, grads + off_w[li], width, batch, 4 * hidden,
                       width, /*accumulate=*/true);
        AccumulateColumnSums(dz, grads + off_b[li]);
        Matrix dconcat(batch, width);
        GemmInto(dz.data().data(), 4 * hidden, params + off_w[li], width,
                 dconcat.mutable_data().data(), width, batch, 4 * hidden,
                 width, /*accumulate=*/false);
        // Split dconcat into the below-layer/embedding delta and dh_prev.
        if (ti > 0) {
          Matrix& dh_prev = dh[(ti - 1) * layers + li];
          for (size_t b = 0; b < batch; ++b) {
            AxpyInto(&dh_prev.mutable_data()[b * hidden], 1.0,
                     &dconcat.data()[b * width + in_l], hidden);
          }
        }
        if (li > 0) {
          Matrix& dh_below = dh[ti * layers + (li - 1)];
          for (size_t b = 0; b < batch; ++b) {
            AxpyInto(&dh_below.mutable_data()[b * hidden], 1.0,
                     &dconcat.data()[b * width], hidden);
          }
        } else {
          for (size_t b = 0; b < batch; ++b) {
            AxpyInto(&dembed[ti].mutable_data()[b * embed], 1.0,
                     &dconcat.data()[b * width], embed);
          }
        }
      }
    }
    // Embedding gradients: gE += dembed_t^T x_t, gbe += colsum(dembed_t).
    for (size_t t = 0; t < seq_len; ++t) {
      AccumulateColumnSums(dembed[t], grads + off_be);
      GemmTransAInto(dembed[t].data().data(), embed, xb + t * in_dim,
                     xb_stride, grads + off_e, in_dim, batch, embed, in_dim,
                     /*accumulate=*/true);
    }
  }
};

// ---------------------------------------------------------------------------
// Vanilla RNN core for the PSRNN model, batched the same way.
// ---------------------------------------------------------------------------

struct VanillaRnnCore {
  size_t in_dim = 0, hidden = 0, out_dim = 0, seq_len = 0;
  size_t off_wx = 0, off_wh = 0, off_b = 0, off_wo = 0, off_bo = 0;

  size_t Layout() {
    size_t offset = 0;
    off_wx = offset;
    offset += hidden * in_dim;
    off_wh = offset;
    offset += hidden * hidden;
    off_b = offset;
    offset += hidden;
    off_wo = offset;
    offset += out_dim * hidden;
    off_bo = offset;
    offset += out_dim;
    return offset;
  }

  struct BatchCache {
    std::vector<Matrix> pre_h;  ///< per t: batch x H tanh outputs
  };

  void ForwardBatch(const double* params, const double* xb, size_t xb_stride,
                    size_t batch, Matrix& y, BatchCache* cache) const {
    if (cache != nullptr) cache->pre_h.assign(seq_len, {});
    Matrix h(batch, hidden);
    for (size_t t = 0; t < seq_len; ++t) {
      Matrix nh(batch, hidden);
      GemmTransBInto(xb + t * in_dim, xb_stride, params + off_wx, in_dim,
                     nh.mutable_data().data(), hidden, batch, in_dim, hidden,
                     /*accumulate=*/false);
      GemmTransBInto(h.data().data(), hidden, params + off_wh, hidden,
                     nh.mutable_data().data(), hidden, batch, hidden, hidden,
                     /*accumulate=*/true);
      AddRowBias(nh, params + off_b);
      for (double& v : nh.mutable_data()) v = std::tanh(v);
      h = std::move(nh);
      if (cache != nullptr) cache->pre_h[t] = h;
    }
    GemmTransBInto(h.data().data(), hidden, params + off_wo, hidden,
                   y.mutable_data().data(), out_dim, batch, hidden, out_dim,
                   /*accumulate=*/false);
    AddRowBias(y, params + off_bo);
  }

  void BackwardBatch(const double* params, const double* xb, size_t xb_stride,
                     size_t batch, const BatchCache& cache, const Matrix& dy,
                     double* grads) const {
    const Matrix& h_last = cache.pre_h[seq_len - 1];
    AccumulateColumnSums(dy, grads + off_bo);
    GemmTransAInto(dy.data().data(), out_dim, h_last.data().data(), hidden,
                   grads + off_wo, hidden, batch, out_dim, hidden,
                   /*accumulate=*/true);
    Matrix dh(batch, hidden);
    GemmInto(dy.data().data(), out_dim, params + off_wo, hidden,
             dh.mutable_data().data(), hidden, batch, out_dim, hidden,
             /*accumulate=*/false);
    Matrix dz(batch, hidden);
    for (size_t ti = seq_len; ti-- > 0;) {
      const Matrix& h = cache.pre_h[ti];
      for (size_t b = 0; b < batch; ++b) {
        for (size_t j = 0; j < hidden; ++j) {
          dz(b, j) = dh(b, j) * (1.0 - h(b, j) * h(b, j));
        }
      }
      AccumulateColumnSums(dz, grads + off_b);
      GemmTransAInto(dz.data().data(), hidden, xb + ti * in_dim, xb_stride,
                     grads + off_wx, in_dim, batch, hidden, in_dim,
                     /*accumulate=*/true);
      if (ti > 0) {
        const Matrix& h_prev = cache.pre_h[ti - 1];
        GemmTransAInto(dz.data().data(), hidden, h_prev.data().data(), hidden,
                       grads + off_wh, hidden, batch, hidden, hidden,
                       /*accumulate=*/true);
      }
      GemmInto(dz.data().data(), hidden, params + off_wh, hidden,
               dh.mutable_data().data(), hidden, batch, hidden, hidden,
               /*accumulate=*/false);
    }
  }
};

/// Objective adapter shared by the three cores: gathers the sub-batch rows,
/// runs the batched forward/backward, and reports the summed loss. Keeping
/// all scratch local makes concurrent sub-batch evaluation safe.
template <typename Core>
class CoreObjective final : public BatchObjective {
 public:
  CoreObjective(const Core& core, const Matrix& x, const Matrix& y,
                const std::vector<double>& params)
      : core_(core), x_(x), y_(y), params_(params) {}

  double BatchLossAndGrad(const size_t* rows, size_t count,
                          double* grads) const override {
    Matrix scratch;
    const double* xb = GatherRows(x_, rows, count, scratch);
    typename Core::BatchCache cache;
    Matrix pred(count, y_.cols());
    core_.ForwardBatch(params_.data(), xb, x_.cols(), count, pred, &cache);
    Matrix dy(count, y_.cols());
    double loss = HalfSquaredErrorBatch(pred, y_, rows, count, &dy);
    core_.BackwardBatch(params_.data(), xb, x_.cols(), count, cache, dy,
                        grads);
    return loss;
  }

  double BatchLoss(const size_t* rows, size_t count) const override {
    Matrix scratch;
    const double* xb = GatherRows(x_, rows, count, scratch);
    Matrix pred(count, y_.cols());
    core_.ForwardBatch(params_.data(), xb, x_.cols(), count, pred, nullptr);
    return HalfSquaredErrorBatch(pred, y_, rows, count, nullptr);
  }

 private:
  const Core& core_;
  const Matrix& x_;
  const Matrix& y_;
  const std::vector<double>& params_;
};

}  // namespace

// ---------------------------------------------------------------------------
// FNN
// ---------------------------------------------------------------------------

Status FnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("FNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = x.cols();
  hidden_ = options_.hidden_dim;
  out_dim_ = y.cols();

  FnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  size_t num_params = core.Layout();
  params_.assign(num_params, 0.0);
  Rng rng(options_.seed);
  RandomInit(params_, core.off_w1, hidden_ * in_dim_,
             1.0 / std::sqrt(static_cast<double>(in_dim_)), rng);
  RandomInit(params_, core.off_w2, out_dim_ * hidden_,
             1.0 / std::sqrt(static_cast<double>(hidden_)), rng);

  CoreObjective<FnnCore> objective(core, x, y, params_);
  Status trained = TrainWithEarlyStopping(options_, x.rows(), params_, objective);
  if (!trained.ok()) return trained;
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> FnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("FNN model not fitted");
  if (raw_input.size() != in_dim_) {
    return Status::InvalidArgument("FNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  FnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  core.Layout();
  Matrix pred(1, out_dim_);
  core.ForwardBatch(params_.data(), input.data(), input.size(), 1, pred,
                    nullptr);
  return y_std_.Inverse(pred.Row(0));
}

// ---------------------------------------------------------------------------
// RNN (LSTM)
// ---------------------------------------------------------------------------

Status RnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("RNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = options_.num_series;
  if (in_dim_ == 0 || x.cols() % in_dim_ != 0) {
    return Status::InvalidArgument("RNN: columns not divisible by num_series");
  }
  seq_len_ = x.cols() / in_dim_;

  LstmCore core;
  core.in_dim = in_dim_;
  core.embed = options_.embedding_dim;
  core.hidden = options_.hidden_dim;
  core.layers = options_.num_layers;
  core.out_dim = y.cols();
  core.seq_len = seq_len_;
  out_dim_ = y.cols();
  size_t num_params = core.Layout();
  params_.assign(num_params, 0.0);
  core.Init(params_, options_.seed);

  CoreObjective<LstmCore> objective(core, x, y, params_);
  Status trained = TrainWithEarlyStopping(options_, x.rows(), params_, objective);
  if (!trained.ok()) return trained;
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> RnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("RNN model not fitted");
  if (raw_input.size() != seq_len_ * in_dim_) {
    return Status::InvalidArgument("RNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  LstmCore core;
  core.in_dim = in_dim_;
  core.embed = options_.embedding_dim;
  core.hidden = options_.hidden_dim;
  core.layers = options_.num_layers;
  core.seq_len = seq_len_;
  core.out_dim = out_dim_;
  core.Layout();
  Matrix pred(1, out_dim_);
  core.ForwardBatch(params_.data(), input.data(), input.size(), 1, pred,
                    nullptr);
  return y_std_.Inverse(pred.Row(0));
}

// ---------------------------------------------------------------------------
// PSRNN
// ---------------------------------------------------------------------------

Status PsrnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("PSRNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = options_.num_series;
  if (in_dim_ == 0 || x.cols() % in_dim_ != 0) {
    return Status::InvalidArgument("PSRNN: columns not divisible by num_series");
  }
  seq_len_ = x.cols() / in_dim_;
  hidden_ = options_.hidden_dim;
  out_dim_ = y.cols();

  VanillaRnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  core.seq_len = seq_len_;
  size_t num_params = core.Layout();
  params_.assign(num_params, 0.0);

  // Two-stage-regression initialization (the PSRNN idea, simplified): a
  // ridge regression from the last observation to the target provides the
  // initial observation->state and state->output maps, instead of random
  // initialization.
  {
    Matrix last_step(x.rows(), in_dim_);
    for (size_t i = 0; i < x.rows(); ++i) {
      for (size_t j = 0; j < in_dim_; ++j) {
        last_step(i, j) = x(i, (seq_len_ - 1) * in_dim_ + j);
      }
    }
    auto w1 = RidgeRegression(last_step, y, options_.ridge_lambda);
    Rng rng(options_.seed);
    // Observation -> state: route each input into a dedicated state unit.
    for (size_t i = 0; i < hidden_; ++i) {
      for (size_t j = 0; j < in_dim_; ++j) {
        params_[core.off_wx + i * in_dim_ + j] =
            (i % in_dim_ == j) ? 0.5 : rng.Gaussian(0.0, 0.05);
      }
    }
    // Weak recurrence to start (memory learned during refinement).
    RandomInit(params_, core.off_wh, hidden_ * hidden_, 0.05, rng);
    // State -> output from the stage-1 regression through the routed units.
    if (w1.ok()) {
      for (size_t o = 0; o < out_dim_; ++o) {
        for (size_t i = 0; i < hidden_; ++i) {
          params_[core.off_wo + o * hidden_ + i] =
              2.0 * (*w1)(i % in_dim_, o) / std::ceil(static_cast<double>(hidden_) /
                                                      static_cast<double>(in_dim_));
        }
      }
    } else {
      RandomInit(params_, core.off_wo, out_dim_ * hidden_, 0.1, rng);
    }
  }

  CoreObjective<VanillaRnnCore> objective(core, x, y, params_);
  Status trained = TrainWithEarlyStopping(options_, x.rows(), params_, objective);
  if (!trained.ok()) return trained;
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> PsrnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("PSRNN model not fitted");
  if (raw_input.size() != seq_len_ * in_dim_) {
    return Status::InvalidArgument("PSRNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  VanillaRnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  core.seq_len = seq_len_;
  core.Layout();
  Matrix pred(1, out_dim_);
  core.ForwardBatch(params_.data(), input.data(), input.size(), 1, pred,
                    nullptr);
  return y_std_.Inverse(pred.Row(0));
}

}  // namespace qb5000

#include "forecaster/neural.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "math/adam.h"
#include "math/linalg.h"

namespace qb5000 {

Matrix Standardizer::FitTransform(const Matrix& data) {
  size_t n = data.rows();
  size_t d = data.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean_[j] += data(i, j);
  }
  for (double& m : mean_) m /= static_cast<double>(n > 0 ? n : 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double diff = data(i, j) - mean_[j];
      std_[j] += diff * diff;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n > 1 ? n : 1));
    if (s < 1e-8) s = 1.0;  // constant column: leave centered only
  }
  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out(i, j) = (data(i, j) - mean_[j]) / std_[j];
  }
  return out;
}

Vector Standardizer::Transform(const Vector& row) const {
  Vector out(row.size());
  for (size_t j = 0; j < row.size() && j < mean_.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

Vector Standardizer::Inverse(const Vector& row) const {
  Vector out(row.size());
  for (size_t j = 0; j < row.size() && j < mean_.size(); ++j) {
    out[j] = row[j] * std_[j] + mean_[j];
  }
  return out;
}

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Shared mini-batch Adam training loop with early stopping on a
/// chronological validation tail. `loss_and_grad` computes the loss of one
/// example and accumulates parameter gradients; `loss_only` evaluates
/// without gradients.
void TrainWithEarlyStopping(
    const ModelOptions& options, size_t num_examples,
    std::vector<double>& params,
    const std::function<double(size_t, std::vector<double>&)>& loss_and_grad,
    const std::function<double(size_t)>& loss_only) {
  size_t val_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_examples) *
                             options.validation_fraction));
  if (val_count >= num_examples) val_count = num_examples / 2;
  size_t train_count = num_examples - val_count;
  if (train_count == 0) return;

  AdamOptimizer::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  AdamOptimizer adam(params.size(), adam_opts);
  Rng rng(options.seed);

  std::vector<size_t> order(train_count);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> grads(params.size(), 0.0);
  std::vector<double> best_params = params;
  double best_val = std::numeric_limits<double>::infinity();
  size_t since_best = 0;
  const size_t kBatch = 32;

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (size_t b = 0; b < train_count; b += kBatch) {
      std::fill(grads.begin(), grads.end(), 0.0);
      size_t batch_end = std::min(b + kBatch, train_count);
      for (size_t k = b; k < batch_end; ++k) {
        loss_and_grad(order[k], grads);
      }
      double scale = 1.0 / static_cast<double>(batch_end - b);
      for (double& g : grads) g *= scale;
      adam.Step(params, grads);
    }
    double val_loss = 0.0;
    for (size_t i = train_count; i < num_examples; ++i) val_loss += loss_only(i);
    val_loss /= static_cast<double>(val_count);
    if (val_loss + 1e-9 < best_val) {
      best_val = val_loss;
      best_params = params;
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
  }
  params = best_params;
}

void RandomInit(std::vector<double>& params, size_t from, size_t count,
                double scale, Rng& rng) {
  for (size_t i = from; i < from + count; ++i) {
    params[i] = rng.Gaussian(0.0, scale);
  }
}

// ---------------------------------------------------------------------------
// LSTM core: parameter layout and forward/backward passes shared by RnnModel.
// ---------------------------------------------------------------------------

/// Gate block order within the 4H pre-activation: input, forget, output, cell.
struct LstmCore {
  size_t in_dim = 0;     ///< raw per-step input dimension (num_series)
  size_t embed = 0;      ///< linear embedding width
  size_t hidden = 0;     ///< LSTM cells per layer
  size_t layers = 0;
  size_t out_dim = 0;
  size_t seq_len = 0;

  // Parameter offsets into the flat vector.
  size_t off_e = 0, off_be = 0, off_wo = 0, off_bo = 0;
  std::vector<size_t> off_w;  ///< per layer: 4H x (in_l + H)
  std::vector<size_t> off_b;  ///< per layer: 4H

  size_t LayerInput(size_t layer) const { return layer == 0 ? embed : hidden; }

  size_t Layout() {
    size_t offset = 0;
    off_e = offset;
    offset += embed * in_dim;
    off_be = offset;
    offset += embed;
    off_w.resize(layers);
    off_b.resize(layers);
    for (size_t l = 0; l < layers; ++l) {
      off_w[l] = offset;
      offset += 4 * hidden * (LayerInput(l) + hidden);
      off_b[l] = offset;
      offset += 4 * hidden;
    }
    off_wo = offset;
    offset += out_dim * hidden;
    off_bo = offset;
    offset += out_dim;
    return offset;
  }

  void Init(std::vector<double>& params, uint64_t seed) const {
    Rng rng(seed);
    RandomInit(params, off_e, embed * in_dim,
               1.0 / std::sqrt(static_cast<double>(in_dim)), rng);
    for (size_t l = 0; l < layers; ++l) {
      size_t in_l = LayerInput(l);
      RandomInit(params, off_w[l], 4 * hidden * (in_l + hidden),
                 1.0 / std::sqrt(static_cast<double>(in_l + hidden)), rng);
      // Forget-gate bias of 1 keeps early memory open (standard practice).
      for (size_t i = 0; i < hidden; ++i) params[off_b[l] + hidden + i] = 1.0;
    }
    RandomInit(params, off_wo, out_dim * hidden,
               1.0 / std::sqrt(static_cast<double>(hidden)), rng);
  }

  /// Forward/backward scratch for one example.
  struct Cache {
    // [t][l] indexed flat: t * layers + l
    std::vector<Vector> concat;  ///< [in_l + H] layer input with previous h
    std::vector<Vector> gate_i, gate_f, gate_o, gate_g;
    std::vector<Vector> cell, tanh_cell, hidden_state;
    std::vector<Vector> embed_out;  ///< per t
  };

  Vector Forward(const double* params, const double* x_seq, Cache* cache) const {
    if (cache != nullptr) {
      size_t slots = seq_len * layers;
      cache->concat.assign(slots, {});
      cache->gate_i.assign(slots, {});
      cache->gate_f.assign(slots, {});
      cache->gate_o.assign(slots, {});
      cache->gate_g.assign(slots, {});
      cache->cell.assign(slots, {});
      cache->tanh_cell.assign(slots, {});
      cache->hidden_state.assign(slots, {});
      cache->embed_out.assign(seq_len, {});
    }
    std::vector<Vector> h(layers, Vector(hidden, 0.0));
    std::vector<Vector> c(layers, Vector(hidden, 0.0));
    for (size_t t = 0; t < seq_len; ++t) {
      // Linear embedding of the raw step input.
      Vector e(embed, 0.0);
      for (size_t i = 0; i < embed; ++i) {
        double sum = params[off_be + i];
        const double* row = params + off_e + i * in_dim;
        for (size_t j = 0; j < in_dim; ++j) sum += row[j] * x_seq[t * in_dim + j];
        e[i] = sum;
      }
      if (cache != nullptr) cache->embed_out[t] = e;
      const Vector* input = &e;
      for (size_t l = 0; l < layers; ++l) {
        size_t in_l = LayerInput(l);
        Vector concat(in_l + hidden);
        std::copy(input->begin(), input->end(), concat.begin());
        std::copy(h[l].begin(), h[l].end(), concat.begin() + in_l);
        Vector zi(hidden), zf(hidden), zo(hidden), zg(hidden);
        const double* w = params + off_w[l];
        const double* b = params + off_b[l];
        size_t width = in_l + hidden;
        for (size_t i = 0; i < hidden; ++i) {
          double si = b[i], sf = b[hidden + i], so = b[2 * hidden + i],
                 sg = b[3 * hidden + i];
          const double* wi = w + i * width;
          const double* wf = w + (hidden + i) * width;
          const double* wo = w + (2 * hidden + i) * width;
          const double* wg = w + (3 * hidden + i) * width;
          for (size_t j = 0; j < width; ++j) {
            double cj = concat[j];
            si += wi[j] * cj;
            sf += wf[j] * cj;
            so += wo[j] * cj;
            sg += wg[j] * cj;
          }
          zi[i] = Sigmoid(si);
          zf[i] = Sigmoid(sf);
          zo[i] = Sigmoid(so);
          zg[i] = std::tanh(sg);
        }
        Vector new_c(hidden), new_h(hidden), tanh_c(hidden);
        for (size_t i = 0; i < hidden; ++i) {
          new_c[i] = zf[i] * c[l][i] + zi[i] * zg[i];
          tanh_c[i] = std::tanh(new_c[i]);
          new_h[i] = zo[i] * tanh_c[i];
        }
        if (cache != nullptr) {
          size_t slot = t * layers + l;
          cache->concat[slot] = std::move(concat);
          cache->gate_i[slot] = zi;
          cache->gate_f[slot] = zf;
          cache->gate_o[slot] = zo;
          cache->gate_g[slot] = zg;
          cache->cell[slot] = new_c;
          cache->tanh_cell[slot] = tanh_c;
          cache->hidden_state[slot] = new_h;
        }
        c[l] = std::move(new_c);
        h[l] = std::move(new_h);
        input = &h[l];
      }
    }
    Vector y(out_dim, 0.0);
    for (size_t i = 0; i < out_dim; ++i) {
      double sum = params[off_bo + i];
      const double* row = params + off_wo + i * hidden;
      for (size_t j = 0; j < hidden; ++j) sum += row[j] * h[layers - 1][j];
      y[i] = sum;
    }
    return y;
  }

  /// Accumulates gradients for one example given d(loss)/d(output).
  void Backward(const double* params, const double* x_seq, const Cache& cache,
                const Vector& dy, double* grads) const {
    // Output head.
    const Vector& h_last = cache.hidden_state[(seq_len - 1) * layers + (layers - 1)];
    std::vector<Vector> dh(seq_len * layers, Vector(hidden, 0.0));
    for (size_t i = 0; i < out_dim; ++i) {
      grads[off_bo + i] += dy[i];
      double* grow = grads + off_wo + i * hidden;
      const double* prow = params + off_wo + i * hidden;
      for (size_t j = 0; j < hidden; ++j) {
        grow[j] += dy[i] * h_last[j];
        dh[(seq_len - 1) * layers + (layers - 1)][j] += prow[j] * dy[i];
      }
    }
    // dc carried backwards per layer.
    std::vector<Vector> dc(layers, Vector(hidden, 0.0));
    std::vector<Vector> dembed(seq_len, Vector(embed, 0.0));
    for (size_t ti = seq_len; ti-- > 0;) {
      for (size_t li = layers; li-- > 0;) {
        size_t slot = ti * layers + li;
        size_t in_l = LayerInput(li);
        size_t width = in_l + hidden;
        const Vector& zi = cache.gate_i[slot];
        const Vector& zf = cache.gate_f[slot];
        const Vector& zo = cache.gate_o[slot];
        const Vector& zg = cache.gate_g[slot];
        const Vector& tanh_c = cache.tanh_cell[slot];
        const Vector& concat = cache.concat[slot];
        // Previous cell state (zeros at t=0).
        const Vector* c_prev = nullptr;
        if (ti > 0) c_prev = &cache.cell[(ti - 1) * layers + li];
        Vector dzi(hidden), dzf(hidden), dzo(hidden), dzg(hidden);
        for (size_t i = 0; i < hidden; ++i) {
          double dhi = dh[slot][i];
          double dci = dc[li][i] + dhi * zo[i] * (1.0 - tanh_c[i] * tanh_c[i]);
          double doi = dhi * tanh_c[i];
          double cprev = c_prev != nullptr ? (*c_prev)[i] : 0.0;
          dzi[i] = dci * zg[i] * zi[i] * (1.0 - zi[i]);
          dzf[i] = dci * cprev * zf[i] * (1.0 - zf[i]);
          dzo[i] = doi * zo[i] * (1.0 - zo[i]);
          dzg[i] = dci * zi[i] * (1.0 - zg[i] * zg[i]);
          dc[li][i] = dci * zf[i];  // carried to t-1
        }
        // Weight gradients and upstream deltas.
        Vector dconcat(width, 0.0);
        const double* w = params + off_w[li];
        double* gw = grads + off_w[li];
        double* gb = grads + off_b[li];
        for (size_t i = 0; i < hidden; ++i) {
          const double* wi = w + i * width;
          const double* wf = w + (hidden + i) * width;
          const double* wo = w + (2 * hidden + i) * width;
          const double* wg = w + (3 * hidden + i) * width;
          double* gi = gw + i * width;
          double* gf = gw + (hidden + i) * width;
          double* go = gw + (2 * hidden + i) * width;
          double* gg = gw + (3 * hidden + i) * width;
          for (size_t j = 0; j < width; ++j) {
            double cj = concat[j];
            gi[j] += dzi[i] * cj;
            gf[j] += dzf[i] * cj;
            go[j] += dzo[i] * cj;
            gg[j] += dzg[i] * cj;
            dconcat[j] += wi[j] * dzi[i] + wf[j] * dzf[i] + wo[j] * dzo[i] +
                          wg[j] * dzg[i];
          }
          gb[i] += dzi[i];
          gb[hidden + i] += dzf[i];
          gb[2 * hidden + i] += dzo[i];
          gb[3 * hidden + i] += dzg[i];
        }
        // Split dconcat into input delta and previous-hidden delta.
        if (ti > 0) {
          Vector& dh_prev = dh[(ti - 1) * layers + li];
          for (size_t j = 0; j < hidden; ++j) dh_prev[j] += dconcat[in_l + j];
        }
        if (li > 0) {
          Vector& dh_below = dh[ti * layers + (li - 1)];
          for (size_t j = 0; j < hidden; ++j) dh_below[j] += dconcat[j];
        } else {
          for (size_t j = 0; j < embed; ++j) dembed[ti][j] += dconcat[j];
        }
      }
    }
    // Embedding gradients.
    for (size_t t = 0; t < seq_len; ++t) {
      for (size_t i = 0; i < embed; ++i) {
        grads[off_be + i] += dembed[t][i];
        double* row = grads + off_e + i * in_dim;
        for (size_t j = 0; j < in_dim; ++j) {
          row[j] += dembed[t][i] * x_seq[t * in_dim + j];
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Vanilla RNN core for the PSRNN model.
// ---------------------------------------------------------------------------

struct VanillaRnnCore {
  size_t in_dim = 0, hidden = 0, out_dim = 0, seq_len = 0;
  size_t off_wx = 0, off_wh = 0, off_b = 0, off_wo = 0, off_bo = 0;

  size_t Layout() {
    size_t offset = 0;
    off_wx = offset;
    offset += hidden * in_dim;
    off_wh = offset;
    offset += hidden * hidden;
    off_b = offset;
    offset += hidden;
    off_wo = offset;
    offset += out_dim * hidden;
    off_bo = offset;
    offset += out_dim;
    return offset;
  }

  struct Cache {
    std::vector<Vector> pre_h;  ///< tanh outputs per step
  };

  Vector Forward(const double* params, const double* x_seq, Cache* cache) const {
    Vector h(hidden, 0.0);
    if (cache != nullptr) cache->pre_h.assign(seq_len, {});
    for (size_t t = 0; t < seq_len; ++t) {
      Vector nh(hidden);
      for (size_t i = 0; i < hidden; ++i) {
        double sum = params[off_b + i];
        const double* wx = params + off_wx + i * in_dim;
        for (size_t j = 0; j < in_dim; ++j) sum += wx[j] * x_seq[t * in_dim + j];
        const double* wh = params + off_wh + i * hidden;
        for (size_t j = 0; j < hidden; ++j) sum += wh[j] * h[j];
        nh[i] = std::tanh(sum);
      }
      h = std::move(nh);
      if (cache != nullptr) cache->pre_h[t] = h;
    }
    Vector y(out_dim);
    for (size_t i = 0; i < out_dim; ++i) {
      double sum = params[off_bo + i];
      const double* row = params + off_wo + i * hidden;
      for (size_t j = 0; j < hidden; ++j) sum += row[j] * h[j];
      y[i] = sum;
    }
    return y;
  }

  void Backward(const double* params, const double* x_seq, const Cache& cache,
                const Vector& dy, double* grads) const {
    Vector dh(hidden, 0.0);
    const Vector& h_last = cache.pre_h[seq_len - 1];
    for (size_t i = 0; i < out_dim; ++i) {
      grads[off_bo + i] += dy[i];
      double* grow = grads + off_wo + i * hidden;
      const double* prow = params + off_wo + i * hidden;
      for (size_t j = 0; j < hidden; ++j) {
        grow[j] += dy[i] * h_last[j];
        dh[j] += prow[j] * dy[i];
      }
    }
    for (size_t ti = seq_len; ti-- > 0;) {
      const Vector& h = cache.pre_h[ti];
      Vector dz(hidden);
      for (size_t i = 0; i < hidden; ++i) dz[i] = dh[i] * (1.0 - h[i] * h[i]);
      Vector dh_prev(hidden, 0.0);
      const Vector* h_prev = ti > 0 ? &cache.pre_h[ti - 1] : nullptr;
      for (size_t i = 0; i < hidden; ++i) {
        grads[off_b + i] += dz[i];
        double* gx = grads + off_wx + i * in_dim;
        for (size_t j = 0; j < in_dim; ++j) gx[j] += dz[i] * x_seq[ti * in_dim + j];
        double* gh = grads + off_wh + i * hidden;
        const double* wh = params + off_wh + i * hidden;
        for (size_t j = 0; j < hidden; ++j) {
          if (h_prev != nullptr) gh[j] += dz[i] * (*h_prev)[j];
          dh_prev[j] += wh[j] * dz[i];
        }
      }
      dh = std::move(dh_prev);
    }
  }
};

double HalfSquaredError(const Vector& pred, const Matrix& y, size_t row,
                        Vector* dy) {
  double loss = 0.0;
  if (dy != nullptr) dy->assign(pred.size(), 0.0);
  for (size_t j = 0; j < pred.size(); ++j) {
    double diff = pred[j] - y(row, j);
    loss += 0.5 * diff * diff;
    if (dy != nullptr) (*dy)[j] = diff;
  }
  return loss;
}

}  // namespace

// ---------------------------------------------------------------------------
// FNN
// ---------------------------------------------------------------------------

Status FnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("FNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = x.cols();
  hidden_ = options_.hidden_dim;
  out_dim_ = y.cols();
  size_t num_params = hidden_ * in_dim_ + hidden_ + out_dim_ * hidden_ + out_dim_;
  params_.assign(num_params, 0.0);
  Rng rng(options_.seed);
  RandomInit(params_, 0, hidden_ * in_dim_,
             1.0 / std::sqrt(static_cast<double>(in_dim_)), rng);
  RandomInit(params_, hidden_ * in_dim_ + hidden_, out_dim_ * hidden_,
             1.0 / std::sqrt(static_cast<double>(hidden_)), rng);

  size_t off_w1 = 0, off_b1 = hidden_ * in_dim_;
  size_t off_w2 = off_b1 + hidden_, off_b2 = off_w2 + out_dim_ * hidden_;

  auto forward = [&](const std::vector<double>& p, size_t row, Vector* hidden_out) {
    Vector h(hidden_);
    for (size_t i = 0; i < hidden_; ++i) {
      double sum = p[off_b1 + i];
      for (size_t j = 0; j < in_dim_; ++j) sum += p[off_w1 + i * in_dim_ + j] * x(row, j);
      h[i] = std::tanh(sum);
    }
    Vector out(out_dim_);
    for (size_t i = 0; i < out_dim_; ++i) {
      double sum = p[off_b2 + i];
      for (size_t j = 0; j < hidden_; ++j) sum += p[off_w2 + i * hidden_ + j] * h[j];
      out[i] = sum;
    }
    if (hidden_out != nullptr) *hidden_out = std::move(h);
    return out;
  };

  auto loss_and_grad = [&](size_t row, std::vector<double>& grads) {
    Vector h;
    Vector pred = forward(params_, row, &h);
    Vector dy;
    double loss = HalfSquaredError(pred, y, row, &dy);
    Vector dh(hidden_, 0.0);
    for (size_t i = 0; i < out_dim_; ++i) {
      grads[off_b2 + i] += dy[i];
      for (size_t j = 0; j < hidden_; ++j) {
        grads[off_w2 + i * hidden_ + j] += dy[i] * h[j];
        dh[j] += params_[off_w2 + i * hidden_ + j] * dy[i];
      }
    }
    for (size_t i = 0; i < hidden_; ++i) {
      double dz = dh[i] * (1.0 - h[i] * h[i]);
      grads[off_b1 + i] += dz;
      for (size_t j = 0; j < in_dim_; ++j) grads[off_w1 + i * in_dim_ + j] += dz * x(row, j);
    }
    return loss;
  };
  auto loss_only = [&](size_t row) {
    Vector pred = forward(params_, row, nullptr);
    return HalfSquaredError(pred, y, row, nullptr);
  };

  TrainWithEarlyStopping(options_, x.rows(), params_, loss_and_grad, loss_only);
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> FnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("FNN model not fitted");
  if (raw_input.size() != in_dim_) {
    return Status::InvalidArgument("FNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  size_t off_w1 = 0, off_b1 = hidden_ * in_dim_;
  size_t off_w2 = off_b1 + hidden_, off_b2 = off_w2 + out_dim_ * hidden_;
  Vector h(hidden_);
  for (size_t i = 0; i < hidden_; ++i) {
    double sum = params_[off_b1 + i];
    for (size_t j = 0; j < in_dim_; ++j) sum += params_[off_w1 + i * in_dim_ + j] * input[j];
    h[i] = std::tanh(sum);
  }
  Vector out(out_dim_);
  for (size_t i = 0; i < out_dim_; ++i) {
    double sum = params_[off_b2 + i];
    for (size_t j = 0; j < hidden_; ++j) sum += params_[off_w2 + i * hidden_ + j] * h[j];
    out[i] = sum;
  }
  return y_std_.Inverse(out);
}

// ---------------------------------------------------------------------------
// RNN (LSTM)
// ---------------------------------------------------------------------------

Status RnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("RNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = options_.num_series;
  if (in_dim_ == 0 || x.cols() % in_dim_ != 0) {
    return Status::InvalidArgument("RNN: columns not divisible by num_series");
  }
  seq_len_ = x.cols() / in_dim_;

  LstmCore core;
  core.in_dim = in_dim_;
  core.embed = options_.embedding_dim;
  core.hidden = options_.hidden_dim;
  core.layers = options_.num_layers;
  core.out_dim = y.cols();
  core.seq_len = seq_len_;
  out_dim_ = y.cols();
  size_t num_params = core.Layout();
  params_.assign(num_params, 0.0);
  core.Init(params_, options_.seed);

  auto loss_and_grad = [&](size_t row, std::vector<double>& grads) {
    LstmCore::Cache cache;
    const double* x_seq = &x.data()[row * x.cols()];
    Vector pred = core.Forward(params_.data(), x_seq, &cache);
    Vector dy;
    double loss = HalfSquaredError(pred, y, row, &dy);
    core.Backward(params_.data(), x_seq, cache, dy, grads.data());
    return loss;
  };
  auto loss_only = [&](size_t row) {
    const double* x_seq = &x.data()[row * x.cols()];
    Vector pred = core.Forward(params_.data(), x_seq, nullptr);
    return HalfSquaredError(pred, y, row, nullptr);
  };

  TrainWithEarlyStopping(options_, x.rows(), params_, loss_and_grad, loss_only);
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> RnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("RNN model not fitted");
  if (raw_input.size() != seq_len_ * in_dim_) {
    return Status::InvalidArgument("RNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  LstmCore core;
  core.in_dim = in_dim_;
  core.embed = options_.embedding_dim;
  core.hidden = options_.hidden_dim;
  core.layers = options_.num_layers;
  core.seq_len = seq_len_;
  core.out_dim = out_dim_;
  core.Layout();
  return y_std_.Inverse(core.Forward(params_.data(), input.data(), nullptr));
}

// ---------------------------------------------------------------------------
// PSRNN
// ---------------------------------------------------------------------------

Status PsrnnModel::Fit(const Matrix& x_raw, const Matrix& y_raw) {
  if (x_raw.rows() < 4 || x_raw.rows() != y_raw.rows()) {
    return Status::InvalidArgument("PSRNN: insufficient or mismatched data");
  }
  Matrix x = x_std_.FitTransform(x_raw);
  Matrix y = y_std_.FitTransform(y_raw);
  in_dim_ = options_.num_series;
  if (in_dim_ == 0 || x.cols() % in_dim_ != 0) {
    return Status::InvalidArgument("PSRNN: columns not divisible by num_series");
  }
  seq_len_ = x.cols() / in_dim_;
  hidden_ = options_.hidden_dim;
  out_dim_ = y.cols();

  VanillaRnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  core.seq_len = seq_len_;
  size_t num_params = core.Layout();
  params_.assign(num_params, 0.0);

  // Two-stage-regression initialization (the PSRNN idea, simplified): a
  // ridge regression from the last observation to the target provides the
  // initial observation->state and state->output maps, instead of random
  // initialization.
  {
    Matrix last_step(x.rows(), in_dim_);
    for (size_t i = 0; i < x.rows(); ++i) {
      for (size_t j = 0; j < in_dim_; ++j) {
        last_step(i, j) = x(i, (seq_len_ - 1) * in_dim_ + j);
      }
    }
    auto w1 = RidgeRegression(last_step, y, options_.ridge_lambda);
    Rng rng(options_.seed);
    // Observation -> state: route each input into a dedicated state unit.
    for (size_t i = 0; i < hidden_; ++i) {
      for (size_t j = 0; j < in_dim_; ++j) {
        params_[core.off_wx + i * in_dim_ + j] =
            (i % in_dim_ == j) ? 0.5 : rng.Gaussian(0.0, 0.05);
      }
    }
    // Weak recurrence to start (memory learned during refinement).
    RandomInit(params_, core.off_wh, hidden_ * hidden_, 0.05, rng);
    // State -> output from the stage-1 regression through the routed units.
    if (w1.ok()) {
      for (size_t o = 0; o < out_dim_; ++o) {
        for (size_t i = 0; i < hidden_; ++i) {
          params_[core.off_wo + o * hidden_ + i] =
              2.0 * (*w1)(i % in_dim_, o) / std::ceil(static_cast<double>(hidden_) /
                                                      static_cast<double>(in_dim_));
        }
      }
    } else {
      RandomInit(params_, core.off_wo, out_dim_ * hidden_, 0.1, rng);
    }
  }

  auto loss_and_grad = [&](size_t row, std::vector<double>& grads) {
    VanillaRnnCore::Cache cache;
    const double* x_seq = &x.data()[row * x.cols()];
    Vector pred = core.Forward(params_.data(), x_seq, &cache);
    Vector dy;
    double loss = HalfSquaredError(pred, y, row, &dy);
    core.Backward(params_.data(), x_seq, cache, dy, grads.data());
    return loss;
  };
  auto loss_only = [&](size_t row) {
    const double* x_seq = &x.data()[row * x.cols()];
    Vector pred = core.Forward(params_.data(), x_seq, nullptr);
    return HalfSquaredError(pred, y, row, nullptr);
  };

  TrainWithEarlyStopping(options_, x.rows(), params_, loss_and_grad, loss_only);
  fitted_ = true;
  return Status::Ok();
}

Result<Vector> PsrnnModel::Predict(const Vector& raw_input) const {
  if (!fitted_) return Status::FailedPrecondition("PSRNN model not fitted");
  if (raw_input.size() != seq_len_ * in_dim_) {
    return Status::InvalidArgument("PSRNN input dimension mismatch");
  }
  Vector input = x_std_.Transform(raw_input);
  VanillaRnnCore core;
  core.in_dim = in_dim_;
  core.hidden = hidden_;
  core.out_dim = out_dim_;
  core.seq_len = seq_len_;
  core.Layout();
  return y_std_.Inverse(core.Forward(params_.data(), input.data(), nullptr));
}

}  // namespace qb5000

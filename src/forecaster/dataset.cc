#include "forecaster/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/finite.h"

namespace qb5000 {
namespace {

Status ValidateAligned(const std::vector<TimeSeries>& series) {
  if (series.empty()) return Status::InvalidArgument("no series");
  for (const auto& s : series) {
    if (s.start() != series[0].start() ||
        s.interval_seconds() != series[0].interval_seconds() ||
        s.size() != series[0].size()) {
      return Status::InvalidArgument("series are not aligned");
    }
  }
  return Status::Ok();
}

double Log1pClamped(double v) { return std::log1p(std::max(0.0, v)); }

}  // namespace

Result<ForecastDataset> BuildDataset(const std::vector<TimeSeries>& series,
                                     size_t input_window, size_t horizon_steps) {
  Status st = ValidateAligned(series);
  if (!st.ok()) return st;
  if (input_window == 0 || horizon_steps == 0) {
    return Status::InvalidArgument("window and horizon must be positive");
  }
  size_t length = series[0].size();
  size_t d = series.size();
  if (length < input_window + horizon_steps) {
    return Status::InvalidArgument("series too short for window + horizon");
  }
  size_t n = length - input_window - horizon_steps + 1;
  ForecastDataset out;
  out.input_window = input_window;
  out.num_series = d;
  out.horizon_steps = horizon_steps;
  out.x = Matrix(n, input_window * d);
  out.y = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < input_window; ++t) {
      for (size_t s = 0; s < d; ++s) {
        out.x(i, t * d + s) = Log1pClamped(series[s].values()[i + t]);
      }
    }
    size_t target = i + input_window + horizon_steps - 1;
    for (size_t s = 0; s < d; ++s) {
      out.y(i, s) = Log1pClamped(series[s].values()[target]);
    }
  }
  return out;
}

Result<Vector> LatestWindow(const std::vector<TimeSeries>& series,
                            size_t input_window) {
  Status st = ValidateAligned(series);
  if (!st.ok()) return st;
  size_t length = series[0].size();
  size_t d = series.size();
  if (length < input_window) {
    return Status::InvalidArgument("series shorter than input window");
  }
  Vector window(input_window * d);
  size_t begin = length - input_window;
  for (size_t t = 0; t < input_window; ++t) {
    for (size_t s = 0; s < d; ++s) {
      window[t * d + s] = Log1pClamped(series[s].values()[begin + t]);
    }
  }
  return window;
}

Vector ToArrivalRates(const Vector& log_space) {
  Vector out(log_space.size());
  for (size_t i = 0; i < out.size(); ++i) {
    // Clamp before exponentiating: a model extrapolating on inputs far
    // outside its training distribution (e.g. during a workload shift)
    // must yield a large-but-finite rate, never inf/NaN.
    double v = log_space[i];
    if (!IsFinite(v)) v = 0.0;
    v = std::clamp(v, 0.0, 50.0);
    out[i] = std::expm1(v);
  }
  return out;
}

Vector ToLogSpace(const Vector& rates) {
  Vector out(rates.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::log1p(std::max(0.0, rates[i]));
  }
  return out;
}

}  // namespace qb5000

#include "preprocessor/history_spill.h"

#include <utility>

namespace qb5000 {

namespace {
Env* Resolve(Env* env) { return env != nullptr ? env : Env::Default(); }
}  // namespace

HistorySpillStore::HistorySpillStore(Env* env, std::string path)
    : env_(Resolve(env)), path_(std::move(path)) {}

HistorySpillStore::~HistorySpillStore() {
  AbortRewrite();
  if (writer_ != nullptr) (void)writer_->Close().ok();
  writer_.reset();
  reader_.reset();
  // The spill file is runtime-only state (checkpoints hold everything), so
  // leave nothing behind.
  if (env_->FileExists(path_)) (void)env_->DeleteFile(path_).ok();
}

Status HistorySpillStore::Open() {
  auto writer = env_->NewWritableFile(path_);  // truncates: fresh store
  if (!writer.ok()) return writer.status();
  auto reader = env_->NewRandomAccessFile(path_);
  if (!reader.ok()) return reader.status();
  writer_ = std::move(*writer);
  reader_ = std::move(*reader);
  arena_ = std::make_unique<Arena>();
  head_ = nullptr;
  tail_next_ = &head_;
  tail_ = 0;
  live_bytes_ = 0;
  dead_bytes_ = 0;
  return Status::Ok();
}

Result<const HistorySpillStore::Segment*> HistorySpillStore::Append(
    std::string_view payload) {
  if (writer_ == nullptr) return Status::FailedPrecondition("store not open");
  Status st = writer_->Append(payload);
  if (st.ok()) st = writer_->Flush();  // readable before the handle escapes
  if (!st.ok()) return st;
  Segment* segment = arena_->Make<Segment>();
  segment->offset = tail_;
  segment->length = static_cast<uint32_t>(payload.size());
  segment->crc = Crc32(payload);
  *tail_next_ = segment;
  tail_next_ = &segment->next;
  tail_ += payload.size();
  live_bytes_ += payload.size();
  return segment;
}

Result<std::string> HistorySpillStore::Read(const Segment* segment) const {
  if (reader_ == nullptr) return Status::FailedPrecondition("store not open");
  auto data = reader_->Read(segment->offset, segment->length);
  if (!data.ok()) return data.status();
  if (data->size() != segment->length) {
    return Status::IOError("spill record truncated");
  }
  if (Crc32(*data) != segment->crc) {
    return Status::IOError("spill record checksum mismatch");
  }
  read_throughs_.fetch_add(1, std::memory_order_relaxed);
  return data;
}

void HistorySpillStore::MarkDead(const Segment* segment) {
  // The const pointer handed to callers is a read-only view; the store
  // owns the node and may flip its liveness.
  Segment* node = const_cast<Segment*>(segment);
  if (!node->live) return;
  node->live = false;
  live_bytes_ -= node->length;
  dead_bytes_ += node->length;
}

Status HistorySpillStore::BeginRewrite() {
  if (writer_ == nullptr) return Status::FailedPrecondition("store not open");
  if (rewrite_writer_ != nullptr) {
    return Status::FailedPrecondition("rewrite already active");
  }
  auto writer = env_->NewWritableFile(RewritePath(path_));
  if (!writer.ok()) return writer.status();
  rewrite_writer_ = std::move(*writer);
  rewrite_arena_ = std::make_unique<Arena>();
  rewrite_head_ = nullptr;
  rewrite_tail_next_ = &rewrite_head_;
  rewrite_tail_ = 0;
  rewrite_live_bytes_ = 0;
  return Status::Ok();
}

Result<const HistorySpillStore::Segment*> HistorySpillStore::RewriteAppend(
    std::string_view payload) {
  if (rewrite_writer_ == nullptr) {
    return Status::FailedPrecondition("no rewrite active");
  }
  Status st = rewrite_writer_->Append(payload);
  if (!st.ok()) return st;
  Segment* segment = rewrite_arena_->Make<Segment>();
  segment->offset = rewrite_tail_;
  segment->length = static_cast<uint32_t>(payload.size());
  segment->crc = Crc32(payload);
  *rewrite_tail_next_ = segment;
  rewrite_tail_next_ = &segment->next;
  rewrite_tail_ += payload.size();
  rewrite_live_bytes_ += payload.size();
  return segment;
}

Status HistorySpillStore::CommitRewrite() {
  if (rewrite_writer_ == nullptr) {
    return Status::FailedPrecondition("no rewrite active");
  }
  Status st = rewrite_writer_->Flush();
  if (!st.ok()) {
    AbortRewrite();
    return st;
  }
  // Rename the fresh file into place. The open write handle follows the
  // inode across the rename, so appends keep working; only the positional
  // reader needs reopening on the (now replaced) path.
  st = env_->RenameFile(RewritePath(path_), path_);
  if (!st.ok()) {
    AbortRewrite();
    return st;
  }
  auto reader = env_->NewRandomAccessFile(path_);
  if (!reader.ok()) {
    // The new file is already in place and its segments were adopted by
    // callers; without a reader the store is unusable.
    AbortRewrite();
    return reader.status();
  }
  (void)writer_->Close().ok();
  writer_ = std::move(rewrite_writer_);
  reader_ = std::move(*reader);
  arena_ = std::move(rewrite_arena_);
  head_ = rewrite_head_;
  tail_next_ = rewrite_tail_next_ == &rewrite_head_ ? &head_ : rewrite_tail_next_;
  tail_ = rewrite_tail_;
  live_bytes_ = rewrite_live_bytes_;
  dead_bytes_ = 0;
  rewrite_head_ = nullptr;
  rewrite_tail_next_ = nullptr;
  return Status::Ok();
}

void HistorySpillStore::AbortRewrite() {
  if (rewrite_writer_ == nullptr) return;
  (void)rewrite_writer_->Close().ok();
  rewrite_writer_.reset();
  rewrite_arena_.reset();
  rewrite_head_ = nullptr;
  rewrite_tail_next_ = nullptr;
  if (env_->FileExists(RewritePath(path_))) {
    (void)env_->DeleteFile(RewritePath(path_)).ok();
  }
}

}  // namespace qb5000

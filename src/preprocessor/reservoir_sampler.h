#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace qb5000 {

/// Fixed-capacity uniform sample over a stream of unknown length (Vitter's
/// Algorithm R [53]). QB5000 keeps a sample of each template's original
/// parameters for the planning module's cost/benefit estimation.
template <typename T>
class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity) : capacity_(capacity) {}

  /// Offers one item; it is kept with probability capacity / items_seen.
  void Add(T item, Rng& rng) {
    AddLazy(rng, [&]() -> T&& { return std::move(item); });
  }

  /// Add() with deferred materialization: `make` is invoked only when the
  /// item is actually kept, so a full reservoir (the steady state) skips
  /// the item's construction cost entirely. Draw-for-draw identical to
  /// Add(): the RNG advances exactly once per offer once the reservoir is
  /// full, whether or not the item is kept.
  template <typename MakeItem>
  void AddLazy(Rng& rng, MakeItem&& make) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(make());
      return;
    }
    uint64_t slot = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(seen_) - 1));
    if (slot < capacity_) items_[slot] = make();
  }

  const std::vector<T>& items() const { return items_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  /// Snapshot support: restores a previously serialized reservoir.
  void Restore(std::vector<T> items, uint64_t seen) {
    items_ = std::move(items);
    if (items_.size() > capacity_) items_.resize(capacity_);
    seen_ = seen;
  }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace qb5000

#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/status.h"
#include "common/timeseries.h"

namespace qb5000 {

/// Per-template arrival-rate record keeper. Recent history is held at
/// per-minute resolution (the finest interval QB5000 predicts at); records
/// older than the compaction horizon are folded into an hourly archive to
/// bound storage, mirroring the paper's "aggregate stale arrival rate
/// records into larger intervals" behavior (Section 4).
class ArrivalHistory {
 public:
  ArrivalHistory() : recent_(0, kSecondsPerMinute), archive_(0, kSecondsPerHour) {}

  /// Records `count` arrivals at `ts`.
  void Record(Timestamp ts, double count);

  /// Moves minute-resolution buckets strictly before `before` into the
  /// hourly archive and drops them from the recent series.
  void Compact(Timestamp before);

  /// Materializes the series over [from, to) at `interval_seconds`
  /// (a multiple of one minute). Archived ranges contribute their hourly
  /// totals spread uniformly across the finer buckets — the fine-grained
  /// shape of stale data is intentionally lost, as in the paper.
  Result<TimeSeries> Series(int64_t interval_seconds, Timestamp from,
                            Timestamp to) const;

  /// Total arrivals ever recorded.
  double Total() const { return total_; }

  /// Timestamp of the most recent recorded arrival (0 if none).
  Timestamp last_arrival() const { return last_arrival_; }

  /// First covered timestamp across archive + recent data (0 if empty).
  Timestamp FirstTime() const;

  /// Approximate storage footprint in bytes (bucket counts * 8).
  size_t StorageBytes() const {
    return (recent_.size() + archive_.size()) * sizeof(double);
  }

  /// Snapshot support: raw parts for serialization...
  const TimeSeries& recent() const { return recent_; }
  const TimeSeries& archive() const { return archive_; }
  /// ...and reconstruction from serialized parts.
  static ArrivalHistory FromParts(TimeSeries recent, TimeSeries archive,
                                  double total, Timestamp last_arrival) {
    ArrivalHistory h;
    h.recent_ = std::move(recent);
    h.archive_ = std::move(archive);
    h.total_ = total;
    h.last_arrival_ = last_arrival;
    return h;
  }

 private:
  TimeSeries recent_;   ///< minute resolution
  TimeSeries archive_;  ///< hourly resolution, strictly before recent_.start()
  double total_ = 0.0;
  Timestamp last_arrival_ = 0;
};

}  // namespace qb5000

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/check.h"
#include "common/clock.h"
#include "common/compressed_series.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "preprocessor/history_spill.h"

namespace qb5000 {

/// Per-template arrival-rate record keeper over a three-rung aggregation
/// ladder, each rung a compressed (run-length / narrow-packed) series:
///
///   recent_   minute resolution — the finest interval QB5000 predicts at
///   archive_  hourly resolution — records older than the compaction
///             horizon, mirroring the paper's "aggregate stale arrival
///             rate records into larger intervals" behavior (Section 4)
///   daily_    day resolution — the paper's scheme pushed one rung
///             further for histories that outlive the archive horizon
///             (off by default; see PreProcessor::Options)
///
/// Cold histories can additionally be *spilled*: their rungs are encoded
/// into a HistorySpillStore and the in-memory object shrinks to a stub
/// (scalars + cached coverage bounds). Reads on a spilled history go
/// through the store transparently (const, shared-lock safe); Record()
/// rehydrates first (exclusive-lock paths only). Only histories whose
/// recent rung is empty may spill, which is what makes deferring
/// compaction while spilled provably lossless: a minute-level Compact() on
/// an empty recent rung is a no-op, and archive-level compactions compose
/// (applying only the maximum requested cutoff on rehydrate produces the
/// same bits as applying each in turn).
class ArrivalHistory {
 public:
  ArrivalHistory()
      : recent_(0, kSecondsPerMinute),
        archive_(0, kSecondsPerHour),
        daily_(0, kSecondsPerDay) {}

  /// Records `count` arrivals at `ts`. Rehydrates a spilled history first.
  void Record(Timestamp ts, double count);

  /// Moves minute-resolution buckets strictly before `before` into the
  /// hourly archive and drops them from the recent series.
  void Compact(Timestamp before);

  /// Moves hourly buckets strictly before `before` (aligned down to a day)
  /// into the daily rung. Deferred while spilled (applied on rehydrate or
  /// read-through).
  void CompactArchive(Timestamp before);

  /// Materializes the series over [from, to) at `interval_seconds`
  /// (a multiple of one minute). Archived ranges contribute their hourly
  /// (or daily) totals spread uniformly across the finer buckets — the
  /// fine-grained shape of stale data is intentionally lost, as in the
  /// paper.
  Result<TimeSeries> Series(int64_t interval_seconds, Timestamp from,
                            Timestamp to) const;

  /// Series() into a caller-provided buffer: `out` is Reset() and filled
  /// in place, so hot extraction loops reuse one allocation instead of
  /// materializing a fresh dense series per template. Produces bit-for-bit
  /// the same buckets as Series().
  Status WindowInto(int64_t interval_seconds, Timestamp from, Timestamp to,
                    TimeSeries* out) const;

  /// Total arrivals over the minute-resolution window [from, to) —
  /// exactly `Series(60, from, to)->Total()`, computed through `scratch`
  /// (or an internal buffer when null) to avoid a per-call allocation.
  double RangeTotal(Timestamp from, Timestamp to, TimeSeries* scratch) const;

  /// Total arrivals ever recorded.
  double Total() const { return total_; }

  /// Timestamp of the most recent recorded arrival (0 if none).
  Timestamp last_arrival() const { return last_arrival_; }

  /// First covered timestamp across all rungs (0 if empty). Served from a
  /// cached bound while spilled — no I/O.
  Timestamp FirstTime() const;

  /// Resident heap footprint in bytes: object size plus the real heap
  /// capacity of all rungs. Near-zero while spilled.
  size_t StorageBytes() const;

  /// Payload bytes held in the spill store for this history (0 when
  /// resident).
  size_t SpilledBytes() const {
    return spilled_ ? segment_->length : 0;
  }

  // --- spill tier -----------------------------------------------------------

  bool spilled() const { return spilled_; }

  /// A history may spill only once fully compacted out of the minute rung;
  /// see the class comment for why.
  bool SpillEligible() const { return !spilled_ && recent_.empty(); }

  /// Encodes the rungs into `store` and drops them from memory.
  Status Spill(HistorySpillStore* store);

  /// Loads the rungs back from the spill store and applies any deferred
  /// archive compaction. On I/O failure the history comes back *empty*
  /// (coverage lost, scalars kept) so the template keeps working; the
  /// error is returned for accounting.
  Status Rehydrate();

  /// Releases the spill record without reloading it (template eviction).
  void DropSpill();

  /// GC support: copies this spilled history's payload into `store`'s
  /// in-progress rewrite. The returned segment must not be adopted until
  /// CommitRewrite() succeeds — AbortRewrite() frees it.
  Result<const HistorySpillStore::Segment*> RewriteInto(
      HistorySpillStore* store) const;

  /// GC support: points this spilled history at its post-rewrite segment.
  void AdoptSegment(HistorySpillStore* store,
                    const HistorySpillStore::Segment* segment);

  // --- serialization --------------------------------------------------------

  /// Writes the full state (scalars + three rungs, exact run structure) to
  /// `out`, reading through the spill store if needed. The snapshot v2
  /// history payload and the spill payload share this one encoder.
  Status EncodeResolved(std::ostream& out) const;

  /// Parses what EncodeResolved() wrote. The result is always resident.
  static Result<ArrivalHistory> DecodeFrom(std::istream& in);

  /// Builds a history from the dense v1 snapshot representation,
  /// preserving coverage exactly (explicit zero buckets included).
  static Result<ArrivalHistory> FromDense(const TimeSeries& recent,
                                          const TimeSeries& archive,
                                          double total,
                                          Timestamp last_arrival);

  // --- raw rung access (history/snapshot internals only; qb_lint enforces
  // that nothing outside those modules reaches in) ---------------------------

  const CompressedSeries& recent() const {
    QB_CHECK(!spilled_);
    return recent_;
  }
  const CompressedSeries& archive() const {
    QB_CHECK(!spilled_);
    return archive_;
  }
  const CompressedSeries& daily() const {
    QB_CHECK(!spilled_);
    return daily_;
  }

 private:
  /// Encodes the resident rungs; precondition !spilled_.
  void EncodeTo(std::ostream& out) const;
  std::string EncodeToString() const;

  /// The hour -> day fold itself (resident only).
  void ApplyCompactArchive(Timestamp before);

  /// Resident copy of a (possibly spilled) history, deferred archive
  /// compaction applied. Identity copy when already resident.
  Result<ArrivalHistory> MaterializedCopy() const;

  /// Fills `out` from resident rungs; precondition !spilled_.
  void WindowIntoResident(int64_t interval_seconds, Timestamp from,
                          Timestamp to, TimeSeries* out) const;

  /// End (exclusive) of the covered range across all rungs; 0 when empty.
  Timestamp CoveredEnd() const;

  CompressedSeries recent_;   ///< minute resolution
  CompressedSeries archive_;  ///< hourly, strictly before recent_.start()
  CompressedSeries daily_;    ///< daily, strictly before archive_.start()
  double total_ = 0.0;
  Timestamp last_arrival_ = 0;

  // Spill stub state (meaningful only while spilled_).
  bool spilled_ = false;
  HistorySpillStore* store_ = nullptr;
  const HistorySpillStore::Segment* segment_ = nullptr;
  Timestamp pending_archive_compact_ = 0;
  Timestamp covered_first_ = 0;  ///< cached FirstTime() at spill time
  Timestamp covered_end_ = 0;    ///< cached CoveredEnd() at spill time
};

}  // namespace qb5000

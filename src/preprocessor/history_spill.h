#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/arena.h"
#include "common/io.h"
#include "common/status.h"

namespace qb5000 {

/// Append-only on-disk backing for cold template histories — the spill tier
/// behind `ArrivalHistory`. Payloads (encoded histories) are appended to a
/// single file; the index of where each record lives is kept entirely in
/// memory as arena-allocated `Segment` nodes, so spilling a template costs
/// one small node plus its payload bytes on disk instead of the history's
/// heap footprint.
///
/// The file is *runtime-only* state: everything spilled here is still
/// serialized into checkpoints (read through on save), so the store is
/// recreated empty on startup and never needs crash recovery. That is why
/// appends Flush() but never Sync(), and why GC can swap to a fresh file
/// without rename gymnastics for the old one.
///
/// Thread-safety: externally synchronized by the owner's state lock, like
/// the PreProcessor it serves. `Read()` is const and safe to call from
/// multiple shared-lock holders concurrently (positional reads of
/// already-flushed bytes); `Append`/`MarkDead`/the GC triad require the
/// exclusive lock. Read stats counters are atomic so const readers can
/// bump them.
class HistorySpillStore {
 public:
  /// In-memory index node for one spilled payload. Allocated from the
  /// store's arena; pointers stay valid until the store is destroyed or a
  /// GC rewrite completes (after which every live segment has been
  /// re-appended and callers hold the new pointers).
  struct Segment {
    uint64_t offset = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
    bool live = true;
    Segment* next = nullptr;  ///< insertion-ordered intrusive list
  };

  /// `env == nullptr` means Env::Default(). Call Open() before use.
  HistorySpillStore(Env* env, std::string path);
  ~HistorySpillStore();

  HistorySpillStore(const HistorySpillStore&) = delete;
  HistorySpillStore& operator=(const HistorySpillStore&) = delete;

  /// Creates (truncates) the spill file and opens the positional reader.
  Status Open();

  /// Appends `payload`, flushes it to the OS, and returns its index node.
  Result<const Segment*> Append(std::string_view payload);

  /// Reads a payload back and verifies its CRC (IOError on mismatch —
  /// the bytes rotted or the store was overwritten).
  Result<std::string> Read(const Segment* segment) const;

  /// Marks a payload dead (rehydrated or its template evicted). Idempotent.
  void MarkDead(const Segment* segment);

  /// --- GC: rewrite live payloads into a fresh file ----------------------
  /// The caller (PreProcessor) drives the rewrite because only it knows
  /// which template owns which segment: BeginRewrite(), then for *every*
  /// live segment Read() + RewriteAppend(), then CommitRewrite() (or
  /// AbortRewrite() on any failure, which leaves the old file and index
  /// fully intact). Nodes returned by RewriteAppend() must only be adopted
  /// *after* CommitRewrite() succeeds — AbortRewrite() frees them.
  Status BeginRewrite();
  Result<const Segment*> RewriteAppend(std::string_view payload);
  Status CommitRewrite();
  void AbortRewrite();

  /// True when dead bytes dominate live bytes and are worth reclaiming.
  bool NeedsGC() const {
    return dead_bytes_ > live_bytes_ && dead_bytes_ >= kMinGCBytes;
  }

  size_t live_bytes() const { return live_bytes_; }
  size_t dead_bytes() const { return dead_bytes_; }
  size_t file_bytes() const { return tail_; }
  /// Bytes reserved for the in-memory segment index.
  size_t index_bytes() const {
    return (arena_ != nullptr ? arena_->bytes_reserved() : 0) +
           (rewrite_arena_ != nullptr ? rewrite_arena_->bytes_reserved() : 0);
  }
  uint64_t read_throughs() const {
    return read_throughs_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

 private:
  static constexpr size_t kMinGCBytes = 1 << 20;

  // GC-time path join, nowhere near the ingest path.
  static std::string RewritePath(const std::string& path) {  // lint:string-ref-ok
    return path + ".gc";
  }

  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> writer_;
  std::unique_ptr<RandomAccessFile> reader_;
  std::unique_ptr<Arena> arena_;
  Segment* head_ = nullptr;
  Segment** tail_next_ = &head_;
  uint64_t tail_ = 0;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;

  // In-flight GC rewrite (null when no rewrite is active).
  std::unique_ptr<WritableFile> rewrite_writer_;
  std::unique_ptr<Arena> rewrite_arena_;
  Segment* rewrite_head_ = nullptr;
  Segment** rewrite_tail_next_ = nullptr;
  uint64_t rewrite_tail_ = 0;
  size_t rewrite_live_bytes_ = 0;

  // Stat counter bumped by const shared-lock readers.
  mutable std::atomic<uint64_t> read_throughs_{0};  // lint:raw-atomic-ok
};

}  // namespace qb5000

#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

class Env;

/// Persistence for the Pre-Processor's state — the paper's "internal
/// database" of templates, arrival-rate histories, and parameter samples
/// (Section 3). Forecasting models are deliberately not persisted: they
/// retrain from history in seconds (Table 4) and depend on the cluster
/// assignment of the moment.
///
/// The format is a versioned, length-prefixed text format: stable across
/// platforms, diffable, and safe for arbitrary SQL bytes in template text.
class Snapshot {
 public:
  /// Serializes `pre` to a stream. Parameter samples are persisted along
  /// with each template.
  static Status Save(const PreProcessor& pre, std::ostream& out);

  /// Restores a Pre-Processor saved by Save(). `options` supplies the
  /// runtime knobs (they are not part of the snapshot).
  static Result<PreProcessor> Load(std::istream& in,
                                   PreProcessor::Options options);

  /// File convenience wrappers. Writes go through AtomicFileWriter
  /// (common/io.h): binary mode, temp-file + fsync + rename, every stream
  /// and disk error (full disk, permissions) surfaced as a Status instead
  /// of silently succeeding. `env == nullptr` means Env::Default().
  // Paths stay const std::string&: the io layer's signatures take owned
  // strings and this is a cold path (one call per checkpoint).
  static Status SaveToFile(const PreProcessor& pre,
                           const std::string& path,  // lint:string-ref-ok
                           Env* env = nullptr);
  static Result<PreProcessor> LoadFromFile(
      const std::string& path,  // lint:string-ref-ok
      PreProcessor::Options options, Env* env = nullptr);
};

}  // namespace qb5000

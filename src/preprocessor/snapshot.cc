#include "preprocessor/snapshot.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/io.h"

namespace qb5000 {
namespace {

constexpr char kMagic[] = "qb5000-snapshot";
/// v1: dense history series (recent minute vector + hourly archive vector).
/// v2: compressed three-rung history payload (ArrivalHistory::EncodeResolved).
/// Load() accepts both; Save() writes v2.
constexpr int kVersion = 2;
constexpr int kOldestSupportedVersion = 1;

// --- primitive writers (length-prefixed strings; text numbers) -------------

void WriteString(std::ostream& out, const std::string& s) {
  out << s.size() << '\n' << s << '\n';
}

// --- primitive readers ------------------------------------------------------

Result<std::string> ReadString(std::istream& in) {
  size_t length = 0;
  if (!(in >> length)) return Status::ParseError("bad string length");
  in.get();  // consume '\n'
  std::string s(length, '\0');
  if (!in.read(s.data(), static_cast<std::streamsize>(length))) {
    return Status::ParseError("truncated string");
  }
  in.get();  // trailing '\n'
  return s;
}

Result<TimeSeries> ReadSeries(std::istream& in) {
  Timestamp start = 0;
  int64_t interval = 0;
  size_t n = 0;
  if (!(in >> start >> interval >> n)) {
    return Status::ParseError("bad series header");
  }
  if (interval <= 0) return Status::ParseError("bad series interval");
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> values[i])) return Status::ParseError("truncated series");
  }
  return TimeSeries(start, interval, std::move(values));
}

}  // namespace

Status Snapshot::Save(const PreProcessor& pre, std::ostream& out) {
  out.precision(17);  // doubles must round-trip exactly
  out << kMagic << ' ' << kVersion << '\n';
  auto ids = pre.TemplateIds();
  out << "templates " << ids.size() << '\n';
  for (TemplateId id : ids) {
    const auto* info = pre.GetTemplate(id);
    if (info == nullptr) return Status::Internal("missing template");
    out << "template " << info->id << '\n';
    WriteString(out, info->fingerprint);
    WriteString(out, info->text);
    out << static_cast<int>(info->type) << ' ' << info->first_seen << ' '
        << info->last_seen << ' ' << info->total_queries << '\n';
    out << "tables " << info->tables.size() << '\n';
    for (const auto& table : info->tables) WriteString(out, table);
    out << "history " << info->history.Total() << ' '
        << info->history.last_arrival() << '\n';
    // Reads through the spill store when the history is cold — checkpoints
    // always hold the full state, which is what makes the spill file itself
    // disposable.
    Status history_status = info->history.EncodeResolved(out);
    if (!history_status.ok()) return history_status;
    const auto& samples = info->param_samples;
    out << "params " << samples.capacity() << ' ' << samples.seen() << ' '
        << samples.items().size() << '\n';
    for (const auto& params : samples.items()) {
      out << params.size() << '\n';
      for (const auto& literal : params) {
        out << static_cast<int>(literal.type) << '\n';
        WriteString(out, literal.text);
      }
    }
  }
  out << "end\n";
  if (!out) return Status::Internal("write failed");
  return Status::Ok();
}

Result<PreProcessor> Snapshot::Load(std::istream& in,
                                    PreProcessor::Options options) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::ParseError("not a qb5000 snapshot");
  }
  if (version < kOldestSupportedVersion || version > kVersion) {
    return Status::ParseError("unsupported snapshot version");
  }
  std::string keyword;
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "templates") {
    return Status::ParseError("missing templates section");
  }
  PreProcessor pre(options);
  for (size_t t = 0; t < count; ++t) {
    TemplateId id = 0;
    if (!(in >> keyword >> id) || keyword != "template") {
      return Status::ParseError("missing template record");
    }
    PreProcessor::TemplateInfo info(options.param_sample_capacity);
    info.id = id;
    auto fingerprint = ReadString(in);
    if (!fingerprint.ok()) return fingerprint.status();
    info.fingerprint = std::move(*fingerprint);
    auto text = ReadString(in);
    if (!text.ok()) return text.status();
    info.text = std::move(*text);
    int type = 0;
    if (!(in >> type >> info.first_seen >> info.last_seen >>
          info.total_queries)) {
      return Status::ParseError("bad template scalars");
    }
    if (type < 0 || type > 3) return Status::ParseError("bad statement type");
    info.type = static_cast<sql::StatementType>(type);
    size_t num_tables = 0;
    if (!(in >> keyword >> num_tables) || keyword != "tables") {
      return Status::ParseError("missing tables section");
    }
    for (size_t i = 0; i < num_tables; ++i) {
      auto table = ReadString(in);
      if (!table.ok()) return table.status();
      info.tables.push_back(std::move(*table));
    }
    double history_total = 0;
    Timestamp last_arrival = 0;
    if (!(in >> keyword >> history_total >> last_arrival) ||
        keyword != "history") {
      return Status::ParseError("missing history section");
    }
    if (version == 1) {
      // Dense v1 payload: two flat series, converted bucket-for-bucket.
      auto recent = ReadSeries(in);
      if (!recent.ok()) return recent.status();
      auto archive = ReadSeries(in);
      if (!archive.ok()) return archive.status();
      auto history = ArrivalHistory::FromDense(*recent, *archive,
                                               history_total, last_arrival);
      if (!history.ok()) return history.status();
      info.history = std::move(*history);
    } else {
      auto history = ArrivalHistory::DecodeFrom(in);
      if (!history.ok()) return history.status();
      info.history = std::move(*history);
    }
    size_t capacity = 0, kept = 0;
    uint64_t seen = 0;
    if (!(in >> keyword >> capacity >> seen >> kept) || keyword != "params") {
      return Status::ParseError("missing params section");
    }
    std::vector<std::vector<sql::Literal>> items;
    for (size_t i = 0; i < kept; ++i) {
      size_t width = 0;
      if (!(in >> width)) return Status::ParseError("bad param tuple");
      std::vector<sql::Literal> tuple(width);
      for (size_t j = 0; j < width; ++j) {
        int literal_type = 0;
        if (!(in >> literal_type)) return Status::ParseError("bad literal");
        tuple[j].type = static_cast<sql::LiteralType>(literal_type);
        auto literal_text = ReadString(in);
        if (!literal_text.ok()) return literal_text.status();
        tuple[j].text = std::move(*literal_text);
      }
      items.push_back(std::move(tuple));
    }
    info.param_samples.Restore(std::move(items), seen);
    Status st = pre.RestoreTemplate(std::move(info));
    if (!st.ok()) return st;
  }
  if (!(in >> keyword) || keyword != "end") {
    return Status::ParseError("missing end marker");
  }
  return pre;
}

Status Snapshot::SaveToFile(const PreProcessor& pre, const std::string& path,
                            Env* env) {
  // Serialize in memory first (checking stream health), then hand the bytes
  // to the atomic writer: temp file, flush, fsync, rename. A crash or a
  // disk error mid-write leaves any previous snapshot untouched, and every
  // failure (disk full, permissions) comes back as a Status.
  std::ostringstream out;
  Status st = Save(pre, out);
  if (!st.ok()) return st;
  if (out.fail()) return Status::Internal("snapshot serialization failed");
  AtomicFileWriter writer(env, path);
  st = writer.Append(out.str());
  if (!st.ok()) return st;
  return writer.Commit();
}

Result<PreProcessor> Snapshot::LoadFromFile(const std::string& path,
                                            PreProcessor::Options options,
                                            Env* env) {
  auto data = ReadFileToString(env, path);
  if (!data.ok()) return data.status();
  std::istringstream in(*data);
  return Load(in, options);
}

}  // namespace qb5000

#include "preprocessor/templatizer.h"

#include <algorithm>
#include <set>
#include <string_view>

#include "common/arena.h"
#include "common/strings.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace qb5000 {
namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::Statement;
using sql::StatementType;

/// Replaces every literal in the expression tree with a placeholder,
/// appending the extracted constants to `params` in visit order.
void ExtractConstants(ExprPtr& node, std::vector<sql::Literal>* params) {
  if (!node) return;
  if (node->kind == ExprKind::kLiteral) {
    params->push_back(node->literal);
    auto placeholder = sql::MakePlaceholder();
    placeholder->negated = node->negated;
    node = std::move(placeholder);
    return;
  }
  ExtractConstants(node->left, params);
  ExtractConstants(node->right, params);
  for (auto& child : node->list) ExtractConstants(child, params);
}

/// Collects `column op` descriptors for all comparison predicates under
/// `node`, used for the semantic fingerprint.
void CollectPredicates(const Expr* node, std::set<std::string>* preds) {
  if (node == nullptr) return;
  auto column_of = [](const Expr* e) -> std::string {
    if (e == nullptr || e->kind != ExprKind::kColumnRef) return "";
    if (e->table.empty()) return e->column;
    return e->table + "." + e->column;
  };
  switch (node->kind) {
    case ExprKind::kBinary: {
      if (node->op == "AND" || node->op == "OR") {
        CollectPredicates(node->left.get(), preds);
        CollectPredicates(node->right.get(), preds);
        return;
      }
      std::string lhs = column_of(node->left.get());
      std::string rhs = column_of(node->right.get());
      if (!lhs.empty() || !rhs.empty()) {
        std::string entry = lhs.empty() ? rhs : lhs;
        entry += ' ';
        if (node->negated) entry += "NOT ";
        entry += node->op;
        if (!lhs.empty() && !rhs.empty()) entry += " " + rhs;  // join predicate
        preds->insert(entry);
      }
      return;
    }
    case ExprKind::kUnary:
      if (node->op == "IS NULL" || node->op == "IS NOT NULL") {
        preds->insert(column_of(node->left.get()) + " " + node->op);
        return;
      }
      CollectPredicates(node->left.get(), preds);
      return;
    case ExprKind::kInList:
      preds->insert(column_of(node->left.get()) +
                    (node->negated ? " NOT IN" : " IN"));
      return;
    case ExprKind::kBetween:
      preds->insert(column_of(node->left.get()) +
                    (node->negated ? " NOT BETWEEN" : " BETWEEN"));
      return;
    default:
      return;
  }
}

std::string ProjectionKey(const Expr& e) {
  // Use the canonical printed form; after constant extraction this is
  // already parameter-independent.
  return sql::PrintExpr(e);
}

/// Builds the semantic-equivalence fingerprint per Section 4: statement
/// type + tables accessed + predicates used + projections returned.
std::string BuildFingerprint(const Statement& stmt,
                             const std::vector<std::string>& tables) {
  std::string fp;
  std::set<std::string> preds;
  std::set<std::string> projections;
  switch (stmt.type) {
    case StatementType::kSelect: {
      fp = "SELECT";
      const auto& s = *stmt.select;
      for (const auto& item : s.items) projections.insert(ProjectionKey(*item.expr));
      CollectPredicates(s.where.get(), &preds);
      CollectPredicates(s.having.get(), &preds);
      for (const auto& join : s.joins) CollectPredicates(join.on.get(), &preds);
      for (const auto& g : s.group_by) preds.insert("GROUP " + ProjectionKey(*g));
      break;
    }
    case StatementType::kInsert: {
      fp = "INSERT";
      for (const auto& col : stmt.insert->columns) projections.insert(col);
      break;
    }
    case StatementType::kUpdate: {
      fp = "UPDATE";
      for (const auto& [col, value] : stmt.update->assignments) {
        (void)value;
        projections.insert(col);
      }
      CollectPredicates(stmt.update->where.get(), &preds);
      break;
    }
    case StatementType::kDelete: {
      fp = "DELETE";
      CollectPredicates(stmt.del->where.get(), &preds);
      break;
    }
  }
  fp += "|tables=";
  fp += Join(tables, ",");
  fp += "|cols=";
  fp += Join(std::vector<std::string>(projections.begin(), projections.end()), ",");
  fp += "|preds=";
  fp += Join(std::vector<std::string>(preds.begin(), preds.end()), ",");
  return fp;
}

std::vector<std::string> CollectTables(const Statement& stmt) {
  std::set<std::string> tables;
  switch (stmt.type) {
    case StatementType::kSelect:
      for (const auto& ref : stmt.select->from) tables.insert(ref.table);
      for (const auto& join : stmt.select->joins) tables.insert(join.table.table);
      break;
    case StatementType::kInsert:
      tables.insert(stmt.insert->table);
      break;
    case StatementType::kUpdate:
      tables.insert(stmt.update->table);
      break;
    case StatementType::kDelete:
      tables.insert(stmt.del->table);
      break;
  }
  return {tables.begin(), tables.end()};
}

/// Token-level fallback for statements outside the parsed dialect: strip
/// literal tokens, rebuild normalized text, and fingerprint on the token
/// sequence. Keeps templatization total over arbitrary SQL.
Result<TemplatizeOutput> TemplatizeFallback(std::string_view sql) {
  // The tokens only live for this function; a small local arena backs any
  // rewritten token text.
  Arena arena;
  auto tokens = sql::Tokenize(sql, &arena);
  if (!tokens.ok()) return tokens.status();
  if (tokens->size() <= 1) {  // only the end-of-input marker
    return Status::InvalidArgument("empty statement");
  }
  TemplatizeOutput out;
  out.used_fallback = true;
  std::string text;
  for (const auto& token : *tokens) {
    if (token.type == sql::TokenType::kEnd) break;
    std::string piece;
    switch (token.type) {
      case sql::TokenType::kInteger:
        out.parameters.push_back(
            {sql::LiteralType::kInteger, std::string(token.text)});
        piece = "?";
        break;
      case sql::TokenType::kFloat:
        out.parameters.push_back(
            {sql::LiteralType::kFloat, std::string(token.text)});
        piece = "?";
        break;
      case sql::TokenType::kString:
        out.parameters.push_back(
            {sql::LiteralType::kString, std::string(token.text)});
        piece = "?";
        break;
      default:
        piece = std::string(token.text);
        break;
    }
    if (!text.empty() && piece != "," && piece != ")" && piece != "." &&
        piece != ";" && text.back() != '(' && text.back() != '.') {
      text += ' ';
    }
    text += piece;
  }
  out.template_text = text;
  out.fingerprint = "RAW|" + text;
  if (!tokens->empty() && (*tokens)[0].type == sql::TokenType::kKeyword) {
    std::string_view kw = (*tokens)[0].text;
    if (kw == "INSERT") out.type = StatementType::kInsert;
    else if (kw == "UPDATE") out.type = StatementType::kUpdate;
    else if (kw == "DELETE") out.type = StatementType::kDelete;
  }
  return out;
}

}  // namespace

Result<TemplatizeOutput> Templatize(std::string_view sql) {
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return TemplatizeFallback(sql);
  Statement stmt = std::move(parsed.value());

  TemplatizeOutput out;
  out.type = stmt.type;

  switch (stmt.type) {
    case StatementType::kSelect: {
      auto& s = *stmt.select;
      for (auto& item : s.items) ExtractConstants(item.expr, &out.parameters);
      ExtractConstants(s.where, &out.parameters);
      for (auto& g : s.group_by) ExtractConstants(g, &out.parameters);
      ExtractConstants(s.having, &out.parameters);
      for (auto& o : s.order_by) ExtractConstants(o.expr, &out.parameters);
      for (auto& join : s.joins) ExtractConstants(join.on, &out.parameters);
      break;
    }
    case StatementType::kInsert: {
      auto& ins = *stmt.insert;
      out.batch_size = ins.rows.size();
      // Record the first tuple's constants, then collapse the batch to a
      // single placeholder tuple so every batch size shares one template.
      if (!ins.rows.empty()) {
        ExtractConstants(ins.rows[0][0], &out.parameters);
        for (size_t i = 1; i < ins.rows[0].size(); ++i) {
          ExtractConstants(ins.rows[0][i], &out.parameters);
        }
        std::vector<ExprPtr> tuple = std::move(ins.rows[0]);
        ins.rows.clear();
        ins.rows.push_back(std::move(tuple));
      }
      break;
    }
    case StatementType::kUpdate: {
      auto& upd = *stmt.update;
      for (auto& [col, value] : upd.assignments) {
        (void)col;
        ExtractConstants(value, &out.parameters);
      }
      ExtractConstants(upd.where, &out.parameters);
      break;
    }
    case StatementType::kDelete: {
      ExtractConstants(stmt.del->where, &out.parameters);
      break;
    }
  }

  out.tables = CollectTables(stmt);
  out.template_text = sql::Print(stmt);
  out.fingerprint = BuildFingerprint(stmt, out.tables);
  return out;
}

}  // namespace qb5000

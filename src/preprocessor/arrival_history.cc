#include "preprocessor/arrival_history.h"

#include <algorithm>
#include <istream>

#include "common/check.h"
#include <ostream>
#include <sstream>
#include <utility>

namespace qb5000 {

void ArrivalHistory::Record(Timestamp ts, double count) {
  if (spilled_) (void)Rehydrate().ok();  // failure leaves an empty, live history
  total_ += count;
  last_arrival_ = std::max(last_arrival_, ts);
  Timestamp archive_start =
      archive_.empty() ? recent_.start() : archive_.start();
  if (!daily_.empty() && ts < archive_start) {
    // Very late arrival for a range already folded down to days.
    daily_.Add(ts, count);
    return;
  }
  if (!archive_.empty() && ts < recent_.start()) {
    // Late arrival for an already-compacted range goes to the archive.
    archive_.Add(ts, count);
    return;
  }
  recent_.Add(ts, count);
}

void ArrivalHistory::Compact(Timestamp before) {
  // A spilled history has an empty recent rung (the spill precondition),
  // so the dense-equivalent fold would be a no-op anyway; skip the I/O.
  if (spilled_) return;
  before = AlignDown(before, kSecondsPerHour);
  if (recent_.empty() || before <= recent_.start()) return;
  Timestamp cutoff = std::min(before, recent_.end());
  // Fold [recent_.start(), cutoff) into the archive.
  recent_.ForEachInRange(recent_.start(), cutoff,
                         [this](Timestamp t, double v) {
                           if (v != 0.0) archive_.Add(t, v);
                         });
  // Rebuild the recent series from the cutoff forward.
  CompressedSeries rebuilt(cutoff, kSecondsPerMinute);
  recent_.ForEachInRange(cutoff, recent_.end(),
                         [&rebuilt](Timestamp t, double v) {
                           if (v != 0.0) rebuilt.Add(t, v);
                         });
  recent_ = std::move(rebuilt);
}

void ArrivalHistory::CompactArchive(Timestamp before) {
  before = AlignDown(before, kSecondsPerDay);
  if (spilled_) {
    // Deferred: archive compactions compose (max cutoff wins), so one
    // fold at rehydrate time produces the same bits as folding eagerly.
    pending_archive_compact_ = std::max(pending_archive_compact_, before);
    return;
  }
  ApplyCompactArchive(before);
}

void ArrivalHistory::ApplyCompactArchive(Timestamp before) {
  if (archive_.empty() || before <= archive_.start()) return;
  Timestamp cutoff = std::min(before, archive_.end());
  archive_.ForEachInRange(archive_.start(), cutoff,
                          [this](Timestamp t, double v) {
                            if (v != 0.0) daily_.Add(t, v);
                          });
  CompressedSeries rebuilt(cutoff, kSecondsPerHour);
  archive_.ForEachInRange(cutoff, archive_.end(),
                          [&rebuilt](Timestamp t, double v) {
                            if (v != 0.0) rebuilt.Add(t, v);
                          });
  archive_ = std::move(rebuilt);
}

Result<TimeSeries> ArrivalHistory::Series(int64_t interval_seconds,
                                          Timestamp from, Timestamp to) const {
  TimeSeries out;
  Status st = WindowInto(interval_seconds, from, to, &out);
  if (!st.ok()) return st;
  return out;
}

Status ArrivalHistory::WindowInto(int64_t interval_seconds, Timestamp from,
                                  Timestamp to, TimeSeries* out) const {
  if (interval_seconds <= 0 || interval_seconds % kSecondsPerMinute != 0) {
    return Status::InvalidArgument(
        "interval must be a positive multiple of one minute");
  }
  from = AlignDown(from, interval_seconds);
  to = AlignDown(to + interval_seconds - 1, interval_seconds);
  if (to <= from) {
    out->Reset(from, interval_seconds, 0);
    return Status::Ok();
  }
  size_t n = static_cast<size_t>((to - from) / interval_seconds);
  if (spilled_) {
    // Cold fast path: most windows over spilled (long-idle) histories lie
    // entirely after the covered range — answer them without touching disk.
    if (covered_end_ <= covered_first_ || from >= covered_end_ ||
        to <= covered_first_) {
      out->Reset(from, interval_seconds, n);
      return Status::Ok();
    }
    auto copy = MaterializedCopy();
    if (!copy.ok()) return copy.status();
    copy->WindowIntoResident(interval_seconds, from, to, out);
    return Status::Ok();
  }
  WindowIntoResident(interval_seconds, from, to, out);
  return Status::Ok();
}

void ArrivalHistory::WindowIntoResident(int64_t interval_seconds,
                                        Timestamp from, Timestamp to,
                                        TimeSeries* out) const {
  size_t n = static_cast<size_t>((to - from) / interval_seconds);
  out->Reset(from, interval_seconds, n);
  auto values = out->mutable_values();

  // Recent (minute) contribution. Gap buckets are implicit zeros, which the
  // dense path skipped explicitly — same additions in the same order.
  recent_.ForEachInRange(from, to,
                         [&](Timestamp t, double v) {
                           if (v == 0.0) return;
                           values[static_cast<size_t>((t - from) /
                                                      interval_seconds)] += v;
                         });

  // Archive (hourly) contribution. When the requested interval is finer
  // than an hour, spread each hourly total uniformly over its sub-buckets.
  archive_.ForEachInRange(
      from - kSecondsPerHour + 1, to, [&](Timestamp t, double value) {
        if (value == 0.0) return;
        if (interval_seconds >= kSecondsPerHour) {
          size_t bucket = static_cast<size_t>((std::max(t, from) - from) /
                                              interval_seconds);
          if (bucket < n) values[bucket] += value;
        } else {
          int64_t sub = kSecondsPerHour / interval_seconds;
          double share = value / static_cast<double>(sub);
          for (int64_t s = 0; s < sub; ++s) {
            Timestamp st = t + s * interval_seconds;
            if (st < from || st >= to) continue;
            values[static_cast<size_t>((st - from) / interval_seconds)] +=
                share;
          }
        }
      });

  // Daily contribution, same spreading scheme one rung up.
  daily_.ForEachInRange(
      from - kSecondsPerDay + 1, to, [&](Timestamp t, double value) {
        if (value == 0.0) return;
        if (interval_seconds >= kSecondsPerDay) {
          size_t bucket = static_cast<size_t>((std::max(t, from) - from) /
                                              interval_seconds);
          if (bucket < n) values[bucket] += value;
        } else {
          int64_t sub = kSecondsPerDay / interval_seconds;
          double share = value / static_cast<double>(sub);
          for (int64_t s = 0; s < sub; ++s) {
            Timestamp st = t + s * interval_seconds;
            if (st < from || st >= to) continue;
            values[static_cast<size_t>((st - from) / interval_seconds)] +=
                share;
          }
        }
      });
}

double ArrivalHistory::RangeTotal(Timestamp from, Timestamp to,
                                  TimeSeries* scratch) const {
  TimeSeries local;
  TimeSeries* out = scratch != nullptr ? scratch : &local;
  if (!WindowInto(kSecondsPerMinute, from, to, out).ok()) return 0.0;
  return out->Total();
}

Timestamp ArrivalHistory::FirstTime() const {
  if (spilled_) return covered_first_;
  if (!daily_.empty()) return daily_.start();
  if (!archive_.empty()) return archive_.start();
  if (!recent_.empty()) return recent_.start();
  return 0;
}

Timestamp ArrivalHistory::CoveredEnd() const {
  Timestamp end = 0;
  if (!recent_.empty()) end = std::max(end, recent_.end());
  if (!archive_.empty()) end = std::max(end, archive_.end());
  if (!daily_.empty()) end = std::max(end, daily_.end());
  return end;
}

size_t ArrivalHistory::StorageBytes() const {
  return sizeof(ArrivalHistory) + recent_.HeapBytes() + archive_.HeapBytes() +
         daily_.HeapBytes();
}

Status ArrivalHistory::Spill(HistorySpillStore* store) {
  QB_CHECK(!spilled_);
  QB_CHECK(recent_.empty());
  auto segment = store->Append(EncodeToString());
  if (!segment.ok()) return segment.status();
  store_ = store;
  segment_ = *segment;
  covered_first_ = FirstTime();
  covered_end_ = CoveredEnd();
  Timestamp recent_hint = recent_.start();
  recent_ = CompressedSeries(recent_hint, kSecondsPerMinute);
  archive_ = CompressedSeries(0, kSecondsPerHour);
  daily_ = CompressedSeries(0, kSecondsPerDay);
  pending_archive_compact_ = 0;
  spilled_ = true;
  return Status::Ok();
}

Status ArrivalHistory::Rehydrate() {
  if (!spilled_) return Status::Ok();
  Timestamp recent_hint = recent_.start();
  Status result = Status::Ok();
  auto payload = store_->Read(segment_);
  if (payload.ok()) {
    std::istringstream in(*payload);
    auto decoded = DecodeFrom(in);
    if (decoded.ok()) {
      recent_ = std::move(decoded->recent_);
      archive_ = std::move(decoded->archive_);
      daily_ = std::move(decoded->daily_);
    } else {
      result = decoded.status();
    }
  } else {
    result = payload.status();
  }
  if (!result.ok()) {
    // Lossy but live: the template keeps recording with empty coverage.
    recent_ = CompressedSeries(recent_hint, kSecondsPerMinute);
    archive_ = CompressedSeries(0, kSecondsPerHour);
    daily_ = CompressedSeries(0, kSecondsPerDay);
  }
  store_->MarkDead(segment_);
  spilled_ = false;
  store_ = nullptr;
  segment_ = nullptr;
  Timestamp pending = pending_archive_compact_;
  pending_archive_compact_ = 0;
  if (result.ok() && pending > 0) ApplyCompactArchive(pending);
  return result;
}

Result<const HistorySpillStore::Segment*> ArrivalHistory::RewriteInto(
    HistorySpillStore* store) const {
  QB_CHECK(spilled_);
  auto payload = store_->Read(segment_);
  if (!payload.ok()) return payload.status();
  return store->RewriteAppend(*payload);
}

void ArrivalHistory::AdoptSegment(HistorySpillStore* store,
                                  const HistorySpillStore::Segment* segment) {
  QB_CHECK(spilled_);
  store_ = store;
  segment_ = segment;
}

void ArrivalHistory::DropSpill() {
  if (!spilled_) return;
  store_->MarkDead(segment_);
  spilled_ = false;
  store_ = nullptr;
  segment_ = nullptr;
  pending_archive_compact_ = 0;
}

Result<ArrivalHistory> ArrivalHistory::MaterializedCopy() const {
  if (!spilled_) return *this;
  auto payload = store_->Read(segment_);
  if (!payload.ok()) return payload.status();
  std::istringstream in(*payload);
  auto decoded = DecodeFrom(in);
  if (!decoded.ok()) return decoded.status();
  if (pending_archive_compact_ > 0) {
    decoded->ApplyCompactArchive(pending_archive_compact_);
  }
  return decoded;
}

void ArrivalHistory::EncodeTo(std::ostream& out) const {
  QB_CHECK(!spilled_);
  out << "ah " << total_ << ' ' << last_arrival_ << '\n';
  recent_.Write(out);
  archive_.Write(out);
  daily_.Write(out);
}

std::string ArrivalHistory::EncodeToString() const {
  std::ostringstream out;
  out.precision(17);  // doubles must round-trip exactly
  EncodeTo(out);
  return out.str();
}

Status ArrivalHistory::EncodeResolved(std::ostream& out) const {
  if (!spilled_) {
    EncodeTo(out);
    return Status::Ok();
  }
  auto copy = MaterializedCopy();
  if (!copy.ok()) return copy.status();
  copy->EncodeTo(out);
  return Status::Ok();
}

Result<ArrivalHistory> ArrivalHistory::DecodeFrom(std::istream& in) {
  std::string keyword;
  ArrivalHistory h;
  if (!(in >> keyword >> h.total_ >> h.last_arrival_) || keyword != "ah") {
    return Status::ParseError("bad history header");
  }
  auto recent = CompressedSeries::Read(in);
  if (!recent.ok()) return recent.status();
  auto archive = CompressedSeries::Read(in);
  if (!archive.ok()) return archive.status();
  auto daily = CompressedSeries::Read(in);
  if (!daily.ok()) return daily.status();
  if (recent->interval_seconds() != kSecondsPerMinute ||
      archive->interval_seconds() != kSecondsPerHour ||
      daily->interval_seconds() != kSecondsPerDay) {
    return Status::ParseError("bad history rung intervals");
  }
  h.recent_ = std::move(*recent);
  h.archive_ = std::move(*archive);
  h.daily_ = std::move(*daily);
  return h;
}

Result<ArrivalHistory> ArrivalHistory::FromDense(const TimeSeries& recent,
                                                 const TimeSeries& archive,
                                                 double total,
                                                 Timestamp last_arrival) {
  if (recent.interval_seconds() != kSecondsPerMinute ||
      archive.interval_seconds() != kSecondsPerHour) {
    return Status::ParseError("bad dense history intervals");
  }
  ArrivalHistory h;
  h.total_ = total;
  h.last_arrival_ = last_arrival;
  // Re-adding every bucket — explicit zeros included — reproduces the dense
  // coverage (start/end/values) exactly in the compressed form.
  h.recent_ = CompressedSeries(recent.start(), kSecondsPerMinute);
  for (size_t i = 0; i < recent.size(); ++i) {
    h.recent_.Add(recent.TimeAt(i), recent.values()[i]);
  }
  h.archive_ = CompressedSeries(archive.start(), kSecondsPerHour);
  for (size_t i = 0; i < archive.size(); ++i) {
    h.archive_.Add(archive.TimeAt(i), archive.values()[i]);
  }
  return h;
}

}  // namespace qb5000

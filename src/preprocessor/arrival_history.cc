#include "preprocessor/arrival_history.h"

#include <algorithm>

namespace qb5000 {

void ArrivalHistory::Record(Timestamp ts, double count) {
  total_ += count;
  last_arrival_ = std::max(last_arrival_, ts);
  if (!archive_.empty() && ts < recent_.start()) {
    // Late arrival for an already-compacted range goes to the archive.
    archive_.Add(ts, count);
    return;
  }
  recent_.Add(ts, count);
}

void ArrivalHistory::Compact(Timestamp before) {
  before = AlignDown(before, kSecondsPerHour);
  if (recent_.empty() || before <= recent_.start()) return;
  Timestamp cutoff = std::min(before, recent_.end());
  // Fold [recent_.start(), cutoff) into the archive.
  size_t buckets =
      static_cast<size_t>((cutoff - recent_.start()) / kSecondsPerMinute);
  for (size_t i = 0; i < buckets && i < recent_.size(); ++i) {
    if (recent_.values()[i] != 0.0) {
      archive_.Add(recent_.TimeAt(i), recent_.values()[i]);
    }
  }
  // Rebuild the recent series from the cutoff forward.
  TimeSeries rebuilt(cutoff, kSecondsPerMinute);
  for (size_t i = buckets; i < recent_.size(); ++i) {
    if (recent_.values()[i] != 0.0) {
      rebuilt.Add(recent_.TimeAt(i), recent_.values()[i]);
    }
  }
  if (rebuilt.empty()) rebuilt = TimeSeries(cutoff, kSecondsPerMinute);
  recent_ = std::move(rebuilt);
}

Result<TimeSeries> ArrivalHistory::Series(int64_t interval_seconds,
                                          Timestamp from, Timestamp to) const {
  if (interval_seconds <= 0 || interval_seconds % kSecondsPerMinute != 0) {
    return Status::InvalidArgument(
        "interval must be a positive multiple of one minute");
  }
  from = AlignDown(from, interval_seconds);
  to = AlignDown(to + interval_seconds - 1, interval_seconds);
  TimeSeries out(from, interval_seconds);
  if (to <= from) return out;
  size_t n = static_cast<size_t>((to - from) / interval_seconds);
  out.mutable_values().assign(n, 0.0);

  // Recent (minute) contribution.
  for (size_t i = 0; i < recent_.size(); ++i) {
    Timestamp t = recent_.TimeAt(i);
    if (t < from || t >= to || recent_.values()[i] == 0.0) continue;
    size_t bucket = static_cast<size_t>((t - from) / interval_seconds);
    out.mutable_values()[bucket] += recent_.values()[i];
  }

  // Archive (hourly) contribution. When the requested interval is finer
  // than an hour, spread each hourly total uniformly over its sub-buckets.
  for (size_t i = 0; i < archive_.size(); ++i) {
    double value = archive_.values()[i];
    if (value == 0.0) continue;
    Timestamp t = archive_.TimeAt(i);
    if (t + kSecondsPerHour <= from || t >= to) continue;
    if (interval_seconds >= kSecondsPerHour) {
      size_t bucket = static_cast<size_t>((std::max(t, from) - from) / interval_seconds);
      if (bucket < n) out.mutable_values()[bucket] += value;
    } else {
      int64_t sub = kSecondsPerHour / interval_seconds;
      double share = value / static_cast<double>(sub);
      for (int64_t s = 0; s < sub; ++s) {
        Timestamp st = t + s * interval_seconds;
        if (st < from || st >= to) continue;
        size_t bucket = static_cast<size_t>((st - from) / interval_seconds);
        out.mutable_values()[bucket] += share;
      }
    }
  }
  return out;
}

Timestamp ArrivalHistory::FirstTime() const {
  if (!archive_.empty()) return archive_.start();
  if (!recent_.empty()) return recent_.start();
  return 0;
}

}  // namespace qb5000

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace qb5000 {

/// The result of converting one raw SQL string into a generic template
/// (Section 4 of the paper): constants become placeholders, formatting is
/// normalized, and batched INSERT tuples collapse into one parameter row
/// with the tuple count recorded.
struct TemplatizeOutput {
  /// Canonical template text (uppercase keywords, lowercase identifiers,
  /// constants replaced by `?`).
  std::string template_text;
  sql::StatementType type = sql::StatementType::kSelect;
  /// The constants extracted, in placeholder order (first VALUES tuple only
  /// for batched INSERTs).
  std::vector<sql::Literal> parameters;
  /// Number of VALUES tuples in a batched INSERT; 1 otherwise.
  size_t batch_size = 1;
  /// Semantic-equivalence key: statements that access the same tables with
  /// the same predicates and projections share a fingerprint (the paper's
  /// heuristic approximation of query equivalence).
  std::string fingerprint;
  /// Tables referenced, sorted and deduplicated.
  std::vector<std::string> tables;
  /// True if the SQL failed to parse and token-level fallback was used.
  bool used_fallback = false;
};

/// Templatizes a SQL statement. Falls back to token-level constant stripping
/// when the statement does not parse under the supported dialect, so the
/// Pre-Processor never drops a query on the floor.
Result<TemplatizeOutput> Templatize(std::string_view sql);

}  // namespace qb5000

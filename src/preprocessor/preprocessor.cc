#include "preprocessor/preprocessor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace qb5000 {

namespace {

/// Work-splitting grain for the normalize phase: normalization is a few
/// microseconds per statement, so batch enough per task to amortize the
/// pool's dispatch overhead.
constexpr size_t kNormalizeGrain = 64;

}  // namespace

PreProcessor::PreProcessor(Options options)
    : options_(options), rng_(options.rng_seed) {
  MetricsRegistry& m = options_.metrics != nullptr ? *options_.metrics
                                                   : MetricsRegistry::Global();
  queries_total_ = m.GetCounter("preprocessor.queries_total");
  ingests_total_ = m.GetCounter("preprocessor.ingests_total");
  templates_created_total_ = m.GetCounter("preprocessor.templates_created_total");
  templates_evicted_total_ = m.GetCounter("preprocessor.templates_evicted_total");
  parse_failures_total_ = m.GetCounter("preprocessor.parse_failures_total");
  parse_fallback_total_ = m.GetCounter("preprocessor.parse_fallback_total");
  compactions_total_ = m.GetCounter("preprocessor.compactions_total");
  cache_hits_total_ = m.GetCounter("preprocessor.cache_hits_total");
  cache_misses_total_ = m.GetCounter("preprocessor.cache_misses_total");
  cache_evictions_total_ = m.GetCounter("preprocessor.cache_evictions_total");
  batches_total_ = m.GetCounter("preprocessor.batches_total");
  templates_gauge_ = m.GetGauge("preprocessor.templates");
  history_bytes_gauge_ = m.GetGauge("preprocessor.history_bytes");
  history_resident_bytes_gauge_ =
      m.GetGauge("preprocessor.history_resident_bytes");
  history_spilled_bytes_gauge_ =
      m.GetGauge("preprocessor.history_spilled_bytes");
  history_spills_total_ = m.GetCounter("preprocessor.history_spills_total");
  ingest_hit_seconds_ = m.GetHistogram("preprocessor.ingest_seconds.hit");
  ingest_miss_seconds_ = m.GetHistogram("preprocessor.ingest_seconds.miss");
  batch_ingest_seconds_ = m.GetHistogram("preprocessor.batch_ingest_seconds");
  by_fingerprint_.reserve(options_.expected_templates);
  cache_.reserve(std::min(options_.template_cache_capacity,
                          std::max<size_t>(options_.expected_templates, 16)));
  if (!options_.spill_path.empty()) {
    auto store = std::make_unique<HistorySpillStore>(options_.spill_env,
                                                     options_.spill_path);
    // An unopenable store disables the spill tier rather than the process:
    // everything still works resident, just without the memory bound.
    if (store->Open().ok()) spill_store_ = std::move(store);
  }
}

Result<TemplateId> PreProcessor::Ingest(std::string_view sql, Timestamp ts,
                                        double count) {
  // Sample ingest latency on every 16th call (hit or miss alike): ingest is
  // the one per-query hot path, so the clock reads must stay off most
  // queries (bench_table4_overhead holds the instrumented build to <= 3%).
  bool sampled = (ingest_calls_++ & kIngestSampleMask) == 0;
  std::optional<Stopwatch> watch;
  if (sampled) watch.emplace();

  if (options_.template_cache_capacity == 0) {
    // Cache disabled: classic full-parse path. Still counted as a miss so
    // hits + misses == successful raw ingests holds in every configuration.
    auto templatized = Templatize(sql);
    if (!templatized.ok()) {
      parse_failures_total_->Add();
      return templatized.status();
    }
    cache_misses_total_->Add();
    if (templatized->used_fallback) parse_fallback_total_->Add();
    TemplateId id = IngestTemplatized(*templatized, ts, count);
    if (watch) ingest_miss_seconds_->Observe(watch->ElapsedSeconds());
    return id;
  }

  Status normalized = sql::NormalizeQuery(sql, &norm_scratch_);
  if (!normalized.ok()) {
    parse_failures_total_->Add();
    return normalized;
  }
  if (norm_scratch_.token_count == 0) {
    // Mirrors the templatizer's rejection of empty statements so the cache
    // path fails exactly when the parse path would.
    parse_failures_total_->Add();
    return Status::InvalidArgument("empty statement");
  }
  if (const CacheEntry* entry =
          CacheTouch(norm_scratch_.key, norm_scratch_.hash)) {
    TemplateId id = IngestHit(*entry, norm_scratch_.literals, ts, count);
    cache_hits_total_->Add();
    if (watch) ingest_hit_seconds_->Observe(watch->ElapsedSeconds());
    return id;
  }

  auto templatized = Templatize(sql);
  if (!templatized.ok()) {
    // Defensive: NormalizeQuery and Templatize share one scanner, so a
    // statement that normalized cannot fail to tokenize; full parse errors
    // fall back rather than fail.
    parse_failures_total_->Add();
    return templatized.status();
  }
  cache_misses_total_->Add();
  if (templatized->used_fallback) parse_fallback_total_->Add();
  TemplateId id = IngestTemplatized(*templatized, ts, count);
  CacheInsert(std::move(norm_scratch_.key), norm_scratch_.hash, id,
              static_cast<uint32_t>(templatized->parameters.size()),
              &templates_.at(id));
  if (watch) ingest_miss_seconds_->Observe(watch->ElapsedSeconds());
  return id;
}

TemplateId PreProcessor::IngestHit(const CacheEntry& entry,
                                   const std::vector<sql::Literal>& literals,
                                   Timestamp ts, double count) {
  ingests_total_->Add();
  queries_total_->Add(static_cast<uint64_t>(std::llround(std::max(0.0, count))));
  TemplateInfo& info = *entry.info;
  info.history.Record(ts, count);
  info.last_seen = std::max(info.last_seen, ts);
  info.total_queries += count;
  if (entry.param_count > 0) {
    // The miss that filled this entry sampled its parse-derived parameter
    // tuple; keep the reservoir RNG advancing at the same rate by sampling
    // the normalized literals truncated to that tuple's arity. Lazy: the
    // tuple is copied only when the reservoir actually keeps it.
    info.param_samples.AddLazy(rng_, [&] {
      size_t n = std::min<size_t>(entry.param_count, literals.size());
      return std::vector<sql::Literal>(literals.begin(), literals.begin() + n);
    });
  }
  total_queries_ += count;
  queries_by_type_[static_cast<int>(info.type)] += count;
  templates_gauge_->Set(static_cast<double>(templates_.size()));
  return entry.id;
}

const PreProcessor::CacheEntry* PreProcessor::CacheProbe(
    std::string_view key, uint64_t hash) const {
  auto it = cache_.find(HashedKey{key, hash});
  return it == cache_.end() ? nullptr : &it->second;
}

PreProcessor::CacheEntry* PreProcessor::CacheTouch(std::string_view key,
                                                   uint64_t hash) {
  auto it = cache_.find(HashedKey{key, hash});
  if (it == cache_.end()) return nullptr;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  return &it->second;
}

void PreProcessor::CacheInsert(std::string&& key, uint64_t hash, TemplateId id,
                               uint32_t param_count, TemplateInfo* info) {
  if (options_.template_cache_capacity == 0) return;
  while (cache_.size() >= options_.template_cache_capacity) {
    const CacheNode& tail = cache_lru_.back();
    cache_.erase(HashedKey{tail.key, tail.hash});
    cache_lru_.pop_back();
    cache_evictions_total_->Add();
  }
  cache_lru_.push_front(CacheNode{std::move(key), hash});
  cache_.emplace(HashedKey{cache_lru_.front().key, hash},
                 CacheEntry{id, param_count, info, cache_lru_.begin()});
}

void PreProcessor::CacheEraseIds(const std::vector<TemplateId>& ids) {
  if (ids.empty() || cache_.empty()) return;
  std::unordered_set<TemplateId> dead(ids.begin(), ids.end());
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (dead.count(it->second.id)) {
      cache_lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TemplateId> PreProcessor::IngestBatch(
    std::span<const QueryArrival> arrivals, SharedMutex* state_mu) {
  // Prepare+Merge is the whole batch path: the sharded service drain calls
  // the halves on different threads, so routing the synchronous entry point
  // through them is what guarantees the two paths can never diverge.
  return MergePrepared(PrepareBatch(arrivals, state_mu), arrivals, state_mu);
}

PreProcessor::PreparedBatch PreProcessor::PrepareBatch(
    std::span<const QueryArrival> arrivals, SharedMutex* state_mu) const {
  PreparedBatch p;
  const size_t n = arrivals.size();
  p.n_ = n;
  if (n == 0) return p;

  // Phase 0 — dedupe identical raw strings (sequential, arrival order).
  // Real traces are repeat-heavy: most arrivals are byte-identical to an
  // earlier one and can reuse its normalization verbatim. rawrep[i] is the
  // index of the first arrival with the same bytes (possibly i itself).
  p.rawrep_.resize(n);
  std::vector<uint32_t> unique_raws;
  {
    std::unordered_map<std::string_view, uint32_t> first_raw;
    first_raw.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto [it, inserted] =
          first_raw.try_emplace(arrivals[i].sql, static_cast<uint32_t>(i));
      p.rawrep_[i] = it->second;
      if (inserted) unique_raws.push_back(static_cast<uint32_t>(i));
    }
  }

  // Phase 1 — normalize one representative per distinct raw string,
  // off-lock (pure per item). norm/accepted are only meaningful at
  // representative indices.
  p.norm_.resize(n);
  std::vector<uint8_t> accepted(n, 0);
  auto& norm = p.norm_;
  ParallelFor(0, unique_raws.size(), kNormalizeGrain,
              [&](size_t begin, size_t end) {
                for (size_t u = begin; u < end; ++u) {
                  uint32_t i = unique_raws[u];
                  accepted[i] =
                      sql::NormalizeQuery(arrivals[i].sql, &norm[i]).ok() &&
                              norm[i].token_count > 0
                          ? 1
                          : 0;
                }
              });

  // Phase 2 — stripe accepted arrivals into shards by normalization hash.
  // Sequential and cheap; shard membership is independent of thread count.
  std::array<std::vector<uint32_t>, kIngestShards> shard_items;
  for (auto& shard : shard_items) shard.reserve(n / kIngestShards + 1);
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = p.rawrep_[i];
    if (accepted[r]) {
      shard_items[norm[r].hash & (kIngestShards - 1)].push_back(
          static_cast<uint32_t>(i));
    } else {
      ++p.rejected_;
    }
  }

  // Phase 3 — group identical keys within each shard, preserving
  // first-arrival order of both groups and members (pure per shard).
  // Repeated raws short-circuit through the cheap rawrep probe; only the
  // first arrival of each distinct raw pays a normalized-key probe.
  using Group = PreparedBatch::Group;
  auto& shard_groups = p.shard_groups_;
  auto& rawrep = p.rawrep_;
  ParallelFor(0, kIngestShards, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      auto& groups = shard_groups[s];
      std::unordered_map<uint32_t, size_t> by_raw;
      std::unordered_map<std::string_view, size_t> by_key;
      by_raw.reserve(shard_items[s].size());
      for (uint32_t i : shard_items[s]) {
        uint32_t r = rawrep[i];
        auto [rit, rnew] = by_raw.try_emplace(r, 0);
        if (rnew) {
          auto [kit, knew] = by_key.try_emplace(norm[r].key, groups.size());
          if (knew) {
            groups.push_back(Group{norm[r].key, norm[r].hash, {}, false, false});
          }
          rit->second = kit->second;
        }
        groups[rit->second].items.push_back(i);
      }
    }
  });

  // Phase 4 — read-only cache probe under the shared lock; each unknown
  // group elects its first arrival as the representative to parse.
  {
    ReaderLockMaybe read_lock(state_mu);
    for (size_t s = 0; s < kIngestShards; ++s) {
      auto& groups = shard_groups[s];
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        Group& g = groups[gi];
        if (CacheProbe(g.key, g.hash) == nullptr) {
          p.reps_.push_back(PreparedBatch::Rep{g.items.front(),
                                               static_cast<uint32_t>(s),
                                               static_cast<uint32_t>(gi)});
        }
      }
    }
  }
  // Global first-arrival order: processing representatives in this order
  // under the exclusive lock reproduces the per-query id assignment (a
  // cached key implies its template already exists, so the first arrival of
  // any NEW fingerprint is always a representative).
  std::sort(p.reps_.begin(), p.reps_.end(),
            [](const PreparedBatch::Rep& a, const PreparedBatch::Rep& b) {
              return a.item < b.item;
            });

  // Phase 5 — parse the representatives off-lock (pure, speculative).
  p.rep_out_.resize(p.reps_.size());
  auto& reps = p.reps_;
  auto& rep_out = p.rep_out_;
  ParallelFor(0, reps.size(), 1, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto out = Templatize(arrivals[reps[r].item].sql);
      if (out.ok()) rep_out[r] = std::move(out.value());
    }
  });
  return p;
}

std::vector<TemplateId> PreProcessor::MergePrepared(
    PreparedBatch&& prepared, std::span<const QueryArrival> arrivals,
    SharedMutex* state_mu) {
  PreparedBatch p = std::move(prepared);
  QB_CHECK(arrivals.size() == p.n_);
  const size_t n = p.n_;
  std::vector<TemplateId> ids(n, 0);
  if (n == 0) return ids;
  auto& norm = p.norm_;
  auto& rawrep = p.rawrep_;
  auto& reps = p.reps_;
  auto& rep_out = p.rep_out_;

  // Phase 6 — merge under the exclusive lock.
  uint64_t hit_ops = 0;
  uint64_t hit_queries = 0;
  {
    WriterLockMaybe write_lock(state_mu);

    // 6a: miss groups in global first-arrival order.
    for (size_t r = 0; r < reps.size(); ++r) {
      PreparedBatch::Group& g = p.shard_groups_[reps[r].shard][reps[r].group];
      if (CacheProbe(g.key, g.hash) != nullptr) continue;  // raced in; now a hit group
      const QueryArrival& a = arrivals[reps[r].item];
      if (!rep_out[r].has_value()) {
        // Normalization accepted these bytes, so tokenization (and thus
        // fallback templatization) cannot fail; defensively reject.
        parse_failures_total_->Add(g.items.size());
        g.rejected = true;
        continue;
      }
      const TemplatizeOutput& t = *rep_out[r];
      cache_misses_total_->Add();
      if (t.used_fallback) parse_fallback_total_->Add();
      TemplateId id = IngestTemplatized(t, a.ts, a.count);
      ids[reps[r].item] = id;
      CacheInsert(std::string(g.key), g.hash, id,
                  static_cast<uint32_t>(t.parameters.size()),
                  &templates_.at(id));
      g.rep_consumed = true;
    }

    // 6b: hit members, shards in index order, groups and members in
    // first-arrival order — the exact order the per-query loop would see.
    for (auto& groups : p.shard_groups_) {
      for (PreparedBatch::Group& g : groups) {
        if (g.rejected) continue;
        CacheEntry* entry = CacheTouch(g.key, g.hash);
        TemplateId id = 0;
        uint32_t param_count = 0;
        TemplateInfo* info_ptr = nullptr;
        size_t first = g.rep_consumed ? 1 : 0;
        if (entry == nullptr) {
          // The probed entry vanished before the merge reached this group
          // (6a's inserts evicted it under LRU pressure, or a concurrent
          // maintenance pass dropped the template). The group's first
          // unconsumed member pays a full parse, exactly as it would
          // per-query after that eviction.
          if (first >= g.items.size()) continue;
          const QueryArrival& a = arrivals[g.items[first]];
          auto out = Templatize(a.sql);
          if (!out.ok()) {
            parse_failures_total_->Add(g.items.size() - first);
            continue;
          }
          cache_misses_total_->Add();
          if (out->used_fallback) parse_fallback_total_->Add();
          id = IngestTemplatized(*out, a.ts, a.count);
          param_count = static_cast<uint32_t>(out->parameters.size());
          ids[g.items[first]] = id;
          info_ptr = &templates_.at(id);
          CacheInsert(std::string(g.key), g.hash, id, param_count, info_ptr);
          ++first;
        } else {
          id = entry->id;
          param_count = entry->param_count;
          info_ptr = entry->info;
        }
        if (first >= g.items.size()) continue;
        TemplateInfo& info = *info_ptr;
        double group_count = 0.0;
        // Aggregate contiguous same-minute runs into one Record: bucket
        // placement in ArrivalHistory depends only on the minute, and the
        // summed count is exact for integer-valued counts.
        Timestamp run_minute = 0;
        Timestamp run_max_ts = 0;
        double run_count = 0.0;
        bool run_open = false;
        for (size_t k = first; k < g.items.size(); ++k) {
          const QueryArrival& a = arrivals[g.items[k]];
          ids[g.items[k]] = id;
          Timestamp minute = AlignDown(a.ts, kSecondsPerMinute);
          if (run_open && minute == run_minute) {
            run_count += a.count;
            run_max_ts = std::max(run_max_ts, a.ts);
          } else {
            if (run_open) info.history.Record(run_max_ts, run_count);
            run_minute = minute;
            run_max_ts = a.ts;
            run_count = a.count;
            run_open = true;
          }
          if (param_count > 0) {
            const auto& literals = norm[rawrep[g.items[k]]].literals;
            info.param_samples.AddLazy(rng_, [&] {
              size_t arity = std::min<size_t>(param_count, literals.size());
              return std::vector<sql::Literal>(literals.begin(),
                                               literals.begin() + arity);
            });
          }
          hit_queries +=
              static_cast<uint64_t>(std::llround(std::max(0.0, a.count)));
          group_count += a.count;
          info.last_seen = std::max(info.last_seen, a.ts);
        }
        if (run_open) info.history.Record(run_max_ts, run_count);
        info.total_queries += group_count;
        total_queries_ += group_count;
        queries_by_type_[static_cast<int>(info.type)] += group_count;
        hit_ops += g.items.size() - first;
      }
    }
    if (p.rejected_ > 0) parse_failures_total_->Add(p.rejected_);
    ingests_total_->Add(hit_ops);
    queries_total_->Add(hit_queries);
    cache_hits_total_->Add(hit_ops);
    templates_gauge_->Set(static_cast<double>(templates_.size()));
  }
  batches_total_->Add();
  batch_ingest_seconds_->Observe(p.watch_.ElapsedSeconds());
  return ids;
}

TemplateId PreProcessor::IngestTemplatized(const TemplatizeOutput& templatized,
                                           Timestamp ts, double count) {
  ingests_total_->Add();
  queries_total_->Add(static_cast<uint64_t>(std::llround(std::max(0.0, count))));
  auto [it, inserted] =
      by_fingerprint_.try_emplace(templatized.fingerprint, next_id_);
  TemplateId id = it->second;
  if (inserted) {
    ++next_id_;
    templates_created_total_->Add();
    TemplateInfo info(options_.param_sample_capacity);
    info.id = id;
    info.fingerprint = templatized.fingerprint;
    info.text = templatized.template_text;
    info.type = templatized.type;
    info.tables = templatized.tables;
    info.first_seen = ts;
    templates_.emplace(id, std::move(info));
  }
  TemplateInfo& info = templates_.at(id);
  info.history.Record(ts, count);
  info.last_seen = std::max(info.last_seen, ts);
  info.total_queries += count;
  if (!templatized.parameters.empty()) {
    info.param_samples.AddLazy(rng_, [&] { return templatized.parameters; });
  }
  total_queries_ += count;
  queries_by_type_[static_cast<int>(templatized.type)] += count;
  templates_gauge_->Set(static_cast<double>(templates_.size()));
  return id;
}

void PreProcessor::CompactBefore(Timestamp now) {
  Timestamp cutoff = now - options_.compaction_horizon_seconds;
  bool archive_rung = options_.archive_compaction_horizon_seconds > 0;
  Timestamp archive_cutoff = now - options_.archive_compaction_horizon_seconds;
  for (auto& [id, info] : templates_) {
    (void)id;
    info.history.Compact(cutoff);
    if (archive_rung) info.history.CompactArchive(archive_cutoff);
  }
  compactions_total_->Add();
  UpdateHistoryGauges();
}

void PreProcessor::UpdateHistoryGauges() {
  size_t resident = HistoryStorageBytes();
  size_t spilled = SpilledHistoryBytes();
  history_resident_bytes_gauge_->Set(static_cast<double>(resident));
  history_spilled_bytes_gauge_->Set(static_cast<double>(spilled));
  history_bytes_gauge_->Set(static_cast<double>(resident + spilled));
}

void PreProcessor::EnforceHistoryBudget(Timestamp now) {
  if (spill_store_ == nullptr) {
    UpdateHistoryGauges();
    return;
  }
  // Pass 1: histories idle past the spill horizon go cold unconditionally.
  if (options_.spill_idle_seconds > 0) {
    Timestamp idle_cutoff = now - options_.spill_idle_seconds;
    for (auto& [id, info] : templates_) {
      (void)id;
      if (info.last_seen < idle_cutoff && info.history.SpillEligible()) {
        if (info.history.Spill(spill_store_.get()).ok()) {
          history_spills_total_->Add();
        }
      }
    }
  }
  // Pass 2: under a byte budget, spill coldest-first until resident fits.
  // Map order (ascending id) plus a stable sort keeps the choice
  // deterministic for equal last_seen.
  if (options_.history_budget_bytes > 0) {
    size_t resident = HistoryStorageBytes();
    if (resident > options_.history_budget_bytes) {
      std::vector<std::pair<Timestamp, TemplateInfo*>> candidates;
      for (auto& [id, info] : templates_) {
        (void)id;
        if (info.history.SpillEligible()) {
          candidates.emplace_back(info.last_seen, &info);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (auto& [last_seen, info] : candidates) {
        (void)last_seen;
        if (resident <= options_.history_budget_bytes) break;
        size_t before = info->history.StorageBytes();
        if (info->history.Spill(spill_store_.get()).ok()) {
          history_spills_total_->Add();
          resident -= before - info->history.StorageBytes();
        }
      }
    }
  }
  // Pass 3: reclaim the file once rehydrated/evicted payloads dominate.
  if (spill_store_->NeedsGC()) RewriteSpillStore();
  UpdateHistoryGauges();
}

void PreProcessor::RewriteSpillStore() {
  HistorySpillStore* store = spill_store_.get();
  if (!store->BeginRewrite().ok()) return;
  std::vector<std::pair<ArrivalHistory*, const HistorySpillStore::Segment*>>
      moved;
  for (auto& [id, info] : templates_) {
    (void)id;
    if (!info.history.spilled()) continue;
    auto segment = info.history.RewriteInto(store);
    if (!segment.ok()) {
      store->AbortRewrite();
      return;
    }
    moved.emplace_back(&info.history, *segment);
  }
  if (!store->CommitRewrite().ok()) return;  // aborted internally
  for (auto& [history, segment] : moved) {
    history->AdoptSegment(store, segment);
  }
}

double PreProcessor::QueriesOfType(sql::StatementType type) const {
  return queries_by_type_[static_cast<int>(type)];
}

const PreProcessor::TemplateInfo* PreProcessor::GetTemplate(TemplateId id) const {
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<TemplateId> PreProcessor::TemplateIds() const {
  std::vector<TemplateId> ids;
  ids.reserve(templates_.size());
  for (const auto& [id, info] : templates_) {
    (void)info;
    ids.push_back(id);
  }
  return ids;
}

double PreProcessor::NewTemplateRatio(Timestamp since) const {
  if (templates_.empty()) return 0.0;
  size_t fresh = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    if (info.first_seen >= since) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(templates_.size());
}

std::vector<TemplateId> PreProcessor::EvictIdleTemplates(Timestamp cutoff) {
  std::vector<TemplateId> evicted;
  for (auto it = templates_.begin(); it != templates_.end();) {
    if (it->second.last_seen < cutoff) {
      it->second.history.DropSpill();  // release any cold payload bytes
      evicted.push_back(it->first);
      it = templates_.erase(it);
    } else {
      ++it;
    }
  }
  if (!evicted.empty()) {
    for (auto fp_it = by_fingerprint_.begin(); fp_it != by_fingerprint_.end();) {
      if (std::find(evicted.begin(), evicted.end(), fp_it->second) !=
          evicted.end()) {
        fp_it = by_fingerprint_.erase(fp_it);
      } else {
        ++fp_it;
      }
    }
    CacheEraseIds(evicted);
    templates_evicted_total_->Add(evicted.size());
    templates_gauge_->Set(static_cast<double>(templates_.size()));
  }
  return evicted;
}

Status PreProcessor::RestoreTemplate(TemplateInfo info) {
  if (info.fingerprint.empty()) {
    return Status::InvalidArgument("restored template needs a fingerprint");
  }
  if (by_fingerprint_.count(info.fingerprint) || templates_.count(info.id)) {
    return Status::AlreadyExists("template already present");
  }
  by_fingerprint_.emplace(info.fingerprint, info.id);
  total_queries_ += info.total_queries;
  queries_by_type_[static_cast<int>(info.type)] += info.total_queries;
  next_id_ = std::max(next_id_, info.id + 1);
  templates_.emplace(info.id, std::move(info));
  templates_gauge_->Set(static_cast<double>(templates_.size()));
  return Status::Ok();
}

bool PreProcessor::ReplayArrival(TemplateId id, Timestamp ts, double count) {
  auto it = templates_.find(id);
  if (it == templates_.end()) return false;
  TemplateInfo& info = it->second;
  info.history.Record(ts, count);
  info.last_seen = std::max(info.last_seen, ts);
  info.total_queries += count;
  total_queries_ += count;
  queries_by_type_[static_cast<int>(info.type)] += count;
  return true;
}

size_t PreProcessor::HistoryStorageBytes() const {
  size_t bytes = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    bytes += info.history.StorageBytes();
  }
  return bytes;
}

}  // namespace qb5000

#include "preprocessor/preprocessor.h"

#include <algorithm>

namespace qb5000 {

Result<TemplateId> PreProcessor::Ingest(const std::string& sql, Timestamp ts,
                                        double count) {
  auto templatized = Templatize(sql);
  if (!templatized.ok()) return templatized.status();
  return IngestTemplatized(*templatized, ts, count);
}

TemplateId PreProcessor::IngestTemplatized(const TemplatizeOutput& templatized,
                                           Timestamp ts, double count) {
  auto [it, inserted] =
      by_fingerprint_.try_emplace(templatized.fingerprint, next_id_);
  TemplateId id = it->second;
  if (inserted) {
    ++next_id_;
    TemplateInfo info(options_.param_sample_capacity);
    info.id = id;
    info.fingerprint = templatized.fingerprint;
    info.text = templatized.template_text;
    info.type = templatized.type;
    info.tables = templatized.tables;
    info.first_seen = ts;
    templates_.emplace(id, std::move(info));
  }
  TemplateInfo& info = templates_.at(id);
  info.history.Record(ts, count);
  info.last_seen = std::max(info.last_seen, ts);
  info.total_queries += count;
  if (!templatized.parameters.empty()) {
    info.param_samples.Add(templatized.parameters, rng_);
  }
  total_queries_ += count;
  queries_by_type_[static_cast<int>(templatized.type)] += count;
  return id;
}

void PreProcessor::CompactBefore(Timestamp now) {
  Timestamp cutoff = now - options_.compaction_horizon_seconds;
  for (auto& [id, info] : templates_) {
    (void)id;
    info.history.Compact(cutoff);
  }
}

double PreProcessor::QueriesOfType(sql::StatementType type) const {
  return queries_by_type_[static_cast<int>(type)];
}

const PreProcessor::TemplateInfo* PreProcessor::GetTemplate(TemplateId id) const {
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<TemplateId> PreProcessor::TemplateIds() const {
  std::vector<TemplateId> ids;
  ids.reserve(templates_.size());
  for (const auto& [id, info] : templates_) {
    (void)info;
    ids.push_back(id);
  }
  return ids;
}

double PreProcessor::NewTemplateRatio(Timestamp since) const {
  if (templates_.empty()) return 0.0;
  size_t fresh = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    if (info.first_seen >= since) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(templates_.size());
}

std::vector<TemplateId> PreProcessor::EvictIdleTemplates(Timestamp cutoff) {
  std::vector<TemplateId> evicted;
  for (auto it = templates_.begin(); it != templates_.end();) {
    if (it->second.last_seen < cutoff) {
      evicted.push_back(it->first);
      it = templates_.erase(it);
    } else {
      ++it;
    }
  }
  if (!evicted.empty()) {
    for (auto fp_it = by_fingerprint_.begin(); fp_it != by_fingerprint_.end();) {
      if (std::find(evicted.begin(), evicted.end(), fp_it->second) !=
          evicted.end()) {
        fp_it = by_fingerprint_.erase(fp_it);
      } else {
        ++fp_it;
      }
    }
  }
  return evicted;
}

Status PreProcessor::RestoreTemplate(TemplateInfo info) {
  if (info.fingerprint.empty()) {
    return Status::InvalidArgument("restored template needs a fingerprint");
  }
  if (by_fingerprint_.count(info.fingerprint) || templates_.count(info.id)) {
    return Status::AlreadyExists("template already present");
  }
  by_fingerprint_.emplace(info.fingerprint, info.id);
  total_queries_ += info.total_queries;
  queries_by_type_[static_cast<int>(info.type)] += info.total_queries;
  next_id_ = std::max(next_id_, info.id + 1);
  templates_.emplace(info.id, std::move(info));
  return Status::Ok();
}

size_t PreProcessor::HistoryStorageBytes() const {
  size_t bytes = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    bytes += info.history.StorageBytes();
  }
  return bytes;
}

}  // namespace qb5000

#include "preprocessor/preprocessor.h"

#include <algorithm>
#include <cmath>

namespace qb5000 {

PreProcessor::PreProcessor(Options options)
    : options_(options), rng_(options.rng_seed) {
  MetricsRegistry& m = options_.metrics != nullptr ? *options_.metrics
                                                   : MetricsRegistry::Global();
  queries_total_ = m.GetCounter("preprocessor.queries_total");
  ingests_total_ = m.GetCounter("preprocessor.ingests_total");
  templates_created_total_ = m.GetCounter("preprocessor.templates_created_total");
  templates_evicted_total_ = m.GetCounter("preprocessor.templates_evicted_total");
  parse_failures_total_ = m.GetCounter("preprocessor.parse_failures_total");
  parse_fallback_total_ = m.GetCounter("preprocessor.parse_fallback_total");
  compactions_total_ = m.GetCounter("preprocessor.compactions_total");
  templates_gauge_ = m.GetGauge("preprocessor.templates");
  history_bytes_gauge_ = m.GetGauge("preprocessor.history_bytes");
  templatize_seconds_ = m.GetHistogram("preprocessor.templatize_seconds");
}

Result<TemplateId> PreProcessor::Ingest(const std::string& sql, Timestamp ts,
                                        double count) {
  // Sample templatization latency on every 16th call: ingest is the one
  // per-query hot path, so the clock reads must stay off most queries
  // (bench_table4_overhead holds the instrumented build to <= 3%).
  bool sampled = (ingests_total_->value() & kTemplatizeSampleMask) == 0;
  ScopedTimer timer(sampled ? templatize_seconds_ : nullptr);
  auto templatized = Templatize(sql);
  if (!templatized.ok()) {
    parse_failures_total_->Add();
    return templatized.status();
  }
  if (templatized->used_fallback) parse_fallback_total_->Add();
  return IngestTemplatized(*templatized, ts, count);
}

TemplateId PreProcessor::IngestTemplatized(const TemplatizeOutput& templatized,
                                           Timestamp ts, double count) {
  ingests_total_->Add();
  queries_total_->Add(static_cast<uint64_t>(std::llround(std::max(0.0, count))));
  auto [it, inserted] =
      by_fingerprint_.try_emplace(templatized.fingerprint, next_id_);
  TemplateId id = it->second;
  if (inserted) {
    ++next_id_;
    templates_created_total_->Add();
    TemplateInfo info(options_.param_sample_capacity);
    info.id = id;
    info.fingerprint = templatized.fingerprint;
    info.text = templatized.template_text;
    info.type = templatized.type;
    info.tables = templatized.tables;
    info.first_seen = ts;
    templates_.emplace(id, std::move(info));
  }
  TemplateInfo& info = templates_.at(id);
  info.history.Record(ts, count);
  info.last_seen = std::max(info.last_seen, ts);
  info.total_queries += count;
  if (!templatized.parameters.empty()) {
    info.param_samples.Add(templatized.parameters, rng_);
  }
  total_queries_ += count;
  queries_by_type_[static_cast<int>(templatized.type)] += count;
  templates_gauge_->Set(static_cast<double>(templates_.size()));
  return id;
}

void PreProcessor::CompactBefore(Timestamp now) {
  Timestamp cutoff = now - options_.compaction_horizon_seconds;
  for (auto& [id, info] : templates_) {
    (void)id;
    info.history.Compact(cutoff);
  }
  compactions_total_->Add();
  history_bytes_gauge_->Set(static_cast<double>(HistoryStorageBytes()));
}

double PreProcessor::QueriesOfType(sql::StatementType type) const {
  return queries_by_type_[static_cast<int>(type)];
}

const PreProcessor::TemplateInfo* PreProcessor::GetTemplate(TemplateId id) const {
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : &it->second;
}

std::vector<TemplateId> PreProcessor::TemplateIds() const {
  std::vector<TemplateId> ids;
  ids.reserve(templates_.size());
  for (const auto& [id, info] : templates_) {
    (void)info;
    ids.push_back(id);
  }
  return ids;
}

double PreProcessor::NewTemplateRatio(Timestamp since) const {
  if (templates_.empty()) return 0.0;
  size_t fresh = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    if (info.first_seen >= since) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(templates_.size());
}

std::vector<TemplateId> PreProcessor::EvictIdleTemplates(Timestamp cutoff) {
  std::vector<TemplateId> evicted;
  for (auto it = templates_.begin(); it != templates_.end();) {
    if (it->second.last_seen < cutoff) {
      evicted.push_back(it->first);
      it = templates_.erase(it);
    } else {
      ++it;
    }
  }
  if (!evicted.empty()) {
    for (auto fp_it = by_fingerprint_.begin(); fp_it != by_fingerprint_.end();) {
      if (std::find(evicted.begin(), evicted.end(), fp_it->second) !=
          evicted.end()) {
        fp_it = by_fingerprint_.erase(fp_it);
      } else {
        ++fp_it;
      }
    }
    templates_evicted_total_->Add(evicted.size());
    templates_gauge_->Set(static_cast<double>(templates_.size()));
  }
  return evicted;
}

Status PreProcessor::RestoreTemplate(TemplateInfo info) {
  if (info.fingerprint.empty()) {
    return Status::InvalidArgument("restored template needs a fingerprint");
  }
  if (by_fingerprint_.count(info.fingerprint) || templates_.count(info.id)) {
    return Status::AlreadyExists("template already present");
  }
  by_fingerprint_.emplace(info.fingerprint, info.id);
  total_queries_ += info.total_queries;
  queries_by_type_[static_cast<int>(info.type)] += info.total_queries;
  next_id_ = std::max(next_id_, info.id + 1);
  templates_.emplace(info.id, std::move(info));
  templates_gauge_->Set(static_cast<double>(templates_.size()));
  return Status::Ok();
}

size_t PreProcessor::HistoryStorageBytes() const {
  size_t bytes = 0;
  for (const auto& [id, info] : templates_) {
    (void)id;
    bytes += info.history.StorageBytes();
  }
  return bytes;
}

}  // namespace qb5000

#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "preprocessor/arrival_history.h"
#include "preprocessor/reservoir_sampler.h"
#include "preprocessor/templatizer.h"
#include "sql/lexer.h"

namespace qb5000 {

/// Identifier assigned to each distinct (post-equivalence) query template.
using TemplateId = int64_t;

/// One raw-SQL arrival for the batched ingest path. `sql` is borrowed: it
/// must stay alive for the duration of the IngestBatch call (the batch
/// never outlives the caller's buffers).
struct QueryArrival {
  std::string_view sql;
  Timestamp ts = 0;
  double count = 1.0;
};

/// The Pre-Processor (Section 4): converts raw queries into templates,
/// aggregates semantically-equivalent templates, tracks per-template arrival
/// rate history, and keeps a reservoir sample of original parameters.
///
/// Ingest fast path (DESIGN.md §11): raw SQL is first reduced to a
/// parameter-insensitive normalized key (sql::NormalizeQuery) and looked up
/// in a bounded LRU cache; a hit maps straight to the TemplateId without
/// parsing. Only cache misses pay for the full AST templatization.
class PreProcessor {
 public:
  struct Options {
    /// Reservoir capacity for per-template parameter samples.
    size_t param_sample_capacity = 20;
    /// Seed for the sampling RNG (determinism across runs).
    uint64_t rng_seed = 42;
    /// Minute-resolution history older than this is folded into hourly
    /// archives on CompactBefore().
    int64_t compaction_horizon_seconds = 7 * kSecondsPerDay;
    /// Hourly archive older than this is folded one rung further, into
    /// daily buckets, on CompactBefore(). 0 (the default) disables the
    /// daily rung and reproduces the paper's two-level scheme exactly.
    int64_t archive_compaction_horizon_seconds = 0;
    /// Path of the cold-history spill file; empty disables the spill tier.
    /// The file is truncated on construction (spilled state is runtime-only
    /// — checkpoints always hold the full histories), so every live
    /// PreProcessor needs its own path.
    std::string spill_path;
    /// Filesystem for the spill store. nullptr = Env::Default().
    Env* spill_env = nullptr;
    /// Resident history bytes allowed before EnforceHistoryBudget() spills
    /// the coldest eligible histories. 0 = unbounded.
    size_t history_budget_bytes = 0;
    /// Histories idle this long (by last_seen) are spilled even without
    /// budget pressure. 0 disables the idle pass. Only histories already
    /// fully folded out of the minute rung are eligible either way.
    int64_t spill_idle_seconds = 45 * kSecondsPerDay;
    /// Capacity (entries) of the raw-SQL -> template LRU cache; 0 disables
    /// it and every Ingest takes the full parse path. The cache is
    /// rebuildable state: it is never checkpointed and restores cold.
    size_t template_cache_capacity = 4096;
    /// Expected number of distinct templates; pre-sizes the fingerprint
    /// map and the cache's hash buckets so steady-state ingest never
    /// rehashes.
    size_t expected_templates = 1024;
    /// Registry receiving `preprocessor.*` metrics; nullptr = the process
    /// global. QueryBot5000 overrides this with its per-instance registry.
    MetricsRegistry* metrics = nullptr;
  };

  /// Everything QB5000 knows about one template.
  struct TemplateInfo {
    TemplateId id = 0;
    std::string fingerprint;  ///< semantic-equivalence key (grouping key)
    std::string text;         ///< canonical template SQL
    sql::StatementType type = sql::StatementType::kSelect;
    std::vector<std::string> tables;
    ArrivalHistory history;
    ReservoirSampler<std::vector<sql::Literal>> param_samples;
    Timestamp first_seen = 0;
    Timestamp last_seen = 0;
    double total_queries = 0;

    explicit TemplateInfo(size_t sample_capacity)
        : param_samples(sample_capacity) {}
  };

  PreProcessor() : PreProcessor(Options()) {}
  explicit PreProcessor(Options options);

  /// Ingests one query arrival (or `count` identical arrivals at `ts`).
  /// Returns the id of the template the query maps to.
  Result<TemplateId> Ingest(std::string_view sql, Timestamp ts,
                            double count = 1.0);
  /// Delegating overloads for ABI comfort (std::string callers pre-sweep)
  /// and to keep string literals unambiguous next to the primary overload.
  Result<TemplateId> Ingest(const std::string& sql,  // lint:string-ref-ok
                            Timestamp ts, double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }
  Result<TemplateId> Ingest(const char* sql, Timestamp ts,
                            double count = 1.0) {
    return Ingest(std::string_view(sql), ts, count);
  }

  /// Batched, sharded ingest (DESIGN.md §11): normalizes every arrival on
  /// the thread pool, stages them into per-shard buffers striped by
  /// normalization hash, parses one representative per unknown template
  /// outside the lock, then merges in shard-index order. Returns the
  /// TemplateId per arrival, parallel to `arrivals`; 0 marks a rejected
  /// statement (counted in preprocessor.parse_failures_total).
  ///
  /// `state_mu` is the owning controller's state lock (QueryBot5000 passes
  /// its own): held shared during the read-only cache probe and exclusively
  /// during the merge; normalize/parse phases run unlocked. nullptr means
  /// the caller guarantees exclusive access for the whole call.
  ///
  /// Equivalence with the per-query path: template ids, fingerprints,
  /// arrival histories, and counter totals are bit-identical at any thread
  /// count for integer-valued `count`s; only the parameter-reservoir RNG
  /// consumption order differs (samples remain valid draws).
  std::vector<TemplateId> IngestBatch(std::span<const QueryArrival> arrivals,
                                      SharedMutex* state_mu = nullptr);

  /// Shard count for batched-ingest staging. A power of two so striping is
  /// a mask; shard membership depends only on the normalization hash, never
  /// on thread count, which keeps the merge order deterministic.
  static constexpr size_t kIngestShards = 16;

  /// Off-lock staging for one batch: the output of IngestBatch's phases 0-5
  /// (raw dedupe, parallel normalize, hash-stripe sharding, per-shard
  /// grouping, the shared-lock cache probe with representative election,
  /// and the speculative representative parse). Opaque to callers: produced
  /// by PrepareBatch on any thread and consumed exactly once by
  /// MergePrepared. Move-only, and moves keep it valid — every internal
  /// reference is an index or aliases heap storage whose address a vector
  /// move preserves — so the sharded service drain can prepare chunks on
  /// worker threads and merge them on the drain thread (DESIGN.md §14).
  class PreparedBatch {
   public:
    PreparedBatch() = default;
    PreparedBatch(PreparedBatch&&) = default;
    PreparedBatch& operator=(PreparedBatch&&) = default;
    PreparedBatch(const PreparedBatch&) = delete;
    PreparedBatch& operator=(const PreparedBatch&) = delete;

    /// Number of arrivals this batch was prepared from; MergePrepared
    /// requires the same-sized (same-bytes) span back.
    size_t size() const { return n_; }

   private:
    friend class PreProcessor;

    /// One distinct normalized key within a shard. `key` aliases the norm
    /// entry of the member that created the group (`norm[rawrep[items[0]]]`);
    /// safe across whole-batch moves because vector moves never relocate
    /// elements.
    struct Group {
      std::string_view key;
      uint64_t hash = 0;            ///< the key's NormalizeQuery hash
      std::vector<uint32_t> items;  ///< ascending arrival indices
      bool rep_consumed = false;    ///< items[0] ingested by the miss pass
      bool rejected = false;
    };
    /// A miss-group representative, named by indices (not pointers) so the
    /// struct stays valid when the batch moves.
    struct Rep {
      uint32_t item = 0;   ///< arrival index to parse
      uint32_t shard = 0;  ///< shard_groups index of the owning group
      uint32_t group = 0;  ///< index within that shard's group vector
    };

    std::vector<uint32_t> rawrep_;
    std::vector<sql::NormalizedQuery> norm_;
    std::array<std::vector<Group>, kIngestShards> shard_groups_;
    std::vector<Rep> reps_;  ///< sorted by `item` = global first-arrival order
    std::vector<std::optional<TemplatizeOutput>> rep_out_;
    size_t n_ = 0;
    size_t rejected_ = 0;  ///< arrivals whose normalization failed
    Stopwatch watch_;      ///< whole-batch latency, observed at merge
  };

  /// Phases 0-5 of the batched ingest, off-lock (`state_mu` is held shared
  /// only for the read-only cache probe). `const` on purpose: preparation
  /// reads cache and templates but never mutates, so any thread may prepare
  /// one batch while another merges a different one — the seam the sharded
  /// service drain parallelizes over. `arrivals` is borrowed; the same span
  /// (same bytes, still alive) must be handed to MergePrepared.
  PreparedBatch PrepareBatch(std::span<const QueryArrival> arrivals,
                             SharedMutex* state_mu = nullptr) const;

  /// Phase 6: applies a prepared batch under the exclusive lock in the
  /// exact order IngestBatch uses — miss groups in global first-arrival
  /// order, then hit members in shard-index order — and performs every
  /// state and counter mutation of the batch. Probe verdicts that went
  /// stale between prepare and merge (another batch's merge inserted or
  /// evicted the key) are re-checked here and converge to the same state
  /// transitions the per-query loop would take (DESIGN.md §14 gives the
  /// ordering argument), so Prepare+Merge stays bit-identical to
  /// IngestBatch. Returns the TemplateId per arrival, parallel to
  /// `arrivals`; 0 marks a rejected statement.
  std::vector<TemplateId> MergePrepared(PreparedBatch&& prepared,
                                        std::span<const QueryArrival> arrivals,
                                        SharedMutex* state_mu = nullptr);

  /// Ingests an already-templatized arrival. Trace generators use this to
  /// feed high query volumes without materializing every SQL string.
  TemplateId IngestTemplatized(const TemplatizeOutput& templatized,
                               Timestamp ts, double count = 1.0);

  /// Folds minute-level history older than the compaction horizon (relative
  /// to `now`) into hourly archives for every template, and — when the
  /// archive horizon is enabled — hourly history older than that horizon
  /// into daily buckets.
  void CompactBefore(Timestamp now);

  /// Spill-tier maintenance: spills idle histories, then spills the
  /// coldest eligible ones until resident history bytes fit the budget,
  /// then garbage-collects the spill file when dead payloads dominate.
  /// No-op (beyond refreshing gauges) when no spill path is configured.
  void EnforceHistoryBudget(Timestamp now);

  /// Live payload bytes currently held in the spill store (0 without one).
  size_t SpilledHistoryBytes() const {
    return spill_store_ != nullptr ? spill_store_->live_bytes() : 0;
  }

  /// The spill store, for tests and benches (nullptr when disabled).
  HistorySpillStore* spill_store() { return spill_store_.get(); }

  size_t num_templates() const { return templates_.size(); }
  double total_queries() const { return total_queries_; }

  /// Number of entries currently in the template cache (tests/benchmarks).
  size_t cache_size() const { return cache_.size(); }

  /// Number of queries ingested per statement type (Table 1 rows).
  double QueriesOfType(sql::StatementType type) const;

  /// Lookup by id; nullptr if unknown.
  const TemplateInfo* GetTemplate(TemplateId id) const;

  /// All template ids, ascending (ascending == order of first appearance).
  std::vector<TemplateId> TemplateIds() const;

  /// Fraction of currently-known templates first seen at or after `since`.
  /// The Clusterer re-clusters when this crosses its trigger threshold.
  double NewTemplateRatio(Timestamp since) const;

  /// Drops templates that have received no queries since `cutoff`
  /// (Section 5.2 Step 2: stale template removal). Returns ids removed.
  /// Cache entries mapping to evicted templates are invalidated.
  std::vector<TemplateId> EvictIdleTemplates(Timestamp cutoff);

  /// Real resident heap footprint of all arrival histories, in bytes
  /// (object sizes plus rung vector capacities; spilled stubs count only
  /// their object size).
  size_t HistoryStorageBytes() const;

  /// Snapshot support: registers a fully-populated template record under
  /// its fingerprint and folds its counts into the totals. Fails on a
  /// duplicate fingerprint or id.
  Status RestoreTemplate(TemplateInfo info);

  /// Delta-checkpoint replay (core/checkpoint.cc): re-applies one recorded
  /// arrival to an existing template with the same per-template bookkeeping
  /// as ingest (history, last_seen, totals, per-type counts) but without
  /// metric counters or parameter sampling — replay must not advance the
  /// sampling RNG, and the lifetime instruments already carry their
  /// as-of-snapshot values from the restored metrics section. False ⇒
  /// unknown id (the template was evicted after the delta recorded it);
  /// the arrival is skipped.
  bool ReplayArrival(TemplateId id, Timestamp ts, double count);

  /// The id the next new template will get. The delta checkpoint records
  /// this at full-snapshot time as the new-template baseline.
  TemplateId next_template_id() const { return next_id_; }

 private:
  /// Every 2^k-th raw-SQL Ingest is latency-sampled (Table 4's ms/query
  /// figure, live) so the two clock reads stay off most queries. The
  /// sampled call lands in ingest_seconds.hit or .miss according to how it
  /// resolved; the ticker advances per call, so over a steady mix each
  /// class is sampled at 1/16 of its own rate.
  static constexpr uint64_t kIngestSampleMask = 15;  ///< 1 in 16

  /// One LRU node: the owned key bytes plus their NormalizeQuery hash, so
  /// eviction can erase the map entry without rehashing the key.
  struct CacheNode {
    std::string key;
    uint64_t hash = 0;
  };

  /// Map key for the template cache: a borrowed view plus the hash the
  /// normalizer already computed. The hasher just returns it — the map
  /// never re-reads key bytes except for the final equality memcmp.
  struct HashedKey {
    std::string_view key;
    uint64_t hash = 0;
  };
  struct HashedKeyHasher {
    size_t operator()(const HashedKey& k) const {
      return static_cast<size_t>(k.hash);
    }
  };
  struct HashedKeyEq {
    bool operator()(const HashedKey& a, const HashedKey& b) const {
      return a.key == b.key;
    }
  };

  /// Value side of the template cache. `lru_it` points at the owning key
  /// node in cache_lru_ (std::list iterators survive splicing). `info`
  /// shortcuts the templates_ lookup on every hit: std::map nodes are
  /// pointer-stable, and CacheEraseIds drops entries before their template
  /// is destroyed, so the pointer can never dangle.
  struct CacheEntry {
    TemplateId id = 0;
    uint32_t param_count = 0;  ///< |parameters| of the miss that filled it
    TemplateInfo* info = nullptr;
    std::list<CacheNode>::iterator lru_it;
  };

  /// Read-only probe: no LRU update (safe under a shared lock).
  const CacheEntry* CacheProbe(std::string_view key, uint64_t hash) const;
  /// Hit probe: moves the entry to the LRU front.
  CacheEntry* CacheTouch(std::string_view key, uint64_t hash);
  /// Inserts (evicting the LRU tail at capacity). `key` is consumed.
  void CacheInsert(std::string&& key, uint64_t hash, TemplateId id,
                   uint32_t param_count, TemplateInfo* info);
  /// Drops every cache entry whose template id is in `ids`.
  void CacheEraseIds(const std::vector<TemplateId>& ids);

  /// The cache-hit arrival path: identical per-template bookkeeping to
  /// IngestTemplatized minus template creation. Parameters are sampled
  /// from the normalized literals (token order, truncated to the template's
  /// parameter count) so the reservoir RNG advances exactly as on the miss
  /// path.
  TemplateId IngestHit(const CacheEntry& entry,
                       const std::vector<sql::Literal>& literals,
                       Timestamp ts, double count);

  /// Refreshes the resident/spilled history gauges.
  void UpdateHistoryGauges();
  /// Rewrites the spill file, dropping dead payloads; every spilled
  /// history adopts its new segment only after the commit succeeds.
  void RewriteSpillStore();

  Options options_;
  Rng rng_;
  std::unique_ptr<HistorySpillStore> spill_store_;  ///< null when disabled
  std::unordered_map<std::string, TemplateId> by_fingerprint_;
  std::map<TemplateId, TemplateInfo> templates_;  ///< ordered for stable iteration
  TemplateId next_id_ = 1;
  double total_queries_ = 0;
  double queries_by_type_[4] = {0, 0, 0, 0};

  /// Raw-SQL template cache: key nodes live in cache_lru_ (front = most
  /// recently used); the map's string_view keys alias those nodes, so
  /// lookups by borrowed key never allocate.
  std::list<CacheNode> cache_lru_;
  std::unordered_map<HashedKey, CacheEntry, HashedKeyHasher, HashedKeyEq>
      cache_;

  uint64_t ingest_calls_ = 0;      ///< latency-sampling ticker (not persisted)
  sql::NormalizedQuery norm_scratch_;  ///< reused per-Ingest key buffers

  // Instrument handles (owned by the registry; see DESIGN.md §10).
  Counter* queries_total_ = nullptr;        ///< arrivals, weighted by count
  Counter* ingests_total_ = nullptr;        ///< Ingest/IngestTemplatized calls
  Counter* templates_created_total_ = nullptr;
  Counter* templates_evicted_total_ = nullptr;
  Counter* parse_failures_total_ = nullptr;  ///< Templatize() rejected the SQL
  Counter* parse_fallback_total_ = nullptr;  ///< token-level fallback used
  Counter* compactions_total_ = nullptr;
  Counter* cache_hits_total_ = nullptr;      ///< raw ingests served by cache
  Counter* cache_misses_total_ = nullptr;    ///< raw ingests that full-parsed
  Counter* cache_evictions_total_ = nullptr; ///< LRU capacity evictions
  Counter* batches_total_ = nullptr;         ///< IngestBatch calls
  Gauge* templates_gauge_ = nullptr;
  Gauge* history_bytes_gauge_ = nullptr;          ///< resident + spilled
  Gauge* history_resident_bytes_gauge_ = nullptr;
  Gauge* history_spilled_bytes_gauge_ = nullptr;
  Counter* history_spills_total_ = nullptr;
  Histogram* ingest_hit_seconds_ = nullptr;   ///< sampled (1 in 16)
  Histogram* ingest_miss_seconds_ = nullptr;  ///< sampled (1 in 16)
  Histogram* batch_ingest_seconds_ = nullptr; ///< whole-batch latency
};

}  // namespace qb5000

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "preprocessor/arrival_history.h"
#include "preprocessor/reservoir_sampler.h"
#include "preprocessor/templatizer.h"

namespace qb5000 {

/// Identifier assigned to each distinct (post-equivalence) query template.
using TemplateId = int64_t;

/// The Pre-Processor (Section 4): converts raw queries into templates,
/// aggregates semantically-equivalent templates, tracks per-template arrival
/// rate history, and keeps a reservoir sample of original parameters.
class PreProcessor {
 public:
  struct Options {
    /// Reservoir capacity for per-template parameter samples.
    size_t param_sample_capacity = 20;
    /// Seed for the sampling RNG (determinism across runs).
    uint64_t rng_seed = 42;
    /// Minute-resolution history older than this is folded into hourly
    /// archives on CompactBefore().
    int64_t compaction_horizon_seconds = 7 * kSecondsPerDay;
    /// Registry receiving `preprocessor.*` metrics; nullptr = the process
    /// global. QueryBot5000 overrides this with its per-instance registry.
    MetricsRegistry* metrics = nullptr;
  };

  /// Everything QB5000 knows about one template.
  struct TemplateInfo {
    TemplateId id = 0;
    std::string fingerprint;  ///< semantic-equivalence key (grouping key)
    std::string text;         ///< canonical template SQL
    sql::StatementType type = sql::StatementType::kSelect;
    std::vector<std::string> tables;
    ArrivalHistory history;
    ReservoirSampler<std::vector<sql::Literal>> param_samples;
    Timestamp first_seen = 0;
    Timestamp last_seen = 0;
    double total_queries = 0;

    explicit TemplateInfo(size_t sample_capacity)
        : param_samples(sample_capacity) {}
  };

  PreProcessor() : PreProcessor(Options()) {}
  explicit PreProcessor(Options options);

  /// Ingests one query arrival (or `count` identical arrivals at `ts`).
  /// Returns the id of the template the query maps to.
  Result<TemplateId> Ingest(const std::string& sql, Timestamp ts,
                            double count = 1.0);

  /// Ingests an already-templatized arrival. Trace generators use this to
  /// feed high query volumes without materializing every SQL string.
  TemplateId IngestTemplatized(const TemplatizeOutput& templatized,
                               Timestamp ts, double count = 1.0);

  /// Folds minute-level history older than the compaction horizon (relative
  /// to `now`) into hourly archives for every template.
  void CompactBefore(Timestamp now);

  size_t num_templates() const { return templates_.size(); }
  double total_queries() const { return total_queries_; }

  /// Number of queries ingested per statement type (Table 1 rows).
  double QueriesOfType(sql::StatementType type) const;

  /// Lookup by id; nullptr if unknown.
  const TemplateInfo* GetTemplate(TemplateId id) const;

  /// All template ids, ascending (ascending == order of first appearance).
  std::vector<TemplateId> TemplateIds() const;

  /// Fraction of currently-known templates first seen at or after `since`.
  /// The Clusterer re-clusters when this crosses its trigger threshold.
  double NewTemplateRatio(Timestamp since) const;

  /// Drops templates that have received no queries since `cutoff`
  /// (Section 5.2 Step 2: stale template removal). Returns ids removed.
  std::vector<TemplateId> EvictIdleTemplates(Timestamp cutoff);

  /// Approximate storage footprint of all arrival histories, in bytes.
  size_t HistoryStorageBytes() const;

  /// Snapshot support: registers a fully-populated template record under
  /// its fingerprint and folds its counts into the totals. Fails on a
  /// duplicate fingerprint or id.
  Status RestoreTemplate(TemplateInfo info);

 private:
  /// Every 2^k-th raw-SQL Ingest is latency-sampled (Table 4's
  /// ms/query figure, live) so the two clock reads stay off most queries.
  static constexpr uint64_t kTemplatizeSampleMask = 15;  ///< 1 in 16

  Options options_;
  Rng rng_;
  std::unordered_map<std::string, TemplateId> by_fingerprint_;
  std::map<TemplateId, TemplateInfo> templates_;  ///< ordered for stable iteration
  TemplateId next_id_ = 1;
  double total_queries_ = 0;
  double queries_by_type_[4] = {0, 0, 0, 0};

  // Instrument handles (owned by the registry; see DESIGN.md §10).
  Counter* queries_total_ = nullptr;        ///< arrivals, weighted by count
  Counter* ingests_total_ = nullptr;        ///< Ingest/IngestTemplatized calls
  Counter* templates_created_total_ = nullptr;
  Counter* templates_evicted_total_ = nullptr;
  Counter* parse_failures_total_ = nullptr;  ///< Templatize() rejected the SQL
  Counter* parse_fallback_total_ = nullptr;  ///< token-level fallback used
  Counter* compactions_total_ = nullptr;
  Gauge* templates_gauge_ = nullptr;
  Gauge* history_bytes_gauge_ = nullptr;
  Histogram* templatize_seconds_ = nullptr;  ///< sampled (1 in 16)
};

}  // namespace qb5000

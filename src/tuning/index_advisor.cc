#include "tuning/index_advisor.h"

#include <set>

#include "sql/parser.h"

namespace qb5000 {
namespace {

/// Candidate single-column indexes for one statement: every sargable
/// column referenced by its predicates. (CollectSargable lives inside the
/// dbms module; here we re-derive candidates from the AST so the advisor
/// stays independent of executor internals.)
void CollectCandidates(const sql::Expr* e, const dbms::Database& db,
                       const std::string& table, std::set<std::string>* out) {
  if (e == nullptr) return;
  using sql::ExprKind;
  if (e->kind == ExprKind::kBinary && (e->op == "AND" || e->op == "OR")) {
    CollectCandidates(e->left.get(), db, table, out);
    CollectCandidates(e->right.get(), db, table, out);
    return;
  }
  const sql::Expr* column_side = nullptr;
  if (e->kind == ExprKind::kBinary || e->kind == ExprKind::kInList ||
      e->kind == ExprKind::kBetween) {
    column_side = e->left.get();
  }
  if (column_side == nullptr || column_side->kind != ExprKind::kColumnRef) return;
  std::string target = column_side->table.empty() ? table : column_side->table;
  const dbms::Table* t = db.GetTable(target);
  if (t == nullptr || t->ColumnIndex(column_side->column) < 0) return;
  if (t->HasIndex(column_side->column)) return;  // already built
  out->insert(target + "." + column_side->column);
}

void CandidatesForStatement(const sql::Statement& stmt, const dbms::Database& db,
                            std::set<std::string>* out) {
  switch (stmt.type) {
    case sql::StatementType::kSelect: {
      const auto& s = *stmt.select;
      std::string table = s.from.empty() ? "" : s.from[0].table;
      CollectCandidates(s.where.get(), db, table, out);
      for (const auto& join : s.joins) {
        CollectCandidates(join.on.get(), db, table, out);
      }
      break;
    }
    case sql::StatementType::kUpdate:
      CollectCandidates(stmt.update->where.get(), db, stmt.update->table, out);
      break;
    case sql::StatementType::kDelete:
      CollectCandidates(stmt.del->where.get(), db, stmt.del->table, out);
      break;
    case sql::StatementType::kInsert:
      break;  // inserts only ever pay for indexes
  }
}

}  // namespace

Result<double> IndexAdvisor::WorkloadCost(
    const dbms::Database& db, const std::vector<AdvisorQuery>& workload,
    const std::set<std::string>& hypothetical) {
  double total = 0.0;
  for (const auto& query : workload) {
    if (query.stmt == nullptr) continue;
    auto cost = db.EstimateCost(*query.stmt, hypothetical);
    if (!cost.ok()) return cost.status();
    total += query.weight * *cost;
  }
  return total;
}

Result<std::vector<std::string>> IndexAdvisor::Recommend(
    const dbms::Database& db, const std::vector<AdvisorQuery>& workload,
    size_t max_new) {
  // Phase 1 (AutoAdmin candidate selection): the best index for each query
  // in isolation forms the candidate set.
  std::set<std::string> candidates;
  for (const auto& query : workload) {
    if (query.stmt == nullptr) continue;
    std::set<std::string> per_query;
    CandidatesForStatement(*query.stmt, db, &per_query);
    if (per_query.empty()) continue;
    auto base = db.EstimateCost(*query.stmt, {});
    if (!base.ok()) return base.status();
    std::string best;
    double best_cost = *base;
    for (const auto& candidate : per_query) {
      auto cost = db.EstimateCost(*query.stmt, {candidate});
      if (!cost.ok()) return cost.status();
      if (*cost < best_cost) {
        best_cost = *cost;
        best = candidate;
      }
    }
    if (!best.empty()) candidates.insert(best);
  }

  // Phase 2: greedy bounded subset search by total weighted cost.
  std::vector<std::string> chosen;
  std::set<std::string> selected;
  auto current = WorkloadCost(db, workload, selected);
  if (!current.ok()) return current.status();
  double current_cost = *current;
  while (chosen.size() < max_new) {
    std::string best;
    double best_cost = current_cost;
    for (const auto& candidate : candidates) {
      if (selected.count(candidate)) continue;
      std::set<std::string> trial = selected;
      trial.insert(candidate);
      auto cost = WorkloadCost(db, workload, trial);
      if (!cost.ok()) return cost.status();
      if (*cost < best_cost - 1e-9) {
        best_cost = *cost;
        best = candidate;
      }
    }
    if (best.empty()) break;  // no further improvement
    selected.insert(best);
    chosen.push_back(best);
    current_cost = best_cost;
  }
  return chosen;
}

Result<AdvisorQuery> IndexAdvisor::MakeQuery(const std::string& sql,
                                             double weight) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  AdvisorQuery query;
  query.stmt = std::make_shared<sql::Statement>(std::move(*stmt));
  query.weight = weight;
  return query;
}

}  // namespace qb5000

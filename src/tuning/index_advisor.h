#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dbms/database.h"
#include "sql/ast.h"

namespace qb5000 {

/// One entry of the (predicted or historical) workload handed to the
/// advisor: a parsed query template and its expected execution volume.
struct AdvisorQuery {
  std::shared_ptr<sql::Statement> stmt;
  double weight = 1.0;
};

/// AutoAdmin-style index advisor [12], as used in Section 7.6: per-query
/// best-index candidates followed by a greedy bounded search over the
/// candidate set using the engine's what-if cost estimates.
class IndexAdvisor {
 public:
  /// Returns up to `max_new` secondary indexes ("table.column"), in the
  /// order they should be built (largest weighted cost reduction first).
  /// Existing indexes are respected and never re-recommended.
  static Result<std::vector<std::string>> Recommend(
      const dbms::Database& db, const std::vector<AdvisorQuery>& workload,
      size_t max_new);

  /// Total weighted estimated cost of the workload under the current
  /// indexes plus `hypothetical`.
  static Result<double> WorkloadCost(const dbms::Database& db,
                                     const std::vector<AdvisorQuery>& workload,
                                     const std::set<std::string>& hypothetical);

  /// Parses SQL into an AdvisorQuery (convenience for benches/examples).
  static Result<AdvisorQuery> MakeQuery(const std::string& sql, double weight);
};

}  // namespace qb5000

#pragma once

#include <cstdint>
#include <string>

namespace qb5000 {

/// Timestamps in this library are seconds since an arbitrary epoch. Traces
/// and forecasting operate on a virtual timeline so experiments replay
/// deterministically and much faster than wall-clock time.
using Timestamp = int64_t;

inline constexpr int64_t kSecondsPerMinute = 60;
inline constexpr int64_t kSecondsPerHour = 3600;
inline constexpr int64_t kSecondsPerDay = 86400;
inline constexpr int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// Rounds `ts` down to the start of the interval containing it.
inline Timestamp AlignDown(Timestamp ts, int64_t interval_seconds) {
  if (interval_seconds <= 0) return ts;
  Timestamp aligned = (ts / interval_seconds) * interval_seconds;
  if (ts < 0 && aligned > ts) aligned -= interval_seconds;
  return aligned;
}

/// Formats a timestamp as "D+HH:MM:SS" relative to the virtual epoch, e.g.
/// day 3, 14:05:00 -> "3+14:05:00". Used by bench output so series align
/// visually with the paper's time axes.
std::string FormatTimestamp(Timestamp ts);

}  // namespace qb5000

#include "common/timeseries.h"

#include <algorithm>

#include "common/check.h"

namespace qb5000 {

void TimeSeries::Add(Timestamp ts, double count) {
  if (empty()) {
    start_ = AlignDown(ts, interval_seconds_);
  }
  if (ts < start_) {
    // Extend the series backwards so late-arriving records keep their time.
    Timestamp new_start = AlignDown(ts, interval_seconds_);
    GrowFront(static_cast<size_t>((start_ - new_start) / interval_seconds_));
    start_ = new_start;
  }
  size_t index = static_cast<size_t>((ts - start_) / interval_seconds_);
  if (index >= size()) storage_.resize(head_ + index + 1, 0.0);
  storage_[head_ + index] += count;
}

void TimeSeries::GrowFront(size_t shift) {
  if (shift <= head_) {
    // The slack already covers it: just move the front pointer back and
    // zero the newly-live prefix.
    head_ -= shift;
    std::fill_n(storage_.begin() + static_cast<ptrdiff_t>(head_), shift, 0.0);
    return;
  }
  // Regrow with front slack equal to the new live size, so a stream of
  // ever-earlier arrivals reallocates O(log n) times — amortized O(1)
  // per extended bucket instead of the O(n) of a front insert.
  size_t live = size();
  size_t new_live = live + shift;
  size_t slack = new_live;
  std::vector<double> next(slack + new_live, 0.0);
  std::copy(storage_.begin() + static_cast<ptrdiff_t>(head_), storage_.end(),
            next.begin() + static_cast<ptrdiff_t>(slack + shift));
  storage_ = std::move(next);
  head_ = slack;
}

double TimeSeries::ValueAt(Timestamp ts) const {
  if (empty() || ts < start_) return 0.0;
  size_t index = static_cast<size_t>((ts - start_) / interval_seconds_);
  if (index >= size()) return 0.0;
  return storage_[head_ + index];
}

double TimeSeries::Total() const {
  double total = 0.0;
  for (double v : values()) total += v;
  return total;
}

Result<TimeSeries> TimeSeries::Aggregate(int64_t coarser_interval_seconds) const {
  if (coarser_interval_seconds <= 0 ||
      coarser_interval_seconds % interval_seconds_ != 0) {
    return Status::InvalidArgument(
        "aggregate interval must be a positive multiple of the base interval");
  }
  TimeSeries out(AlignDown(start_, coarser_interval_seconds),
                 coarser_interval_seconds);
  for (size_t i = 0; i < size(); ++i) {
    out.Add(TimeAt(i), storage_[head_ + i]);
  }
  return out;
}

TimeSeries TimeSeries::Slice(Timestamp from, Timestamp to) const {
  from = AlignDown(from, interval_seconds_);
  to = AlignDown(to + interval_seconds_ - 1, interval_seconds_);
  TimeSeries out(from, interval_seconds_);
  if (to <= from) return out;
  size_t n = static_cast<size_t>((to - from) / interval_seconds_);
  out.storage_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    out.storage_[i] = ValueAt(from + static_cast<int64_t>(i) * interval_seconds_);
  }
  return out;
}

Status TimeSeries::AddSeries(const TimeSeries& other) {
  if (other.start_ != start_ || other.interval_seconds_ != interval_seconds_ ||
      other.size() != size()) {
    return Status::InvalidArgument("series shapes differ");
  }
  for (size_t i = 0; i < size(); ++i) {
    storage_[head_ + i] += other.storage_[other.head_ + i];
  }
  return Status::Ok();
}

void TimeSeries::Scale(double factor) {
  for (double& v : mutable_values()) v *= factor;
}

void TimeSeries::Reset(Timestamp start, int64_t interval_seconds, size_t n) {
  QB_CHECK_GT(interval_seconds, 0);
  start_ = start;
  interval_seconds_ = interval_seconds;
  head_ = 0;
  storage_.assign(n, 0.0);
}

}  // namespace qb5000

#include "common/timeseries.h"

#include <algorithm>

namespace qb5000 {

void TimeSeries::Add(Timestamp ts, double count) {
  if (values_.empty()) {
    start_ = AlignDown(ts, interval_seconds_);
  }
  if (ts < start_) {
    // Extend the series backwards so late-arriving records keep their time.
    Timestamp new_start = AlignDown(ts, interval_seconds_);
    size_t shift = static_cast<size_t>((start_ - new_start) / interval_seconds_);
    values_.insert(values_.begin(), shift, 0.0);
    start_ = new_start;
  }
  size_t index = static_cast<size_t>((ts - start_) / interval_seconds_);
  if (index >= values_.size()) values_.resize(index + 1, 0.0);
  values_[index] += count;
}

double TimeSeries::ValueAt(Timestamp ts) const {
  if (values_.empty() || ts < start_) return 0.0;
  size_t index = static_cast<size_t>((ts - start_) / interval_seconds_);
  if (index >= values_.size()) return 0.0;
  return values_[index];
}

double TimeSeries::Total() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

Result<TimeSeries> TimeSeries::Aggregate(int64_t coarser_interval_seconds) const {
  if (coarser_interval_seconds <= 0 ||
      coarser_interval_seconds % interval_seconds_ != 0) {
    return Status::InvalidArgument(
        "aggregate interval must be a positive multiple of the base interval");
  }
  TimeSeries out(AlignDown(start_, coarser_interval_seconds),
                 coarser_interval_seconds);
  for (size_t i = 0; i < values_.size(); ++i) {
    out.Add(TimeAt(i), values_[i]);
  }
  return out;
}

TimeSeries TimeSeries::Slice(Timestamp from, Timestamp to) const {
  from = AlignDown(from, interval_seconds_);
  to = AlignDown(to + interval_seconds_ - 1, interval_seconds_);
  TimeSeries out(from, interval_seconds_);
  if (to <= from) return out;
  size_t n = static_cast<size_t>((to - from) / interval_seconds_);
  out.values_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    out.values_[i] = ValueAt(from + static_cast<int64_t>(i) * interval_seconds_);
  }
  return out;
}

Status TimeSeries::AddSeries(const TimeSeries& other) {
  if (other.start_ != start_ || other.interval_seconds_ != interval_seconds_ ||
      other.values_.size() != values_.size()) {
    return Status::InvalidArgument("series shapes differ");
  }
  for (size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
  return Status::Ok();
}

void TimeSeries::Scale(double factor) {
  for (double& v : values_) v *= factor;
}

}  // namespace qb5000

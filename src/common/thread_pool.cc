#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/check.h"

namespace qb5000 {

ThreadPool::ThreadPool(size_t concurrency) {
  size_t workers = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTask(Batch* batch, size_t index) {
  try {
    (*batch->fn)(index);
  } catch (...) {
    // Own-slot write: no lock needed, slots are pre-sized and disjoint.
    batch->errors[index] = std::current_exception();
  }
}

bool ThreadPool::RunOnePending() {
  if (pending_.empty()) return false;
  Batch* batch = pending_.front();
  size_t index = batch->next++;
  if (batch->next >= batch->num_tasks) pending_.pop_front();
  mu_.Unlock();
  RunTask(batch, index);
  mu_.Lock();
  if (++batch->done == batch->num_tasks) done_cv_.NotifyAll();
  return true;
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    while (!shutdown_ && pending_.empty()) work_cv_.Wait(&mu_);
    if (pending_.empty()) break;  // shutdown with nothing left to claim
    RunOnePending();
  }
  mu_.Unlock();
}

void ThreadPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    // Sequential fallback: exceptions propagate directly.
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.num_tasks = num_tasks;
  batch.errors.assign(num_tasks, nullptr);

  mu_.Lock();
  pending_.push_back(&batch);
  work_cv_.NotifyAll();
  while (batch.done < batch.num_tasks) {
    // Help instead of blocking: run our own batch's tasks, or — when a task
    // body submitted a nested batch — whatever else is pending, so a waiting
    // thread can never deadlock the pool.
    if (!RunOnePending()) done_cv_.Wait(&mu_);
  }
  mu_.Unlock();

  for (size_t i = 0; i < num_tasks; ++i) {
    if (batch.errors[i] != nullptr) std::rethrow_exception(batch.errors[i]);
  }
}

namespace {

// constinit-safe: Mutex's constructor is constexpr, so this is initialized
// at load time, before any static-initialization-order races can reach it.
Mutex global_pool_mu{lock_level::kThreadPoolGlobal, "threadpool.global"};
size_t global_thread_count QB_GUARDED_BY(global_pool_mu) = 0;  // 0 = unset
std::unique_ptr<ThreadPool> global_pool QB_GUARDED_BY(global_pool_mu);

size_t ResolveCount(size_t count) {
  if (count == 0) count = std::thread::hardware_concurrency();
  return std::max<size_t>(1, count);
}

}  // namespace

size_t SetThreadCount(size_t count) {
  MutexLock lock(&global_pool_mu);
  size_t resolved = ResolveCount(count);
  if (resolved != global_thread_count) {
    global_pool.reset();  // joins workers; next use rebuilds lazily
    global_thread_count = resolved;
  }
  return resolved;
}

size_t GetThreadCount() {
  MutexLock lock(&global_pool_mu);
  if (global_thread_count == 0) global_thread_count = ResolveCount(0);
  return global_thread_count;
}

ThreadPool& GlobalThreadPool() {
  MutexLock lock(&global_pool_mu);
  if (global_thread_count == 0) global_thread_count = ResolveCount(0);
  if (global_pool == nullptr) {
    global_pool = std::make_unique<ThreadPool>(global_thread_count);
  }
  return *global_pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  size_t range = end - begin;
  size_t num_chunks = (range + grain - 1) / grain;
  if (num_chunks == 1) {
    fn(begin, end);
    return;
  }
  GlobalThreadPool().Run(num_chunks, [&](size_t chunk) {
    size_t lo = begin + chunk * grain;
    size_t hi = std::min(lo + grain, end);
    fn(lo, hi);
  });
}

}  // namespace qb5000

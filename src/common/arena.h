#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qb5000 {

/// Monotonic (bump-pointer) allocation region for short-lived object graphs,
/// in the style of protobuf arenas. The SQL parser allocates every AST node
/// and normalized token string from one Arena per parse, turning a malloc
/// per node into a pointer bump; the whole graph is released in O(#blocks)
/// when the arena dies (DESIGN.md §11).
///
/// Objects whose type is not trivially destructible have their destructor
/// registered at creation and run exactly once, in reverse creation order,
/// when the arena is destroyed. Owners of arena objects (e.g. sql::ExprPtr
/// with its arena-aware deleter) must therefore never destroy them directly.
///
/// Not thread-safe: an Arena belongs to one parse on one thread.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 4096;

  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(initial_block_bytes == 0 ? kDefaultBlockBytes
                                                   : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Reverse creation order, mirroring stack unwinding: later objects may
    // reference earlier ones.
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->fn(it->object);
    }
  }

  /// Raw aligned storage; never returns nullptr (throws std::bad_alloc like
  /// operator new when the system allocator fails).
  void* Allocate(size_t bytes, size_t align) {
    QB_DCHECK(align != 0 && (align & (align - 1)) == 0);
    uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
    uintptr_t aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
      NewBlock(bytes + align);
      p = reinterpret_cast<uintptr_t>(ptr_);
      aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
    }
    ptr_ = reinterpret_cast<char*>(aligned + bytes);
    return reinterpret_cast<void*>(aligned);
  }

  /// Constructs a T in the arena. Non-trivially-destructible types get their
  /// destructor registered for the arena's teardown.
  template <typename T, typename... Args>
  T* Make(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          {[](void* o) { static_cast<T*>(o)->~T(); }, obj});
    }
    return obj;
  }

  /// Copies `s` into the arena and returns a view of the copy (the lexer's
  /// backing store for token text that cannot alias the source SQL).
  std::string_view DupString(std::string_view s) {
    if (s.empty()) return {};
    char* mem = static_cast<char*>(Allocate(s.size(), 1));
    std::char_traits<char>::copy(mem, s.data(), s.size());
    return {mem, s.size()};
  }

  /// Total block bytes reserved from the system allocator so far.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Finalizer {
    void (*fn)(void*);
    void* object;
  };

  void NewBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    if (size < min_bytes) size = min_bytes;
    // Geometric growth caps the number of blocks at O(log total).
    next_block_bytes_ = size * 2;
    blocks_.push_back(std::make_unique<char[]>(size));
    ptr_ = blocks_.back().get();
    end_ = ptr_ + size;
    bytes_reserved_ += size;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<Finalizer> finalizers_;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t next_block_bytes_;
  size_t bytes_reserved_ = 0;
};

}  // namespace qb5000

#pragma once

#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "common/status.h"

namespace qb5000 {

/// Retry-with-backoff helpers for callers of the overload-shedding ingest
/// admission gate (DESIGN.md §13). The backoff schedule is a pure function
/// of the options and the attempt index — no RNG, no clock reads — and the
/// sleep itself is injectable, so tests assert the exact schedule without
/// waiting real time and production callers get a sane default.
struct RetryOptions {
  /// Total tries including the first; <= 1 means no retries.
  int max_attempts = 5;
  /// Backoff before the first retry.
  double initial_backoff_seconds = 0.010;
  /// Geometric growth per subsequent retry.
  double backoff_multiplier = 2.0;
  /// Schedule ceiling.
  double max_backoff_seconds = 1.0;
  /// Sleep seam. nullptr = really sleep (this_thread::sleep_for). Tests
  /// inject a recorder; a virtual-time harness injects its own clock.
  std::function<void(double seconds)> sleep;
  /// Which failures are worth retrying. nullptr = retry only kOverloaded
  /// (the backpressure verdict: "try again later" by definition). Terminal
  /// errors (parse failures, invalid arguments) return immediately.
  std::function<bool(const Status&)> retryable;
};

/// The deterministic backoff (seconds) slept after failed attempt `attempt`
/// (0-based): initial * multiplier^attempt, capped at max_backoff_seconds.
inline double BackoffForAttempt(const RetryOptions& options, int attempt) {
  double backoff = options.initial_backoff_seconds;
  for (int i = 0; i < attempt; ++i) {
    backoff *= options.backoff_multiplier;
    if (backoff >= options.max_backoff_seconds) {
      return options.max_backoff_seconds;
    }
  }
  return backoff < options.max_backoff_seconds ? backoff
                                               : options.max_backoff_seconds;
}

namespace retry_internal {

inline bool DefaultRetryable(const Status& status) {
  return status.code() == StatusCode::kOverloaded;
}

inline void DefaultSleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace retry_internal

/// Runs `op` up to max_attempts times, sleeping the backoff schedule
/// between retryable failures. Returns the first success, the first
/// non-retryable failure, or the last failure once attempts are exhausted
/// (with no trailing sleep).
inline Status RetryWithBackoff(const std::function<Status()>& op,
                               const RetryOptions& options = RetryOptions()) {
  auto retryable = [&options](const Status& s) {
    return options.retryable ? options.retryable(s)
                             : retry_internal::DefaultRetryable(s);
  };
  auto sleep = [&options](double seconds) {
    if (options.sleep) {
      options.sleep(seconds);
    } else {
      retry_internal::DefaultSleep(seconds);
    }
  };
  int attempts = options.max_attempts > 1 ? options.max_attempts : 1;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last = op();
    if (last.ok() || !retryable(last)) return last;
    if (attempt + 1 < attempts) sleep(BackoffForAttempt(options, attempt));
  }
  return last;
}

/// Result<T> counterpart: retries on retryable error statuses, returns the
/// first ok() Result or the terminal error.
template <typename T>
Result<T> RetryWithBackoff(const std::function<Result<T>()>& op,
                           const RetryOptions& options = RetryOptions()) {
  auto retryable = [&options](const Status& s) {
    return options.retryable ? options.retryable(s)
                             : retry_internal::DefaultRetryable(s);
  };
  auto sleep = [&options](double seconds) {
    if (options.sleep) {
      options.sleep(seconds);
    } else {
      retry_internal::DefaultSleep(seconds);
    }
  };
  int attempts = options.max_attempts > 1 ? options.max_attempts : 1;
  Result<T> last = Status::Internal("retry: op never ran");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last = op();
    if (last.ok() || !retryable(last.status())) return last;
    if (attempt + 1 < attempts) sleep(BackoffForAttempt(options, attempt));
  }
  return last;
}

}  // namespace qb5000

#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qb5000 {

/// Fixed-size worker pool driving every parallel region in the library.
///
/// Design constraints (DESIGN.md §9):
///   - Deterministic work decomposition: callers split work into tasks whose
///     boundaries depend only on the problem, never on the thread count.
///     The pool decides *who* runs a task, never *what* a task computes, so
///     results are bit-identical at any concurrency.
///   - Helping scheduler: a thread waiting for its batch executes pending
///     tasks (its own batch's or a nested batch's) instead of blocking, so
///     nested Run()/ParallelFor() calls from inside a task cannot deadlock
///     and lose no parallelism.
///   - Exception propagation: each task's exception is captured in its slot;
///     Run() rethrows the lowest-index one after the batch drains, so the
///     surfaced error is also independent of scheduling.
///
/// Raw std::thread spawns outside this translation unit are banned by
/// tools/qb_lint.py; go through ParallelFor (or ThreadPool::Run) instead.
class ThreadPool {
 public:
  /// A pool with `concurrency` total lanes: the calling thread participates
  /// in every batch it submits, so `concurrency - 1` workers are spawned.
  /// `concurrency <= 1` spawns nothing and Run() executes inline.
  explicit ThreadPool(size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the submitting caller); >= 1.
  size_t concurrency() const { return workers_.size() + 1; }

  /// Runs fn(0) ... fn(num_tasks - 1), possibly concurrently, and returns
  /// when all calls finished. The caller executes tasks too. If any task
  /// threw, rethrows the exception of the lowest task index after the whole
  /// batch completed. Safe to call from multiple threads and from inside a
  /// running task (nested batches interleave on the same workers).
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn)
      QB_EXCLUDES(mu_);

 private:
  /// One submitted batch; lives on the submitter's stack for its duration.
  /// `next`/`done` are guarded by the owning pool's mu_ (a Batch cannot name
  /// it in an annotation; every access site is inside a QB_REQUIRES(mu_)
  /// member, which is what the analysis actually checks).
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next = 0;  ///< next unclaimed task index; guarded by mu_
    size_t done = 0;  ///< finished task count; guarded by mu_
    std::vector<std::exception_ptr> errors;  ///< slot per task, own-slot writes
  };

  void WorkerLoop() QB_EXCLUDES(mu_);
  /// Claims and runs one task from the front pending batch. Returns false
  /// if nothing was pending. mu_ is held on entry and exit but released
  /// around the task body itself (tasks never run under the queue lock).
  bool RunOnePending() QB_REQUIRES(mu_);
  static void RunTask(Batch* batch, size_t index);

  Mutex mu_{lock_level::kThreadPoolQueue, "threadpool.queue"};
  CondVar work_cv_;  ///< new batch or shutdown
  CondVar done_cv_;  ///< some batch finished a task
  std::deque<Batch*> pending_ QB_GUARDED_BY(mu_);  ///< unclaimed batches
  bool shutdown_ QB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Sets the process-wide concurrency used by ParallelFor. `count == 0`
/// selects std::thread::hardware_concurrency(); `count == 1` is the fully
/// sequential fallback (no workers, everything inline). Takes effect on the
/// next parallel region; do not call while a ParallelFor is in flight.
/// Returns the effective count.
size_t SetThreadCount(size_t count);

/// The currently configured process-wide concurrency (>= 1).
size_t GetThreadCount();

/// The process-wide pool at the configured concurrency.
ThreadPool& GlobalThreadPool();

/// Statically partitions [begin, end) into chunks of `grain` indices (the
/// last chunk may be short) and invokes fn(chunk_begin, chunk_end) for each,
/// possibly concurrently on the global pool. Chunk boundaries depend only on
/// (begin, end, grain) — never on the thread count — which is what makes
/// ordered reductions over per-chunk results deterministic. `grain == 0` is
/// treated as 1. Empty ranges invoke nothing.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace qb5000

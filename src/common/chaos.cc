#include "common/chaos.h"

#include <chrono>
#include <thread>

namespace qb5000 {

ChaosHarness& ChaosHarness::Global() {
  static ChaosHarness* harness = new ChaosHarness();
  return *harness;
}

void ChaosHarness::Arm(OpKind kind, std::string_view site, int64_t nth,
                       double param) {
  MutexLock lock(&mu_);
  ArmedFault fault;
  fault.kind = kind;
  fault.site = std::string(site);
  fault.fire_at = nth;
  fault.param = param;
  faults_.push_back(std::move(fault));
  enabled_.store(true, std::memory_order_release);
}

void ChaosHarness::Reset() {
  MutexLock lock(&mu_);
  faults_.clear();
  enabled_.store(false, std::memory_order_release);
  fires_total_.store(0, std::memory_order_relaxed);
}

bool ChaosHarness::Fire(OpKind kind, std::string_view site, double* param) {
  if (!enabled_.load(std::memory_order_acquire)) return false;
  MutexLock lock(&mu_);
  bool fired = false;
  for (ArmedFault& fault : faults_) {
    if (fault.kind != kind || fault.site != site) continue;
    int64_t index = fault.probes++;
    if (!fired && !fault.fired && index == fault.fire_at) {
      fault.fired = true;
      fired = true;
      if (param != nullptr) *param = fault.param;
      fires_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return fired;
}

void ChaosHarness::MaybeStall(std::string_view site) {
  double seconds = 0.0;
  if (!Fire(OpKind::kStall, site, &seconds) || seconds <= 0.0) return;
  // Sleep outside the armed-state mutex so concurrent probes (and Reset in
  // a panicking test) never wait behind a stall. sleep_for yields the core:
  // on a single-CPU host the threads this fault is meant to victimize still
  // run, which is exactly the "stage wedged, service alive" scenario.
  stalls_active_.fetch_add(1, std::memory_order_acq_rel);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stalls_active_.fetch_sub(1, std::memory_order_acq_rel);
}

Timestamp ChaosHarness::MaybeJumpClock(std::string_view site, Timestamp now) {
  double delta = 0.0;
  if (!Fire(OpKind::kClockJump, site, &delta)) return now;
  return now + static_cast<Timestamp>(delta);
}

}  // namespace qb5000

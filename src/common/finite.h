#pragma once

#include <cmath>

namespace qb5000 {

/// Floating-point classification helpers (DESIGN.md §13).
///
/// This header is the single sanctioned home of `std::isfinite` /
/// `std::isnan` in the library: tools/qb_lint.py (`raw-finite`) bans the
/// raw spellings everywhere else. Centralizing them buys two things:
///
///  1. **Auditability.** "Where do non-finite values get classified?" has
///     one answer; the resilience layer's no-NaN-escapes guarantee (health
///     gate, Standardizer hardening, prediction capping) is reviewable by
///     reading the call sites of these four functions.
///  2. **A single seam.** If a build ever needs -ffast-math-compatible
///     classification (bit tricks instead of the libm calls the optimizer
///     is allowed to fold to `false`), only this file changes.
///
/// All helpers are branch-free wrappers — identical codegen to the raw
/// calls under the default flags.

/// True iff `v` is neither NaN nor +/-infinity.
inline bool IsFinite(double v) { return std::isfinite(v); }

/// True iff `v` is NaN.
inline bool IsNaN(double v) { return std::isnan(v); }

/// True iff every element of the range (Vector, std::span, Matrix::data(),
/// any double range) is finite. Empty ranges are vacuously finite.
template <typename Range>
inline bool AllFinite(const Range& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Returns `v` if finite, else `fallback` — the canonical "scrub one
/// suspect value" idiom for outputs that must never carry NaN/Inf.
inline double FiniteOr(double v, double fallback) {
  return std::isfinite(v) ? v : fallback;
}

}  // namespace qb5000

#pragma once

#include <functional>
#include <thread>

#include "common/mutex.h"

namespace qb5000 {

/// Background service loop (DESIGN.md §14): owns one dedicated thread that
/// repeatedly invokes a *round* callback until stopped. The round returns
/// true when it did work (drained a queue chunk, ran maintenance, wrote a
/// checkpoint) and false when it found nothing to do; the loop spins through
/// work rounds back-to-back and parks on a condvar at the first idle round.
///
/// Contracts, all deliberately narrow:
///   - The round callback runs with no ServiceThread lock held, so it may
///     acquire anything the lock hierarchy allows. The ServiceThread's own
///     mutex is leaf-level and held only around the park/wake flags.
///   - Wake() is cheap and safe from any thread (producers call it after a
///     lock-free enqueue). Lost-wakeup safety: the wake flag is latched
///     under the mutex, so a Wake() racing the loop's idle check is observed
///     either by the check or by the wait.
///   - Stop() drains before exiting: once the stop flag is set the loop
///     keeps running rounds until one reports idle, then joins. Shutdown
///     ordering is therefore "producers quiesce → Stop() → consumer state is
///     single-threaded again" — the owner must stop enqueuing first.
///   - WaitIdle() (the DrainForTest building block) forces at least one more
///     round and blocks until the loop parks with nothing left to do.
///
/// Start/Stop are owner-thread operations and not thread-safe against each
/// other; Wake() and WaitIdle() are safe from any thread once started.
class ServiceThread {
 public:
  /// A unit of background work. True ⇒ something was done and the loop
  /// should immediately try again; false ⇒ idle, park until woken.
  using RoundFn = std::function<bool()>;

  ServiceThread() = default;
  ~ServiceThread();

  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Spawns the loop. Requires: not already running.
  void Start(RoundFn round);

  /// Sets the stop flag, lets the loop drain to idle, joins. Idempotent;
  /// a no-op if never started.
  void Stop();

  /// Nudges a parked loop to run another round. No-op while the loop is
  /// mid-round (it re-checks the flag before parking).
  void Wake();

  /// Blocks until the loop has run at least one more round after this call
  /// and parked idle. Returns immediately if not running.
  void WaitIdle();

  bool running() const;

 private:
  void Loop();

  mutable Mutex mu_{lock_level::kLeaf, "common.service"};
  CondVar cv_;
  RoundFn round_;  ///< set in Start() before the thread exists; const after
  bool stop_ QB_GUARDED_BY(mu_) = false;
  bool wake_ QB_GUARDED_BY(mu_) = false;
  bool running_ QB_GUARDED_BY(mu_) = false;
  uint64_t idle_epoch_ QB_GUARDED_BY(mu_) = 0;  ///< bumped at each park
  std::thread thread_;
};

}  // namespace qb5000

#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace qb5000 {

/// Background service loop (DESIGN.md §14): owns one dedicated thread that
/// repeatedly invokes a *round* callback until stopped. The round returns
/// true when it did work (drained a queue chunk, ran maintenance, wrote a
/// checkpoint) and false when it found nothing to do; the loop spins through
/// work rounds back-to-back and parks on a condvar at the first idle round.
///
/// Contracts, all deliberately narrow:
///   - The round callback runs with no ServiceThread lock held, so it may
///     acquire anything the lock hierarchy allows. The ServiceThread's own
///     mutex is leaf-level and held only around the park/wake flags.
///   - Wake() is cheap and safe from any thread (producers call it after a
///     lock-free enqueue). Lost-wakeup safety: the wake flag is latched
///     under the mutex, so a Wake() racing the loop's idle check is observed
///     either by the check or by the wait.
///   - Stop() drains before exiting: once the stop flag is set the loop
///     keeps running rounds until one reports idle, then joins. Shutdown
///     ordering is therefore "producers quiesce → Stop() → consumer state is
///     single-threaded again" — the owner must stop enqueuing first.
///   - WaitIdle() (the DrainForTest building block) forces at least one more
///     round and blocks until the loop parks with nothing left to do.
///
/// Start/Stop are owner-thread operations and not thread-safe against each
/// other; Wake() and WaitIdle() are safe from any thread once started.
class ServiceThread {
 public:
  /// A unit of background work. True ⇒ something was done and the loop
  /// should immediately try again; false ⇒ idle, park until woken.
  using RoundFn = std::function<bool()>;

  ServiceThread() = default;
  ~ServiceThread();

  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Spawns the loop. Requires: not already running.
  void Start(RoundFn round);

  /// Sets the stop flag, lets the loop drain to idle, joins. Idempotent;
  /// a no-op if never started.
  void Stop();

  /// Nudges a parked loop to run another round. No-op while the loop is
  /// mid-round (it re-checks the flag before parking).
  void Wake();

  /// Blocks until the loop has run at least one more round after this call
  /// and parked idle. Returns immediately if not running.
  void WaitIdle();

  bool running() const;

 private:
  void Loop();

  mutable Mutex mu_{lock_level::kLeaf, "common.service"};
  CondVar cv_;
  RoundFn round_;  ///< set in Start() before the thread exists; const after
  bool stop_ QB_GUARDED_BY(mu_) = false;
  bool wake_ QB_GUARDED_BY(mu_) = false;
  bool running_ QB_GUARDED_BY(mu_) = false;
  uint64_t idle_epoch_ QB_GUARDED_BY(mu_) = 0;  ///< bumped at each park
  std::thread thread_;
};

/// Fixed pool of prep workers for the sharded service drain (DESIGN.md
/// §14). The owner (the drain loop) publishes a *run* of `count` jobs with
/// BeginRun; workers claim ascending job indices, invoke the prep callback
/// unlocked, and mark each index prepared; the owner consumes results
/// strictly in index order through AwaitPrepared — which itself helps
/// prepare unclaimed jobs rather than idling, and blocks only when every
/// job is claimed but the awaited one is still in flight. So parallel
/// preparation can delay the ordered merge but never reorder it, and even
/// a width-1 pool forms a real two-thread pipeline. One run at a time:
/// BeginRun requires the previous run retired (EndRun, after every index
/// was awaited, which is also what guarantees no worker is still inside the
/// callback when the run's state is torn down).
///
/// The prep callback runs with no pool lock held (the same contract as
/// ServiceThread rounds), so it may acquire anything the lock hierarchy
/// allows — the service drain's preps take the controller state lock shared
/// for their cache probe.
///
/// Start/Stop are owner-thread operations, like ServiceThread's; BeginRun/
/// AwaitPrepared/EndRun belong to the single drain thread.
class DrainPool {
 public:
  /// Prepares job `index` of the current run. Must not throw.
  using PrepFn = std::function<void(size_t)>;

  DrainPool() = default;
  ~DrainPool();  ///< Stop()s.

  DrainPool(const DrainPool&) = delete;
  DrainPool& operator=(const DrainPool&) = delete;

  /// Spawns `workers` (>= 1) threads. Requires: not already started.
  void Start(size_t workers);

  /// Wakes and joins every worker. Requires: no run in flight. Idempotent;
  /// a no-op if never started.
  void Stop();

  /// Publishes a run of `count` (>= 1) jobs; workers start claiming
  /// immediately. `prep` stays callable until EndRun.
  void BeginRun(size_t count, PrepFn prep);

  /// Returns once job `index` of the current run is prepared. While the
  /// job is outstanding this thread *helps*: it claims and prepares other
  /// unclaimed jobs, and only blocks when everything is claimed. Returns
  /// true iff it actually blocked — the drain loop counts those as
  /// head-of-line merge stalls (core.drain_merge_waits_total).
  bool AwaitPrepared(size_t index);

  /// Retires the current run. Requires: every index was awaited.
  void EndRun();

  /// Worker count; 0 when not started. Stable between Start and Stop.
  size_t workers() const { return threads_.size(); }

 private:
  void Worker();

  mutable Mutex mu_{lock_level::kLeaf, "common.drain_pool"};
  CondVar work_cv_;  ///< workers park here between runs
  CondVar done_cv_;  ///< AwaitPrepared parks here
  /// Written by BeginRun and cleared by EndRun under mu_; invoked by
  /// workers *unlocked* after a claim made under mu_ (the claim orders the
  /// read after BeginRun's write, and EndRun cannot run until the job is
  /// marked prepared) — so the field is deliberately not lock-annotated.
  PrepFn prep_;
  size_t run_count_ QB_GUARDED_BY(mu_) = 0;
  size_t next_claim_ QB_GUARDED_BY(mu_) = 0;
  std::vector<uint8_t> prepared_ QB_GUARDED_BY(mu_);
  bool run_active_ QB_GUARDED_BY(mu_) = false;
  bool stop_ QB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  ///< owner-thread lifecycle state
};

}  // namespace qb5000

#pragma once

#include <limits>

#include "common/metrics.h"

namespace qb5000 {

/// A wall-clock time budget for one operation (DESIGN.md §13). Constructed
/// at the operation's entry point and passed down by pointer; stages check
/// `Exceeded()` at their degradation points and fall to a cheaper rung
/// instead of blowing the budget. Built on Stopwatch — the one sanctioned
/// steady-clock wrapper — so budgeted paths stay visible to the same
/// timing discipline as everything else.
///
/// An unbounded (default) deadline never reports exceeded; passing
/// `nullptr` where a `const Deadline*` is expected means the same thing,
/// so legacy call sites stay budget-free without a sentinel object.
class Deadline {
 public:
  /// Unbounded: Exceeded() is always false.
  Deadline() = default;

  /// Expires `budget_seconds` of wall-clock time after construction.
  /// Non-positive budgets are already expired (useful in tests).
  explicit Deadline(double budget_seconds)
      : bounded_(true), budget_seconds_(budget_seconds) {}

  bool bounded() const { return bounded_; }

  /// True once the budget is spent. Each call re-reads the clock.
  bool Exceeded() const {
    return bounded_ && watch_.ElapsedSeconds() >= budget_seconds_;
  }

  /// Seconds left before expiry; +infinity when unbounded, clamped at 0.
  double remaining_seconds() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    double left = budget_seconds_ - watch_.ElapsedSeconds();
    return left > 0.0 ? left : 0.0;
  }

  double budget_seconds() const { return budget_seconds_; }

 private:
  Stopwatch watch_;
  bool bounded_ = false;
  double budget_seconds_ = 0.0;
};

/// Convenience for call sites holding a possibly-null deadline pointer.
inline bool DeadlineExceeded(const Deadline* deadline) {
  return deadline != nullptr && deadline->Exceeded();
}

}  // namespace qb5000

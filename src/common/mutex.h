#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/thread_annotations.h"

namespace qb5000 {

/// Annotated mutex wrappers (DESIGN.md §12).
///
/// Every lock in the library is one of these types, for two reasons:
///
///  1. **Compile-time discipline.** The types carry Clang Thread Safety
///     Analysis capability attributes, so `QB_GUARDED_BY(mu_)` fields and
///     `QB_REQUIRES(mu_)` helpers are checked by the compiler under
///     `-Wthread-safety` (see common/thread_annotations.h). Raw
///     `std::mutex` / `std::shared_mutex` outside this file are banned by
///     tools/qb_lint.py (`raw-mutex`).
///
///  2. **Runtime lock ordering.** Each mutex is registered with a level in
///     the documented lock hierarchy (`lock_level::` below). In Debug
///     builds every acquisition checks, per thread, that levels are
///     strictly increasing; acquiring out of order (or re-acquiring a held
///     mutex) aborts through the QB_CHECK reporting path naming both locks.
///     Release builds compile the checker out entirely — the wrappers are
///     a zero-cost veneer over std::mutex / std::shared_mutex there.

/// The lock hierarchy. A thread may only acquire a mutex whose level is
/// strictly greater than every lock it already holds, so any cross-thread
/// acquisition cycle would require someone to acquire downward — which the
/// Debug checker turns into an immediate abort instead of a rare deadlock.
///
/// Current order (outermost first — see DESIGN.md §12 for the rationale):
///   controller state (100) -> thread pool (200s) -> observability (300s).
/// Leave gaps when adding levels; unrelated leaf locks (tests, tools) use
/// kLeaf.
namespace lock_level {
/// QueryBot5000::state_mu_ — the controller's pipeline-state lock. Held
/// across maintenance/training, so everything those paths touch (the pool,
/// metrics, tracing) must sit above it.
inline constexpr int kControllerState = 100;
/// The process-wide pool registry lock (SetThreadCount/GlobalThreadPool).
inline constexpr int kThreadPoolGlobal = 200;
/// ThreadPool::mu_ — the work queue. Acquired by ParallelFor under the
/// controller lock (training) and never held while a task body runs.
inline constexpr int kThreadPoolQueue = 210;
/// MetricsRegistry::mu_ — registration/export; taken during checkpoint
/// serialization while the controller lock is held shared.
inline constexpr int kMetricsRegistry = 300;
/// Tracer::mu_ — span recording; spans end under the controller lock.
inline constexpr int kTracerRing = 310;
/// Innermost: locks that never nest around anything (tests, ad-hoc tools).
inline constexpr int kLeaf = 1000;
}  // namespace lock_level

namespace mutex_internal {

#ifndef NDEBUG
/// Debug lock-order checker (mutex.cc). Acquisition checks the new level
/// against every lock the calling thread holds *before* blocking, so an
/// ordering violation reports instead of deadlocking.
void OnAcquire(const void* mu, int level, const char* name);
void OnRelease(const void* mu, const char* name);
#endif

inline void NoteAcquire([[maybe_unused]] const void* mu,
                        [[maybe_unused]] int level,
                        [[maybe_unused]] const char* name) {
#ifndef NDEBUG
  OnAcquire(mu, level, name);
#endif
}

inline void NoteRelease([[maybe_unused]] const void* mu,
                        [[maybe_unused]] const char* name) {
#ifndef NDEBUG
  OnRelease(mu, name);
#endif
}

}  // namespace mutex_internal

/// Exclusive mutex. Constructed with its hierarchy level and a stable name
/// (string literal) used in lock-order violation reports.
class QB_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex(int level, const char* name)
      : level_(level), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QB_ACQUIRE() {
    mutex_internal::NoteAcquire(this, level_, name_);
    mu_.lock();
  }

  void Unlock() QB_RELEASE() {
    mutex_internal::NoteRelease(this, name_);
    mu_.unlock();
  }

  int level() const { return level_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int level_;
  const char* const name_;
};

/// Reader/writer mutex with the same level/name registration. Shared
/// acquisitions obey the same ordering rule as exclusive ones: per-thread
/// levels must strictly increase regardless of mode.
class QB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(int level, const char* name) : level_(level), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QB_ACQUIRE() {
    mutex_internal::NoteAcquire(this, level_, name_);
    mu_.lock();
  }

  void Unlock() QB_RELEASE() {
    mutex_internal::NoteRelease(this, name_);
    mu_.unlock();
  }

  void ReaderLock() QB_ACQUIRE_SHARED() {
    mutex_internal::NoteAcquire(this, level_, name_);
    mu_.lock_shared();
  }

  void ReaderUnlock() QB_RELEASE_SHARED() {
    mutex_internal::NoteRelease(this, name_);
    mu_.unlock_shared();
  }

  /// Bounded-wait shared acquisition for deadline-bounded readers
  /// (DESIGN.md §13): yield-spins on the native try-lock until it succeeds
  /// or `timeout_seconds` of wall time elapses. Returns whether the lock
  /// was acquired; the Debug order checker records the hold only on
  /// success (a failed try acquires nothing). Spinning (vs. a native timed
  /// lock) keeps std::shared_mutex — std::shared_timed_mutex trades fast
  /// uncontended paths for a capability unused everywhere else — and the
  /// yield means a writer mid-critical-section still gets the core.
  bool ReaderTryLockFor(double timeout_seconds)
      QB_TRY_ACQUIRE_SHARED(true) {
    if (mu_.try_lock_shared()) {
      mutex_internal::NoteAcquire(this, level_, name_);
      return true;
    }
    if (timeout_seconds <= 0.0) return false;
    auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    do {
      std::this_thread::yield();
      if (mu_.try_lock_shared()) {
        mutex_internal::NoteAcquire(this, level_, name_);
        return true;
      }
    } while (std::chrono::steady_clock::now() < give_up);
    return false;
  }

  int level() const { return level_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const int level_;
  const char* const name_;
};

/// Condition variable bound to qb5000::Mutex. Wait() requires the mutex
/// held; the wait releases and reacquires the *same* mutex, so the Debug
/// checker's held-lock record is intentionally left in place across the
/// wait (ordering relative to other locks is unchanged on wakeup).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) QB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's Lock()
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// RAII exclusive lock on a Mutex.
class QB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock on a SharedMutex.
class QB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) QB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() QB_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock on a SharedMutex.
class QB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) QB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderLock() QB_RELEASE() { mu_->ReaderUnlock(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock with a bounded wait: tries for `timeout_seconds`, then
/// gives up. `held()` reports the outcome; the destructor releases only on
/// a successful acquisition. Like the Maybe guards below, it is annotated
/// as if it always acquires — the Abseil MutexLockMaybe contract — because
/// the analysis has no conditional-capability vocabulary; callers on the
/// !held() branch must confine themselves to state the capability does not
/// actually guard (the degraded-rung path reads only its own snapshot).
class QB_SCOPED_CAPABILITY TimedReaderLock {
 public:
  TimedReaderLock(SharedMutex* mu, double timeout_seconds)
      QB_ACQUIRE_SHARED(mu)
      : mu_(mu), held_(mu->ReaderTryLockFor(timeout_seconds)) {}
  ~TimedReaderLock() QB_RELEASE() {
    if (held_) mu_->ReaderUnlock();
  }

  /// Whether the shared lock was actually acquired.
  bool held() const { return held_; }

  TimedReaderLock(const TimedReaderLock&) = delete;
  TimedReaderLock& operator=(const TimedReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
  const bool held_;
};

/// Like WriterLock, but `mu == nullptr` locks nothing — for call protocols
/// where a standalone component may run without an owning controller lock
/// (PreProcessor::IngestBatch). Annotated as if it always acquires, the
/// same contract Abseil's MutexLockMaybe uses: the analysis checks callers
/// against the annotation and nullptr callers simply pass no capability.
class QB_SCOPED_CAPABILITY WriterLockMaybe {
 public:
  explicit WriterLockMaybe(SharedMutex* mu) QB_ACQUIRE(mu) : mu_(mu) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~WriterLockMaybe() QB_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  WriterLockMaybe(const WriterLockMaybe&) = delete;
  WriterLockMaybe& operator=(const WriterLockMaybe&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Shared counterpart of WriterLockMaybe.
class QB_SCOPED_CAPABILITY ReaderLockMaybe {
 public:
  explicit ReaderLockMaybe(SharedMutex* mu) QB_ACQUIRE_SHARED(mu) : mu_(mu) {
    if (mu_ != nullptr) mu_->ReaderLock();
  }
  ~ReaderLockMaybe() QB_RELEASE() {
    if (mu_ != nullptr) mu_->ReaderUnlock();
  }

  ReaderLockMaybe(const ReaderLockMaybe&) = delete;
  ReaderLockMaybe& operator=(const ReaderLockMaybe&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace qb5000

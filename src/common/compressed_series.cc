#include "common/compressed_series.h"

#include <algorithm>
#include <istream>
#include <ostream>

namespace qb5000 {

size_t CompressedSeries::StoredBuckets() const {
  size_t n = 0;
  for (const Run& run : runs_) n += run.size();
  return n;
}

size_t CompressedSeries::HeapBytes() const {
  size_t bytes = runs_.capacity() * sizeof(Run);
  for (const Run& run : runs_) {
    bytes += run.narrow.capacity() * sizeof(uint16_t);
    bytes += run.values.capacity() * sizeof(double);
  }
  return bytes;
}

void CompressedSeries::Promote(Run& run) {
  if (run.wide) return;
  run.values.assign(run.narrow.begin(), run.narrow.end());
  std::vector<uint16_t>().swap(run.narrow);
  run.wide = true;
}

void CompressedSeries::AppendBucket(Run& run, size_t zeros, double v) {
  if (!run.wide && !IsNarrow(v)) Promote(run);
  if (run.wide) {
    run.values.insert(run.values.end(), zeros, 0.0);
    run.values.push_back(v);
  } else {
    run.narrow.insert(run.narrow.end(), zeros, 0);
    run.narrow.push_back(static_cast<uint16_t>(v));
  }
}

CompressedSeries::Run CompressedSeries::MakeRun(Timestamp start, double v) {
  Run run;
  run.start = start;
  AppendBucket(run, 0, v);
  return run;
}

void CompressedSeries::Add(Timestamp ts, double count) {
  Timestamp t = AlignDown(ts, interval_seconds_);
  if (runs_.empty()) {
    // Mirrors TimeSeries: the first Add of an empty series resets start.
    start_ = t;
    end_ = t + interval_seconds_;
    runs_.push_back(MakeRun(t, count));
    return;
  }
  if (t < start_) start_ = t;
  if (t + interval_seconds_ > end_) end_ = t + interval_seconds_;

  // Last run with run.start <= t (upper_bound gives the first run after t).
  auto next = std::upper_bound(
      runs_.begin(), runs_.end(), t,
      [](Timestamp lhs, const Run& run) { return lhs < run.start; });
  Run* prev = next == runs_.begin() ? nullptr : &*std::prev(next);
  size_t gap_prev = 0;
  if (prev != nullptr) {
    size_t index = static_cast<size_t>((t - prev->start) / interval_seconds_);
    if (index < prev->size()) {
      // Accumulate in place. The sum is checked in double precision first
      // so the narrow packing never rounds: if it fits uint16 it is exact,
      // and if not the run is promoted and keeps the double sum
      // bit-for-bit.
      if (prev->wide) {
        prev->values[index] += count;
      } else {
        double sum = static_cast<double>(prev->narrow[index]) + count;
        if (IsNarrow(sum)) {
          prev->narrow[index] = static_cast<uint16_t>(sum);
        } else {
          Promote(*prev);
          prev->values[index] += count;
        }
      }
      return;
    }
    gap_prev = index - prev->size();
  }
  size_t gap_next = 0;
  if (next != runs_.end()) {
    gap_next =
        static_cast<size_t>((next->start - t) / interval_seconds_) - 1;
  }
  // The canonical-structure invariant (see the class comment): a bucket
  // within kMaxGapFill of a neighboring run joins it (zero-filling the
  // gap), and a bucket that bridges two runs merges them — so the final
  // run layout depends only on WHICH buckets were recorded, never on the
  // order the records arrived in. Batched and per-query ingest therefore
  // produce byte-identical encodings.
  bool merge_prev = prev != nullptr && gap_prev <= kMaxGapFill;
  bool merge_next = next != runs_.end() && gap_next <= kMaxGapFill;
  if (merge_prev) {
    AppendBucket(*prev, gap_prev, count);
    if (merge_next) {
      // Bridge: fold the following run (gap zeros + its buckets) into prev.
      Run& nrun = *next;
      if (nrun.wide && !prev->wide) Promote(*prev);
      if (prev->wide) {
        prev->values.insert(prev->values.end(), gap_next, 0.0);
        if (nrun.wide) {
          prev->values.insert(prev->values.end(), nrun.values.begin(),
                              nrun.values.end());
        } else {
          prev->values.insert(prev->values.end(), nrun.narrow.begin(),
                              nrun.narrow.end());
        }
      } else {
        prev->narrow.insert(prev->narrow.end(), gap_next, 0);
        prev->narrow.insert(prev->narrow.end(), nrun.narrow.begin(),
                            nrun.narrow.end());
      }
      runs_.erase(next);
    }
    return;
  }
  if (merge_next) {
    // Prepend: the bucket (plus gap zeros) joins the front of the next run.
    Run& nrun = *next;
    if (!nrun.wide && !IsNarrow(count)) Promote(nrun);
    if (nrun.wide) {
      nrun.values.insert(nrun.values.begin(), gap_next, 0.0);
      nrun.values.insert(nrun.values.begin(), count);
    } else {
      nrun.narrow.insert(nrun.narrow.begin(), gap_next, 0);
      nrun.narrow.insert(nrun.narrow.begin(), static_cast<uint16_t>(count));
    }
    nrun.start = t;
    return;
  }
  runs_.insert(next, MakeRun(t, count));
}

double CompressedSeries::ValueAt(Timestamp ts) const {
  if (runs_.empty() || ts < start_ || ts >= end_) return 0.0;
  Timestamp t = AlignDown(ts, interval_seconds_);
  auto next = std::upper_bound(
      runs_.begin(), runs_.end(), t,
      [](Timestamp lhs, const Run& run) { return lhs < run.start; });
  if (next == runs_.begin()) return 0.0;
  const Run& run = *std::prev(next);
  size_t index = static_cast<size_t>((t - run.start) / interval_seconds_);
  return index < run.size() ? run.At(index) : 0.0;
}

double CompressedSeries::Total() const {
  double total = 0.0;
  ForEach([&total](Timestamp, double v) { total += v; });
  return total;
}

void CompressedSeries::Write(std::ostream& out) const {
  out << start_ << ' ' << interval_seconds_ << ' ' << runs_.size() << '\n';
  for (const Run& run : runs_) {
    size_t n = run.size();
    out << run.start << ' ' << n << ' ' << (run.wide ? 1 : 0) << '\n';
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out << ' ';
      if (run.wide) {
        out << run.values[i];
      } else {
        out << run.narrow[i];
      }
    }
    out << '\n';
  }
}

Result<CompressedSeries> CompressedSeries::Read(std::istream& in) {
  Timestamp start = 0;
  int64_t interval = 0;
  size_t num_runs = 0;
  if (!(in >> start >> interval >> num_runs)) {
    return Status::ParseError("bad compressed series header");
  }
  if (interval <= 0) return Status::ParseError("bad compressed series interval");
  CompressedSeries series(start, interval);
  Timestamp prev_end = std::numeric_limits<Timestamp>::min();
  for (size_t r = 0; r < num_runs; ++r) {
    Timestamp run_start = 0;
    size_t n = 0;
    int wide = 0;
    if (!(in >> run_start >> n >> wide) || (wide != 0 && wide != 1)) {
      return Status::ParseError("bad compressed run header");
    }
    if (n == 0) return Status::ParseError("empty compressed run");
    if (run_start < prev_end) {
      return Status::ParseError("overlapping compressed runs");
    }
    Run run;
    run.start = run_start;
    run.wide = wide == 1;
    if (run.wide) {
      run.values.resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (!(in >> run.values[i])) {
          return Status::ParseError("truncated compressed run");
        }
      }
    } else {
      run.narrow.resize(n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t v = 0;
        if (!(in >> v) || v > 65535) {
          return Status::ParseError("bad narrow bucket");
        }
        run.narrow[i] = static_cast<uint16_t>(v);
      }
    }
    prev_end = run_start + static_cast<int64_t>(n) * interval;
    series.runs_.push_back(std::move(run));
  }
  if (!series.runs_.empty()) {
    series.start_ = series.runs_.front().start;
    series.end_ = series.runs_.back().start +
                  static_cast<int64_t>(series.runs_.back().size()) * interval;
  }
  return series;
}

}  // namespace qb5000

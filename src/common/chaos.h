#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"

namespace qb5000 {

/// Deterministic runtime fault injection (DESIGN.md §13) — the in-process
/// sibling of FaultInjectingEnv (common/io.h), which covers only the
/// filesystem seam. Production code is instrumented with named *probe
/// sites*; tests arm a fault (kind, site, N-th probe) and the N-th matching
/// probe fires it. Replaying the same call sequence with the same armed
/// fault reproduces the same failure, which is what makes the chaos sweep
/// in tests/chaos_test.cc a regression test rather than a flake generator.
///
/// Fault taxonomy:
///   kNanGradient  the probing optimizer step receives a NaN gradient
///                 (diverged training); the health gate must catch the
///                 poisoned model and roll back.
///   kStall        the probing stage sleeps for the armed duration
///                 (stuck I/O, page-cache miss storm, noisy neighbor);
///                 deadline-bounded callers must degrade, not block. The
///                 `service.drain` site wedges the background queue drain:
///                 the ring must absorb producers and EnqueueBatch must
///                 shed with kOverloaded, never block.
///   kAllocFail    the probing stage fails as if an allocation was denied;
///                 callers must surface a Status, never crash. The
///                 `checkpoint.delta` site denies the delta-serialization
///                 buffer: the write fails Internal, the in-memory delta
///                 log survives, and the next period retries.
///   kClockJump    the probed timestamp is shifted by the armed delta
///                 (NTP step, VM migration) — timestamps are virtual here,
///                 so this is how a clock step reaches production code
///                 through its real entry points.
///
/// Probes are free when nothing is armed: one relaxed atomic load. The
/// armed-state mutex is leaf-level, so probes are legal under any lock in
/// the hierarchy (notably the controller state lock during maintenance).
class ChaosHarness {
 public:
  enum class OpKind { kNanGradient, kStall, kAllocFail, kClockJump };

  /// The process-wide harness. Production hook sites probe this instance;
  /// tests arm it and Reset() in teardown.
  static ChaosHarness& Global();

  ChaosHarness() = default;
  ChaosHarness(const ChaosHarness&) = delete;
  ChaosHarness& operator=(const ChaosHarness&) = delete;

  /// Arms `kind` at `site` to fire on the `nth` (0-based) matching probe
  /// after this call. `param` carries the fault's magnitude: stall seconds
  /// for kStall, the timestamp delta (seconds) for kClockJump; unused
  /// otherwise. Each Arm() adds an independent one-shot fault; arming the
  /// same (kind, site) twice fires twice.
  void Arm(OpKind kind, std::string_view site, int64_t nth,
           double param = 0.0);

  /// Disarms every fault and zeroes all probe/fire counters.
  void Reset();

  /// Probe: true iff an armed kNanGradient fault fires at this site — the
  /// caller poisons its gradient buffer. (The harness cannot reach into the
  /// caller's buffers; the hook applies the fault so the poison lands in
  /// the real data path.)
  bool PoisonGradient(std::string_view site) {
    return Fire(OpKind::kNanGradient, site);
  }

  /// Probe: sleeps for the armed duration if a kStall fault fires. The
  /// sleep yields the CPU (plain sleep_for), so single-core hosts still
  /// make progress on other threads, and `stall_active()` is observable
  /// for the whole stall so tests can synchronize without timing guesses.
  void MaybeStall(std::string_view site);

  /// Probe: true iff an armed kAllocFail fault fires — the caller reports
  /// an allocation/resource failure through its normal Status path.
  bool FailAlloc(std::string_view site) {
    return Fire(OpKind::kAllocFail, site);
  }

  /// Probe: returns `now` shifted by the armed delta if a kClockJump fault
  /// fires at this site, else `now` unchanged.
  Timestamp MaybeJumpClock(std::string_view site, Timestamp now);

  /// True while some thread is inside an armed stall. Tests use this to
  /// start load exactly when the victim stage is wedged.
  bool stall_active() const {
    return stalls_active_.load(std::memory_order_acquire) > 0;
  }

  /// Faults fired since the last Reset().
  int64_t fires_total() const {
    return fires_total_.load(std::memory_order_relaxed);
  }

 private:
  struct ArmedFault {
    OpKind kind;
    std::string site;
    int64_t fire_at = 0;  ///< probe index (per fault) that fires it
    int64_t probes = 0;   ///< matching probes seen so far
    double param = 0.0;
    bool fired = false;
  };

  /// Counts a probe against every live matching fault; true iff this probe
  /// fires one (at most one — faults fire in Arm() order). `param` (if
  /// non-null) receives the fired fault's magnitude.
  bool Fire(OpKind kind, std::string_view site, double* param = nullptr);

  /// Fast-path gate: false ⇒ no fault armed anywhere, probes return
  /// immediately without touching the mutex.
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> fires_total_{0};
  std::atomic<int> stalls_active_{0};

  mutable Mutex mu_{lock_level::kLeaf, "chaos.armed"};
  std::vector<ArmedFault> faults_ QB_GUARDED_BY(mu_);
};

}  // namespace qb5000

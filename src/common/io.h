#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qb5000 {

/// CRC32 (IEEE polynomial, the zlib/`crc32` variant) over `data`, continuing
/// from `crc` so large payloads can be checksummed incrementally. Call with
/// the default seed for a fresh checksum.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// A sequential-write file handle. All durability-critical writes in this
/// codebase go through this interface (enforced by tools/qb_lint.py) so that
/// error handling, fsync, and fault injection have a single seam.
///
/// Every method reports failure through Status — including Close(), which is
/// where deferred write errors (disk full on flush) surface on many
/// filesystems. Destroying an unclosed file closes it best-effort and drops
/// the error; call Close() explicitly on paths that must be durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Pushes user-space buffers to the OS.
  virtual Status Flush() = 0;
  /// Forces OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A whole-file reader. Checkpoints are read in one shot and validated in
/// memory, so a streaming interface buys nothing.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;
  virtual Result<std::string> ReadAll() = 0;
};

/// A positional reader for files that keep growing while being read — the
/// history spill store reads one cold record at a time out of a file the
/// same process is still appending to. Read() is const and thread-safe
/// (pread under the POSIX env), so read-throughs can run under a shared
/// lock while no writer holds the exclusive lock.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes starting at `offset`. Fewer bytes than requested
  /// (including zero at EOF) is not an error; callers check the length.
  virtual Result<std::string> Read(uint64_t offset, size_t n) const = 0;
};

/// The filesystem seam. Production code uses Env::Default() (POSIX, binary
/// mode, real fsync); tests wrap it in a FaultInjectingEnv to make crashes,
/// torn writes, and bit rot deterministic and reproducible.
class Env {
 public:
  virtual ~Env() = default;
  /// Opens `path` for writing, truncating any existing file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) = 0;
  /// Opens `path` for positional reads. The base implementation is a
  /// correct-but-slow fallback (each Read re-reads the whole file through
  /// NewReadableFile), so custom test envs keep working unchanged; the
  /// POSIX env overrides it with pread(2).
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path);
  /// Atomically renames `from` onto `to` (POSIX rename(2) semantics:
  /// `to` is replaced as a single atomic step; no window where it is torn).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Reads all of `path` into a string. `env == nullptr` means Env::Default().
Result<std::string> ReadFileToString(Env* env, const std::string& path);

/// Writes `data` to `path` non-atomically (open, append, flush, close).
/// For durable state use AtomicFileWriter instead; this is for artifacts
/// where a torn file is acceptable (traces, reports).
Status WriteStringToFile(Env* env, std::string_view data,
                         const std::string& path);

/// Crash-safe file replacement: writes to `<path>.tmp`, then on Commit()
/// flushes, fsyncs, rotates any existing `<path>` to `<path>.bak`, and
/// renames the temp file into place. The previous checkpoint is never
/// written to in place, so after a crash at *any* intermediate step the
/// reader finds either the old complete file (at `path` or `path.bak`) or
/// the new complete file — never a half-written one.
///
/// Errors are sticky: the first failing operation poisons the writer and
/// Commit() reports it. Destruction without Commit() deletes the temp file
/// best-effort and leaves `path` untouched.
class AtomicFileWriter {
 public:
  /// `env == nullptr` means Env::Default().
  AtomicFileWriter(Env* env, std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  Status Append(std::string_view data);

  /// Flush + fsync + close the temp file, rotate the previous file to
  /// `.bak`, and rename the temp file onto `path`. Returns the first error
  /// encountered anywhere in the write sequence.
  Status Commit();

  const std::string& path() const { return path_; }

  static std::string TempPath(const std::string& path) { return path + ".tmp"; }
  static std::string BackupPath(const std::string& path) {
    return path + ".bak";
  }

 private:
  Env* env_;
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<WritableFile> file_;
  Status first_error_;
  bool committed_ = false;
};

/// Deterministic filesystem fault injection for tests. Wraps a base Env and
/// counts every *mutating* operation (open-for-write, append, flush, sync,
/// close, rename, delete) in program order; reads are never counted and
/// never fail. A single fault is armed at an absolute op index:
///
///   kCrash     the N-th op does not happen and fails, and every later
///              mutating op fails too — the process "died" at that point.
///   kTornWrite like kCrash, but if the N-th op is an Append only a prefix
///              of the data reaches the file before the crash.
///   kBitFlip   the N-th op, if an Append, has one bit of its payload
///              flipped and then *succeeds silently* — latent media
///              corruption that only a checksum can catch.
///
/// Replaying the same op sequence with the same armed fault reproduces the
/// same failure byte-for-byte, which is what makes crash-at-every-op
/// sweeps possible (tests/checkpoint_test.cc).
class FaultInjectingEnv : public Env {
 public:
  enum class FaultKind { kNone, kCrash, kTornWrite, kBitFlip };

  /// `base == nullptr` means Env::Default().
  explicit FaultInjectingEnv(Env* base);

  /// Arms `kind` to fire on the op with absolute index `op_index`
  /// (0-based, counted from the last Reset()).
  void InjectFault(FaultKind kind, int64_t op_index);

  /// Disarms the fault, clears the crashed flag, and zeroes the op counter.
  void Reset();

  /// Mutating ops issued since the last Reset() (including failed ones).
  int64_t ops_issued() const { return ops_issued_; }
  /// True once a kCrash/kTornWrite fault has fired.
  bool crashed() const { return crashed_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  /// Advances the op counter and decides this op's fate.
  enum class OpFate { kProceed, kFail, kTear, kFlip };
  OpFate NextOp();

  Env* base_;
  FaultKind kind_ = FaultKind::kNone;
  int64_t fault_index_ = -1;
  int64_t ops_issued_ = 0;
  bool crashed_ = false;
};

}  // namespace qb5000

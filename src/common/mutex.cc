#include "common/mutex.h"

#ifndef NDEBUG

#include <cstddef>
#include <string>

#include "common/check.h"

namespace qb5000::mutex_internal {

namespace {

struct HeldLock {
  const void* mu;
  int level;
  const char* name;
};

// Per-thread stack of currently held locks, in acquisition order. Fixed
// capacity so the record is *trivially destructible*: thread-local
// destructors run before static destructors, and the process-global pool
// locks its mutexes from a static destructor at exit — a std::vector here
// would be a use-after-destroy at that point. Depth 8 is far beyond the
// hierarchy's deepest real nesting (3).
constexpr size_t kMaxHeldLocks = 8;

struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  size_t count;
};

thread_local constinit HeldStack held_stack{};

}  // namespace

void OnAcquire(const void* mu, int level, const char* name) {
  HeldStack& held = held_stack;
  for (size_t i = 0; i < held.count; ++i) {
    const HeldLock& h = held.locks[i];
    // Strictly increasing: an equal level is also an error, since two locks
    // at the same level have no defined order (and h.mu == mu would be a
    // self-deadlock for Mutex, UB for recursive SharedMutex use).
    if (h.level >= level) {
      std::string detail = std::string("acquiring \"") + name + "\" (level " +
                           std::to_string(level) + ") while holding \"" +
                           h.name + "\" (level " + std::to_string(h.level) +
                           ")";
      check_internal::CheckFailed(__FILE__, __LINE__, "lock hierarchy order",
                                  detail);
    }
  }
  if (held.count == kMaxHeldLocks) {
    check_internal::CheckFailed(__FILE__, __LINE__, "lock hierarchy depth",
                                std::string("acquiring \"") + name +
                                    "\" would exceed the held-lock record");
  }
  // Recorded before the blocking lock() call: if the acquisition deadlocks
  // anyway (a bug this checker cannot see, e.g. cross-process), the record
  // still names the lock in a debugger.
  held.locks[held.count++] = HeldLock{mu, level, name};
}

void OnRelease(const void* mu, const char* name) {
  HeldStack& held = held_stack;
  // Scan from the top: releases are almost always LIFO, but out-of-order
  // release (hand-over-hand) is legal and must not confuse the record.
  for (size_t i = held.count; i-- > 0;) {
    if (held.locks[i].mu == mu) {
      for (size_t j = i + 1; j < held.count; ++j) {
        held.locks[j - 1] = held.locks[j];
      }
      --held.count;
      return;
    }
  }
  check_internal::CheckFailed(__FILE__, __LINE__, "lock release bookkeeping",
                              std::string("releasing \"") + name +
                                  "\" which this thread does not hold");
}

}  // namespace qb5000::mutex_internal

#else  // NDEBUG

// Release builds compile the checker out; this TU is intentionally empty.
// (A non-empty namespace keeps some linkers from warning about an empty
// object file.)
namespace qb5000::mutex_internal {
[[maybe_unused]] const int kCheckerCompiledOut = 1;
}  // namespace qb5000::mutex_internal

#endif  // NDEBUG

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qb5000 {

/// ASCII-only lowercase copy (SQL keywords are ASCII).
std::string ToLower(std::string_view s);

/// ASCII-only uppercase copy.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace qb5000

#include "common/io.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <system_error>
#include <unistd.h>

namespace qb5000 {

uint32_t Crc32(std::string_view data, uint32_t crc) {
  // Table for the reflected IEEE polynomial 0xEDB88320, built once.
  static const auto kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  // Not strerror(): its static buffer is a data race when two I/O paths fail
  // concurrently (clang-tidy concurrency-mt-unsafe). error_code::message()
  // renders the same text into a private string.
  std::error_code ec(errno, std::generic_category());
  return Status::IOError(op + " " + path + ": " + ec.message());
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);  // best-effort; error dropped
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IOError("append to closed " + path_);
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write", path_);
    }
    return Status::Ok();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::IOError("flush of closed " + path_);
    if (std::fflush(file_) != 0) return ErrnoStatus("flush", path_);
    return Status::Ok();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IOError("sync of closed " + path_);
    if (std::fflush(file_) != 0) return ErrnoStatus("flush", path_);
    if (::fsync(::fileno(file_)) != 0) return ErrnoStatus("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::Ok();
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) return ErrnoStatus("close", path_);
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixReadableFile : public ReadableFile {
 public:
  explicit PosixReadableFile(std::string path) : path_(std::move(path)) {}

  Result<std::string> ReadAll() override {
    std::FILE* file = std::fopen(path_.c_str(), "rb");
    if (file == nullptr) {
      return errno == ENOENT ? Status::NotFound("cannot open " + path_)
                             : ErrnoStatus("open", path_);
    }
    std::string data;
    char buffer[1 << 16];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      data.append(buffer, got);
    }
    bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) return ErrnoStatus("read", path_);
    return data;
  }

 private:
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::string> Read(uint64_t offset, size_t n) const override {
    std::string data(n, '\0');
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, data.data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_);
      }
      if (r == 0) break;  // EOF: short read, caller checks length
      got += static_cast<size_t>(r);
    }
    data.resize(got);
    return data;
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(file, path));
  }

  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override {
    // Open lazily in ReadAll(); existence is still checked here so callers
    // get NotFound at open time like they would with a real handle.
    if (!FileExists(path)) return Status::NotFound("cannot open " + path);
    return std::unique_ptr<ReadableFile>(
        std::make_unique<PosixReadableFile>(path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd < 0) {
      return errno == ENOENT ? Status::NotFound("cannot open " + path)
                             : ErrnoStatus("open", path);
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return ErrnoStatus("delete", path);
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

Env* Resolve(Env* env) { return env != nullptr ? env : Env::Default(); }

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

namespace {

/// The correctness fallback behind Env::NewRandomAccessFile: every Read
/// pulls the whole file through the env's own NewReadableFile and slices
/// out the requested range. Slow, but it means Env subclasses that only
/// implement the sequential interfaces keep working.
class WholeFileRandomAccessFile : public RandomAccessFile {
 public:
  WholeFileRandomAccessFile(Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Result<std::string> Read(uint64_t offset, size_t n) const override {
    auto file = env_->NewReadableFile(path_);
    if (!file.ok()) return file.status();
    auto data = (*file)->ReadAll();
    if (!data.ok()) return data.status();
    if (offset >= data->size()) return std::string();
    return data->substr(offset, n);
  }

 private:
  Env* env_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> Env::NewRandomAccessFile(
    const std::string& path) {
  if (!FileExists(path)) return Status::NotFound("cannot open " + path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<WholeFileRandomAccessFile>(this, path));
}

Result<std::string> ReadFileToString(Env* env, const std::string& path) {
  auto file = Resolve(env)->NewReadableFile(path);
  if (!file.ok()) return file.status();
  return (*file)->ReadAll();
}

Status WriteStringToFile(Env* env, std::string_view data,
                         const std::string& path) {
  auto file = Resolve(env)->NewWritableFile(path);
  if (!file.ok()) return file.status();
  Status st = (*file)->Append(data);
  if (st.ok()) st = (*file)->Flush();
  Status close = (*file)->Close();
  return st.ok() ? close : st;
}

// --- AtomicFileWriter -------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(Env* env, std::string path)
    : env_(Resolve(env)), path_(std::move(path)), tmp_path_(TempPath(path_)) {
  auto file = env_->NewWritableFile(tmp_path_);
  if (file.ok()) {
    file_ = std::move(*file);
  } else {
    first_error_ = file.status();
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  file_.reset();  // close before unlink so Windows-style envs could work too
  if (env_->FileExists(tmp_path_)) {
    (void)env_->DeleteFile(tmp_path_).ok();  // best-effort cleanup
  }
}

Status AtomicFileWriter::Append(std::string_view data) {
  if (!first_error_.ok()) return first_error_;
  Status st = file_->Append(data);
  if (!st.ok()) first_error_ = st;
  return st;
}

Status AtomicFileWriter::Commit() {
  if (committed_) return Status::Internal("Commit() called twice");
  if (first_error_.ok()) {
    // Flush + fsync + close the temp file: the new bytes must be durable
    // *before* any rename makes them reachable, or a crash could leave the
    // target pointing at data the disk never received.
    Status st = file_->Sync();
    if (st.ok()) st = file_->Close();
    if (!st.ok()) first_error_ = st;
  }
  if (first_error_.ok() && env_->FileExists(path_)) {
    // Rotate the previous complete file out of the way instead of
    // overwriting it: until the final rename lands, a reader can still
    // recover it from `.bak`.
    Status st = env_->RenameFile(path_, BackupPath(path_));
    if (!st.ok()) first_error_ = st;
  }
  if (first_error_.ok()) {
    Status st = env_->RenameFile(tmp_path_, path_);
    if (!st.ok()) first_error_ = st;
  }
  if (!first_error_.ok()) {
    file_.reset();
    if (env_->FileExists(tmp_path_)) (void)env_->DeleteFile(tmp_path_).ok();
  }
  committed_ = first_error_.ok();
  return first_error_;
}

// --- FaultInjectingEnv ------------------------------------------------------

/// Counts its operations through the owning env; applies the armed fault.
/// Deliberately outside the anonymous namespace: it is the friend the env
/// grants NextOp() access to.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingEnv* env,
                             std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(Resolve(base)) {}

void FaultInjectingEnv::InjectFault(FaultKind kind, int64_t op_index) {
  kind_ = kind;
  fault_index_ = op_index;
}

void FaultInjectingEnv::Reset() {
  kind_ = FaultKind::kNone;
  fault_index_ = -1;
  ops_issued_ = 0;
  crashed_ = false;
}

FaultInjectingEnv::OpFate FaultInjectingEnv::NextOp() {
  int64_t index = ops_issued_++;
  if (crashed_) return OpFate::kFail;
  if (index != fault_index_) return OpFate::kProceed;
  switch (kind_) {
    case FaultKind::kCrash:
      crashed_ = true;
      return OpFate::kFail;
    case FaultKind::kTornWrite:
      crashed_ = true;
      return OpFate::kTear;
    case FaultKind::kBitFlip:
      return OpFate::kFlip;
    case FaultKind::kNone:
      break;
  }
  return OpFate::kProceed;
}

Status FaultInjectingWritableFile::Append(std::string_view data) {
  switch (env_->NextOp()) {
    case FaultInjectingEnv::OpFate::kFail:
      return Status::IOError("injected crash");
    case FaultInjectingEnv::OpFate::kTear: {
      // Half the payload reaches the file, then the "process dies".
      (void)base_->Append(data.substr(0, data.size() / 2)).ok();
      (void)base_->Flush().ok();
      return Status::IOError("injected torn write");
    }
    case FaultInjectingEnv::OpFate::kFlip: {
      std::string flipped(data);
      if (!flipped.empty()) flipped[flipped.size() / 2] ^= 0x10;
      return base_->Append(flipped);  // silent corruption: reports success
    }
    case FaultInjectingEnv::OpFate::kProceed:
      break;
  }
  return base_->Append(data);
}

Status FaultInjectingWritableFile::Flush() {
  if (env_->NextOp() != FaultInjectingEnv::OpFate::kProceed) {
    return Status::IOError("injected crash");
  }
  return base_->Flush();
}

Status FaultInjectingWritableFile::Sync() {
  if (env_->NextOp() != FaultInjectingEnv::OpFate::kProceed) {
    return Status::IOError("injected crash");
  }
  return base_->Sync();
}

Status FaultInjectingWritableFile::Close() {
  if (env_->NextOp() != FaultInjectingEnv::OpFate::kProceed) {
    return Status::IOError("injected crash");
  }
  return base_->Close();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  if (NextOp() != OpFate::kProceed) return Status::IOError("injected crash");
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingWritableFile>(this, std::move(*base)));
}

Result<std::unique_ptr<ReadableFile>> FaultInjectingEnv::NewReadableFile(
    const std::string& path) {
  return base_->NewReadableFile(path);  // reads are never faulted
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectingEnv::NewRandomAccessFile(
    const std::string& path) {
  return base_->NewRandomAccessFile(path);  // reads are never faulted
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (NextOp() != OpFate::kProceed) return Status::IOError("injected crash");
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  if (NextOp() != OpFate::kProceed) return Status::IOError("injected crash");
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace qb5000

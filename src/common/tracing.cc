#include "common/tracing.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/metrics.h"

namespace qb5000 {
namespace {

/// Innermost live span id on this thread (0 = none). One variable serves
/// every tracer: a thread is inside at most one span stack at a time.
thread_local uint64_t tls_current_span = 0;

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void Tracer::SetSink(SpanSink* sink) {
  MutexLock lock(&mu_);
  sink_ = sink;
}

uint64_t Tracer::NextSpanId() {
  MutexLock lock(&mu_);
  return next_id_++;
}

double Tracer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Tracer::Record(SpanRecord span) {
  MutexLock lock(&mu_);
  if (sink_ != nullptr) sink_->OnSpanEnd(span);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[(total_ - ring_base_) % capacity_] = std::move(span);
  }
  ++total_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  uint64_t live = total_ - ring_base_;
  if (ring_.size() < capacity_ || live % capacity_ == 0) {
    return ring_;  // not yet wrapped (or wrapped an exact multiple): in order
  }
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  size_t oldest = live % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(oldest),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(oldest));
  return out;
}

uint64_t Tracer::total_spans() const {
  MutexLock lock(&mu_);
  return total_;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  ring_base_ = total_;  // lifetime total keeps counting
}

std::string Tracer::ExportJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"spans\":[";
  char buf[160];
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"id\":%llu,\"parent\":%llu,"
                  "\"start_s\":%.9f,\"dur_s\":%.9f}",
                  spans[i].name.c_str(),
                  static_cast<unsigned long long>(spans[i].id),
                  static_cast<unsigned long long>(spans[i].parent_id),
                  spans[i].start_seconds, spans[i].duration_seconds);
    out += buf;
  }
  out += "]}";
  return out;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name)
    : tracer_(kMetricsEnabled ? tracer : nullptr), name_(std::move(name)) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->NextSpanId();
  parent_id_ = tls_current_span;
  tls_current_span = id_;
  start_seconds_ = tracer_->Now();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  SpanRecord span;
  span.name = std::move(name_);
  span.id = id_;
  span.parent_id = parent_id_;
  span.start_seconds = start_seconds_;
  span.duration_seconds = tracer_->Now() - start_seconds_;
  tls_current_span = parent_id_;
  tracer_->Record(std::move(span));
}

}  // namespace qb5000

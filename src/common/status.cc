#include "common/status.h"

namespace qb5000 {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qb5000

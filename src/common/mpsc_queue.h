#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace qb5000 {

/// Bounded lock-free multi-producer queue (DESIGN.md §14) — the ingest seam
/// of the always-on service: producers hand off arrival chunks without ever
/// touching the controller state lock, and the background service thread
/// drains them at its own pace. The design is the classic bounded MPMC ring
/// (Vyukov): each cell carries a sequence number; a producer claims a cell
/// by CAS-advancing the tail, fills it, and publishes with a release store
/// of the cell sequence; the consumer observes the sequence with an acquire
/// load, takes the value, and recycles the cell for the next lap.
///
/// Guarantees and limits, deliberately minimal:
///   - TryPush is safe from any number of threads; TryPop from one consumer
///     at a time (the service thread — the implementation would allow MPMC,
///     but nothing in the codebase needs it and the single-consumer contract
///     keeps drain ordering trivial to reason about).
///   - Fixed capacity, rounded up to a power of two. A full ring rejects the
///     push (caller applies backpressure); nothing blocks, nothing allocates
///     after construction.
///   - FIFO per producer; the interleaving across producers is whatever the
///     CAS race produced, which is the same contract batched ingest already
///     has across shards.
///
/// std::atomic is banned outside src/common/ (tools/qb_lint.py raw-atomic);
/// this header is the reviewed primitive that the rest of the codebase uses
/// instead of hand-rolled fences.
template <typename T>
class MpscRingQueue {
 public:
  /// `min_capacity` is rounded up to the next power of two (>= 2). The ring
  /// allocates once, here, and never again.
  explicit MpscRingQueue(size_t min_capacity) : mask_(0) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRingQueue(const MpscRingQueue&) = delete;
  MpscRingQueue& operator=(const MpscRingQueue&) = delete;

  /// Multi-producer enqueue. False ⇒ the ring is full and the value is left
  /// untouched in `value`; the caller decides whether to retry, shed, or
  /// surface backpressure.
  bool TryPush(T&& value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        // Cell is free this lap; race other producers for it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry with the new tail.
      } else if (diff < 0) {
        return false;  // full: the cell still holds last lap's value
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue. False ⇒ empty (or the next cell's producer has
  /// claimed but not yet published — indistinguishable, and both mean "come
  /// back later").
  bool TryPop(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
      return false;
    }
    *out = std::move(cell.value);
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Single-consumer batch claim (the sharded drain's handoff, DESIGN.md
  /// §14): pops up to `max` values into `out` in FIFO order and returns how
  /// many were taken. Equivalent to repeated TryPop — the single-consumer
  /// contract already makes any claimed run contiguous in queue order,
  /// which is the property that lets N prep workers shard a run while the
  /// merge stage preserves pop order exactly.
  size_t TryPopBatch(T* out, size_t max) {
    size_t got = 0;
    while (got < max && TryPop(&out[got])) ++got;
    return got;
  }

  /// Racy size estimate for the depth gauge — exact only when quiescent.
  size_t ApproxSize() const {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence{0};
    T value{};
  };

  // Head and tail live on separate cache lines so producers hammering the
  // tail do not invalidate the consumer's head line on every push.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) size_t mask_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace qb5000

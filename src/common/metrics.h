#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qb5000 {

/// Pipeline self-monitoring (DESIGN.md §10): a lock-cheap registry of named
/// counters, gauges, and bounded-memory histograms. Mutating an instrument is
/// a relaxed atomic op (no lock, no allocation); the registry's shared_mutex
/// is taken only on registration (Get*) and export. Metric names are a
/// stability contract — the golden-trace suite (tests/golden_trace_test.cc)
/// locks down the exported fingerprint, so renaming a metric is a breaking
/// change that requires regenerating the goldens.
///
/// Compile-time kill switch: configuring with -DQB5000_METRICS=OFF defines
/// QB5000_METRICS_DISABLED, which turns every instrument mutation into a
/// no-op (instruments still register and export as zeros). The overhead of
/// the enabled build is measured against that baseline in
/// bench_table4_overhead (EXPERIMENTS.md: <= 3% budget).
#if defined(QB5000_METRICS_DISABLED)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotonically increasing event count. Increments are relaxed atomics:
/// totals are exact (no lost updates) but impose no ordering, which is all a
/// statistic needs. Counter values are deterministic across thread counts
/// whenever the work decomposition is (DESIGN.md §9), which is what lets the
/// golden suite compare them byte-for-byte.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kMetricsEnabled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Restore path only (checkpoint metrics section); not for live code.
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written double (coverage ratio, in-sample MSE, state bytes).
class Gauge {
 public:
  void Set(double v) {
    if constexpr (kMetricsEnabled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

  /// Restore path only (checkpoint metrics section); bypasses the kill
  /// switch so a restored registry round-trips even in a disabled build.
  void Restore(double v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-layout log-scale histogram: 64 buckets whose upper bounds are
/// 1e-9 * 2^i (i = 0..62; the last bucket catches everything above ~4.6e9).
/// For seconds that spans 1 ns to ~146 years, so one layout serves every
/// latency in the pipeline and memory stays bounded at 64 atomics per
/// instrument. Observations are relaxed atomics; `count` totals are exact
/// and deterministic, bucket placement and `sum` depend on measured time.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i`; +inf for the last bucket.
  static double UpperBound(size_t i);
  /// The bucket a value lands in.
  static size_t BucketIndex(double v);

  /// Zeroes all state (registry Reset; atomics are not copy-assignable).
  void Clear();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Elapsed-time measurement without a histogram attached. This is the one
/// sanctioned wrapper around steady_clock for ad-hoc timing (bench report
/// tables, evaluation train_seconds); hand-rolled steady_clock::now() pairs
/// in src/ are banned by tools/qb_lint.py (raw-chrono-timing). Always
/// measures, even in a QB5000_METRICS=OFF build.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer: observes the scope's wall time into `histogram` on
/// destruction. `histogram == nullptr` (or a disabled build) records nothing
/// and skips the clock reads entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (kMetricsEnabled && histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (kMetricsEnabled && histogram_ != nullptr) {
      histogram_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};  ///< set only when armed
};

/// Named-instrument registry. Get* registers on first use and returns a
/// stable pointer (deque storage; instruments are never deleted, so cached
/// pointers stay valid for the registry's lifetime). Lookup takes the mutex
/// shared; only first-registration takes it exclusively — callers on hot
/// paths should cache the pointer once at construction anyway.
///
/// Names use dotted lowercase: `<component>.<what>[_total|_seconds|_bytes]`,
/// with a `.h<seconds>` suffix for per-horizon instruments
/// (e.g. `forecaster.train_seconds.h3600`). See DESIGN.md §10.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  struct ExportOptions {
    /// Emit only counter lines. Counters are the deterministic core: with a
    /// deterministic work decomposition the counter section is byte-identical
    /// across runs and thread counts (golden-suite contract).
    bool counters_only = false;
  };

  /// Deterministic text export: one line per instrument, sorted by name.
  ///   counter <name> <value>
  ///   gauge <name> <value>            (%.9g)
  ///   histogram <name> count=N sum=S buckets=i:n,j:m   (nonzero buckets)
  std::string ExportText(const ExportOptions& options) const;
  std::string ExportText() const { return ExportText(ExportOptions()); }

  /// The same data as a single JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,buckets}}}
  std::string ExportJson() const;

  /// Serializes counters and gauges for the checkpoint `metrics` section.
  /// Histograms are not persisted: their interesting content (latency
  /// distribution) describes the dead process, not the restored one.
  std::string SerializeState() const;

  /// Restores counters/gauges from SerializeState() output, overwriting
  /// instruments of the same name and registering missing ones.
  Status RestoreState(const std::string& data);

  /// Zeroes every registered instrument (golden tests and benchmarks reset
  /// the global registry between measured runs).
  void Reset();

  /// The process-wide registry: the default sink for components that were
  /// not handed an explicit registry (standalone PreProcessor, Database in
  /// the index experiments). QueryBot5000 instances own private registries.
  static MetricsRegistry& Global();

 private:
  mutable SharedMutex mu_{lock_level::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, Counter*> counters_ QB_GUARDED_BY(mu_);
  std::map<std::string, Gauge*> gauges_ QB_GUARDED_BY(mu_);
  std::map<std::string, Histogram*> histograms_ QB_GUARDED_BY(mu_);
  // Instrument storage. deque: stable addresses under growth, so the
  // pointers handed out by Get* outlive any later registration (the maps
  // are guarded; the instruments themselves are internally atomic).
  std::deque<Counter> counter_storage_ QB_GUARDED_BY(mu_);
  std::deque<Gauge> gauge_storage_ QB_GUARDED_BY(mu_);
  std::deque<Histogram> histogram_storage_ QB_GUARDED_BY(mu_);
};

}  // namespace qb5000

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/status.h"

namespace qb5000 {

/// A sparse, run-length-chunked arrival-rate series — the compressed
/// counterpart of TimeSeries used by ArrivalHistory's aggregation rungs.
///
/// Buckets are stored as sorted, non-overlapping *runs* of consecutive
/// buckets. Long stretches of zero buckets between bursts are not stored at
/// all (they become gaps between runs); short zero stretches are stored
/// explicitly so a burst does not fragment into many tiny runs. Within a
/// run, counts that are exactly representable as small non-negative
/// integers (the overwhelmingly common case for arrival counts) are packed
/// as uint16; a run is promoted to doubles only when a bucket is genuinely
/// fractional, negative, or overflows the narrow range.
///
/// The contract that makes the compressed history bit-identical to the
/// dense one: `start()`, `end()`, `empty()`, `ValueAt()`, and ascending
/// iteration over stored buckets (`ForEach*`) observe exactly the same
/// values a dense TimeSeries fed the same `Add` calls would produce —
/// uint16 <-> double conversion is exact, narrow accumulation is checked in
/// double precision first, and gap buckets read as 0.0 which is exact.
///
/// The run layout itself is *canonical*: runs are the connected components
/// of the recorded buckets where two recorded buckets at most kMaxGapFill
/// apart are connected (the gap between them is zero-filled). Add maintains
/// this incrementally — joining, prepending to, or bridging neighboring
/// runs — so the structure (and thus the encoding and the wide/narrow flag,
/// for the non-negative counts this pipeline records) depends only on which
/// buckets were recorded with which totals, never on arrival order. Batched
/// and per-query ingest therefore serialize byte-identically.
class CompressedSeries {
 public:
  CompressedSeries() : interval_seconds_(kSecondsPerMinute) {}
  /// Precondition: interval_seconds > 0. Like TimeSeries, `start` is a
  /// hint that holds while the series is empty; the first Add resets it to
  /// that record's aligned bucket.
  CompressedSeries(Timestamp start, int64_t interval_seconds)
      : start_(start), end_(start), interval_seconds_(interval_seconds) {
    QB_CHECK_GT(interval_seconds_, 0);
  }

  /// Start of the covered range; the constructed hint while empty.
  Timestamp start() const { return start_; }
  /// End of the covered range (exclusive); equals start() while empty.
  Timestamp end() const { return end_; }
  int64_t interval_seconds() const { return interval_seconds_; }
  bool empty() const { return runs_.empty(); }

  /// Number of buckets physically stored (including explicit zeros inside
  /// runs, excluding gap buckets).
  size_t StoredBuckets() const;
  /// Number of runs (diagnostic).
  size_t RunCount() const { return runs_.size(); }

  /// Bytes of heap storage held (vector capacities, narrow packing
  /// included at its real width).
  size_t HeapBytes() const;

  /// Adds `count` arrivals at time `ts`. Mirrors TimeSeries::Add: grows the
  /// covered range forwards or backwards as needed, accumulating into the
  /// bucket containing `ts`.
  void Add(Timestamp ts, double count);

  /// Value of the bucket containing `ts`; 0 outside the covered range and
  /// in gaps.
  double ValueAt(Timestamp ts) const;

  /// Sum of all stored bucket values (gap buckets are zero).
  double Total() const;

  /// Visits every stored bucket as (bucket_start_timestamp, value) in
  /// ascending time order. Gap buckets (implicit zeros) are not visited —
  /// callers that mirror the dense iteration must treat them as 0, which
  /// every consumer in this codebase already does by skipping zeros.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Run& run : runs_) {
      size_t n = run.size();
      for (size_t i = 0; i < n; ++i) {
        fn(run.start + static_cast<int64_t>(i) * interval_seconds_, run.At(i));
      }
    }
  }

  /// ForEach restricted to buckets with start timestamp in [from, to).
  template <typename Fn>
  void ForEachInRange(Timestamp from, Timestamp to, Fn&& fn) const {
    for (const Run& run : runs_) {
      Timestamp run_end =
          run.start + static_cast<int64_t>(run.size()) * interval_seconds_;
      if (run_end <= from) continue;
      if (run.start >= to) break;
      size_t i = 0;
      if (run.start < from) {
        i = static_cast<size_t>((from - run.start + interval_seconds_ - 1) /
                                interval_seconds_);
      }
      size_t n = run.size();
      for (; i < n; ++i) {
        Timestamp t = run.start + static_cast<int64_t>(i) * interval_seconds_;
        if (t >= to) break;
        fn(t, run.At(i));
      }
    }
  }

  /// Text serialization; preserves the run structure exactly, so
  /// Write -> Read -> Write is byte-identical. The stream must already be
  /// set to round-trip precision for doubles.
  void Write(std::ostream& out) const;
  static Result<CompressedSeries> Read(std::istream& in);

 private:
  /// One maximal stretch of stored buckets. `narrow` holds the values
  /// while every bucket is an exact small integer; `values` takes over
  /// (and `narrow` is released) once the run is promoted to wide.
  struct Run {
    Timestamp start = 0;
    bool wide = false;
    std::vector<uint16_t> narrow;
    std::vector<double> values;

    size_t size() const { return wide ? values.size() : narrow.size(); }
    double At(size_t i) const {
      return wide ? values[i] : static_cast<double>(narrow[i]);
    }
  };

  /// True when `v` is exactly representable as a uint16 count.
  static bool IsNarrow(double v) {
    return v >= 0.0 && v <= 65535.0 &&
           v == static_cast<double>(static_cast<uint16_t>(v));
  }

  /// Converts a narrow run to wide in place (exact: uint16 -> double).
  static void Promote(Run& run);
  /// Appends `zeros` zero buckets then the bucket holding `v` to `run`.
  static void AppendBucket(Run& run, size_t zeros, double v);
  static Run MakeRun(Timestamp start, double v);

  /// Zero gap length (in buckets) up to which a run is extended with
  /// explicit zeros instead of split. 16 narrow zero buckets cost 32 bytes
  /// — about the fixed overhead of a fresh Run.
  static constexpr size_t kMaxGapFill = 16;

  Timestamp start_ = 0;
  Timestamp end_ = 0;
  int64_t interval_seconds_;
  std::vector<Run> runs_;  ///< sorted by start, non-overlapping
};

}  // namespace qb5000

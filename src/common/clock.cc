#include "common/clock.h"

#include <cstdio>

namespace qb5000 {

std::string FormatTimestamp(Timestamp ts) {
  int64_t day = ts / kSecondsPerDay;
  int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --day;
  }
  int64_t hour = rem / kSecondsPerHour;
  int64_t minute = (rem % kSecondsPerHour) / kSecondsPerMinute;
  int64_t second = rem % kSecondsPerMinute;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%ld+%02ld:%02ld:%02ld",
                static_cast<long>(day), static_cast<long>(hour),
                static_cast<long>(minute), static_cast<long>(second));
  return buf;
}

}  // namespace qb5000

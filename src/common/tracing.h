#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qb5000 {

/// One completed span. Times are seconds relative to the owning Tracer's
/// construction (steady clock), so records from one process compare cleanly
/// and nothing leaks wall-clock nondeterminism into tests.
struct SpanRecord {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Pluggable destination for completed spans, called synchronously from the
/// instrumented thread under the tracer lock — keep implementations cheap
/// (forward to a queue / file buffer, don't block). The ring buffer keeps
/// retaining spans whether or not a sink is attached.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void OnSpanEnd(const SpanRecord& span) = 0;
};

/// Scoped-span tracer with bounded ring-buffer retention (DESIGN.md §10).
/// Spans are recorded on completion (post-order); nesting is tracked per
/// thread so parent links are correct even when worker threads trace
/// concurrently. Only cold paths are traced (maintenance, training,
/// checkpointing — never per-query Ingest), so a mutex per span end is
/// well inside the overhead budget.
///
/// In a QB5000_METRICS=OFF build every tracing call is a no-op.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1024);

  /// Attaches (or with nullptr detaches) the sink for completed spans.
  void SetSink(SpanSink* sink);

  /// The retained spans, oldest first. At most `capacity` entries; older
  /// spans have been overwritten.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans completed over the tracer's lifetime (including overwritten).
  uint64_t total_spans() const;

  /// Drops all retained spans (keeps the sink, capacity, epoch, and the
  /// lifetime total_spans() count).
  void Clear();

  /// JSON export: {"spans":[{"name":...,"id":...,"parent":...,
  /// "start_s":...,"dur_s":...},...]} oldest first.
  std::string ExportJson() const;

  /// The process-wide tracer for components without an owning QueryBot5000.
  static Tracer& Global();

 private:
  friend class ScopedSpan;

  uint64_t NextSpanId();
  double Now() const;
  void Record(SpanRecord span);

  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_{lock_level::kTracerRing, "tracer.ring"};
  /// Retained spans; slot = (total_ - ring_base_) % capacity_.
  std::vector<SpanRecord> ring_ QB_GUARDED_BY(mu_);
  const size_t capacity_;  ///< fixed at construction
  /// Spans recorded over the tracer's lifetime.
  uint64_t total_ QB_GUARDED_BY(mu_) = 0;
  /// total_ value at the last Clear().
  uint64_t ring_base_ QB_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ QB_GUARDED_BY(mu_) = 1;
  SpanSink* sink_ QB_GUARDED_BY(mu_) = nullptr;
};

/// RAII span: records [construction, destruction) into `tracer` under
/// `name`. `tracer == nullptr` disables the span. Spans on one thread nest:
/// the innermost live span is the parent of the next one constructed.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  double start_seconds_ = 0.0;
};

}  // namespace qb5000

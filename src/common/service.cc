#include "common/service.h"

#include <utility>

#include "common/check.h"

namespace qb5000 {

ServiceThread::~ServiceThread() { Stop(); }

void ServiceThread::Start(RoundFn round) {
  {
    MutexLock lock(&mu_);
    QB_CHECK(!running_);
    QB_CHECK(!thread_.joinable());
    round_ = std::move(round);
    stop_ = false;
    wake_ = false;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void ServiceThread::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
  stop_ = false;
  cv_.NotifyAll();  // release any WaitIdle() caller racing the shutdown
}

void ServiceThread::Wake() {
  MutexLock lock(&mu_);
  if (!running_) return;
  wake_ = true;
  cv_.NotifyAll();
}

void ServiceThread::WaitIdle() {
  MutexLock lock(&mu_);
  if (!running_) return;
  // Force at least one more round so work enqueued just before this call is
  // observed, then wait for the park that follows it.
  wake_ = true;
  uint64_t target = idle_epoch_ + 1;
  cv_.NotifyAll();
  while (idle_epoch_ < target && running_ && !stop_) cv_.Wait(&mu_);
}

bool ServiceThread::running() const {
  MutexLock lock(&mu_);
  return running_;
}

void ServiceThread::Loop() {
  for (;;) {
    bool did_work = round_();
    if (did_work) continue;
    MutexLock lock(&mu_);
    if (wake_) {  // a producer raced the idle round; re-check the queue
      wake_ = false;
      continue;
    }
    ++idle_epoch_;
    cv_.NotifyAll();
    if (stop_) return;  // idle with the stop flag set ⇒ fully drained
    while (!wake_ && !stop_) cv_.Wait(&mu_);
    if (wake_) {
      wake_ = false;
      continue;
    }
    // stop_ set while parked: run one more drain round (a producer may have
    // pushed without a wake reaching us before Stop), exit at the next idle.
  }
}

DrainPool::~DrainPool() { Stop(); }

void DrainPool::Start(size_t workers) {
  QB_CHECK(workers > 0);
  QB_CHECK(threads_.empty());
  {
    MutexLock lock(&mu_);
    stop_ = false;
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { Worker(); });
  }
}

void DrainPool::Stop() {
  if (threads_.empty()) return;
  {
    MutexLock lock(&mu_);
    QB_CHECK(!run_active_);
    stop_ = true;
    work_cv_.NotifyAll();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void DrainPool::BeginRun(size_t count, PrepFn prep) {
  QB_CHECK(!threads_.empty());
  QB_CHECK(count > 0);
  MutexLock lock(&mu_);
  QB_CHECK(!run_active_);
  prep_ = std::move(prep);
  run_count_ = count;
  next_claim_ = 0;
  prepared_.assign(count, 0);
  run_active_ = true;
  work_cv_.NotifyAll();
}

bool DrainPool::AwaitPrepared(size_t index) {
  bool waited = false;
  for (;;) {
    size_t job = 0;
    {
      MutexLock lock(&mu_);
      QB_CHECK(run_active_);
      QB_CHECK(index < run_count_);
      while (prepared_[index] == 0 && next_claim_ >= run_count_) {
        waited = true;  // nothing left to help with: a true head-of-line wait
        done_cv_.Wait(&mu_);
      }
      if (prepared_[index] != 0) return waited;
      job = next_claim_++;
    }
    // Help: prepare the next unclaimed job on this thread instead of
    // idling. On narrow pools this is what makes the split pay — a width-1
    // pool becomes a genuine two-thread pipeline (worker preps, owner preps
    // or merges) instead of a claim/park ping-pong.
    prep_(job);
    MutexLock lock(&mu_);
    prepared_[job] = 1;
    done_cv_.NotifyAll();
  }
}

void DrainPool::EndRun() {
  MutexLock lock(&mu_);
  QB_CHECK(run_active_);
  for (uint8_t done : prepared_) QB_CHECK(done != 0);
  run_active_ = false;
  prep_ = nullptr;
}

void DrainPool::Worker() {
  for (;;) {
    size_t job = 0;
    {
      MutexLock lock(&mu_);
      while (!stop_ && (!run_active_ || next_claim_ >= run_count_)) {
        work_cv_.Wait(&mu_);
      }
      if (stop_) return;
      job = next_claim_++;
    }
    prep_(job);
    MutexLock lock(&mu_);
    prepared_[job] = 1;
    done_cv_.NotifyAll();
  }
}

}  // namespace qb5000

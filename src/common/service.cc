#include "common/service.h"

#include <utility>

#include "common/check.h"

namespace qb5000 {

ServiceThread::~ServiceThread() { Stop(); }

void ServiceThread::Start(RoundFn round) {
  {
    MutexLock lock(&mu_);
    QB_CHECK(!running_);
    QB_CHECK(!thread_.joinable());
    round_ = std::move(round);
    stop_ = false;
    wake_ = false;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void ServiceThread::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
  stop_ = false;
  cv_.NotifyAll();  // release any WaitIdle() caller racing the shutdown
}

void ServiceThread::Wake() {
  MutexLock lock(&mu_);
  if (!running_) return;
  wake_ = true;
  cv_.NotifyAll();
}

void ServiceThread::WaitIdle() {
  MutexLock lock(&mu_);
  if (!running_) return;
  // Force at least one more round so work enqueued just before this call is
  // observed, then wait for the park that follows it.
  wake_ = true;
  uint64_t target = idle_epoch_ + 1;
  cv_.NotifyAll();
  while (idle_epoch_ < target && running_ && !stop_) cv_.Wait(&mu_);
}

bool ServiceThread::running() const {
  MutexLock lock(&mu_);
  return running_;
}

void ServiceThread::Loop() {
  for (;;) {
    bool did_work = round_();
    if (did_work) continue;
    MutexLock lock(&mu_);
    if (wake_) {  // a producer raced the idle round; re-check the queue
      wake_ = false;
      continue;
    }
    ++idle_epoch_;
    cv_.NotifyAll();
    if (stop_) return;  // idle with the stop flag set ⇒ fully drained
    while (!wake_ && !stop_) cv_.Wait(&mu_);
    if (wake_) {
      wake_ = false;
      continue;
    }
    // stop_ set while parked: run one more drain round (a producer may have
    // pushed without a wake reaching us before Stop), exit at the next idle.
  }
}

}  // namespace qb5000

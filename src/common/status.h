#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace qb5000 {

/// Error categories used across the library. The public API reports failures
/// through Status / Result<T> rather than exceptions so that callers on the
/// query ingest path never pay for unwinding.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kOverloaded,         ///< backpressure: shed now, safe to retry with backoff
  kDeadlineExceeded,   ///< time budget spent before the work could finish
};

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (one enum); carries a message only on failure. [[nodiscard]] at class
/// level: any call site that drops a returned Status on the floor is a
/// compile warning (an error under QB5000_WERROR / CI).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Mirrors
/// absl::StatusOr<T> semantics at the scale this project needs.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  /// `return value;` or `return Status::ParseError(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  /// Precondition: ok(). Accessing the value of a failed Result aborts
  /// (in every build type) with the error's ToString() on stderr.
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      check_internal::CheckFailed(__FILE__, __LINE__,
                                  "Result::value() on error",
                                  std::get<Status>(data_).ToString());
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace qb5000

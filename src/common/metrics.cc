#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace qb5000 {

// --- Histogram --------------------------------------------------------------

double Histogram::UpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return 1e-9 * std::ldexp(1.0, static_cast<int>(i));
}

size_t Histogram::BucketIndex(double v) {
  if (!(v > 1e-9)) return 0;  // non-finite, negative, and tiny all land low
  // Smallest i with 1e-9 * 2^i >= v  <=>  i = ceil(log2(v / 1e-9)).
  int exp = std::ilogb(v * 1e9);
  if (std::ldexp(1.0, exp) < v * 1e9) ++exp;
  if (exp < 0) return 0;
  return std::min(static_cast<size_t>(exp), kNumBuckets - 1);
}

void Histogram::Observe(double v) {
  if constexpr (!kMetricsEnabled) {
    (void)v;
    return;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  // atomic<double> has no fetch_add pre-C++20 everywhere; CAS-loop instead.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Clear() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry --------------------------------------------------------

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

// Get* use double-checked registration: a shared-lock fast path for the
// common already-registered case, then an exclusive lock that re-checks
// (another thread may have registered between the two acquisitions). Spelled
// out per method rather than through a helper template because Thread Safety
// Analysis cannot track guarded members passed by reference
// (-Wthread-safety-reference).

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  {
    ReaderLock lock(&mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
  }
  WriterLock lock(&mu_);
  auto it = counters_.find(name);  // raced registration
  if (it != counters_.end()) return it->second;
  counter_storage_.emplace_back();
  Counter* instrument = &counter_storage_.back();
  counters_.emplace(name, instrument);
  return instrument;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  {
    ReaderLock lock(&mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
  }
  WriterLock lock(&mu_);
  auto it = gauges_.find(name);  // raced registration
  if (it != gauges_.end()) return it->second;
  gauge_storage_.emplace_back();
  Gauge* instrument = &gauge_storage_.back();
  gauges_.emplace(name, instrument);
  return instrument;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  {
    ReaderLock lock(&mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
  }
  WriterLock lock(&mu_);
  auto it = histograms_.find(name);  // raced registration
  if (it != histograms_.end()) return it->second;
  histogram_storage_.emplace_back();
  Histogram* instrument = &histogram_storage_.back();
  histograms_.emplace(name, instrument);
  return instrument;
}

std::string MetricsRegistry::ExportText(const ExportOptions& options) const {
  ReaderLock lock(&mu_);
  // One sorted line stream across all instrument kinds. The three maps are
  // each name-sorted; merge by name so the export is globally sorted and
  // byte-stable regardless of registration order.
  std::map<std::string, std::string> lines;
  for (const auto& [name, counter] : counters_) {
    lines[name] = "counter " + name + ' ' + std::to_string(counter->value());
  }
  if (!options.counters_only) {
    for (const auto& [name, gauge] : gauges_) {
      lines[name] = "gauge " + name + ' ' + FormatDouble(gauge->value());
    }
    for (const auto& [name, histogram] : histograms_) {
      std::string line = "histogram " + name +
                         " count=" + std::to_string(histogram->count()) +
                         " sum=" + FormatDouble(histogram->sum()) + " buckets=";
      bool first = true;
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        uint64_t n = histogram->bucket(i);
        if (n == 0) continue;
        if (!first) line += ',';
        line += std::to_string(i) + ':' + std::to_string(n);
        first = false;
      }
      lines[name] = std::move(line);
    }
  }
  std::string out;
  for (const auto& [name, line] : lines) {
    (void)name;
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  ReaderLock lock(&mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ',';
    out << '"' << name << "\":" << counter->value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ',';
    out << '"' << name << "\":" << FormatDouble(gauge->value());
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ',';
    out << '"' << name << "\":{\"count\":" << histogram->count()
        << ",\"sum\":" << FormatDouble(histogram->sum()) << ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = histogram->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out << ',';
      out << '"' << i << "\":" << n;
      first_bucket = false;
    }
    out << "}}";
    first = false;
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::SerializeState() const {
  ReaderLock lock(&mu_);
  std::ostringstream out;
  out.precision(17);  // gauges must round-trip exactly
  out << "metrics-v1\n";
  out << "counters " << counters_.size() << '\n';
  for (const auto& [name, counter] : counters_) {
    out << name << ' ' << counter->value() << '\n';
  }
  out << "gauges " << gauges_.size() << '\n';
  for (const auto& [name, gauge] : gauges_) {
    out << name << ' ' << gauge->value() << '\n';
  }
  return out.str();
}

Status MetricsRegistry::RestoreState(const std::string& data) {
  std::istringstream in(data);
  std::string tag, keyword;
  if (!(in >> tag) || tag != "metrics-v1") {
    return Status::ParseError("bad metrics section tag");
  }
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "counters") {
    return Status::ParseError("bad metrics counter header");
  }
  // Parse fully before applying so a truncated section leaves the registry
  // untouched.
  std::vector<std::pair<std::string, uint64_t>> counters(count);
  for (auto& [name, value] : counters) {
    if (!(in >> name >> value)) {
      return Status::ParseError("truncated metrics counters");
    }
  }
  if (!(in >> keyword >> count) || keyword != "gauges") {
    return Status::ParseError("bad metrics gauge header");
  }
  std::vector<std::pair<std::string, double>> gauges(count);
  for (auto& [name, value] : gauges) {
    if (!(in >> name >> value)) {
      return Status::ParseError("truncated metrics gauges");
    }
  }
  for (const auto& [name, value] : counters) GetCounter(name)->Set(value);
  for (const auto& [name, value] : gauges) GetGauge(name)->Restore(value);
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  WriterLock lock(&mu_);
  for (auto& counter : counter_storage_) counter.Set(0);
  for (auto& gauge : gauge_storage_) gauge.Restore(0.0);
  for (auto& histogram : histogram_storage_) histogram.Clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace qb5000

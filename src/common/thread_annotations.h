#pragma once

/// Clang Thread Safety Analysis annotations (DESIGN.md §12).
///
/// These macros attach compile-time locking requirements to types, fields,
/// and functions: which mutex guards a field, which lock a function expects
/// its caller to hold, and which locks a function acquires or releases.
/// Under Clang, `-Wthread-safety -Wthread-safety-beta` (enabled for every
/// Clang configuration by the top-level CMakeLists, `-Werror` in the
/// `clang-tsa` preset/CI job) turns a violated annotation into a build
/// failure, so the Ingest/Forecast/Checkpoint locking discipline is proven
/// by the compiler instead of hoped-for by TSan. Under GCC (which has no
/// such analysis) every macro expands to nothing.
///
/// The vocabulary mirrors Abseil's thread_annotations.h, the de-facto
/// standard spelling of these attributes:
///   - QB_GUARDED_BY(mu)        field may only be touched while holding mu
///   - QB_PT_GUARDED_BY(mu)     pointee of a pointer field guarded by mu
///   - QB_REQUIRES(mu)          function requires mu held exclusively
///   - QB_REQUIRES_SHARED(mu)   function requires mu held (shared suffices)
///   - QB_ACQUIRE / QB_ACQUIRE_SHARED / QB_RELEASE / QB_RELEASE_SHARED
///                              function acquires/releases mu itself
///   - QB_EXCLUDES(mu)          function must be entered with mu NOT held
///   - QB_CAPABILITY / QB_SCOPED_CAPABILITY  mark lock / RAII-guard types
///   - QB_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (justify in a
///                              comment; the lint discourages casual use)
///
/// Only `src/common/mutex.h` types carry capability attributes; annotate
/// everything else in terms of those wrappers.

#if defined(__clang__)
#define QB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define QB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

#define QB_CAPABILITY(x) QB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define QB_SCOPED_CAPABILITY QB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define QB_GUARDED_BY(x) QB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define QB_PT_GUARDED_BY(x) QB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define QB_ACQUIRED_BEFORE(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define QB_ACQUIRED_AFTER(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define QB_REQUIRES(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define QB_REQUIRES_SHARED(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define QB_ACQUIRE(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define QB_ACQUIRE_SHARED(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define QB_RELEASE(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define QB_RELEASE_SHARED(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define QB_RELEASE_GENERIC(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

#define QB_TRY_ACQUIRE(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define QB_TRY_ACQUIRE_SHARED(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

#define QB_EXCLUDES(...) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define QB_ASSERT_CAPABILITY(x) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define QB_ASSERT_SHARED_CAPABILITY(x) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

#define QB_RETURN_CAPABILITY(x) \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define QB_NO_THREAD_SAFETY_ANALYSIS \
  QB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#pragma once

#include <atomic>
#include <cstdint>
#include <random>

namespace qb5000 {

/// Deterministic random source used throughout the library. Every component
/// that needs randomness takes an explicit Rng (or seed) so experiments are
/// reproducible run-to-run.
///
/// Thread-affinity contract: an Rng instance is NOT thread-safe — the
/// mt19937_64 engine mutates 2.5 KB of state on every draw, and concurrent
/// draws are a data race (TSan flags it). Confine each instance to a single
/// thread. Code that fans out across threads must give each worker its own
/// stream: either construct one Rng per worker from a deterministic
/// per-worker seed (preferred for reproducibility — seed + worker index),
/// or call ThreadLocalRng() below for a lazily-created per-thread instance.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson draw; mean must be non-negative. Returns 0 for mean <= 0.
  int64_t Poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

namespace rng_internal {

/// splitmix64 finalizer: decorrelates sequential ordinals into seeds that
/// are far apart in mt19937_64's state space.
inline uint64_t MixSeed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace rng_internal

/// Returns this thread's private Rng, constructed on first use from
/// `base_seed` mixed with a process-wide thread ordinal, so (a) no two
/// threads share engine state (TSan-clean by construction) and (b) each
/// thread's stream is deterministic given a deterministic thread spawn
/// order. `base_seed` is honored only by the first call on each thread;
/// later calls return the same instance regardless of the argument.
inline Rng& ThreadLocalRng(uint64_t base_seed = 0) {
  static std::atomic<uint64_t> next_ordinal{0};
  thread_local Rng rng(rng_internal::MixSeed(
      base_seed + next_ordinal.fetch_add(1, std::memory_order_relaxed)));
  return rng;
}

}  // namespace qb5000

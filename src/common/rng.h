#ifndef QB5000_COMMON_RNG_H_
#define QB5000_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace qb5000 {

/// Deterministic random source used throughout the library. Every component
/// that needs randomness takes an explicit Rng (or seed) so experiments are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson draw; mean must be non-negative. Returns 0 for mean <= 0.
  int64_t Poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qb5000

#endif  // QB5000_COMMON_RNG_H_

#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/status.h"

namespace qb5000 {

/// A regularly-spaced arrival-rate series: `values[i]` is the number of
/// query arrivals in [start + i*interval, start + (i+1)*interval).
///
/// This is the currency of the whole pipeline: the Pre-Processor produces a
/// per-minute TimeSeries per template, the Clusterer averages them into
/// cluster centers, and the Forecaster trains on aggregated views of them.
class TimeSeries {
 public:
  TimeSeries() : start_(0), interval_seconds_(kSecondsPerMinute) {}
  /// Precondition: interval_seconds > 0 (every bucket computation divides
  /// by it, so a zero interval would be UB on first Add/ValueAt).
  TimeSeries(Timestamp start, int64_t interval_seconds)
      : start_(start), interval_seconds_(interval_seconds) {
    QB_CHECK_GT(interval_seconds_, 0);
  }
  TimeSeries(Timestamp start, int64_t interval_seconds,
             std::vector<double> values)
      : start_(start),
        interval_seconds_(interval_seconds),
        values_(std::move(values)) {
    QB_CHECK_GT(interval_seconds_, 0);
  }

  Timestamp start() const { return start_; }
  int64_t interval_seconds() const { return interval_seconds_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Timestamp of the start of bucket `i`.
  Timestamp TimeAt(size_t i) const {
    return start_ + static_cast<int64_t>(i) * interval_seconds_;
  }

  /// End of the covered range (exclusive).
  Timestamp end() const { return TimeAt(values_.size()); }

  /// Adds `count` arrivals at time `ts`, growing the series as needed.
  /// Timestamps before `start` are clamped into the first bucket.
  void Add(Timestamp ts, double count);

  /// Value of the bucket containing `ts`; 0 outside the covered range.
  double ValueAt(Timestamp ts) const;

  /// Sum of all bucket values.
  double Total() const;

  /// Returns a new series re-bucketed to `coarser_interval_seconds`, which
  /// must be a positive multiple of the current interval. Bucket values are
  /// summed (arrival counts are additive).
  Result<TimeSeries> Aggregate(int64_t coarser_interval_seconds) const;

  /// Returns the sub-series covering [from, to); buckets outside the stored
  /// range are zero-filled so the result always spans the request exactly.
  TimeSeries Slice(Timestamp from, Timestamp to) const;

  /// Element-wise in-place sum. Series must share start/interval/size.
  Status AddSeries(const TimeSeries& other);

  /// Divides all values by `d` (no-op when d == 0).
  void Scale(double factor);

 private:
  Timestamp start_;
  int64_t interval_seconds_;
  std::vector<double> values_;
};

}  // namespace qb5000

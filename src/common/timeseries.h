#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/status.h"

namespace qb5000 {

/// A regularly-spaced arrival-rate series: `values[i]` is the number of
/// query arrivals in [start + i*interval, start + (i+1)*interval).
///
/// This is the currency of the whole pipeline: the Pre-Processor produces a
/// per-minute TimeSeries per template, the Clusterer averages them into
/// cluster centers, and the Forecaster trains on aggregated views of them.
///
/// Storage keeps slack *before* the live region so that late-arriving
/// records (timestamps earlier than `start`) extend the series backwards in
/// amortized O(1) per bucket instead of the O(n) front-insert a plain
/// vector would need.
class TimeSeries {
 public:
  TimeSeries() : start_(0), interval_seconds_(kSecondsPerMinute) {}
  /// Precondition: interval_seconds > 0 (every bucket computation divides
  /// by it, so a zero interval would be UB on first Add/ValueAt).
  TimeSeries(Timestamp start, int64_t interval_seconds)
      : start_(start), interval_seconds_(interval_seconds) {
    QB_CHECK_GT(interval_seconds_, 0);
  }
  TimeSeries(Timestamp start, int64_t interval_seconds,
             std::vector<double> values)
      : start_(start),
        interval_seconds_(interval_seconds),
        storage_(std::move(values)) {
    QB_CHECK_GT(interval_seconds_, 0);
  }

  Timestamp start() const { return start_; }
  int64_t interval_seconds() const { return interval_seconds_; }
  std::span<const double> values() const {
    return {storage_.data() + head_, size()};
  }
  std::span<double> mutable_values() { return {storage_.data() + head_, size()}; }
  size_t size() const { return storage_.size() - head_; }
  bool empty() const { return storage_.size() == head_; }

  /// Bytes of heap storage held (capacity, including front slack).
  size_t HeapBytes() const { return storage_.capacity() * sizeof(double); }

  /// Timestamp of the start of bucket `i`.
  Timestamp TimeAt(size_t i) const {
    return start_ + static_cast<int64_t>(i) * interval_seconds_;
  }

  /// End of the covered range (exclusive).
  Timestamp end() const { return TimeAt(size()); }

  /// Adds `count` arrivals at time `ts`, growing the series as needed —
  /// forwards by appending, backwards (late arrivals) through the
  /// amortized front-slack scheme.
  void Add(Timestamp ts, double count);

  /// Value of the bucket containing `ts`; 0 outside the covered range.
  double ValueAt(Timestamp ts) const;

  /// Sum of all bucket values.
  double Total() const;

  /// Returns a new series re-bucketed to `coarser_interval_seconds`, which
  /// must be a positive multiple of the current interval. Bucket values are
  /// summed (arrival counts are additive).
  Result<TimeSeries> Aggregate(int64_t coarser_interval_seconds) const;

  /// Returns the sub-series covering [from, to); buckets outside the stored
  /// range are zero-filled so the result always spans the request exactly.
  TimeSeries Slice(Timestamp from, Timestamp to) const;

  /// Element-wise in-place sum. Series must share start/interval/size.
  Status AddSeries(const TimeSeries& other);

  /// Multiplies all values by `factor` (so pass 1/d to divide by d; the
  /// caller is responsible for not passing an infinite 1/0).
  void Scale(double factor);

  /// Re-shapes this series in place to `n` zero buckets starting at
  /// `start`, reusing the existing allocation when it is large enough.
  /// Scratch-buffer primitive for the windowed-view extraction paths.
  void Reset(Timestamp start, int64_t interval_seconds, size_t n);

 private:
  /// Makes `shift` additional zero buckets live before the current front,
  /// regrowing the allocation with fresh front slack when the existing
  /// slack is exhausted.
  void GrowFront(size_t shift);

  Timestamp start_;
  int64_t interval_seconds_;
  std::vector<double> storage_;
  /// Index of the first live bucket in `storage_`; [0, head_) is slack.
  size_t head_ = 0;
};

}  // namespace qb5000

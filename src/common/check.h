#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>

/// Always-on invariant checks.
///
/// Raw assert() is compiled out by NDEBUG, which the default Release build
/// defines — so every invariant it guarded silently disappears exactly where
/// the forecaster runs in production. The QB_CHECK family stays active in
/// every build type and prints file:line plus the failed expression before
/// aborting, so a violated precondition produces an actionable crash report
/// instead of undefined behavior several frames later.
///
/// Policy (see DESIGN.md "Verification & static analysis"):
///   - QB_CHECK / QB_CHECK_<OP>: preconditions on public entry points and
///     invariants whose failure would corrupt state or index out of bounds.
///     Active in Release; use everywhere the check is O(1) and off the
///     innermost hot loop.
///   - QB_DCHECK / QB_DCHECK_<OP>: expensive or innermost-loop checks that
///     Release builds cannot afford. Compiled out under NDEBUG (the
///     expression is still type-checked, never evaluated).
///
/// Raw assert() is banned outside this header (enforced by tools/qb_lint.py).

namespace qb5000::check_internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& values = {}) {
  if (values.empty()) {
    std::fprintf(stderr, "QB_CHECK failed at %s:%d: %s\n", file, line, expr);
  } else {
    std::fprintf(stderr, "QB_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 expr, values.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

/// Renders "lhs=A rhs=B" when both operands are streamable arithmetic-ish
/// types; returns an empty string otherwise so QB_CHECK_EQ works on any
/// comparable type (Value, iterators, ...).
template <typename A, typename B>
std::string DescribeOperands(const A& a, const B& b) {
  if constexpr (std::is_arithmetic_v<std::decay_t<A>> &&
                std::is_arithmetic_v<std::decay_t<B>>) {
    std::ostringstream oss;
    oss << "lhs=" << +a << " rhs=" << +b;
    return oss.str();
  } else {
    return {};
  }
}

}  // namespace qb5000::check_internal

#define QB_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::qb5000::check_internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                                    \
  } while (false)

#define QB_CHECK_OP_(a, b, op)                                              \
  do {                                                                      \
    const auto& qb_check_a_ = (a);                                          \
    const auto& qb_check_b_ = (b);                                          \
    if (!(qb_check_a_ op qb_check_b_)) {                                    \
      ::qb5000::check_internal::CheckFailed(                                \
          __FILE__, __LINE__, #a " " #op " " #b,                            \
          ::qb5000::check_internal::DescribeOperands(qb_check_a_,           \
                                                     qb_check_b_));         \
    }                                                                       \
  } while (false)

#define QB_CHECK_EQ(a, b) QB_CHECK_OP_(a, b, ==)
#define QB_CHECK_NE(a, b) QB_CHECK_OP_(a, b, !=)
#define QB_CHECK_LT(a, b) QB_CHECK_OP_(a, b, <)
#define QB_CHECK_LE(a, b) QB_CHECK_OP_(a, b, <=)
#define QB_CHECK_GT(a, b) QB_CHECK_OP_(a, b, >)
#define QB_CHECK_GE(a, b) QB_CHECK_OP_(a, b, >=)

#ifdef NDEBUG
// Type-check but never evaluate the condition; optimizes to nothing.
#define QB_DCHECK(cond) \
  do {                  \
    if (false) {        \
      (void)(cond);     \
    }                   \
  } while (false)
#define QB_DCHECK_OP_(a, b, op) \
  do {                          \
    if (false) {                \
      (void)((a)op(b));         \
    }                           \
  } while (false)
#else
#define QB_DCHECK(cond) QB_CHECK(cond)
#define QB_DCHECK_OP_(a, b, op) QB_CHECK_OP_(a, b, op)
#endif

#define QB_DCHECK_EQ(a, b) QB_DCHECK_OP_(a, b, ==)
#define QB_DCHECK_NE(a, b) QB_DCHECK_OP_(a, b, !=)
#define QB_DCHECK_LT(a, b) QB_DCHECK_OP_(a, b, <)
#define QB_DCHECK_LE(a, b) QB_DCHECK_OP_(a, b, <=)
#define QB_DCHECK_GT(a, b) QB_DCHECK_OP_(a, b, >)
#define QB_DCHECK_GE(a, b) QB_DCHECK_OP_(a, b, >=)

#pragma once

#include "common/status.h"
#include "math/matrix.h"

namespace qb5000 {

/// Solves A x = b for symmetric positive-definite A via Cholesky.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves A X = B column-by-column for SPD A.
Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b);

/// Multi-output ridge regression: returns W (x_dim x y_dim) minimizing
/// ||X W - Y||^2 + lambda ||W||^2. Rows of X are examples; the caller adds
/// its own bias column if an intercept is wanted.
Result<Matrix> RidgeRegression(const Matrix& x, const Matrix& y, double lambda);

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Eigenvalues are sorted in decreasing order; `eigenvectors` columns match.
struct EigenResult {
  Vector eigenvalues;
  Matrix eigenvectors;  // column i is the eigenvector for eigenvalues[i]
};
Result<EigenResult> SymmetricEigen(const Matrix& a, int max_sweeps = 64);

/// Principal component analysis. Rows of `data` are observations. Returns
/// the projection of each (mean-centered) row onto the top `k` principal
/// components (an n x k matrix). Used to reproduce the paper's Figure 15.
Result<Matrix> PcaProject(const Matrix& data, size_t k);

}  // namespace qb5000

#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace qb5000 {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. MatMul/MatVec delegate to the
/// cache-blocked, register-tiled kernels in math/kernels.h; callers on hot
/// paths should use the *Into variants there to avoid allocating results.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Unchecked-in-Release element access for inner loops. Debug builds
  /// still bounds-check; cold callers should prefer at().
  double& operator()(size_t r, size_t c) {
    QB_DCHECK_LT(r, rows_);
    QB_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    QB_DCHECK_LT(r, rows_);
    QB_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; aborts on out-of-range even in Release.
  double& at(size_t r, size_t c) {
    QB_CHECK_LT(r, rows_);
    QB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    QB_CHECK_LT(r, rows_);
    QB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Returns row `r` as a Vector copy.
  Vector Row(size_t r) const;

  /// Overwrites row `r` with `v` (v.size() must equal cols()).
  void SetRow(size_t r, const Vector& v);

  /// this * other; requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// this * v; requires v.size() == cols().
  Vector MatVec(const Vector& v) const;

  /// Transposed copy.
  Matrix Transpose() const;

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// v . w ; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& v);

/// a + b element-wise.
Vector Add(const Vector& a, const Vector& b);

/// a - b element-wise.
Vector Sub(const Vector& a, const Vector& b);

/// a * s element-wise.
Vector ScaleVec(const Vector& a, double s);

}  // namespace qb5000

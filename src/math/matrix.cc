#include "math/matrix.h"

#include <cmath>

#include "common/check.h"
#include "math/kernels.h"

namespace qb5000 {

Vector Matrix::Row(size_t r) const {
  QB_CHECK_LT(r, rows_);
  return Vector(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  QB_CHECK_LT(r, rows_);
  QB_CHECK_EQ(v.size(), cols_);
  std::copy(v.begin(), v.end(), data_.begin() + r * cols_);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  QB_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  MatMulInto(*this, other, out);
  return out;
}

Vector Matrix::MatVec(const Vector& v) const {
  QB_CHECK_EQ(v.size(), cols_);
  Vector out(rows_, 0.0);
  MatVecInto(*this, v, out);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  QB_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

Vector Add(const Vector& a, const Vector& b) {
  QB_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  QB_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector ScaleVec(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace qb5000

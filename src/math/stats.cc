#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qb5000 {

double Mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const Vector& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double sum = 0.0;
  for (double x : v) sum += (x - m) * (x - m);
  return sum / static_cast<double>(v.size());
}

double MeanSquaredError(const Vector& actual, const Vector& predicted) {
  QB_CHECK_EQ(actual.size(), predicted.size());
  if (actual.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double d = actual[i] - predicted[i];
    sum += d * d;
  }
  return sum / static_cast<double>(actual.size());
}

double LogSpaceMse(const Vector& actual, const Vector& predicted) {
  QB_CHECK_EQ(actual.size(), predicted.size());
  if (actual.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double a = std::log1p(std::max(0.0, actual[i]));
    double p = std::log1p(std::max(0.0, predicted[i]));
    sum += (a - p) * (a - p);
  }
  double mse = sum / static_cast<double>(actual.size());
  // The paper reports log(MSE); clamp so an exact prediction stays finite.
  return std::log(std::max(mse, 1e-12));
}

double CosineSimilarity(const Vector& a, const Vector& b) {
  QB_CHECK_EQ(a.size(), b.size());
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double SquaredL2Distance(const Vector& a, const Vector& b) {
  QB_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace qb5000

#include "math/kernels.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

// Per-function SIMD dispatch (x86-64 GCC/Clang): the AVX2+FMA micro-kernel
// below is compiled with a target attribute and selected at runtime, so the
// binary stays runnable on baseline x86-64 while using the wide units when
// present. Determinism note: which kernel runs depends only on the host CPU,
// never on the thread count, so results remain bit-identical across
// concurrency on any one machine.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QB_KERNELS_X86_DISPATCH 1
#include <immintrin.h>
#else
#define QB_KERNELS_X86_DISPATCH 0
#endif

namespace qb5000 {
namespace {

/// Rows of A and Bt touched per micro-tile. 2x4 keeps the eight running
/// sums plus the six stream heads in registers on baseline x86-64 (sixteen
/// xmm registers, no AVX assumed).
constexpr size_t kMicroRowsA = 2;
constexpr size_t kMicroRowsB = 4;

/// K-dimension cache block: 6 concurrent streams of kKc doubles stay within
/// L1 (6 * 512 * 8 B = 24 KB), so each micro-tile's inner loop runs out of
/// cache even when the full operands do not fit.
constexpr size_t kKc = 512;

/// Row-dimension cache block: one A panel of kMc x kKc doubles (256 KB)
/// stays L2-resident while the vector kernel streams every B tile past it,
/// so B is re-read from beyond L2 only ceil(m / kMc) times.
constexpr size_t kMc = 64;

/// C[m x n] (+)= A[m x kb] * Bt[n x kb]^T over one k-block, 2x4 register
/// tiling with scalar edge handling.
void GemmTransBBlock(const double* a, size_t lda, const double* bt, size_t ldb,
                     double* c, size_t ldc, size_t m, size_t kb, size_t n,
                     bool accumulate) {
  size_t i = 0;
  for (; i + kMicroRowsA <= m; i += kMicroRowsA) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + i * ldc;
    double* c1 = c0 + ldc;
    size_t j = 0;
    for (; j + kMicroRowsB <= n; j += kMicroRowsB) {
      const double* b0 = bt + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
      for (size_t p = 0; p < kb; ++p) {
        double av0 = a0[p], av1 = a1[p];
        double bv0 = b0[p], bv1 = b1[p], bv2 = b2[p], bv3 = b3[p];
        s00 += av0 * bv0;
        s01 += av0 * bv1;
        s02 += av0 * bv2;
        s03 += av0 * bv3;
        s10 += av1 * bv0;
        s11 += av1 * bv1;
        s12 += av1 * bv2;
        s13 += av1 * bv3;
      }
      if (accumulate) {
        c0[j] += s00, c0[j + 1] += s01, c0[j + 2] += s02, c0[j + 3] += s03;
        c1[j] += s10, c1[j + 1] += s11, c1[j + 2] += s12, c1[j + 3] += s13;
      } else {
        c0[j] = s00, c0[j + 1] = s01, c0[j + 2] = s02, c0[j + 3] = s03;
        c1[j] = s10, c1[j + 1] = s11, c1[j + 2] = s12, c1[j + 3] = s13;
      }
    }
    for (; j < n; ++j) {
      const double* bj = bt + j * ldb;
      double s0 = 0.0, s1 = 0.0;
      for (size_t p = 0; p < kb; ++p) {
        s0 += a0[p] * bj[p];
        s1 += a1[p] * bj[p];
      }
      if (accumulate) {
        c0[j] += s0, c1[j] += s1;
      } else {
        c0[j] = s0, c1[j] = s1;
      }
    }
  }
  for (; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    size_t j = 0;
    for (; j + kMicroRowsB <= n; j += kMicroRowsB) {
      const double* b0 = bt + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t p = 0; p < kb; ++p) {
        double av = ai[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      if (accumulate) {
        ci[j] += s0, ci[j + 1] += s1, ci[j + 2] += s2, ci[j + 3] += s3;
      } else {
        ci[j] = s0, ci[j + 1] = s1, ci[j + 2] = s2, ci[j + 3] = s3;
      }
    }
    for (; j < n; ++j) {
      const double* bj = bt + j * ldb;
      double s = 0.0;
      for (size_t p = 0; p < kb; ++p) s += ai[p] * bj[p];
      if (accumulate) {
        ci[j] += s;
      } else {
        ci[j] = s;
      }
    }
  }
}

#if QB_KERNELS_X86_DISPATCH

/// Lane sum of one 4-wide accumulator: low+high 128-bit halves, then the
/// two remaining lanes. Fixed order — part of the kernel's deterministic
/// summation contract.
__attribute__((target("avx2,fma"))) inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

/// AVX2+FMA variant of GemmTransBBlock: same 2x4 tile, but each of the
/// eight accumulators is a 4-lane vector (8 ymm accumulators + 2 A loads +
/// 4 B loads = 14 of 16 ymm registers), reduced lane-wise at the tile edge
/// with the scalar k-tail added last. The j-tile loop is OUTER and the row
/// loop inner, so one 4-row B tile (4 * kb doubles, 16 KB at kb = 512)
/// stays in L1 while every row pair of the A panel streams past it; the
/// caller bounds m so the A panel itself stays in L2.
__attribute__((target("avx2,fma"))) void GemmTransBBlockAvx2(
    const double* a, size_t lda, const double* bt, size_t ldb, double* c,
    size_t ldc, size_t m, size_t kb, size_t n, bool accumulate) {
  size_t j = 0;
  for (; j + kMicroRowsB <= n; j += kMicroRowsB) {
    const double* b0 = bt + j * ldb;
    const double* b1 = b0 + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    size_t i = 0;
    for (; i + 3 <= m; i += 3) {
      const double* a0 = a + i * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      double* c0 = c + i * ldc;
      double* c1 = c0 + ldc;
      double* c2 = c1 + ldc;
      // 3x4 vector tile: 12 accumulators + 3 A loads + 1 B temp fill the
      // 16-register ymm file exactly; 12 FMAs amortize 7 loads per k-step.
      __m256d s00 = _mm256_setzero_pd(), s01 = _mm256_setzero_pd();
      __m256d s02 = _mm256_setzero_pd(), s03 = _mm256_setzero_pd();
      __m256d s10 = _mm256_setzero_pd(), s11 = _mm256_setzero_pd();
      __m256d s12 = _mm256_setzero_pd(), s13 = _mm256_setzero_pd();
      __m256d s20 = _mm256_setzero_pd(), s21 = _mm256_setzero_pd();
      __m256d s22 = _mm256_setzero_pd(), s23 = _mm256_setzero_pd();
      size_t p = 0;
      for (; p + 4 <= kb; p += 4) {
        __m256d av0 = _mm256_loadu_pd(a0 + p);
        __m256d av1 = _mm256_loadu_pd(a1 + p);
        __m256d av2 = _mm256_loadu_pd(a2 + p);
        __m256d bv = _mm256_loadu_pd(b0 + p);
        s00 = _mm256_fmadd_pd(av0, bv, s00);
        s10 = _mm256_fmadd_pd(av1, bv, s10);
        s20 = _mm256_fmadd_pd(av2, bv, s20);
        bv = _mm256_loadu_pd(b1 + p);
        s01 = _mm256_fmadd_pd(av0, bv, s01);
        s11 = _mm256_fmadd_pd(av1, bv, s11);
        s21 = _mm256_fmadd_pd(av2, bv, s21);
        bv = _mm256_loadu_pd(b2 + p);
        s02 = _mm256_fmadd_pd(av0, bv, s02);
        s12 = _mm256_fmadd_pd(av1, bv, s12);
        s22 = _mm256_fmadd_pd(av2, bv, s22);
        bv = _mm256_loadu_pd(b3 + p);
        s03 = _mm256_fmadd_pd(av0, bv, s03);
        s13 = _mm256_fmadd_pd(av1, bv, s13);
        s23 = _mm256_fmadd_pd(av2, bv, s23);
      }
      double r00 = HorizontalSum(s00), r01 = HorizontalSum(s01);
      double r02 = HorizontalSum(s02), r03 = HorizontalSum(s03);
      double r10 = HorizontalSum(s10), r11 = HorizontalSum(s11);
      double r12 = HorizontalSum(s12), r13 = HorizontalSum(s13);
      double r20 = HorizontalSum(s20), r21 = HorizontalSum(s21);
      double r22 = HorizontalSum(s22), r23 = HorizontalSum(s23);
      for (; p < kb; ++p) {
        double av0 = a0[p], av1 = a1[p], av2 = a2[p];
        double bv0 = b0[p], bv1 = b1[p], bv2 = b2[p], bv3 = b3[p];
        r00 += av0 * bv0;
        r01 += av0 * bv1;
        r02 += av0 * bv2;
        r03 += av0 * bv3;
        r10 += av1 * bv0;
        r11 += av1 * bv1;
        r12 += av1 * bv2;
        r13 += av1 * bv3;
        r20 += av2 * bv0;
        r21 += av2 * bv1;
        r22 += av2 * bv2;
        r23 += av2 * bv3;
      }
      if (accumulate) {
        c0[j] += r00, c0[j + 1] += r01, c0[j + 2] += r02, c0[j + 3] += r03;
        c1[j] += r10, c1[j + 1] += r11, c1[j + 2] += r12, c1[j + 3] += r13;
        c2[j] += r20, c2[j + 1] += r21, c2[j + 2] += r22, c2[j + 3] += r23;
      } else {
        c0[j] = r00, c0[j + 1] = r01, c0[j + 2] = r02, c0[j + 3] = r03;
        c1[j] = r10, c1[j + 1] = r11, c1[j + 2] = r12, c1[j + 3] = r13;
        c2[j] = r20, c2[j + 1] = r21, c2[j + 2] = r22, c2[j + 3] = r23;
      }
    }
    if (i < m) {
      // Row remainder (m % 3): scalar edge handling on the sub-panel.
      GemmTransBBlock(a + i * lda, lda, b0, ldb, c + i * ldc + j, ldc, m - i,
                      kb, kMicroRowsB, accumulate);
    }
  }
  if (j < n) {
    // Column remainder: scalar edge handling on the narrow sub-panel.
    GemmTransBBlock(a, lda, bt + j * ldb, ldb, c + j, ldc, m, kb, n - j,
                    accumulate);
  }
}

#endif  // QB_KERNELS_X86_DISPATCH

using GemmBlockFn = void (*)(const double*, size_t, const double*, size_t,
                             double*, size_t, size_t, size_t, size_t, bool);

GemmBlockFn PickGemmBlockFn() {
#if QB_KERNELS_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return GemmTransBBlockAvx2;
  }
#endif
  return GemmTransBBlock;
}

/// Resolved once at static-init time; constant for the process lifetime.
const GemmBlockFn kGemmBlockFn = PickGemmBlockFn();

/// Per-thread packing buffer for GemmInto's B transpose. Pool workers are
/// long-lived, so steady-state calls never touch the allocator.
std::vector<double>& PackScratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace

void GemmTransBInto(const double* a, size_t lda, const double* bt, size_t ldb,
                    double* c, size_t ldc, size_t m, size_t k, size_t n,
                    bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (size_t i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0);
    }
    return;
  }
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    size_t kb = std::min(kKc, k - k0);
    for (size_t i0 = 0; i0 < m; i0 += kMc) {
      size_t mb = std::min(kMc, m - i0);
      kGemmBlockFn(a + i0 * lda + k0, lda, bt + k0, ldb, c + i0 * ldc, ldc,
                   mb, kb, n, accumulate || k0 > 0);
    }
  }
}

void GemmInto(const double* a, size_t lda, const double* b, size_t ldb,
              double* c, size_t ldc, size_t m, size_t k, size_t n,
              bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (size_t i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0);
    }
    return;
  }
  std::vector<double>& bt = PackScratch();
  bt.resize(k * n);
  for (size_t p = 0; p < k; ++p) {
    const double* brow = b + p * ldb;
    for (size_t j = 0; j < n; ++j) bt[j * k + p] = brow[j];
  }
  GemmTransBInto(a, lda, bt.data(), k, c, ldc, m, k, n, accumulate);
}

void GemmTransAInto(const double* a, size_t lda, const double* b, size_t ldb,
                    double* c, size_t ldc, size_t m, size_t k, size_t n,
                    bool accumulate) {
  if (!accumulate) {
    for (size_t i = 0; i < k; ++i) std::fill_n(c + i * ldc, n, 0.0);
  }
  // Rank-1 updates in row order: C += a_row^T * b_row, r = 0..m-1. The
  // summation order over m is fixed by the shape, keeping gradient
  // accumulation deterministic.
  for (size_t r = 0; r < m; ++r) {
    const double* arow = a + r * lda;
    const double* brow = b + r * ldb;
    for (size_t i = 0; i < k; ++i) {
      double av = arow[i];
      double* crow = c + i * ldc;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemvInto(const double* a, size_t lda, const double* x, double* y,
              size_t m, size_t n, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    const double* row = a + i * lda;
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += row[j] * x[j];
    if (accumulate) {
      y[i] += s;
    } else {
      y[i] = s;
    }
  }
}

void AxpyInto(double* y, double alpha, const double* x, size_t n) {
  for (size_t j = 0; j < n; ++j) y[j] += alpha * x[j];
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  QB_CHECK_EQ(a.cols(), b.rows());
  QB_CHECK_EQ(out.rows(), a.rows());
  QB_CHECK_EQ(out.cols(), b.cols());
  GemmInto(a.data().data(), a.cols(), b.data().data(), b.cols(),
           out.mutable_data().data(), out.cols(), a.rows(), a.cols(), b.cols(),
           /*accumulate=*/false);
}

void MatMulTransBInto(const Matrix& a, const Matrix& bt, Matrix& out) {
  QB_CHECK_EQ(a.cols(), bt.cols());
  QB_CHECK_EQ(out.rows(), a.rows());
  QB_CHECK_EQ(out.cols(), bt.rows());
  GemmTransBInto(a.data().data(), a.cols(), bt.data().data(), bt.cols(),
                 out.mutable_data().data(), out.cols(), a.rows(), a.cols(),
                 bt.rows(), /*accumulate=*/false);
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix& out,
                      bool accumulate) {
  QB_CHECK_EQ(a.rows(), b.rows());
  QB_CHECK_EQ(out.rows(), a.cols());
  QB_CHECK_EQ(out.cols(), b.cols());
  GemmTransAInto(a.data().data(), a.cols(), b.data().data(), b.cols(),
                 out.mutable_data().data(), out.cols(), a.rows(), a.cols(),
                 b.cols(), accumulate);
}

void MatVecInto(const Matrix& a, const Vector& x, Vector& out) {
  QB_CHECK_EQ(x.size(), a.cols());
  QB_CHECK_EQ(out.size(), a.rows());
  GemvInto(a.data().data(), a.cols(), x.data(), out.data(), a.rows(), a.cols(),
           /*accumulate=*/false);
}

void AddScaledInPlace(Vector& y, double alpha, const Vector& x) {
  QB_CHECK_EQ(y.size(), x.size());
  AxpyInto(y.data(), alpha, x.data(), x.size());
}

void BatchedMatMulInto(const std::vector<GemmProblem>& problems) {
  ParallelFor(0, problems.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      MatMulInto(*problems[i].a, *problems[i].b, *problems[i].c);
    }
  });
}

}  // namespace qb5000

#include "math/adam.h"

#include <cmath>
#include <limits>

#include "common/chaos.h"
#include "common/check.h"

namespace qb5000 {

AdamOptimizer::AdamOptimizer(size_t num_params, Options options)
    : options_(options), m_(num_params, 0.0), v_(num_params, 0.0), t_(0) {}

void AdamOptimizer::Step(std::vector<double>& params,
                         std::vector<double>& grads) {
  QB_CHECK_EQ(params.size(), m_.size());
  QB_CHECK_EQ(grads.size(), m_.size());
  // Chaos probe (DESIGN.md §13): a diverged backward pass hands the
  // optimizer a NaN gradient. Injected here — the one funnel every neural
  // fit's updates pass through — so the poison propagates into the moment
  // estimates and parameters exactly as a real divergence would, and the
  // Forecaster's health gate is what has to catch it.
  if (ChaosHarness::Global().PoisonGradient("adam.step") && !grads.empty()) {
    grads[0] = std::numeric_limits<double>::quiet_NaN();
  }
  if (options_.gradient_clip > 0.0) {
    double norm_sq = 0.0;
    for (double g : grads) norm_sq += g * g;
    double norm = std::sqrt(norm_sq);
    if (norm > options_.gradient_clip) {
      double scale = options_.gradient_clip / norm;
      for (double& g : grads) g *= scale;
    }
  }
  ++t_;
  double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * grads[i];
    v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * grads[i] * grads[i];
    double mhat = m_[i] / bc1;
    double vhat = v_[i] / bc2;
    params[i] -= options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
  }
}

void AdamOptimizer::Reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  t_ = 0;
}

}  // namespace qb5000

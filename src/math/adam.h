#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qb5000 {

/// Adam optimizer over a flat parameter vector. The neural models keep all
/// weights in one contiguous buffer so a single optimizer instance drives
/// training.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double gradient_clip = 5.0;  ///< max L2 norm of the full gradient; 0 = off
  };

  explicit AdamOptimizer(size_t num_params) : AdamOptimizer(num_params, Options()) {}
  AdamOptimizer(size_t num_params, Options options);

  /// Applies one update of `params` using `grads` (same length).
  void Step(std::vector<double>& params, std::vector<double>& grads);

  void Reset();

 private:
  Options options_;
  std::vector<double> m_;
  std::vector<double> v_;
  int64_t t_;
};

}  // namespace qb5000

#include "math/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qb5000 {
namespace {

/// In-place Cholesky factorization A = L L^T; returns false if A is not
/// positive definite. On success the lower triangle of `a` holds L.
bool CholeskyFactor(Matrix& a) {
  size_t n = a.rows();
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) return false;
    a(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / a(j, j);
    }
  }
  return true;
}

Vector CholeskyBackSolve(const Matrix& l, const Vector& b) {
  size_t n = l.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  Matrix l = a;
  if (!CholeskyFactor(l)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  return CholeskyBackSolve(l, b);
}

Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols() || a.rows() != b.rows()) {
    return Status::InvalidArgument("CholeskySolveMatrix: shape mismatch");
  }
  Matrix l = a;
  if (!CholeskyFactor(l)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector sol = CholeskyBackSolve(l, col);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Result<Matrix> RidgeRegression(const Matrix& x, const Matrix& y, double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("RidgeRegression: row counts differ");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("RidgeRegression: empty training set");
  }
  Matrix xt = x.Transpose();
  Matrix gram = xt.MatMul(x);
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  Matrix xty = xt.MatMul(y);
  return CholeskySolveMatrix(gram, xty);
}

Result<EigenResult> SymmetricEigen(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be square");
  }
  size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < 1e-20) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-15) continue;
        double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double dkp = d(k, p);
          double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double dpk = d(p, k);
          double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return d(i, i) > d(j, j); });
  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) result.eigenvectors(i, j) = v(i, order[j]);
  }
  return result;
}

Result<Matrix> PcaProject(const Matrix& data, size_t k) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("PcaProject: empty data");
  }
  if (k == 0 || k > data.cols()) {
    return Status::InvalidArgument("PcaProject: invalid component count");
  }
  size_t n = data.rows();
  size_t d = data.cols();
  Vector mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean[j] += data(i, j);
  }
  for (double& m : mean) m /= static_cast<double>(n);
  Matrix centered(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) centered(i, j) = data(i, j) - mean[j];
  }
  Matrix cov = centered.Transpose().MatMul(centered);
  double scale = 1.0 / static_cast<double>(n > 1 ? n - 1 : 1);
  for (double& c : cov.mutable_data()) c *= scale;
  auto eig = SymmetricEigen(cov);
  if (!eig.ok()) return eig.status();
  Matrix components(d, k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < d; ++i) components(i, j) = eig->eigenvectors(i, j);
  }
  return centered.MatMul(components);
}

}  // namespace qb5000

#pragma once

#include <vector>

#include "math/matrix.h"

namespace qb5000 {

/// Arithmetic mean; 0 for empty input.
double Mean(const Vector& v);

/// Population variance; 0 for fewer than two elements.
double Variance(const Vector& v);

/// Mean squared error between two equally-sized vectors.
double MeanSquaredError(const Vector& actual, const Vector& predicted);

/// The paper's accuracy metric: log of the MSE computed in log1p space
/// (arrival rates are log-transformed before training, Section 7.2).
double LogSpaceMse(const Vector& actual, const Vector& predicted);

/// Cosine similarity in [-1, 1]; 0 if either vector is all zeros.
double CosineSimilarity(const Vector& a, const Vector& b);

/// Squared L2 distance.
double SquaredL2Distance(const Vector& a, const Vector& b);

/// Quantile via linear interpolation on a copy of `v`; q in [0, 1].
double Quantile(std::vector<double> v, double q);

}  // namespace qb5000

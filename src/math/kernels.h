#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.h"

namespace qb5000 {

/// Dense kernels behind Matrix and the neural training loops.
///
/// Two tiers (DESIGN.md §9):
///   - Raw strided primitives (Gemm*, GemvInto, AxpyInto) take pointers plus
///     leading dimensions so callers can address sub-panels (e.g. one time
///     step of a batched LSTM input) without gathering, and allocate nothing.
///   - Matrix wrappers (MatMulInto, ...) add shape checks and reuse a
///     thread-local packing buffer, so steady-state calls are allocation-free
///     per thread.
///
/// All kernels accumulate in a fixed order that depends only on the operand
/// shapes, never on concurrency — required by the determinism contract.

/// C[m x n] (+)= A[m x k] * B[k x n]. Row strides lda/ldb/ldc; `accumulate`
/// false overwrites C. Internally packs B transposed in a thread-local
/// buffer and runs the register-blocked GemmTransB micro-kernel.
void GemmInto(const double* a, size_t lda, const double* b, size_t ldb,
              double* c, size_t ldc, size_t m, size_t k, size_t n,
              bool accumulate);

/// C[m x n] (+)= A[m x k] * Bt[n x k]^T. This is the fast path: both the A
/// rows and the Bt rows are read contiguously, and a 2x4 register tile
/// amortizes loads across eight accumulators. Neural layers store weights
/// as [out x in] row-major, which is exactly Bt — forward passes hit this
/// kernel with no packing at all.
void GemmTransBInto(const double* a, size_t lda, const double* bt, size_t ldb,
                    double* c, size_t ldc, size_t m, size_t k, size_t n,
                    bool accumulate);

/// C[k x n] (+)= A[m x k]^T * B[m x n], accumulated row-by-row over m in
/// index order (rank-1 updates). This is the weight-gradient shape
/// dW += dZ^T * X; `accumulate` true is the common case.
void GemmTransAInto(const double* a, size_t lda, const double* b, size_t ldb,
                    double* c, size_t ldc, size_t m, size_t k, size_t n,
                    bool accumulate);

/// y[m] (+)= A[m x n] * x[n].
void GemvInto(const double* a, size_t lda, const double* x, double* y,
              size_t m, size_t n, bool accumulate);

/// y[n] += alpha * x[n] (AXPY).
void AxpyInto(double* y, double alpha, const double* x, size_t n);

// --- Matrix wrappers (shape-checked, output preallocated by caller) --------

/// out = a * b; out must already be a.rows() x b.cols().
void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bt^T where bt holds B transposed (bt is n x k for a k x n B);
/// out must already be a.rows() x bt.rows().
void MatMulTransBInto(const Matrix& a, const Matrix& bt, Matrix& out);

/// out (+)= a^T * b; out must already be a.cols() x b.cols().
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix& out,
                      bool accumulate);

/// out = a * x; out must already have a.rows() elements.
void MatVecInto(const Matrix& a, const Vector& x, Vector& out);

/// y += alpha * x; sizes must match.
void AddScaledInPlace(Vector& y, double alpha, const Vector& x);

// --- Batched entry points ---------------------------------------------------

/// One independent GEMM in a batch: c = a * b (overwrite).
struct GemmProblem {
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  Matrix* c = nullptr;
};

/// Runs every problem (each c_i = a_i * b_i) with the problems distributed
/// over the global thread pool. Problems are independent, so this is
/// deterministic regardless of thread count.
void BatchedMatMulInto(const std::vector<GemmProblem>& problems);

}  // namespace qb5000

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "clusterer/feature.h"
#include "clusterer/kdtree.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// Identifier for a cluster of templates. Ids are stable across update
/// passes (clusters keep their id as members churn) so day-over-day change
/// tracking (Figure 6) is meaningful.
using ClusterId = int64_t;

/// The Clusterer (Section 5): groups templates whose arrival-rate histories
/// are similar, using an online variant of DBSCAN driven by a similarity
/// threshold rho against cluster *centers* rather than arbitrary core
/// objects. Each update pass runs the paper's three steps:
///   1. assign new templates to the most-similar center (or start a cluster),
///   2. re-check existing templates against their center and move drifters,
///   3. merge clusters whose centers exceed rho similarity.
class OnlineClusterer {
 public:
  /// Which template representation drives similarity (Section 7.7 ablation).
  enum class FeatureMode {
    kArrivalRate,  ///< sampled arrival-rate history, cosine similarity
    kLogical,      ///< query structure features, L2-based similarity
  };

  /// Nearest-center search strategy (DESIGN.md §15). The kd-tree is exact
  /// but its per-move rebuild dominates at very large template counts;
  /// sampled probing scores every center over a small deterministic subset
  /// of feature dimensions, then exact-verifies only the top candidates.
  enum class ProbeMode {
    kAuto,    ///< kd-tree below sampled_probe_template_threshold, else sampled
    kKdTree,  ///< always the exact kd-tree path
    kSampled, ///< always sampled probing (approximate above rho boundary)
  };

  struct Options {
    /// Similarity threshold rho in [0, 1] (Appendix A; paper default 0.8).
    double rho = 0.8;
    FeatureMode feature_mode = FeatureMode::kArrivalRate;
    ArrivalRateFeature::Options feature;
    /// Re-cluster eagerly when this fraction of templates is new since the
    /// last update (Section 5.2).
    double new_template_trigger_ratio = 0.2;
    /// Window over which cluster volume is measured for ranking.
    int64_t volume_window_seconds = kSecondsPerDay;
    /// Use the kd-tree for nearest-center search (false = linear scan;
    /// exposed for the ablation benchmark). Only consulted when sampled
    /// probing is not active.
    bool use_kdtree = true;
    /// Nearest-center search strategy; see ProbeMode. kAuto keeps the
    /// golden workloads (well under the threshold) on the exact kd-tree.
    ProbeMode probe_mode = ProbeMode::kAuto;
    /// Feature dimensions the sampled coarse pass scores (deterministic
    /// subset, clamped to the feature dimension).
    size_t sampled_probe_dims = 64;
    /// Centers surviving the coarse pass into exact verification.
    size_t sampled_probe_candidates = 4;
    /// kAuto switches to sampled probing at this many templates
    /// (BENCH_memory.json is the measured crossover evidence).
    size_t sampled_probe_template_threshold = 100000;
    /// Registry receiving `clusterer.*` metrics; nullptr = the process
    /// global. QueryBot5000 overrides this with its per-instance registry.
    MetricsRegistry* metrics = nullptr;
  };

  struct Cluster {
    ClusterId id = 0;
    Vector center;  ///< arithmetic mean of member feature vectors
    std::set<TemplateId> members;
    double volume = 0.0;  ///< member arrivals within the volume window
  };

  OnlineClusterer() : OnlineClusterer(Options()) {}
  explicit OnlineClusterer(Options options);

  /// Runs one incremental clustering pass over the templates in `pre`,
  /// with feature windows ending at `now`.
  void Update(const PreProcessor& pre, Timestamp now);

  /// True when the fraction of templates first seen since the last update
  /// exceeds the trigger ratio (workload-shift detection, Section 5.2).
  bool ShouldTrigger(const PreProcessor& pre) const;

  const std::map<ClusterId, Cluster>& clusters() const { return clusters_; }

  /// Cluster ids sorted by descending volume; at most `k` entries.
  std::vector<ClusterId> TopClustersByVolume(size_t k) const;

  /// Sum of all cluster volumes within the volume window.
  double TotalVolume() const;

  /// Cluster the template currently belongs to, or -1 if unassigned.
  ClusterId AssignmentOf(TemplateId id) const;

  /// Average arrival-rate series of the cluster's members over [from, to)
  /// at `interval_seconds` — the signal the Forecaster trains on.
  Result<TimeSeries> CenterSeries(const PreProcessor& pre, ClusterId id,
                                  int64_t interval_seconds, Timestamp from,
                                  Timestamp to) const;

  /// Nearest-center probe exactly as an update pass would run it (kd-tree,
  /// linear, or sampled according to the active plan) — the benchmark hook
  /// for comparing probe strategies on identical state.
  ClusterId ProbeBest(const ArrivalRateFeature::Feature& feature) const {
    return FindBestCluster(feature, /*exclude=*/-1);
  }

  /// True when the sampled probing plan is active (tests/benches).
  bool sampled_probing_active() const { return probe_sampled_; }

  /// Number of template->cluster assignment changes in the last Update().
  size_t last_update_moves() const { return last_update_moves_; }

  Timestamp last_update_time() const { return last_update_time_; }

  /// Checkpoint support: the next id a new cluster would receive. Persisted
  /// so ids stay stable across restarts even when the newest cluster has
  /// been merged away.
  ClusterId next_cluster_id() const { return next_cluster_id_; }

  /// Checkpoint support: replaces the whole clustering state (clusters with
  /// centers/members/volumes, id counter, last update time) and rebuilds the
  /// template->cluster index from the member sets. Validates internal
  /// consistency — a template in two clusters, a non-positive id, an id at
  /// or above `next_cluster_id`, or a non-finite volume is rejected and the
  /// clusterer is left untouched.
  Status RestoreState(std::map<ClusterId, Cluster> clusters,
                      ClusterId next_cluster_id, Timestamp last_update_time);

 private:
  using Feature = ArrivalRateFeature::Feature;

  /// Similarity between a template feature and a center, restricted to the
  /// positions the template has history for (Section 5.1's new-template
  /// comparison rule). Full-vector similarity when covered_from == 0.
  double Similarity(const Feature& feature, const Vector& center) const;

  double CenterSimilarity(const Vector& a, const Vector& b) const;

  /// Finds the most similar cluster center to `feature` with similarity
  /// > rho, excluding `exclude` (-1 = none). Returns -1 if none qualify.
  ClusterId FindBestCluster(const Feature& feature, ClusterId exclude) const;

  /// The sampled probe: coarse masked-cosine over probe_dims_ for every
  /// center, exact Similarity() verification of the top candidates.
  ClusterId FindBestSampled(const Feature& feature, ClusterId exclude) const;

  /// Decides (from the template count and probe_mode) whether this pass
  /// runs sampled probing, and regenerates the deterministic dimension
  /// subset when it does. Below the threshold this touches no RNG state.
  void RefreshProbePlan(size_t num_templates);

  void RebuildSearchIndex();
  void RecomputeCenter(Cluster& cluster);
  ClusterId NewCluster(TemplateId member, const Feature& feature);

  Options options_;
  ArrivalRateFeature feature_;
  std::map<ClusterId, Cluster> clusters_;
  std::unordered_map<TemplateId, ClusterId> assignment_;
  std::unordered_map<TemplateId, Feature> features_;  ///< current pass features
  ClusterId next_cluster_id_ = 1;
  Timestamp last_update_time_ = 0;
  size_t last_update_moves_ = 0;

  // Nearest-center search state, rebuilt per pass.
  KdTree kdtree_;
  std::vector<ClusterId> kdtree_ids_;
  bool probe_sampled_ = false;       ///< current plan uses sampled probing
  std::vector<size_t> probe_dims_;   ///< sorted coarse-pass dimension subset

  // Instrument handles (owned by the registry; see DESIGN.md §10).
  Counter* updates_total_ = nullptr;
  Counter* clusters_created_total_ = nullptr;
  Counter* clusters_merged_total_ = nullptr;
  Counter* templates_moved_total_ = nullptr;
  Counter* kdtree_queries_total_ = nullptr;
  Counter* kdtree_probes_total_ = nullptr;  ///< nodes visited across queries
  Counter* sampled_queries_total_ = nullptr;  ///< sampled-probe lookups
  Gauge* clusters_gauge_ = nullptr;
  Gauge* last_update_moves_gauge_ = nullptr;
  Histogram* update_seconds_ = nullptr;
};

}  // namespace qb5000

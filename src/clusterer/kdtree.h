#pragma once

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace qb5000 {

/// Static kd-tree over a set of points, used by the Clusterer to find the
/// nearest existing cluster center for a template's (normalized) feature
/// vector [Bentley 75]. The tree is rebuilt per clustering pass — cluster
/// counts are small (hundreds) and cluster centers move between passes, so
/// a static tree is both simpler and faster than incremental maintenance.
class KdTree {
 public:
  KdTree() = default;

  /// Builds the tree over `points` (all must share one dimension). Indices
  /// returned by Nearest() refer to positions in this input vector.
  void Build(std::vector<Vector> points);

  /// Result of a nearest-neighbor query.
  struct Neighbor {
    int index = -1;              ///< index into the Build() input; -1 if empty
    double distance_squared = 0; ///< squared Euclidean distance
    size_t nodes_probed = 0;     ///< tree nodes visited (pruning efficiency)
  };

  /// Exact nearest neighbor of `query` (empty tree -> index -1).
  Neighbor Nearest(const Vector& query) const;

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

 private:
  struct Node {
    int point = -1;  ///< index into points_
    int left = -1;
    int right = -1;
    size_t axis = 0;
  };

  int BuildRange(std::vector<int>& idx, size_t begin, size_t end, size_t depth);
  void Search(int node, const Vector& query, Neighbor& best) const;

  std::vector<Vector> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace qb5000

#include "clusterer/online_clusterer.h"

#include <algorithm>
#include <cmath>

#include "common/finite.h"

#include "math/stats.h"

namespace qb5000 {
namespace {

Vector Normalized(const Vector& v) {
  double n = Norm(v);
  if (n == 0.0) return v;
  return ScaleVec(v, 1.0 / n);
}

/// Cosine similarity over positions [from, end); 0 if either restricted
/// vector is all zeros.
double MaskedCosine(const Vector& a, const Vector& b, size_t from) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = from; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

double MaskedL2Similarity(const Vector& a, const Vector& b, size_t from) {
  double sum = 0.0;
  for (size_t i = from; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return 1.0 / (1.0 + std::sqrt(sum));
}

}  // namespace

OnlineClusterer::OnlineClusterer(Options options)
    : options_(options), feature_(options.feature) {
  MetricsRegistry& m = options_.metrics != nullptr ? *options_.metrics
                                                   : MetricsRegistry::Global();
  updates_total_ = m.GetCounter("clusterer.updates_total");
  clusters_created_total_ = m.GetCounter("clusterer.clusters_created_total");
  clusters_merged_total_ = m.GetCounter("clusterer.clusters_merged_total");
  templates_moved_total_ = m.GetCounter("clusterer.templates_moved_total");
  kdtree_queries_total_ = m.GetCounter("clusterer.kdtree_queries_total");
  kdtree_probes_total_ = m.GetCounter("clusterer.kdtree_probes_total");
  sampled_queries_total_ = m.GetCounter("clusterer.sampled_queries_total");
  clusters_gauge_ = m.GetGauge("clusterer.clusters");
  last_update_moves_gauge_ = m.GetGauge("clusterer.last_update_moves");
  update_seconds_ = m.GetHistogram("clusterer.update_seconds");
}

double OnlineClusterer::Similarity(const Feature& feature,
                                   const Vector& center) const {
  if (feature.covered_from >= feature.values.size()) return 0.0;
  if (options_.feature_mode == FeatureMode::kArrivalRate) {
    return MaskedCosine(feature.values, center, feature.covered_from);
  }
  // Logical features: map L2 distance into (0, 1] so the same rho threshold
  // semantics apply (identical features -> 1).
  return MaskedL2Similarity(feature.values, center, feature.covered_from);
}

double OnlineClusterer::CenterSimilarity(const Vector& a, const Vector& b) const {
  if (options_.feature_mode == FeatureMode::kArrivalRate) {
    return CosineSimilarity(a, b);
  }
  return 1.0 / (1.0 + std::sqrt(SquaredL2Distance(a, b)));
}

void OnlineClusterer::RefreshProbePlan(size_t num_templates) {
  bool want =
      options_.probe_mode == ProbeMode::kSampled ||
      (options_.probe_mode == ProbeMode::kAuto &&
       num_templates >= options_.sampled_probe_template_threshold);
  probe_sampled_ = want;
  probe_dims_.clear();
  if (!want) return;
  size_t dim = options_.feature_mode == FeatureMode::kArrivalRate
                   ? feature_.dimension()
                   : LogicalFeature::kDimension;
  size_t k = std::min(options_.sampled_probe_dims, dim);
  if (k == 0 || dim == 0) {
    probe_sampled_ = false;
    return;
  }
  // Floyd's sampling over a private Rng: deterministic in (seed, dim, k),
  // and no shared RNG stream is consumed — below the threshold this whole
  // function is side-effect free.
  Rng rng(options_.feature.seed ^ 0x53616d706c656421ULL);
  std::set<size_t> chosen;
  for (size_t j = dim - k; j < dim; ++j) {
    size_t t = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(j)));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  probe_dims_.assign(chosen.begin(), chosen.end());
}

ClusterId OnlineClusterer::FindBestSampled(const Feature& feature,
                                           ClusterId exclude) const {
  sampled_queries_total_->Add();
  size_t keep = std::max<size_t>(1, options_.sampled_probe_candidates);
  // Coarse pass: masked cosine restricted to the probe dimensions. Small
  // fixed-size top list — `keep` is single digits, linear insert is fine.
  std::vector<std::pair<double, ClusterId>> top;
  top.reserve(keep + 1);
  for (const auto& [id, cluster] : clusters_) {
    if (id == exclude) continue;
    const Vector& center = cluster.center;
    size_t limit = std::min(feature.values.size(), center.size());
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t d : probe_dims_) {
      if (d < feature.covered_from || d >= limit) continue;
      double av = feature.values[d];
      double bv = center[d];
      dot += av * bv;
      na += av * av;
      nb += bv * bv;
    }
    if (na == 0.0 || nb == 0.0) continue;
    double score = dot / std::sqrt(na * nb);
    auto pos = std::find_if(top.begin(), top.end(),
                            [score](const auto& e) { return e.first < score; });
    top.insert(pos, {score, id});
    if (top.size() > keep) top.pop_back();
  }
  // Exact verification of the shortlist against the real rho test.
  ClusterId best = -1;
  double best_sim = options_.rho;
  for (const auto& [score, id] : top) {
    (void)score;
    auto it = clusters_.find(id);
    if (it == clusters_.end()) continue;
    double sim = Similarity(feature, it->second.center);
    if (sim > best_sim) {
      best_sim = sim;
      best = id;
    }
  }
  return best;
}

void OnlineClusterer::RebuildSearchIndex() {
  if (probe_sampled_) {
    // Sampled probing never consults the tree; skipping the O(n log n)
    // rebuild after every placement is most of its win.
    kdtree_.Build({});
    kdtree_ids_.clear();
    return;
  }
  kdtree_ids_.clear();
  std::vector<Vector> points;
  points.reserve(clusters_.size());
  for (const auto& [id, cluster] : clusters_) {
    if (options_.feature_mode == FeatureMode::kArrivalRate &&
        Norm(cluster.center) == 0.0) {
      continue;  // zero centers cannot be normalized; matched exactly below
    }
    kdtree_ids_.push_back(id);
    points.push_back(options_.feature_mode == FeatureMode::kArrivalRate
                         ? Normalized(cluster.center)
                         : cluster.center);
  }
  kdtree_.Build(std::move(points));
}

ClusterId OnlineClusterer::FindBestCluster(const Feature& feature,
                                           ClusterId exclude) const {
  if (clusters_.empty()) return -1;
  if (feature.covered_from >= feature.values.size()) return -1;
  bool full_coverage = feature.covered_from == 0;
  bool is_zero = options_.feature_mode == FeatureMode::kArrivalRate &&
                 Norm(feature.values) == 0.0;
  if (is_zero) return -1;  // cosine similarity with everything is 0 < rho

  if (probe_sampled_) return FindBestSampled(feature, exclude);

  // kd-tree fast path: only valid when the feature covers the full sample
  // grid (masked similarity reorders neighbors otherwise). On the unit
  // sphere |a-b|^2 = 2 - 2 cos(a,b), so the Euclidean nearest neighbor is
  // the cosine-most-similar center. Logical features use raw L2 directly.
  if (options_.use_kdtree && full_coverage && !kdtree_.empty()) {
    Vector query = options_.feature_mode == FeatureMode::kArrivalRate
                       ? Normalized(feature.values)
                       : feature.values;
    KdTree::Neighbor nn = kdtree_.Nearest(query);
    kdtree_queries_total_->Add();
    kdtree_probes_total_->Add(nn.nodes_probed);
    if (nn.index >= 0) {
      ClusterId best = kdtree_ids_[static_cast<size_t>(nn.index)];
      if (best != exclude) {
        auto it = clusters_.find(best);
        if (it != clusters_.end() &&
            Similarity(feature, it->second.center) > options_.rho) {
          return best;
        }
      }
      // The excluded cluster was nearest, or the nearest fails rho: fall
      // through to the exact scan (rare path, keeps the result exact).
    }
  }
  ClusterId best = -1;
  double best_sim = options_.rho;
  for (const auto& [id, cluster] : clusters_) {
    if (id == exclude) continue;
    double sim = Similarity(feature, cluster.center);
    if (sim > best_sim) {
      best_sim = sim;
      best = id;
    }
  }
  return best;
}

void OnlineClusterer::RecomputeCenter(Cluster& cluster) {
  if (cluster.members.empty()) return;
  auto first = features_.find(*cluster.members.begin());
  if (first == features_.end()) return;
  Vector center(first->second.values.size(), 0.0);
  size_t counted = 0;
  for (TemplateId member : cluster.members) {
    auto it = features_.find(member);
    if (it == features_.end()) continue;
    for (size_t i = 0; i < center.size(); ++i) center[i] += it->second.values[i];
    ++counted;
  }
  if (counted > 0) {
    for (double& c : center) c /= static_cast<double>(counted);
  }
  cluster.center = std::move(center);
}

ClusterId OnlineClusterer::NewCluster(TemplateId member, const Feature& feature) {
  clusters_created_total_->Add();
  ClusterId id = next_cluster_id_++;
  Cluster cluster;
  cluster.id = id;
  cluster.center = feature.values;
  cluster.members.insert(member);
  clusters_.emplace(id, std::move(cluster));
  assignment_[member] = id;
  return id;
}

void OnlineClusterer::Update(const PreProcessor& pre, Timestamp now) {
  ScopedTimer update_timer(update_seconds_);
  updates_total_->Add();
  last_update_moves_ = 0;

  // Extract this pass's features (one shared sample grid) and volumes.
  // One scratch series serves every extraction and volume window — with
  // compressed histories this loop would otherwise materialize (and free) a
  // dense series per template per pass.
  feature_.Resample(now);
  features_.clear();
  std::unordered_map<TemplateId, double> volumes;
  std::vector<TemplateId> ids = pre.TemplateIds();
  RefreshProbePlan(ids.size());
  TimeSeries scratch;
  for (TemplateId id : ids) {
    const auto* info = pre.GetTemplate(id);
    if (info == nullptr) continue;
    if (options_.feature_mode == FeatureMode::kArrivalRate) {
      features_[id] = feature_.ExtractWithCoverage(info->history, &scratch);
    } else {
      Feature f;
      f.values = LogicalFeature::Extract(*info);
      f.covered_from = 0;
      features_[id] = std::move(f);
    }
    volumes[id] = info->history.RangeTotal(
        now - options_.volume_window_seconds, now, &scratch);
  }

  // Drop assignments for templates the Pre-Processor has evicted.
  for (auto it = assignment_.begin(); it != assignment_.end();) {
    if (features_.count(it->first) == 0) {
      auto cluster_it = clusters_.find(it->second);
      if (cluster_it != clusters_.end()) {
        cluster_it->second.members.erase(it->first);
        if (cluster_it->second.members.empty()) clusters_.erase(cluster_it);
      }
      it = assignment_.erase(it);
    } else {
      ++it;
    }
  }

  // Centers move to this pass's feature space before matching.
  for (auto& [id, cluster] : clusters_) {
    (void)id;
    RecomputeCenter(cluster);
  }
  RebuildSearchIndex();

  // Step 1: place templates that have no cluster yet.
  for (TemplateId id : ids) {
    if (assignment_.count(id)) continue;
    const Feature& feature = features_[id];
    ClusterId target = FindBestCluster(feature, /*exclude=*/-1);
    if (target < 0) {
      NewCluster(id, feature);
    } else {
      Cluster& cluster = clusters_.at(target);
      cluster.members.insert(id);
      assignment_[id] = target;
      RecomputeCenter(cluster);
    }
    ++last_update_moves_;
    RebuildSearchIndex();
  }

  // Step 2: re-check existing members against their cluster center; move
  // drifters. The check uses the leave-one-out center (the mean of the
  // *other* members) so a drifting template cannot anchor itself in a small
  // cluster. Changes are applied once (no recursive cascade), deferring
  // knock-on effects to the next update period as the paper does.
  for (TemplateId id : ids) {
    auto assigned = assignment_.find(id);
    if (assigned == assignment_.end()) continue;
    ClusterId current = assigned->second;
    Cluster& cluster = clusters_.at(current);
    size_t n = cluster.members.size();
    if (n == 1) continue;  // own center, trivially close
    const Feature& feature = features_[id];
    Vector loo_center(cluster.center.size());
    double scale = static_cast<double>(n) / static_cast<double>(n - 1);
    for (size_t i = 0; i < loo_center.size(); ++i) {
      loo_center[i] =
          scale * (cluster.center[i] - feature.values[i] / static_cast<double>(n));
    }
    if (Similarity(feature, loo_center) > options_.rho) continue;
    cluster.members.erase(id);
    RecomputeCenter(cluster);
    ClusterId target = FindBestCluster(feature, /*exclude=*/current);
    if (target < 0) {
      assignment_.erase(assigned);
      NewCluster(id, feature);
    } else {
      Cluster& next = clusters_.at(target);
      next.members.insert(id);
      assignment_[id] = target;
      RecomputeCenter(next);
    }
    ++last_update_moves_;
    RebuildSearchIndex();
  }

  // Step 3: merge clusters whose centers are mutually similar. The larger
  // cluster keeps its id so day-over-day identity is stable.
  bool merged = true;
  while (merged) {
    merged = false;
    for (auto it_a = clusters_.begin(); it_a != clusters_.end() && !merged;
         ++it_a) {
      auto it_b = it_a;
      for (++it_b; it_b != clusters_.end(); ++it_b) {
        if (CenterSimilarity(it_a->second.center, it_b->second.center) <=
            options_.rho) {
          continue;
        }
        Cluster& keep = it_a->second.members.size() >= it_b->second.members.size()
                            ? it_a->second
                            : it_b->second;
        Cluster& absorb = (&keep == &it_a->second) ? it_b->second : it_a->second;
        for (TemplateId member : absorb.members) {
          keep.members.insert(member);
          assignment_[member] = keep.id;
        }
        ++last_update_moves_;
        clusters_merged_total_->Add();
        ClusterId dead = absorb.id;
        RecomputeCenter(keep);
        clusters_.erase(dead);
        merged = true;
        break;
      }
    }
  }
  RebuildSearchIndex();

  // Refresh volumes.
  for (auto& [id, cluster] : clusters_) {
    (void)id;
    cluster.volume = 0.0;
    for (TemplateId member : cluster.members) {
      cluster.volume += volumes[member];
    }
  }
  last_update_time_ = now;
  templates_moved_total_->Add(last_update_moves_);
  clusters_gauge_->Set(static_cast<double>(clusters_.size()));
  last_update_moves_gauge_->Set(static_cast<double>(last_update_moves_));
}

bool OnlineClusterer::ShouldTrigger(const PreProcessor& pre) const {
  return pre.NewTemplateRatio(last_update_time_) >
         options_.new_template_trigger_ratio;
}

std::vector<ClusterId> OnlineClusterer::TopClustersByVolume(size_t k) const {
  std::vector<std::pair<double, ClusterId>> ranked;
  ranked.reserve(clusters_.size());
  for (const auto& [id, cluster] : clusters_) {
    ranked.emplace_back(cluster.volume, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<ClusterId> top;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) top.push_back(ranked[i].second);
  return top;
}

double OnlineClusterer::TotalVolume() const {
  double total = 0.0;
  for (const auto& [id, cluster] : clusters_) {
    (void)id;
    total += cluster.volume;
  }
  return total;
}

Status OnlineClusterer::RestoreState(std::map<ClusterId, Cluster> clusters,
                                     ClusterId next_cluster_id,
                                     Timestamp last_update_time) {
  std::unordered_map<TemplateId, ClusterId> assignment;
  for (const auto& [id, cluster] : clusters) {
    if (id <= 0 || id >= next_cluster_id) {
      return Status::InvalidArgument("cluster id out of range");
    }
    if (cluster.id != id) {
      return Status::InvalidArgument("cluster id mismatch");
    }
    if (cluster.members.empty()) {
      return Status::InvalidArgument("restored cluster has no members");
    }
    if (!IsFinite(cluster.volume) || cluster.volume < 0.0) {
      return Status::InvalidArgument("bad cluster volume");
    }
    for (double c : cluster.center) {
      if (!IsFinite(c)) return Status::InvalidArgument("bad center value");
    }
    for (TemplateId member : cluster.members) {
      if (!assignment.emplace(member, id).second) {
        return Status::InvalidArgument("template assigned to two clusters");
      }
    }
  }
  clusters_ = std::move(clusters);
  assignment_ = std::move(assignment);
  features_.clear();
  next_cluster_id_ = next_cluster_id;
  last_update_time_ = last_update_time;
  last_update_moves_ = 0;
  RefreshProbePlan(assignment_.size());
  RebuildSearchIndex();
  clusters_gauge_->Set(static_cast<double>(clusters_.size()));
  return Status::Ok();
}

ClusterId OnlineClusterer::AssignmentOf(TemplateId id) const {
  auto it = assignment_.find(id);
  return it == assignment_.end() ? -1 : it->second;
}

Result<TimeSeries> OnlineClusterer::CenterSeries(const PreProcessor& pre,
                                                 ClusterId id,
                                                 int64_t interval_seconds,
                                                 Timestamp from,
                                                 Timestamp to) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) return Status::NotFound("unknown cluster");
  const Cluster& cluster = it->second;
  if (cluster.members.empty()) return Status::FailedPrecondition("empty cluster");
  TimeSeries sum(AlignDown(from, interval_seconds), interval_seconds);
  TimeSeries scratch;
  bool first = true;
  size_t counted = 0;
  for (TemplateId member : cluster.members) {
    const auto* info = pre.GetTemplate(member);
    if (info == nullptr) continue;
    // First member fills `sum` directly; the rest go through one reused
    // scratch buffer. Same additions in the same order as the per-member
    // Series() materialization this replaces.
    TimeSeries* target = first ? &sum : &scratch;
    auto st = info->history.WindowInto(interval_seconds, from, to, target);
    if (!st.ok()) return st;
    if (first) {
      first = false;
    } else {
      st = sum.AddSeries(scratch);
      if (!st.ok()) return st;
    }
    ++counted;
  }
  if (counted == 0) return Status::FailedPrecondition("no member histories");
  sum.Scale(1.0 / static_cast<double>(counted));
  return sum;
}

}  // namespace qb5000

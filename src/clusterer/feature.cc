#include "clusterer/feature.h"

#include <algorithm>
#include <functional>
#include <set>

#include "sql/parser.h"

namespace qb5000 {

void ArrivalRateFeature::Resample(Timestamp now) {
  sample_times_.clear();
  sample_times_.reserve(options_.num_samples);
  Timestamp window_start = now - options_.window_seconds;
  // Deterministic in (seed, now): repeated clustering passes at the same
  // timestamp see identical sample grids, making Update() idempotent.
  Rng rng(options_.seed ^ (static_cast<uint64_t>(now) * 0x9E3779B97F4A7C15ULL));
  for (size_t i = 0; i < options_.num_samples; ++i) {
    Timestamp t = window_start +
                  rng.UniformInt(0, options_.window_seconds / kSecondsPerMinute - 1) *
                      kSecondsPerMinute;
    sample_times_.push_back(t);
  }
  std::sort(sample_times_.begin(), sample_times_.end());
}

ArrivalRateFeature::Feature ArrivalRateFeature::ExtractWithCoverage(
    const ArrivalHistory& history, TimeSeries* scratch) const {
  Feature out;
  out.values = Extract(history, scratch);
  if (history.Total() == 0.0) {
    out.covered_from = out.values.size();
    return out;
  }
  Timestamp first = history.FirstTime();
  size_t i = 0;
  while (i < sample_times_.size() && sample_times_[i] < first) ++i;
  out.covered_from = i;
  return out;
}

Vector ArrivalRateFeature::Extract(const ArrivalHistory& history,
                                   TimeSeries* scratch) const {
  Vector feature(sample_times_.size(), 0.0);
  if (sample_times_.empty()) return feature;
  // One materialization at the smoothing interval covering all samples,
  // then point lookups. The series is zero-filled outside the recorded
  // range, which matches the paper's treatment of new templates (missing
  // history = 0).
  int64_t interval = options_.smoothing_interval_seconds;
  TimeSeries local;
  TimeSeries* window = scratch != nullptr ? scratch : &local;
  if (!history
           .WindowInto(interval, sample_times_.front(),
                       sample_times_.back() + interval, window)
           .ok()) {
    return feature;
  }
  for (size_t i = 0; i < sample_times_.size(); ++i) {
    feature[i] = window->ValueAt(sample_times_[i]);
  }
  return feature;
}

namespace {

void HashInto(const std::string& name, Vector& feature, size_t offset) {
  size_t bucket = std::hash<std::string>{}(name) % LogicalFeature::kHashBuckets;
  feature[offset + bucket] += 1.0;
}

void CountColumns(const sql::Expr* e, std::set<std::string>* columns,
                  double* aggregations) {
  if (e == nullptr) return;
  if (e->kind == sql::ExprKind::kColumnRef) columns->insert(e->column);
  if (e->kind == sql::ExprKind::kFuncCall) {
    if (e->func == "COUNT" || e->func == "SUM" || e->func == "AVG" ||
        e->func == "MIN" || e->func == "MAX") {
      *aggregations += 1.0;
    }
  }
  CountColumns(e->left.get(), columns, aggregations);
  CountColumns(e->right.get(), columns, aggregations);
  for (const auto& child : e->list) CountColumns(child.get(), columns, aggregations);
}

}  // namespace

Vector LogicalFeature::Extract(const PreProcessor::TemplateInfo& info) {
  Vector feature(kDimension, 0.0);
  feature[static_cast<size_t>(info.type)] = 1.0;
  constexpr size_t kTableOffset = 4;
  constexpr size_t kColumnOffset = 4 + kHashBuckets;
  constexpr size_t kCountsOffset = 4 + 2 * kHashBuckets;

  for (const auto& table : info.tables) HashInto(table, feature, kTableOffset);

  auto parsed = sql::Parse(info.text);
  if (!parsed.ok()) {
    // Fallback templates: hash the raw text for a stable (if coarse) key.
    HashInto(info.text, feature, kTableOffset);
    return feature;
  }

  std::set<std::string> columns;
  double aggregations = 0.0;
  double joins = 0.0, group_bys = 0.0, havings = 0.0, order_bys = 0.0;
  switch (parsed->type) {
    case sql::StatementType::kSelect: {
      const auto& s = *parsed->select;
      for (const auto& item : s.items) {
        CountColumns(item.expr.get(), &columns, &aggregations);
      }
      CountColumns(s.where.get(), &columns, &aggregations);
      CountColumns(s.having.get(), &columns, &aggregations);
      for (const auto& g : s.group_by) CountColumns(g.get(), &columns, &aggregations);
      for (const auto& o : s.order_by) {
        CountColumns(o.expr.get(), &columns, &aggregations);
      }
      for (const auto& j : s.joins) CountColumns(j.on.get(), &columns, &aggregations);
      joins = static_cast<double>(s.joins.size());
      group_bys = static_cast<double>(s.group_by.size());
      havings = s.having ? 1.0 : 0.0;
      order_bys = static_cast<double>(s.order_by.size());
      break;
    }
    case sql::StatementType::kInsert:
      for (const auto& col : parsed->insert->columns) columns.insert(col);
      break;
    case sql::StatementType::kUpdate:
      for (const auto& [col, value] : parsed->update->assignments) {
        columns.insert(col);
        CountColumns(value.get(), &columns, &aggregations);
      }
      CountColumns(parsed->update->where.get(), &columns, &aggregations);
      break;
    case sql::StatementType::kDelete:
      CountColumns(parsed->del->where.get(), &columns, &aggregations);
      break;
  }
  for (const auto& col : columns) HashInto(col, feature, kColumnOffset);
  feature[kCountsOffset + 0] = joins;
  feature[kCountsOffset + 1] = group_bys;
  feature[kCountsOffset + 2] = havings;
  feature[kCountsOffset + 3] = order_bys;
  feature[kCountsOffset + 4] = aggregations;
  return feature;
}

}  // namespace qb5000

#pragma once

#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "math/matrix.h"
#include "preprocessor/arrival_history.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {

/// Builds arrival-rate-history feature vectors (Section 5.1): a template's
/// feature is its arrival-rate values at a fixed set of randomly sampled
/// minute timestamps within a trailing window. Templates compared with the
/// same sampler instance therefore share sample positions, making cosine
/// similarity meaningful.
class ArrivalRateFeature {
 public:
  struct Options {
    size_t num_samples = 288;  ///< sampled time points (paper uses 10k/month)
    int64_t window_seconds = 30 * kSecondsPerDay;
    uint64_t seed = 17;
    /// Arrival rates are read from buckets of this width at the sampled
    /// positions. Smoothing to one hour makes the similarity robust to
    /// sparse per-minute recording without changing pattern shape.
    int64_t smoothing_interval_seconds = kSecondsPerHour;
  };

  ArrivalRateFeature() : ArrivalRateFeature(Options()) {}
  explicit ArrivalRateFeature(Options options)
      : options_(options), rng_(options.seed) {
    Resample(0);
  }

  /// Draws a fresh set of sorted sample timestamps in [now - window, now).
  /// Call once per clustering pass so all templates are compared at the
  /// same positions.
  void Resample(Timestamp now);

  /// A feature vector plus the index of the first sample position the
  /// template actually has history for. New templates are compared to
  /// cluster centers only over [covered_from, end) — the paper's "compare
  /// its available timestamps with the corresponding subset" rule.
  struct Feature {
    Vector values;
    size_t covered_from = 0;  ///< == values.size() when history is empty
  };

  /// Extracts the feature vector for one template's history. `scratch`
  /// (optional) receives the materialized smoothing window, so extraction
  /// loops over many templates reuse one buffer instead of allocating a
  /// dense series per template. Bit-identical output either way.
  Vector Extract(const ArrivalHistory& history,
                 TimeSeries* scratch = nullptr) const;

  /// Extracts the feature with its coverage boundary.
  Feature ExtractWithCoverage(const ArrivalHistory& history,
                              TimeSeries* scratch = nullptr) const;

  const std::vector<Timestamp>& sample_times() const { return sample_times_; }
  size_t dimension() const { return options_.num_samples; }

 private:
  Options options_;
  Rng rng_;
  std::vector<Timestamp> sample_times_;
};

/// Builds logical feature vectors (Section 7.7's AUTO-LOGICAL baseline):
/// statement type, hashed table and column references, clause counts, and
/// aggregation counts. Compared with L2 distance.
class LogicalFeature {
 public:
  /// Number of hash buckets for table and column names each.
  static constexpr size_t kHashBuckets = 16;

  /// Feature layout: [4 type one-hot | 16 table buckets | 16 column buckets |
  /// joins, group-bys, having, order-bys, aggregations] = 41 dims.
  static constexpr size_t kDimension = 4 + 2 * kHashBuckets + 5;

  /// Extracts the logical feature from a template's canonical text.
  /// Unparseable (fallback) templates hash the whole text into the table
  /// buckets so they still receive a stable feature.
  static Vector Extract(const PreProcessor::TemplateInfo& info);
};

}  // namespace qb5000

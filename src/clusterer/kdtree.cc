#include "clusterer/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "math/stats.h"

namespace qb5000 {

void KdTree::Build(std::vector<Vector> points) {
  points_ = std::move(points);
  nodes_.clear();
  root_ = -1;
  if (points_.empty()) return;
  QB_CHECK_GT(points_[0].size(), 0u);
  for (const Vector& p : points_) {
    QB_CHECK_EQ(p.size(), points_[0].size());
  }
  std::vector<int> idx(points_.size());
  std::iota(idx.begin(), idx.end(), 0);
  nodes_.reserve(points_.size());
  root_ = BuildRange(idx, 0, idx.size(), 0);
}

int KdTree::BuildRange(std::vector<int>& idx, size_t begin, size_t end,
                       size_t depth) {
  if (begin >= end) return -1;
  size_t dim = points_[0].size();
  size_t axis = depth % dim;
  size_t mid = begin + (end - begin) / 2;
  std::nth_element(idx.begin() + begin, idx.begin() + mid, idx.begin() + end,
                   [&](int a, int b) { return points_[a][axis] < points_[b][axis]; });
  Node node;
  node.point = idx[mid];
  node.axis = axis;
  int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  int left = BuildRange(idx, begin, mid, depth + 1);
  int right = BuildRange(idx, mid + 1, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

KdTree::Neighbor KdTree::Nearest(const Vector& query) const {
  Neighbor best;
  if (root_ < 0) return best;
  QB_CHECK_EQ(query.size(), points_[0].size());
  best.distance_squared = std::numeric_limits<double>::infinity();
  Search(root_, query, best);
  return best;
}

void KdTree::Search(int node_id, const Vector& query, Neighbor& best) const {
  if (node_id < 0) return;
  const Node& node = nodes_[node_id];
  ++best.nodes_probed;
  double d = SquaredL2Distance(points_[node.point], query);
  if (d < best.distance_squared) {
    best.distance_squared = d;
    best.index = node.point;
  }
  double delta = query[node.axis] - points_[node.point][node.axis];
  int near = delta < 0 ? node.left : node.right;
  int far = delta < 0 ? node.right : node.left;
  Search(near, query, best);
  if (delta * delta < best.distance_squared) Search(far, query, best);
}

}  // namespace qb5000

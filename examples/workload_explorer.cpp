// Workload explorer: feed any of the bundled synthetic traces through the
// Pre-Processor and Clusterer and inspect what QB5000 sees — template
// counts, cluster structure, coverage, and the shape of the biggest
// cluster's arrival-rate history.
//
// Usage: example_workload_explorer [admissions|bustracker|mooc|noisy]
#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "clusterer/online_clusterer.h"
#include "preprocessor/preprocessor.h"
#include "workload/workload.h"

using namespace qb5000;

namespace {

// Renders a series as a row of unicode bars.
void PrintSparkline(const char* label, std::span<const double> values) {
  static const char* kBars[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double peak = 0;
  for (double v : values) peak = std::max(peak, v);
  std::printf("%-18s ", label);
  for (double v : values) {
    int level = peak > 0 ? static_cast<int>(8.0 * v / peak) : 0;
    std::printf("%s", kBars[level]);
  }
  std::printf("  (peak %.0f/h)\n", peak);
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "bustracker";
  SyntheticWorkload workload =
      which == "admissions"   ? MakeAdmissions()
      : which == "mooc"       ? MakeMooc()
      : which == "noisy"      ? MakeNoisyComposite()
                              : MakeBusTracker();
  int days = which == "noisy" ? 4 : 14;

  std::printf("=== %s (paper ran it on %s) ===\n", workload.label().c_str(),
              workload.dbms_label().c_str());

  PreProcessor pre;
  Timestamp end = days * kSecondsPerDay;
  if (!workload.FeedAggregated(pre, 0, end, 10 * kSecondsPerMinute, 3).ok()) {
    std::printf("feed failed\n");
    return 1;
  }
  auto stats = workload.Stats(pre, days);
  std::printf("%d days | %zu tables | %.0f queries/day | "
              "S/I/U/D = %.0f/%.0f/%.0f/%.0f\n",
              days, stats.num_tables, stats.avg_queries_per_day, stats.selects,
              stats.inserts, stats.updates, stats.deletes);
  std::printf("%zu distinct templates\n", pre.num_templates());

  OnlineClusterer::Options copts;
  copts.feature.num_samples = 256;
  copts.feature.window_seconds = std::min<int64_t>(end, 7 * kSecondsPerDay);
  OnlineClusterer clusterer(copts);
  clusterer.Update(pre, end);
  std::printf("%zu clusters after online clustering (rho=%.2f)\n",
              clusterer.clusters().size(), copts.rho);

  auto top = clusterer.TopClustersByVolume(5);
  double total = clusterer.TotalVolume();
  double covered = 0;
  std::printf("\ntop clusters by volume (last day):\n");
  for (size_t i = 0; i < top.size(); ++i) {
    const auto& cluster = clusterer.clusters().at(top[i]);
    covered += cluster.volume;
    std::printf("  #%zu: %zu templates, %.0f queries, cumulative coverage %.1f%%\n",
                i + 1, cluster.members.size(), cluster.volume,
                total > 0 ? 100.0 * covered / total : 0.0);
  }

  // Draw the largest cluster's last three days, hour by hour.
  if (!top.empty()) {
    auto series = clusterer.CenterSeries(pre, top[0], kSecondsPerHour,
                                         end - 3 * kSecondsPerDay, end);
    if (series.ok()) {
      std::printf("\nlargest cluster, last 72 h (1 char = 1 h):\n");
      PrintSparkline("cluster center", series->values());
    }
  }
  return 0;
}

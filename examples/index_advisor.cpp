// Forecast-driven index selection: the Section 7.6 loop in miniature.
// Loads the BusTracker schema into the bundled mini-DBMS, trains QB5000 on
// a week of history, and lets the AutoAdmin-style advisor pick indexes for
// the *predicted* workload, then verifies the speedup by replaying queries.
#include <cstdio>

#include "core/qb5000.h"
#include "dbms/loader.h"
#include "sql/parser.h"
#include "tuning/index_advisor.h"
#include "workload/workload.h"

using namespace qb5000;

namespace {

// Replays one hour of materialized queries and reports mean latency.
double ReplayHourUs(dbms::Database& db, const SyntheticWorkload& workload,
                    Timestamp hour_start, uint64_t seed) {
  auto events = workload.Materialize(hour_start, hour_start + kSecondsPerHour,
                                     10 * kSecondsPerMinute, seed,
                                     /*volume_scale=*/0.02);
  if (events.empty()) return 0.0;
  double total = 0.0;
  size_t executed = 0;
  for (const auto& event : events) {
    auto result = db.Execute(event.sql);
    if (result.ok()) {
      total += result->latency_us;
      ++executed;
    }
  }
  return executed > 0 ? total / static_cast<double>(executed) : 0.0;
}

}  // namespace

int main() {
  auto workload = MakeBusTracker({.seed = 7, .volume_scale = 0.5});

  // 1. Stand up the database (no secondary indexes yet).
  dbms::Database db;
  Rng rng(99);
  if (!dbms::LoadWorkloadSchema(db, workload, rng, /*row_scale=*/0.3).ok()) {
    std::printf("schema load failed\n");
    return 1;
  }
  std::printf("Loaded %zu tables, 0 secondary indexes.\n",
              db.TableNames().size());

  // 2. Train QB5000 on a week of history.
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 7 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  Timestamp now = 7 * kSecondsPerDay + 8 * kSecondsPerHour;  // morning rush
  if (!workload.FeedAggregated(bot.mutable_preprocessor(), 0, now,
                               10 * kSecondsPerMinute, 5)
           .ok() ||
      !bot.RunMaintenance(now, /*force=*/true).ok()) {
    std::printf("training failed\n");
    return 1;
  }

  // 3. Forecast the next hour and weight each cluster's templates by it.
  auto forecast = bot.Forecast(now, kSecondsPerHour);
  if (!forecast.ok()) {
    std::printf("forecast failed: %s\n", forecast.status().ToString().c_str());
    return 1;
  }
  std::vector<AdvisorQuery> predicted;
  for (size_t i = 0; i < forecast->clusters.size(); ++i) {
    const auto& cluster = bot.clusterer().clusters().at(forecast->clusters[i]);
    double weight = forecast->queries_per_interval[i] /
                    static_cast<double>(cluster.members.size());
    for (TemplateId member : cluster.members) {
      const auto* info = bot.preprocessor().GetTemplate(member);
      if (info == nullptr) continue;
      auto stmt = sql::Parse(info->text);
      if (!stmt.ok()) continue;
      AdvisorQuery query;
      query.stmt = std::make_shared<sql::Statement>(std::move(*stmt));
      query.weight = weight;
      predicted.push_back(std::move(query));
    }
  }
  std::printf("Predicted workload: %zu templates across %zu clusters.\n",
              predicted.size(), forecast->clusters.size());

  // 4. Measure, advise, build, measure again.
  double before = ReplayHourUs(db, workload, now, 1234);
  auto recommendation = IndexAdvisor::Recommend(db, predicted, 5);
  if (!recommendation.ok()) {
    std::printf("advisor failed: %s\n",
                recommendation.status().ToString().c_str());
    return 1;
  }
  for (const auto& index : *recommendation) {
    size_t dot = index.find('.');
    db.CreateIndex(index.substr(0, dot), index.substr(dot + 1)).ok();
    std::printf("  built index %s\n", index.c_str());
  }
  double after = ReplayHourUs(db, workload, now, 1234);

  std::printf("Mean simulated query latency: %.1f us -> %.1f us (%.1fx)\n",
              before, after, after > 0 ? before / after : 0.0);
  return 0;
}

// Quickstart: feed queries into QueryBot 5000, run maintenance, and ask for
// a workload forecast — the minimal end-to-end use of the public API.
#include <cmath>
#include <cstdio>

#include "core/qb5000.h"

using namespace qb5000;

int main() {
  // Configure the pipeline: hourly forecasting interval, a one-day input
  // window, LR+RNN+KR hybrid models for 1-hour and 1-day horizons.
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kEnsemble;
  config.forecaster.model.max_epochs = 20;  // quick demo training
  config.horizons = {kSecondsPerHour, kSecondsPerDay};
  QueryBot5000 bot(config);

  // Simulate two weeks of an application issuing three query shapes with a
  // shared diurnal pattern. In production you would call bot.Ingest() from
  // the DBMS's query hook instead.
  std::printf("Ingesting 14 days of synthetic query traffic...\n");
  for (int hour = 0; hour < 14 * 24; ++hour) {
    Timestamp ts = static_cast<Timestamp>(hour) * kSecondsPerHour;
    double day_fraction = (hour % 24) / 24.0;
    int volume = static_cast<int>(50.0 * (1.5 + std::sin(2 * M_PI * day_fraction)));
    for (int i = 0; i < volume; ++i) {
      int user = hour * 131 + i;
      bot.Ingest("SELECT name FROM users WHERE user_id = " + std::to_string(user),
                 ts)
          .ok();
      if (i % 3 == 0) {
        bot.Ingest("UPDATE sessions SET last_seen = " + std::to_string(ts) +
                       " WHERE user_id = " + std::to_string(user),
                   ts)
            .ok();
      }
      if (i % 10 == 0) {
        bot.Ingest("INSERT INTO events (user_id, kind) VALUES (" +
                       std::to_string(user) + ", 3)",
                   ts)
            .ok();
      }
    }
  }
  std::printf("  %zu distinct templates from %.0f queries\n",
              bot.preprocessor().num_templates(),
              bot.preprocessor().total_queries());

  // Cluster templates and train forecasting models.
  Timestamp now = 14 * kSecondsPerDay;
  Status st = bot.RunMaintenance(now, /*force=*/true);
  if (!st.ok()) {
    std::printf("maintenance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Clustered into %zu clusters; modeling the top %zu.\n",
              bot.clusterer().clusters().size(), bot.ModeledClusters().size());

  // Forecast the next hour and the next day.
  for (int64_t horizon : {kSecondsPerHour, kSecondsPerDay}) {
    auto forecast = bot.Forecast(now, horizon);
    if (!forecast.ok()) {
      std::printf("forecast failed: %s\n", forecast.status().ToString().c_str());
      return 1;
    }
    double total = 0;
    for (double v : forecast->queries_per_interval) total += v;
    std::printf("Forecast %+2ld h: %.0f queries/hour expected across %zu clusters\n",
                static_cast<long>(horizon / kSecondsPerHour), total,
                forecast->clusters.size());
  }
  std::printf("done.\n");
  return 0;
}

// Trace replay: the file-based interface to QB5000. Feed it a trace file
// of "epoch_seconds,sql" lines (as a DBMS query hook would produce) and it
// runs the full pipeline and prints hourly forecasts for the trailing day.
//
// Usage:
//   example_trace_replay --generate <file>   write a demo BusTracker trace
//   example_trace_replay <file>              replay a trace and forecast
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/qb5000.h"
#include "workload/workload.h"

using namespace qb5000;

namespace {

int GenerateTrace(const char* path) {
  auto workload = MakeBusTracker({.seed = 3, .volume_scale = 0.5});
  // Eight days of individual queries at a replayable volume.
  auto events = workload.Materialize(0, 8 * kSecondsPerDay,
                                     10 * kSecondsPerMinute, 11,
                                     /*volume_scale=*/0.002);
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path);
    return 1;
  }
  for (const auto& event : events) {
    out << event.timestamp << ',' << event.sql << '\n';
  }
  std::printf("wrote %zu events to %s\n", events.size(), path);
  return 0;
}

int Replay(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot read %s (hint: --generate %s first)\n", path, path);
    return 1;
  }
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kEnsemble;
  config.forecaster.model.max_epochs = 20;
  config.horizons = {kSecondsPerHour, kSecondsPerDay};
  QueryBot5000 bot(config);

  std::string line;
  size_t accepted = 0, rejected = 0;
  Timestamp last_ts = 0;
  while (std::getline(in, line)) {
    size_t comma = line.find(',');
    if (comma == std::string::npos) {
      ++rejected;
      continue;
    }
    Timestamp ts = std::strtoll(line.substr(0, comma).c_str(), nullptr, 10);
    std::string sql = line.substr(comma + 1);
    if (bot.Ingest(sql, ts).ok()) {
      ++accepted;
      last_ts = std::max(last_ts, ts);
    } else {
      ++rejected;
    }
  }
  std::printf("replayed %zu queries (%zu rejected), %zu templates, last at %s\n",
              accepted, rejected, bot.preprocessor().num_templates(),
              FormatTimestamp(last_ts).c_str());
  if (accepted == 0) return 1;

  Status st = bot.RunMaintenance(last_ts, /*force=*/true);
  if (!st.ok()) {
    std::printf("maintenance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu clusters; modeling %zu\n", bot.clusterer().clusters().size(),
              bot.ModeledClusters().size());
  for (int64_t horizon : {kSecondsPerHour, kSecondsPerDay}) {
    auto forecast = bot.Forecast(last_ts, horizon);
    if (!forecast.ok()) {
      std::printf("forecast +%ldh failed: %s\n",
                  static_cast<long>(horizon / kSecondsPerHour),
                  forecast.status().ToString().c_str());
      continue;
    }
    std::printf("forecast +%2ldh:", static_cast<long>(horizon / kSecondsPerHour));
    double total = 0;
    for (size_t i = 0; i < forecast->clusters.size(); ++i) {
      std::printf("  cluster %ld -> %.0f q/h",
                  static_cast<long>(forecast->clusters[i]),
                  forecast->queries_per_interval[i]);
      total += forecast->queries_per_interval[i];
    }
    std::printf("  (total %.0f q/h)\n", total);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--generate") == 0) {
    return GenerateTrace(argv[2]);
  }
  if (argc == 2) return Replay(argv[1]);
  std::printf("usage: %s [--generate] <trace-file>\n", argv[0]);
  // With no arguments, run the full demo round trip in a temp file.
  const char* demo = "/tmp/qb5000_demo_trace.csv";
  if (GenerateTrace(demo) != 0) return 1;
  return Replay(demo);
}

// Trace replay: the file-based interface to QB5000. Feed it a trace file
// of "epoch_seconds,sql" lines (as a DBMS query hook would produce) and it
// runs the full pipeline and prints hourly forecasts for the trailing day.
//
// Usage:
//   example_trace_replay --generate <file>   write a demo BusTracker trace
//   example_trace_replay <file>              replay a trace and forecast
//   example_trace_replay --checkpoint <ckpt> <file>
//       replay the first half through an always-on checkpointing service
//       (full base + .delta sidecar), simulate a kill, restore from the
//       checkpoint pair, replay the rest — demonstrating crash recovery
//
// Add --metrics-out <file> to any replay to dump the pipeline's metrics
// registry (MetricsRegistry::ExportText, README "Observability") after the
// run: per-stage counters, gauges, and latency histograms.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "workload/workload.h"

using namespace qb5000;

namespace {

/// Set by --metrics-out; the finished pipeline's registry is dumped here.
const char* g_metrics_out = nullptr;

void DumpMetrics(const QueryBot5000& bot) {
  if (g_metrics_out == nullptr) return;
  Status st =
      WriteStringToFile(nullptr, bot.Metrics().ExportText(), g_metrics_out);
  if (!st.ok()) {
    std::printf("cannot write metrics to %s: %s\n", g_metrics_out,
                st.ToString().c_str());
  } else {
    std::printf("metrics written to %s\n", g_metrics_out);
  }
}

int GenerateTrace(const char* path) {
  auto workload = MakeBusTracker({.seed = 3, .volume_scale = 0.5});
  // Eight days of individual queries at a replayable volume.
  auto events = workload.Materialize(0, 8 * kSecondsPerDay,
                                     10 * kSecondsPerMinute, 11,
                                     /*volume_scale=*/0.002);
  std::ostringstream out;
  for (const auto& event : events) {
    out << event.timestamp << ',' << event.sql << '\n';
  }
  Status st = WriteStringToFile(nullptr, out.str(), path);
  if (!st.ok()) {
    std::printf("cannot write %s: %s\n", path, st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", events.size(), path);
  return 0;
}

QueryBot5000::Config ReplayConfig() {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kEnsemble;
  config.forecaster.model.max_epochs = 20;
  config.horizons = {kSecondsPerHour, kSecondsPerDay};
  return config;
}

struct ReplayCounts {
  size_t accepted = 0;
  size_t rejected = 0;
  Timestamp last_ts = 0;
};

ReplayCounts Feed(QueryBot5000& bot, const std::vector<TraceEvent>& events,
                  size_t from, size_t to) {
  ReplayCounts counts;
  for (size_t i = from; i < to && i < events.size(); ++i) {
    if (bot.Ingest(events[i].sql, events[i].timestamp).ok()) {
      ++counts.accepted;
      counts.last_ts = std::max(counts.last_ts, events[i].timestamp);
    } else {
      ++counts.rejected;
    }
  }
  return counts;
}

int PrintForecasts(QueryBot5000& bot, Timestamp last_ts) {
  Status st = bot.RunMaintenance(last_ts, /*force=*/true);
  if (!st.ok()) {
    std::printf("maintenance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu clusters; modeling %zu\n", bot.clusterer().clusters().size(),
              bot.ModeledClusters().size());
  for (int64_t horizon : {kSecondsPerHour, kSecondsPerDay}) {
    auto forecast = bot.Forecast(last_ts, horizon);
    if (!forecast.ok()) {
      std::printf("forecast +%ldh failed: %s\n",
                  static_cast<long>(horizon / kSecondsPerHour),
                  forecast.status().ToString().c_str());
      continue;
    }
    std::printf("forecast +%2ldh:", static_cast<long>(horizon / kSecondsPerHour));
    double total = 0;
    for (size_t i = 0; i < forecast->clusters.size(); ++i) {
      std::printf("  cluster %ld -> %.0f q/h",
                  static_cast<long>(forecast->clusters[i]),
                  forecast->queries_per_interval[i]);
      total += forecast->queries_per_interval[i];
    }
    std::printf("  (total %.0f q/h)\n", total);
  }
  return 0;
}

std::vector<TraceEvent> LoadTrace(const char* path) {
  auto data = ReadFileToString(nullptr, path);
  if (!data.ok()) {
    std::printf("cannot read %s: %s (hint: --generate %s first)\n", path,
                data.status().ToString().c_str(), path);
    return {};
  }
  std::vector<TraceEvent> events;
  std::istringstream in(*data);
  std::string line;
  while (std::getline(in, line)) {
    size_t comma = line.find(',');
    if (comma == std::string::npos) continue;
    TraceEvent event;
    event.timestamp = std::strtoll(line.substr(0, comma).c_str(), nullptr, 10);
    event.sql = line.substr(comma + 1);
    events.push_back(std::move(event));
  }
  return events;
}

int Replay(const char* path) {
  std::vector<TraceEvent> events = LoadTrace(path);
  if (events.empty()) return 1;
  QueryBot5000 bot(ReplayConfig());
  ReplayCounts counts = Feed(bot, events, 0, events.size());
  std::printf("replayed %zu queries (%zu rejected), %zu templates, last at %s\n",
              counts.accepted, counts.rejected,
              bot.preprocessor().num_templates(),
              FormatTimestamp(counts.last_ts).c_str());
  if (counts.accepted == 0) return 1;
  int rc = PrintForecasts(bot, counts.last_ts);
  DumpMetrics(bot);
  return rc;
}

/// Feeds a slice of the trace through the producer-side service API in
/// 64-query chunks, retrying kOverloaded — the documented backpressure
/// contract for the always-on deployment.
ReplayCounts FeedService(QueryBot5000& bot,
                         const std::vector<TraceEvent>& events, size_t from,
                         size_t to) {
  ReplayCounts counts;
  constexpr size_t kChunk = 64;
  std::vector<QueryArrival> batch;
  for (size_t i = from; i < to && i < events.size(); i += kChunk) {
    batch.clear();
    for (size_t j = i; j < to && j < events.size() && j < i + kChunk; ++j) {
      batch.push_back({events[j].sql, events[j].timestamp, 1.0});
    }
    while (true) {
      Status st = bot.EnqueueBatch(batch);
      if (st.ok()) {
        counts.accepted += batch.size();
        counts.last_ts = std::max(counts.last_ts, batch.back().ts);
        break;
      }
      if (st.code() != StatusCode::kOverloaded) {
        counts.rejected += batch.size();
        break;
      }
      std::this_thread::yield();  // ring full: let the drain catch up
    }
  }
  return counts;
}

/// Replays with a simulated crash in the middle — in always-on service
/// mode. The first process runs a background-checkpointing service: the
/// first periodic write is the full base, later writes append to the
/// `.delta` sidecar, and a direct RunMaintenance call mid-session shows the
/// delta log also carrying eviction cutoffs (DESIGN.md §14). The process
/// then "dies"; Restore replays base + sidecar and the second half resumes
/// where the dead service stopped.
int ReplayWithCheckpoint(const char* ckpt_path, const char* trace_path) {
  std::vector<TraceEvent> events = LoadTrace(trace_path);
  if (events.empty()) return 1;
  size_t half = events.size() / 2;

  ReplayCounts first;
  {
    QueryBot5000 bot(ReplayConfig());
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 256;
    opts.background = true;
    opts.auto_maintenance = false;  // we drive maintenance directly below
    opts.checkpoint_path = ckpt_path;
    opts.checkpoint_period_seconds = 6 * kSecondsPerHour;
    opts.compact_every = 1000;  // keep the sidecar a sidecar for the demo
    Status st = bot.StartService(opts);
    if (!st.ok()) {
      std::printf("start service failed: %s\n", st.ToString().c_str());
      return 1;
    }
    first = FeedService(bot, events, 0, half);
    bot.DrainForTest();  // settle the queue so the printed counts are final
    std::printf("first half: %zu queries, %zu templates (service mode)\n",
                first.accepted, bot.preprocessor().num_templates());
    // Caller-driven maintenance while the checkpointing service runs: any
    // eviction cutoff lands in the delta log, so the restore below cannot
    // resurrect evicted templates.
    st = bot.RunMaintenance(first.last_ts, /*force=*/true);
    if (!st.ok()) {
      std::printf("maintenance failed: %s\n", st.ToString().c_str());
      return 1;
    }
    st = bot.StopService();  // flushes the final delta append
    if (!st.ok()) {
      std::printf("stop service failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("service checkpointed to %s at %s -- simulating a crash now\n",
                ckpt_path, FormatTimestamp(first.last_ts).c_str());
  }  // the process "dies" here: everything in memory is gone

  RestoreReport report;
  auto restored = QueryBot5000::Restore(ckpt_path, ReplayConfig(), nullptr,
                                        &report);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("restored: %zu templates, %zu clusters%s%s%s%s\n",
              restored->preprocessor().num_templates(),
              restored->clusterer().clusters().size(),
              report.used_backup ? " [from .bak]" : "",
              report.delta_applied ? " [delta sidecar replayed]" : "",
              report.reclustered ? " [re-clustered]" : "",
              report.forecaster_trained ? " [models retrained]" : "");
  if (!report.detail.empty()) {
    std::printf("restore notes: %s\n", report.detail.c_str());
  }

  ReplayCounts second = Feed(*restored, events, half, events.size());
  std::printf("second half: %zu queries, %zu templates, last at %s\n",
              second.accepted, restored->preprocessor().num_templates(),
              FormatTimestamp(second.last_ts).c_str());
  int rc = PrintForecasts(*restored, second.last_ts);
  DumpMetrics(*restored);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull --metrics-out <file> out of the argument list; the remaining
  // positional arguments keep their existing meanings.
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      g_metrics_out = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() == 2 && std::strcmp(args[0], "--generate") == 0) {
    return GenerateTrace(args[1]);
  }
  if (args.size() == 3 && std::strcmp(args[0], "--checkpoint") == 0) {
    return ReplayWithCheckpoint(args[1], args[2]);
  }
  if (args.size() == 1) return Replay(args[0]);
  std::printf(
      "usage: %s [--generate | --checkpoint <ckpt>] [--metrics-out <file>] "
      "<trace-file>\n",
      argv[0]);
  // With no arguments, run the full demo round trip in a temp file,
  // including the kill/restore cycle.
  const char* demo = "/tmp/qb5000_demo_trace.csv";
  if (GenerateTrace(demo) != 0) return 1;
  return ReplayWithCheckpoint("/tmp/qb5000_demo_ckpt.qbc", demo);
}

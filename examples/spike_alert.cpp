// Spike alerting: reproduce the Section 7.3 scenario as an application.
// Train HYBRID's KR component on more than a year of the Admissions trace
// and scan a one-week-ahead forecast for spikes the ENSEMBLE-style smooth
// models would miss — the kind of advance warning a self-driving DBMS needs
// for resource provisioning before an annual deadline.
#include <cstdio>

#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "preprocessor/preprocessor.h"
#include "workload/workload.h"

using namespace qb5000;

int main() {
  auto workload = MakeAdmissions({.seed = 11, .volume_scale = 0.3});

  // Total workload volume at one-hour grain over ~13.5 months: covers the
  // year-1 deadlines (days 334/348) and trains up to just before year 2's.
  PreProcessor pre;
  Timestamp feed_until = (365 + 356) * kSecondsPerDay;   // live data for inputs
  Timestamp train_until = (365 + 320) * kSecondsPerDay;  // models see only this
  std::printf("Generating %.0f days of Admissions history...\n",
              static_cast<double>(feed_until) / kSecondsPerDay);
  if (!workload.FeedAggregated(pre, 0, feed_until, kSecondsPerHour, 17).ok()) {
    std::printf("feed failed\n");
    return 1;
  }
  TimeSeries total(0, kSecondsPerHour);
  for (TemplateId id : pre.TemplateIds()) {
    auto series = pre.GetTemplate(id)->history.Series(kSecondsPerHour, 0,
                                                      feed_until);
    if (!series.ok()) continue;
    if (total.empty()) {
      total = *series;
    } else {
      total.AddSeries(*series).ok();
    }
  }

  // KR over three-week windows at one-hour grain, predicting one week out;
  // LR as the smooth baseline (stands in for ENSEMBLE here to keep the
  // example fast — see bench_fig9_spikes for the full comparison).
  const size_t kWindow = 21 * 24;
  const size_t kHorizon = 7 * 24;
  auto dataset = BuildDataset({total.Slice(0, train_until)}, kWindow, kHorizon);
  if (!dataset.ok()) {
    std::printf("dataset failed: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  ModelOptions options;
  options.num_series = 1;
  KernelRegressionModel kr(options);
  LinearRegressionModel lr(options);
  if (!kr.Fit(dataset->x, dataset->y).ok() ||
      !lr.Fit(dataset->x, dataset->y).ok()) {
    std::printf("fit failed\n");
    return 1;
  }

  // Scan days 321..360 of year 2: the 2nd-year deadlines land on days
  // 334 + 365 = 699 and 713.
  std::printf("\nscanning one-week-ahead forecasts (gamma rule, 2.5x):\n");
  int alerts = 0;
  for (int day = 321; day <= 355; ++day) {
    Timestamp now = (365 + day) * kSecondsPerDay;
    auto window = LatestWindow({total.Slice(now - static_cast<int64_t>(kWindow) *
                                                      kSecondsPerHour,
                                            now)},
                               kWindow);
    if (!window.ok()) continue;
    auto kr_pred = kr.Predict(*window);
    auto lr_pred = lr.Predict(*window);
    if (!kr_pred.ok() || !lr_pred.ok()) continue;
    double kr_rate = ToArrivalRates(*kr_pred)[0];
    double lr_rate = ToArrivalRates(*lr_pred)[0];
    if (kr_rate > 2.5 * lr_rate && kr_rate > 100.0) {
      ++alerts;
      std::printf("  ALERT day %d+7: KR forecasts %.0f q/h vs smooth %.0f q/h "
                  "(deadline spike expected around day %d)\n",
                  day, kr_rate, lr_rate, day + 7);
    }
  }
  if (alerts == 0) {
    std::printf("  no spikes flagged (unexpected — see bench_fig9_spikes)\n");
    return 1;
  }
  std::printf("%d advance warnings raised before the year-2 deadlines.\n",
              alerts);
  return 0;
}

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timeseries.h"

namespace qb5000 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, PoissonOfNonPositiveMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-5.0), 0);
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.Poisson(10.0));
  EXPECT_NEAR(sum / kDraws, 10.0, 0.2);
}

TEST(ClockTest, AlignDown) {
  EXPECT_EQ(AlignDown(125, 60), 120);
  EXPECT_EQ(AlignDown(120, 60), 120);
  EXPECT_EQ(AlignDown(0, 60), 0);
  EXPECT_EQ(AlignDown(-1, 60), -60);
}

TEST(ClockTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0), "0+00:00:00");
  EXPECT_EQ(FormatTimestamp(kSecondsPerDay + 3 * kSecondsPerHour + 62),
            "1+03:01:02");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt * FROM t"), "select * from t");
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(TimeSeriesTest, AddAndLookup) {
  TimeSeries ts(0, 60);
  ts.Add(0, 1);
  ts.Add(59, 2);
  ts.Add(60, 5);
  ts.Add(180, 1);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.ValueAt(30), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(61), 5.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(120), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(200), 1.0);
  EXPECT_DOUBLE_EQ(ts.Total(), 9.0);
}

TEST(TimeSeriesTest, FirstAddSetsAlignedStart) {
  TimeSeries ts(0, 60);
  ts.Add(150, 4);
  EXPECT_EQ(ts.start(), 120);
  EXPECT_DOUBLE_EQ(ts.ValueAt(130), 4.0);
}

TEST(TimeSeriesTest, AggregateSumsBuckets) {
  TimeSeries ts(0, 60);
  for (int i = 0; i < 120; ++i) ts.Add(i * 60, 1.0);
  auto hourly = ts.Aggregate(3600);
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ(hourly->values()[0], 60.0);
  EXPECT_DOUBLE_EQ(hourly->values()[1], 60.0);
}

TEST(TimeSeriesTest, AggregateRejectsNonMultiple) {
  TimeSeries ts(0, 60);
  ts.Add(0, 1);
  EXPECT_FALSE(ts.Aggregate(90).ok());
  EXPECT_FALSE(ts.Aggregate(0).ok());
}

TEST(TimeSeriesTest, SliceZeroFillsOutsideRange) {
  TimeSeries ts(600, 60);
  ts.Add(600, 2);
  ts.Add(660, 3);
  TimeSeries s = ts.Slice(480, 780);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(s.values()[2], 2.0);
  EXPECT_DOUBLE_EQ(s.values()[3], 3.0);
  EXPECT_DOUBLE_EQ(s.values()[4], 0.0);
}

TEST(TimeSeriesTest, AddSeriesShapeMismatch) {
  TimeSeries a(0, 60);
  a.Add(0, 1);
  TimeSeries b(0, 120);
  b.Add(0, 1);
  EXPECT_FALSE(a.AddSeries(b).ok());
}

TEST(TimeSeriesTest, AddSeriesAndScale) {
  TimeSeries a(0, 60, {1, 2, 3});
  TimeSeries b(0, 60, {4, 5, 6});
  ASSERT_TRUE(a.AddSeries(b).ok());
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a.values()[0], 2.5);
  EXPECT_DOUBLE_EQ(a.values()[2], 4.5);
}

}  // namespace
}  // namespace qb5000

// Seeded fuzz/property harness for the SQL front door. A deterministic
// mutator shreds a corpus of valid dialect statements (truncation, token
// swaps, quote/comment injection, byte noise, deep nesting) and feeds
// thousands of variants through PreProcessor::Ingest. Invariants:
//   - never crashes / never trips a sanitizer (CI runs this under
//     ASan/UBSan),
//   - accounting is exact: `preprocessor.parse_failures_total` equals the
//     rejects the caller observed, ingests equal the accepts,
//   - templatization is deterministic: same bytes -> same fingerprint.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "preprocessor/preprocessor.h"
#include "preprocessor/templatizer.h"

namespace qb5000 {
namespace {

const char* const kCorpus[] = {
    "SELECT * FROM orders WHERE id = 42",
    "SELECT name, total FROM orders WHERE total > 10.5 AND region = 'east'",
    "SELECT id FROM users WHERE name LIKE 'a%' OR age BETWEEN 18 AND 65",
    "SELECT * FROM trips WHERE route_id IN (1, 2, 3) LIMIT 50",
    "SELECT COUNT(*) FROM events WHERE ts >= 1700000000 AND kind = 'click'",
    "INSERT INTO orders (id, total, region) VALUES (1, 9.99, 'west')",
    "INSERT INTO logs (msg) VALUES ('it''s done'), ('again'), ('more')",
    "UPDATE users SET age = 30, name = 'bob' WHERE id = 7",
    "UPDATE orders SET total = total WHERE region = 'north' AND total < 5",
    "DELETE FROM events WHERE ts < 1600000000",
    "SELECT a.id FROM a WHERE ((a.x = 1 OR a.y = 2) AND a.z = 'q')",
    "SELECT * FROM t WHERE NOT (flag = 1) ORDER BY id DESC",
};

const char* const kTokens[] = {
    "SELECT", "FROM",  "WHERE", "AND",  "OR",   "NOT",  "INSERT", "INTO",
    "VALUES", "UPDATE", "SET",  "DELETE", "IN", "LIKE", "BETWEEN", "LIMIT",
    "(", ")", ",", "=", "<", ">", "*", "'", "--", "/*", "*/", ";", "?",
    "0", "42", "-1", "1e308", "9999999999999999999", "''", "\"", "\\",
};

/// One deterministic mutation of `sql` drawn from `rng`.
std::string MutateOnce(std::string sql, Rng& rng) {
  if (sql.empty()) sql = "SELECT 1";
  switch (rng.UniformInt(0, 7)) {
    case 0: {  // truncate at a random point
      auto at = rng.UniformInt(0, static_cast<int64_t>(sql.size()));
      return sql.substr(0, static_cast<size_t>(at));
    }
    case 1: {  // flip one byte to anything (incl. non-ASCII / NUL-ish)
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
      sql[at] = static_cast<char>(rng.UniformInt(1, 255));
      return sql;
    }
    case 2: {  // swap two random characters
      size_t a = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
      size_t b = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
      std::swap(sql[a], sql[b]);
      return sql;
    }
    case 3: {  // splice a dialect token at a random position
      const char* token =
          kTokens[rng.UniformInt(0, std::size(kTokens) - 1)];
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size())));
      return sql.substr(0, at) + token + sql.substr(at);
    }
    case 4: {  // duplicate a random slice (repetition stress)
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
      size_t len = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(sql.size() - at)));
      return sql.substr(0, at + len) + sql.substr(at);
    }
    case 5:  // unterminated quote / comment injection
      return sql + (rng.Bernoulli(0.5) ? " '" : " /* ");
    case 6: {  // wrap the tail in N extra parens, sometimes past the
               // parser's recursion guard (must degrade, not overflow)
      int depth = static_cast<int>(rng.UniformInt(1, 600));
      std::string open(static_cast<size_t>(depth), '(');
      std::string close(static_cast<size_t>(depth), ')');
      return "SELECT * FROM t WHERE " + open + "x = 1" + close;
    }
    default:  // concatenate with another corpus statement
      return sql + " " +
             kCorpus[rng.UniformInt(0, std::size(kCorpus) - 1)];
  }
}

TEST(SqlFuzz, MutatedStatementsNeverCrashAndAccountingIsExact) {
  constexpr int kIterations = 4000;
  MetricsRegistry registry;
  PreProcessor::Options options;
  options.metrics = &registry;
  PreProcessor pre(options);

  Rng rng(20260807);
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::string sql = kCorpus[rng.UniformInt(0, std::size(kCorpus) - 1)];
    int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) sql = MutateOnce(std::move(sql), rng);
    Timestamp ts = static_cast<Timestamp>(i) * kSecondsPerMinute;
    if (pre.Ingest(sql, ts).ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted + rejected, static_cast<uint64_t>(kIterations));

  if (kMetricsEnabled) {
    // The registry's books must match the caller's exactly: every reject
    // was counted as a parse failure, every accept as an ingest.
    EXPECT_EQ(registry.GetCounter("preprocessor.parse_failures_total")->value(),
              rejected);
    EXPECT_EQ(registry.GetCounter("preprocessor.ingests_total")->value(),
              accepted);
    EXPECT_LE(registry.GetCounter("preprocessor.parse_fallback_total")->value(),
              accepted);
    EXPECT_EQ(
        registry.GetCounter("preprocessor.templates_created_total")->value(),
        static_cast<uint64_t>(pre.num_templates()));
  }
}

TEST(SqlFuzz, AdversarialShapesDegradeGracefully) {
  // Hand-picked nasty shapes the mutator may hit only rarely.
  std::vector<std::string> inputs = {
      "",
      " ",
      std::string(1, '\0'),
      std::string(100000, 'A'),
      std::string(100000, '('),
      "SELECT " + std::string(50000, '?'),
      "'" + std::string(1000, '\\') + "'",
      "/*" + std::string(1000, '*') + "SELECT 1",
      "--" + std::string(1000, '-'),
  };
  // Deep-but-legal nesting must still parse (executor-robustness contract);
  // absurd nesting must be rejected by the depth guard, not the stack.
  std::string deep_ok = "SELECT * FROM t WHERE ";
  std::string deep_bad = deep_ok;
  deep_ok += std::string(200, '(') + "id = 1" + std::string(200, ')');
  deep_bad += std::string(5000, '(') + "id = 1" + std::string(5000, ')');
  inputs.push_back(deep_ok);
  inputs.push_back(deep_bad);

  PreProcessor pre;
  Timestamp ts = 0;
  for (const auto& sql : inputs) {
    // ok or not is input-dependent; the invariant is "returns, no crash".
    (void)pre.Ingest(sql, ts++);
  }
  auto parsed = Templatize(deep_ok);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->used_fallback)
      << "200 nested parens must parse natively";
}

TEST(SqlFuzz, TemplatizationIsDeterministic) {
  // Same bytes -> same template, fingerprint, and parameter count: the
  // whole pipeline's determinism story starts here.
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::string sql = kCorpus[rng.UniformInt(0, std::size(kCorpus) - 1)];
    for (int m = 0; m < 3; ++m) sql = MutateOnce(std::move(sql), rng);
    auto first = Templatize(sql);
    auto second = Templatize(sql);
    ASSERT_EQ(first.ok(), second.ok()) << sql;
    if (!first.ok()) continue;
    EXPECT_EQ(first->fingerprint, second->fingerprint);
    EXPECT_EQ(first->template_text, second->template_text);
    EXPECT_EQ(first->parameters.size(), second->parameters.size());
    EXPECT_EQ(first->used_fallback, second->used_fallback);
  }
}

}  // namespace
}  // namespace qb5000

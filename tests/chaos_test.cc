// Runtime chaos sweep (DESIGN.md §13): every fault class the ChaosHarness
// can inject — NaN gradients, clock jumps, stage stalls, allocation
// failures — plus an I/O crash via FaultInjectingEnv, must land the pipeline
// in a *documented degraded state*: forecasts stay finite, ingest never
// deadlocks, rollback restores last-good outputs bit-exactly, and
// deadline-bounded forecasts meet their budget by walking down the ladder.
//
// Faults are deterministic (kind, site, N-th probe), so every test here is a
// regression test, not a flake generator. Each test Reset()s the global
// harness in teardown.
#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/chaos.h"
#include "common/finite.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "preprocessor/templatizer.h"

namespace qb5000 {
namespace {

// Sanitizer instrumentation slows wall-clock-bounded paths; the ladder
// contract is unchanged but the budget scales with the build flavor.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kBudgetScale = 10.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kBudgetScale = 10.0;
#else
constexpr double kBudgetScale = 1.0;
#endif
#else
constexpr double kBudgetScale = 1.0;
#endif

// Wall-clock budgets additionally scale on hosts with a single hardware
// thread: a CPU-bound spinner there gets preempted at the scheduler tick
// (milliseconds), so a 1ms bound measures host noise, not the ladder.
// The latency-asserting tests are also RUN_SERIAL in ctest (see
// tests/CMakeLists.txt): sharing the core with a parallel test neighbor
// adds whole scheduler quanta to p99 and measures ctest, not the code.
// bench_resilience records the unscaled numbers with the same caveat.
double HostBudgetScale() {
  return GetThreadCount() <= 1 ? 10.0 * kBudgetScale : kBudgetScale;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { ChaosHarness::Global().Reset(); }

  /// A controller with three days of sinusoidal history on two templates,
  /// trained once (the last-good round). Small model knobs keep the neural
  /// components cheap while still exercising the Adam path.
  static QueryBot5000 BuildTrainedBot(ModelKind kind) {
    QueryBot5000::Config config;
    config.forecaster.kind = kind;
    config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
    config.forecaster.model.embedding_dim = 6;
    config.forecaster.model.hidden_dim = 6;
    config.forecaster.model.num_layers = 1;
    config.forecaster.model.max_epochs = 4;
    config.horizons = {kSecondsPerHour};
    QueryBot5000 bot(config);
    FeedSinusoid(bot, 0, 3 * 24);
    auto st = bot.RunMaintenance(kTrainTime, /*force=*/true);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return bot;
  }

  static void FeedSinusoid(QueryBot5000& bot, int from_hour, int to_hour) {
    auto a = Templatize("SELECT a FROM t WHERE id = 1");
    auto b = Templatize("SELECT b FROM u WHERE id = 2");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (int h = from_hour; h < to_hour; ++h) {
      double t = static_cast<double>(h) / 24.0;
      double rate = 100 * (1.5 + std::sin(2 * M_PI * t));
      Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
      bot.IngestTemplatized(*a, ts, rate);
      bot.IngestTemplatized(*b, ts, rate / 2);
    }
  }

  static constexpr Timestamp kTrainTime = 3 * kSecondsPerDay;
};

// ---------------------------------------------------------------------------
// Fault class 1: NaN gradient (diverged training). The health gate must
// reject the poisoned staged models and keep serving last-good bit-exactly.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, NanGradientRollsBackToLastGoodBitExactly) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kHybrid);
  auto before = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Poison the very first optimizer step of the retrain round. The NaN
  // spreads through the moment estimates into the parameters, every epoch's
  // validation loss is NaN, and the trainer reports divergence instead of
  // returning its random init as "trained".
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kNanGradient, "adam.step",
                             /*nth=*/0);
  Status st = bot.RunMaintenance(kTrainTime + kSecondsPerHour, /*force=*/true);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("diverged"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(ChaosHarness::Global().fires_total(), 1);

  const RecoveryReport& recovery = bot.forecaster().last_recovery();
  EXPECT_TRUE(recovery.rolled_back);
  EXPECT_FALSE(recovery.discarded);
  ASSERT_EQ(recovery.failed_horizons.size(), 1u);
  EXPECT_EQ(recovery.failed_horizons[0], kSecondsPerHour);
  EXPECT_EQ(bot.Metrics().GetCounter("forecaster.rollbacks_total")->value(),
            kMetricsEnabled ? 1u : 0u);

  // Rollback restores last-good outputs bit-exactly (same inputs, same
  // committed models), and nothing non-finite ever reaches a caller.
  auto after = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->queries_per_interval.size(),
            before->queries_per_interval.size());
  for (size_t i = 0; i < after->queries_per_interval.size(); ++i) {
    EXPECT_EQ(after->queries_per_interval[i], before->queries_per_interval[i]);
    EXPECT_TRUE(IsFinite(after->queries_per_interval[i]));
  }
}

TEST_F(ChaosTest, NanGradientOnFirstRoundLeavesForecasterUntrained) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kEnsemble;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.forecaster.model.embedding_dim = 6;
  config.forecaster.model.hidden_dim = 6;
  config.forecaster.model.num_layers = 1;
  config.forecaster.model.max_epochs = 4;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  FeedSinusoid(bot, 0, 3 * 24);

  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kNanGradient, "adam.step",
                             /*nth=*/0);
  // No last-good set exists: the diverged first round is a real error and
  // the forecaster stays untrained (discarded, not rolled back).
  Status st = bot.RunMaintenance(kTrainTime, /*force=*/true);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(bot.forecaster().trained());
  const RecoveryReport& recovery = bot.forecaster().last_recovery();
  EXPECT_TRUE(recovery.discarded);
  EXPECT_FALSE(recovery.rolled_back);
  EXPECT_EQ(bot.Metrics().GetCounter("forecaster.rollbacks_total")->value(),
            0u);
  EXPECT_FALSE(bot.Forecast(kTrainTime, kSecondsPerHour).ok());
}

TEST_F(ChaosTest, MseBlowUpTriggersHealthGateRollback) {
  // The health gate's second line of defense: a staged model whose
  // in-sample MSE explodes versus the previous round's (same clusters) is
  // rejected even though its parameters are finite. Round 1 trains on a
  // perfectly regular workload (tiny MSE); round 2 retrains after the
  // workload turns into violent alternation the linear model cannot fit.
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  // A short input window keeps rows >> parameters (44 vs 5); with the
  // default 24 the hourly dataset has as many parameters as rows and LR
  // interpolates even noise exactly, hiding the blow-up this test stages.
  config.forecaster.input_window = 4;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 3 * 24; ++h) {
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          100.0);  // constant: LR fits it near-exactly
  }
  ASSERT_TRUE(bot.RunMaintenance(kTrainTime, /*force=*/true).ok());
  auto before = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(before.ok());

  // Two days of deterministic hash-noise (a strict alternation would be
  // linearly learnable — only two distinct input rows). No window-linear
  // model fits this, so the staged log-space MSE lands orders of magnitude
  // above round 1's near-zero, tripping the (generous) 16x gate.
  for (int h = 3 * 24; h < 5 * 24; ++h) {
    double u = std::sin(static_cast<double>(h) * 12.9898) * 43758.5453;
    u -= std::floor(u);  // uniform-ish in [0, 1)
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          1.0 + 49999.0 * u);
  }
  Status st = bot.RunMaintenance(5 * kSecondsPerDay, /*force=*/true);
  // A gate rejection with a last-good set is a *degraded success*: an error
  // would make the controller retrain (and re-reject) every pass.
  EXPECT_TRUE(st.ok()) << st.ToString();
  const RecoveryReport& recovery = bot.forecaster().last_recovery();
  EXPECT_TRUE(recovery.health_check_failed);
  EXPECT_TRUE(recovery.rolled_back);
  ASSERT_EQ(recovery.failed_horizons.size(), 1u);
  EXPECT_EQ(recovery.failed_horizons[0], kSecondsPerHour);
  EXPECT_EQ(bot.Metrics().GetCounter("forecaster.rollbacks_total")->value(),
            kMetricsEnabled ? 1u : 0u);
  EXPECT_EQ(
      bot.Metrics().GetCounter("forecaster.health_failures_total")->value(),
      kMetricsEnabled ? 1u : 0u);
  // Last-good models keep serving, finite and non-negative.
  auto after = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(after.ok());
  for (double v : after->queries_per_interval) {
    EXPECT_TRUE(IsFinite(v));
    EXPECT_GE(v, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Fault class 2: clock jumps through the maintenance entry point.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ForwardClockJumpDoesNotMassEvictTemplates) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kLr);
  size_t templates_before = bot.preprocessor().num_templates();
  ASSERT_GE(templates_before, 2u);

  // The next maintenance pass sees a +90 day step (NTP/VM resume). Without
  // the housekeeping clamp this would put every template past the 30-day
  // eviction threshold and wipe the pipeline.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kClockJump,
                             "maintenance.clock", /*nth=*/0,
                             /*param=*/90.0 * kSecondsPerDay);
  Status st = bot.RunMaintenance(kTrainTime + kSecondsPerDay);
  EXPECT_EQ(ChaosHarness::Global().fires_total(), 1);
  EXPECT_EQ(bot.preprocessor().num_templates(), templates_before);
  // Whatever training did at the stepped time, the pipeline stays sane:
  // either a clean error or a forecast with finite values.
  if (st.ok() && bot.forecaster().trained()) {
    auto f = bot.Forecast(bot.last_maintenance(), kSecondsPerHour);
    if (f.ok()) {
      for (double v : f->queries_per_interval) {
        EXPECT_TRUE(IsFinite(v));
        EXPECT_GE(v, 0.0);
      }
    }
  }
}

TEST_F(ChaosTest, BackwardClockJumpReanchorsMaintenanceTimer) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kLr);
  ASSERT_EQ(bot.last_maintenance(), kTrainTime);

  // The pass at +1d observes a clock regressed by 2 days: the timer must
  // re-anchor to the regressed clock rather than staying armed in its
  // future (which would silently disable periodic maintenance).
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kClockJump,
                             "maintenance.clock", /*nth=*/0,
                             /*param=*/-2.0 * kSecondsPerDay);
  ASSERT_TRUE(bot.RunMaintenance(kTrainTime + kSecondsPerDay).ok());
  EXPECT_EQ(ChaosHarness::Global().fires_total(), 1);
  EXPECT_LE(bot.last_maintenance(), kTrainTime - kSecondsPerDay);
  // One period past the regressed time, maintenance is due again.
  ASSERT_TRUE(bot.RunMaintenance(kTrainTime).ok());
  EXPECT_EQ(bot.last_maintenance(), kTrainTime);
}

// ---------------------------------------------------------------------------
// Fault class 3: stalls. A wedged maintenance thread (holding the state
// lock exclusively) must not make bounded forecasts miss their budget: the
// ladder's fallback rung serves lock-free from the snapshot.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, BoundedForecastMeetsBudgetWhileMaintenanceStalls) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kLr);
  const double kBudget = 0.001 * HostBudgetScale();
  // The stall must outlast enough bounded calls for a meaningful p99: each
  // call costs ~budget/2 in lock wait, so scale the stall with the budget
  // (which is itself scaled up under sanitizers and on single-core hosts).
  const double kStallSeconds = std::max(1.0, 40.0 * kBudget);
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "maintenance.train",
                             /*nth=*/0, /*param=*/kStallSeconds);

  std::vector<double> latencies;
  uint64_t fallbacks_before =
      bot.Metrics().GetCounter("core.forecast_rung_fallback_total")->value();
  Status maintenance_status;
  ThreadPool pool(2);
  pool.Run(2, [&](size_t task) {
    if (task == 0) {
      // Holds the state lock exclusively for the whole stall.
      maintenance_status =
          bot.RunMaintenance(kTrainTime + kSecondsPerDay, /*force=*/true);
      return;
    }
    // Start hammering exactly when the victim stage is wedged; no timing
    // guesses. (On a single-core host the stall sleeps, so we still run.)
    while (!ChaosHarness::Global().stall_active()) {
      std::this_thread::yield();
    }
    Stopwatch stall_guard;
    for (int i = 0; i < 100 && stall_guard.ElapsedSeconds() <
                                   kStallSeconds * 0.8; ++i) {
      ForecastRung rung = ForecastRung::kFull;
      Stopwatch call;
      auto f = bot.Forecast(kTrainTime, kSecondsPerHour, kBudget, &rung);
      latencies.push_back(call.ElapsedSeconds());
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      EXPECT_EQ(rung, ForecastRung::kFallback);
      for (double v : f->queries_per_interval) {
        EXPECT_TRUE(IsFinite(v));
        EXPECT_GE(v, 0.0);
      }
    }
  });
  EXPECT_TRUE(maintenance_status.ok()) << maintenance_status.ToString();

  ASSERT_GE(latencies.size(), 20u);
  if (kMetricsEnabled) {
    EXPECT_GT(
        bot.Metrics().GetCounter("core.forecast_rung_fallback_total")->value(),
        fallbacks_before);
  }
  // p99 stays under the budget: the lock wait is capped at half the budget
  // and the fallback rung is a lock-free snapshot copy. (Nearest-rank p99:
  // rank ceil(0.99 * n).)
  std::sort(latencies.begin(), latencies.end());
  size_t rank = (latencies.size() * 99 + 99) / 100;
  double p99 = latencies[rank - 1];
  EXPECT_LE(p99, kBudget) << "p99=" << p99 << "s over " << latencies.size()
                          << " bounded forecasts";
  // And the stalled maintenance pass itself completed normally afterwards.
  auto f = bot.Forecast(kTrainTime + kSecondsPerDay, kSecondsPerHour);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
}

TEST_F(ChaosTest, GatherStallDegradesToLinearRung) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kHybrid);
  // The input gather stalls past the whole budget: the deadline check after
  // it must skip the RNN/KR stages and serve the linear-only rung.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "forecast.gather",
                             /*nth=*/0, /*param=*/0.05 * kBudgetScale);
  ForecastRung rung = ForecastRung::kFull;
  auto f = bot.Forecast(kTrainTime, kSecondsPerHour, 0.02 * kBudgetScale,
                        &rung);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(rung, ForecastRung::kLinearOnly);
  EXPECT_EQ(
      bot.Metrics().GetCounter("core.forecast_rung_linear_total")->value(),
      kMetricsEnabled ? 1u : 0u);
  for (double v : f->queries_per_interval) {
    EXPECT_TRUE(IsFinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST_F(ChaosTest, KrStageStallDegradesToLinearRung) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kHybrid);
  // Gather fits in budget; HYBRID's KR correction stage stalls past it.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "forecast.kr",
                             /*nth=*/0, /*param=*/0.05 * kBudgetScale);
  ForecastRung rung = ForecastRung::kFull;
  auto f = bot.Forecast(kTrainTime, kSecondsPerHour, 0.02 * kBudgetScale,
                        &rung);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(rung, ForecastRung::kLinearOnly);
  EXPECT_EQ(
      bot.Metrics().GetCounter("core.forecast_rung_linear_total")->value(),
      kMetricsEnabled ? 1u : 0u);
}

TEST_F(ChaosTest, GatherStallWithoutLinearRungFallsToSnapshot) {
  // A pure-neural deployment has no linear rung: exhausting the budget must
  // fall through to the controller's history-average snapshot instead.
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kRnn);
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "forecast.gather",
                             /*nth=*/0, /*param=*/0.05 * kBudgetScale);
  ForecastRung rung = ForecastRung::kFull;
  auto f = bot.Forecast(kTrainTime, kSecondsPerHour, 0.02 * kBudgetScale,
                        &rung);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(rung, ForecastRung::kFallback);
  EXPECT_EQ(
      bot.Metrics().GetCounter("core.forecast_rung_fallback_total")->value(),
      kMetricsEnabled ? 1u : 0u);
  for (double v : f->queries_per_interval) {
    EXPECT_TRUE(IsFinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST_F(ChaosTest, UnboundedForecastServesFullRung) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kHybrid);
  ForecastRung rung = ForecastRung::kFallback;
  auto f = bot.Forecast(kTrainTime, kSecondsPerHour, /*budget_seconds=*/0.0,
                        &rung);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(rung, ForecastRung::kFull);
  EXPECT_EQ(bot.Metrics().GetCounter("core.forecast_rung_full_total")->value(),
            kMetricsEnabled ? 1u : 0u);
}

// ---------------------------------------------------------------------------
// Fault class 4: allocation failure mid-training.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TrainingAllocFailureKeepsLastGoodServing) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kLr);
  auto before = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(before.ok());

  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kAllocFail,
                             "forecaster.train", /*nth=*/0);
  Status st = bot.RunMaintenance(kTrainTime + kSecondsPerDay, /*force=*/true);
  // Unlike a health-gate rollback, a fit-path failure is surfaced: the
  // round did not complete and the caller may want to alert. Last-good
  // models still serve.
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(bot.forecaster().trained());
  EXPECT_TRUE(bot.forecaster().last_recovery().rolled_back);
  EXPECT_EQ(bot.Metrics().GetCounter("forecaster.rollbacks_total")->value(),
            kMetricsEnabled ? 1u : 0u);

  auto after = bot.Forecast(kTrainTime, kSecondsPerHour);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->queries_per_interval.size(),
            before->queries_per_interval.size());
  for (size_t i = 0; i < after->queries_per_interval.size(); ++i) {
    EXPECT_EQ(after->queries_per_interval[i], before->queries_per_interval[i]);
  }
}

// ---------------------------------------------------------------------------
// Backpressure: a parked in-flight batch holds its backlog reservation, so
// concurrent arrivals beyond the bound shed with kOverloaded — and the shed
// is accounted, retryable, and leaves no state behind.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, AdmissionGateShedsConcurrentArrivalsUnderBacklog) {
  QueryBot5000::Config config;
  config.max_pending_arrivals = 4;
  QueryBot5000 bot(config);

  std::vector<QueryArrival> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back({"SELECT a FROM t WHERE id = 1", kSecondsPerHour, 1.0});
  }
  // Park the batch after admission: it overshoots the bound (documented —
  // one oversized batch against an idle pipeline is always admitted) and
  // holds 8 pending slots while stalled.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "ingest.batch",
                             /*nth=*/0, /*param=*/1.0);

  Status shed_status;
  Result<std::vector<TemplateId>> batch_ids = Status::Internal("unset");
  ThreadPool pool(2);
  pool.Run(2, [&](size_t task) {
    if (task == 0) {
      batch_ids = bot.IngestBatch(batch);
      return;
    }
    while (!ChaosHarness::Global().stall_active()) {
      std::this_thread::yield();
    }
    // Backlog is 8 >= 4: this arrival must shed, not block.
    shed_status = bot.Ingest("SELECT b FROM u WHERE id = 2", kSecondsPerHour);
  });

  ASSERT_TRUE(batch_ids.ok()) << batch_ids.status().ToString();
  EXPECT_EQ(batch_ids->size(), 8u);
  EXPECT_EQ(shed_status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(bot.Metrics().GetCounter("core.sheds_total")->value(),
            kMetricsEnabled ? 1u : 0u);
  // The shed arrival left no trace; the admitted batch fully landed.
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 8.0);
  // Once the batch drains, the same arrival is admitted (retry works).
  EXPECT_TRUE(
      bot.Ingest("SELECT b FROM u WHERE id = 2", kSecondsPerHour).ok());
  EXPECT_EQ(bot.Metrics().GetCounter("core.sheds_total")->value(),
            kMetricsEnabled ? 1u : 0u);
}

TEST_F(ChaosTest, AdmissionGateOffMeansUnbounded) {
  QueryBot5000::Config config;
  config.max_pending_arrivals = 0;  // gate off
  QueryBot5000 bot(config);
  std::vector<QueryArrival> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({"SELECT a FROM t WHERE id = 1", kSecondsPerHour, 1.0});
  }
  auto ids = bot.IngestBatch(batch);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(bot.Metrics().GetCounter("core.sheds_total")->value(), 0u);
}

// ---------------------------------------------------------------------------
// Fault class 5: I/O crash (FaultInjectingEnv, the filesystem seam of the
// same taxonomy). A crashed checkpoint write must leave the previous
// checkpoint restorable — the durability ladder (DESIGN.md §8) backs the
// runtime ladder here.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, CheckpointCrashLeavesPreviousCheckpointRestorable) {
  QueryBot5000 bot = BuildTrainedBot(ModelKind::kLr);
  std::string path = ::testing::TempDir() + "qb5000_chaos_ckpt";
  FaultInjectingEnv env(nullptr);
  ASSERT_TRUE(bot.Checkpoint(path, &env).ok());
  int64_t ops_per_checkpoint = env.ops_issued();
  ASSERT_GT(ops_per_checkpoint, 0);

  // Crash the middle of the next checkpoint write.
  env.Reset();
  env.InjectFault(FaultInjectingEnv::FaultKind::kCrash,
                  ops_per_checkpoint / 2);
  FeedSinusoid(bot, 3 * 24, 4 * 24);
  Status st = bot.Checkpoint(path, &env);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(env.crashed());

  // The previous checkpoint still restores a working pipeline.
  env.Reset();
  QueryBot5000::Config config = bot.config();
  auto restored = QueryBot5000::Restore(path, config, &env);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->preprocessor().num_templates(),
            bot.preprocessor().num_templates());
  auto f = restored->Forecast(kTrainTime, kSecondsPerHour);
  if (f.ok()) {
    for (double v : f->queries_per_interval) EXPECT_TRUE(IsFinite(v));
  }
}

// ---------------------------------------------------------------------------
// Fault class 5b: crash mid delta-checkpoint append (service mode). The
// incremental sidecar rides the same durability ladder as the full
// checkpoint: killing the writer at ANY I/O op must restore either the
// state as of the last committed write (base, or base+prior delta) or the
// state including the new delta — never a half state, never a salvage.
// ---------------------------------------------------------------------------

// Feeds hours [from_hour, to_hour) of the two-template sinusoid through the
// service queue, one batch per hour. Capacity is sized so TryPush never
// sheds in manual (foreground) mode.
void EnqueueSinusoidHours(QueryBot5000& bot, int from_hour, int to_hour) {
  static constexpr const char* kSqlA = "SELECT a FROM t WHERE id = 1";
  static constexpr const char* kSqlB = "SELECT b FROM u WHERE id = 2";
  for (int h = from_hour; h < to_hour; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 100 * (1.5 + std::sin(2 * M_PI * t));
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    QueryArrival arrivals[2];
    arrivals[0] = {kSqlA, ts, rate};
    arrivals[1] = {kSqlB, ts, rate / 2};
    ASSERT_TRUE(bot.EnqueueBatch(arrivals).ok());
  }
}

// The synchronous twin of EnqueueSinusoidHours: same batches through
// IngestBatch, so batch-granular counters match the service-fed bot.
void IngestSinusoidHours(QueryBot5000& bot, int from_hour, int to_hour) {
  static constexpr const char* kSqlA = "SELECT a FROM t WHERE id = 1";
  static constexpr const char* kSqlB = "SELECT b FROM u WHERE id = 2";
  for (int h = from_hour; h < to_hour; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 100 * (1.5 + std::sin(2 * M_PI * t));
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    QueryArrival arrivals[2];
    arrivals[0] = {kSqlA, ts, rate};
    arrivals[1] = {kSqlB, ts, rate / 2};
    ASSERT_TRUE(bot.IngestBatch(arrivals).ok());
  }
}

void RemoveServiceCheckpointFiles(const std::string& path) {
  Env* env = Env::Default();
  for (const std::string& base : {path, path + ".delta"}) {
    for (const char* suffix : {"", ".bak", ".tmp"}) {
      (void)env->DeleteFile(base + suffix);
    }
  }
}

// A wedged background drain (the `service.drain` stall site) must not leak
// back to producers as blocking: the ring absorbs what fits, EnqueueBatch
// sheds kOverloaded immediately past that, and once the stall clears every
// accepted arrival lands.
TEST_F(ChaosTest, ServiceDrainStallShedsButNeverBlocksProducers) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions opts;
  opts.queue_capacity = 4;
  opts.background = true;
  opts.auto_maintenance = false;
  ASSERT_TRUE(bot.StartService(opts).ok());

  const double stall_seconds = 0.5;
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "service.drain",
                             /*nth=*/0, stall_seconds);
  QueryArrival one[] = {{"SELECT a FROM t WHERE id = 1", 0, 1.0}};
  ASSERT_TRUE(bot.EnqueueBatch(one).ok());  // wakes the drain into the stall
  while (!ChaosHarness::Global().stall_active()) {
    std::this_thread::yield();
  }
  // The consumer is wedged holding the popped chunk; the ring has 4 free
  // slots. Fill them, then verify the 5th sheds fast instead of blocking
  // for the rest of the stall.
  double accepted = 1.0;
  for (int i = 0; i < 4; ++i) {
    QueryArrival a[] = {{"SELECT a FROM t WHERE id = 1",
                         static_cast<Timestamp>(i + 1), 1.0}};
    ASSERT_TRUE(bot.EnqueueBatch(a).ok());
    accepted += 1.0;
  }
  QueryArrival extra[] = {{"SELECT a FROM t WHERE id = 1", 5, 1.0}};
  Stopwatch shed;
  Status st = bot.EnqueueBatch(extra);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
  EXPECT_LT(shed.ElapsedSeconds(), stall_seconds / 2) << "producer blocked";
  if (kMetricsEnabled) {
    EXPECT_GE(
        bot.Metrics().GetCounter("core.queue_enqueue_stalls_total")->value(),
        1u);
  }

  // Retry the shed batch until the drain resumes and frees a slot, then
  // everything accepted must land exactly once.
  while (!bot.EnqueueBatch(extra).ok()) {
    std::this_thread::yield();
  }
  accepted += 1.0;
  bot.DrainForTest();
  EXPECT_NEAR(bot.preprocessor().total_queries(), accepted, 1e-9);
  ASSERT_TRUE(bot.StopService().ok());
}

// ---------------------------------------------------------------------------
// Fault class 3b/4b: the sharded drain's two chaos sites. `service.shard`
// stalls one parallel prep; `service.merge` fails the ordered merge's
// allocation probe. Both must degrade without ever reordering the merge —
// template ids are assigned at merge time, so any reorder shows up as a
// state divergence from a synchronously-fed twin.
// ---------------------------------------------------------------------------

// Each batch introduces a structurally new template (a fresh column name —
// literals alone would templatize together), so template ids encode the
// exact merge order: a single swapped pair of chunks diverges the state.
std::string OrderProbeSql(int n) {
  return "SELECT c" + std::to_string(n) + " FROM order_probe WHERE k = 1";
}

void ExpectSameTemplateState(const QueryBot5000& service_bot,
                             const QueryBot5000& sync_bot) {
  ASSERT_EQ(service_bot.preprocessor().TemplateIds(),
            sync_bot.preprocessor().TemplateIds());
  for (TemplateId id : sync_bot.preprocessor().TemplateIds()) {
    const auto* a = service_bot.preprocessor().GetTemplate(id);
    const auto* b = sync_bot.preprocessor().GetTemplate(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->fingerprint, b->fingerprint) << "template " << id;
    EXPECT_EQ(a->text, b->text) << "template " << id;
    EXPECT_EQ(a->first_seen, b->first_seen) << "template " << id;
    EXPECT_EQ(a->last_seen, b->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(a->history.Total(), b->history.Total())
        << "template " << id;
  }
  EXPECT_DOUBLE_EQ(service_bot.preprocessor().total_queries(),
                   sync_bot.preprocessor().total_queries());
}

TEST_F(ChaosTest, ServiceShardStallDelaysButNeverReordersMerge) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 sync_bot(config);
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions opts;
  opts.queue_capacity = 64;
  opts.background = false;  // DrainForTest runs the sharded drain inline
  opts.auto_maintenance = false;
  opts.drain_workers = 4;
  ASSERT_TRUE(bot.StartService(opts).ok());

  // One of the first claimed preps wedges for 0.3s while its siblings finish
  // in microseconds: the ordered merge must *wait* at the stalled index (the
  // head-of-line counter proves it) rather than skip ahead.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "service.shard",
                             /*nth=*/0, /*param=*/0.3);
  for (int n = 0; n < 24; ++n) {  // > one run's chunk cap: spans two runs
    std::string sql = OrderProbeSql(n);
    QueryArrival batch[] = {{sql, static_cast<Timestamp>(n) * kSecondsPerHour,
                             1.0}};
    ASSERT_TRUE(bot.EnqueueBatch(batch).ok());
    ASSERT_TRUE(sync_bot.IngestBatch(batch).ok());
  }
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  EXPECT_EQ(ChaosHarness::Global().fires_total(), 1);
  // No merge-wait assertion: the drain loop *helps* prepare unclaimed
  // chunks while the stalled one is in flight, so whether it ever truly
  // blocks depends on scheduling. The invariant under test is ordering,
  // not stalling.
  ExpectSameTemplateState(bot, sync_bot);
}

TEST_F(ChaosTest, ServiceMergeAllocFailRetriesWithoutLossOrReorder) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 sync_bot(config);
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions opts;
  opts.queue_capacity = 64;
  opts.background = false;
  opts.auto_maintenance = false;
  opts.drain_workers = 2;
  ASSERT_TRUE(bot.StartService(opts).ok());

  // Phase 1: train once so there are committed models to protect. The twin
  // is fed identical batches through IngestBatch so batch-granular counters
  // stay comparable.
  EnqueueSinusoidHours(bot, 0, 2 * 24);
  bot.DrainForTest();
  IngestSinusoidHours(sync_bot, 0, 2 * 24);
  ASSERT_TRUE(bot.RunMaintenance(2 * kSecondsPerDay, /*force=*/true).ok());
  ASSERT_TRUE(sync_bot.RunMaintenance(2 * kSecondsPerDay, /*force=*/true).ok());
  auto before = bot.Forecast(2 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Phase 2: the merge's allocation probe fails on the round's third chunk.
  // The round aborts there, the unmerged tail re-queues in order, and the
  // retry round lands everything exactly once — counters and template state
  // as if the fault never happened, previous models still serving.
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kAllocFail, "service.merge",
                             /*nth=*/2);
  for (int n = 0; n < 12; ++n) {
    std::string sql = OrderProbeSql(n);
    QueryArrival batch[] = {
        {sql, 2 * kSecondsPerDay + static_cast<Timestamp>(n) * kSecondsPerHour,
         1.0}};
    ASSERT_TRUE(bot.EnqueueBatch(batch).ok());
    ASSERT_TRUE(sync_bot.IngestBatch(batch).ok());
  }
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  EXPECT_EQ(ChaosHarness::Global().fires_total(), 1);
  ExpectSameTemplateState(bot, sync_bot);
  if (kMetricsEnabled) {
    // Exactly-once merge despite the aborted round: one batch counted per
    // chunk fed (2 * 48 sinusoid hours + 12 probes on the service side vs
    // the same batches synchronously).
    EXPECT_EQ(bot.Metrics().GetCounter("preprocessor.batches_total")->value(),
              sync_bot.Metrics()
                  .GetCounter("preprocessor.batches_total")
                  ->value());
  }
  // The fault touched ingest only: committed models keep serving bit-exactly.
  auto after = bot.Forecast(2 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->queries_per_interval.size(),
            before->queries_per_interval.size());
  for (size_t i = 0; i < after->queries_per_interval.size(); ++i) {
    EXPECT_EQ(after->queries_per_interval[i], before->queries_per_interval[i]);
  }
}

TEST_F(ChaosTest, ServiceDeltaCheckpointCrashSweepLeavesOldOrNew) {
  const std::string path =
      ::testing::TempDir() + "qb5000_service_delta_sweep.qbc";
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};

  FaultInjectingEnv env(nullptr);
  // One service session: phase A establishes the full base (first periodic
  // write of a session is always full), phase B lands in exactly one delta
  // append. Foreground mode keeps the op sequence deterministic; the
  // maintenance loop is off because training does no I/O and would only
  // slow the sweep.
  auto run_session = [&](QueryBot5000& bot, double* old_total,
                         int64_t* delta_ops) {
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 64;
    opts.background = false;
    opts.auto_maintenance = false;
    opts.checkpoint_path = path;
    opts.checkpoint_period_seconds = kSecondsPerHour;
    opts.compact_every = 1000;  // never promote: phase B must stay a delta
    opts.env = &env;
    ASSERT_TRUE(bot.StartService(opts).ok());
    EnqueueSinusoidHours(bot, 0, 12);
    bot.DrainForTest();  // writes the full base checkpoint
    if (old_total != nullptr) {
      *old_total = bot.preprocessor().total_queries();
    }
    env.Reset();  // faults (and op counting) cover only the delta append
    EnqueueSinusoidHours(bot, 12, 24);
    bot.DrainForTest();  // one delta write; clears dirty when it commits
    if (delta_ops != nullptr) *delta_ops = env.ops_issued();
    // Not dirty after a clean delta commit, so StopService adds no I/O; on
    // a crashed env its retry fails without landing partial state.
    (void)bot.StopService();
  };

  // Clean run: measure the delta append's op count and both totals.
  RemoveServiceCheckpointFiles(path);
  double old_total = 0.0;
  int64_t total_ops = 0;
  {
    QueryBot5000 bot(config);
    run_session(bot, &old_total, &total_ops);
    ASSERT_GT(total_ops, 0);
    ASSERT_EQ(env.ops_issued(), total_ops) << "StopService re-wrote";
    RestoreReport report;
    auto restored = QueryBot5000::Restore(path, config, &env, &report);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_TRUE(report.delta_applied);
    EXPECT_NEAR(restored->preprocessor().total_queries(),
                bot.preprocessor().total_queries(), 1e-9);
  }
  double new_total = 0.0;
  {
    QueryBot5000 reference(config);
    double ignored;
    run_session(reference, &ignored, nullptr);
    new_total = reference.preprocessor().total_queries();
  }
  ASSERT_NE(old_total, new_total);

  for (auto kind : {FaultInjectingEnv::FaultKind::kCrash,
                    FaultInjectingEnv::FaultKind::kTornWrite}) {
    for (int64_t op = 0; op < total_ops; ++op) {
      SCOPED_TRACE("kind " + std::to_string(static_cast<int>(kind)) +
                   " crash at op " + std::to_string(op));
      RemoveServiceCheckpointFiles(path);
      QueryBot5000 bot(config);
      QueryBot5000::ServiceOptions opts;
      opts.queue_capacity = 64;
      opts.background = false;
      opts.auto_maintenance = false;
      opts.checkpoint_path = path;
      opts.checkpoint_period_seconds = kSecondsPerHour;
      opts.compact_every = 1000;
      opts.env = &env;
      ASSERT_TRUE(bot.StartService(opts).ok());
      EnqueueSinusoidHours(bot, 0, 12);
      bot.DrainForTest();
      env.Reset();
      env.InjectFault(kind, op);
      EnqueueSinusoidHours(bot, 12, 24);
      bot.DrainForTest();
      EXPECT_TRUE(env.crashed());
      (void)bot.StopService();

      env.Reset();  // the restarted process sees a healthy filesystem
      RestoreReport report;
      auto restored = QueryBot5000::Restore(path, config, &env, &report);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      double got = restored->preprocessor().total_queries();
      bool is_old = std::fabs(got - old_total) < 1e-9;
      bool is_new = std::fabs(got - new_total) < 1e-9;
      EXPECT_TRUE(is_old || is_new) << "half state restored: " << got;
      EXPECT_FALSE(report.reclustered) << report.detail;
      EXPECT_FALSE(report.controller_defaults) << report.detail;
    }
  }
}

// ---------------------------------------------------------------------------
// Harness mechanics worth pinning: determinism of the N-th-probe contract.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, NthProbeFiresExactlyOnce) {
  auto& chaos = ChaosHarness::Global();
  chaos.Arm(ChaosHarness::OpKind::kAllocFail, "site.a", /*nth=*/2);
  EXPECT_FALSE(chaos.FailAlloc("site.a"));  // probe 0
  EXPECT_FALSE(chaos.FailAlloc("site.b"));  // other site: not counted
  EXPECT_FALSE(chaos.FailAlloc("site.a"));  // probe 1
  EXPECT_TRUE(chaos.FailAlloc("site.a"));   // probe 2: fires
  EXPECT_FALSE(chaos.FailAlloc("site.a"));  // one-shot
  EXPECT_EQ(chaos.fires_total(), 1);
  chaos.Reset();
  EXPECT_FALSE(chaos.FailAlloc("site.a"));  // disarmed after Reset
}

TEST_F(ChaosTest, ClockJumpProbeShiftsOnlyTheArmedProbe) {
  auto& chaos = ChaosHarness::Global();
  chaos.Arm(ChaosHarness::OpKind::kClockJump, "clock.site", /*nth=*/1,
            /*param=*/100.0);
  EXPECT_EQ(chaos.MaybeJumpClock("clock.site", 1000), 1000);  // probe 0
  EXPECT_EQ(chaos.MaybeJumpClock("clock.site", 1000), 1100);  // probe 1
  EXPECT_EQ(chaos.MaybeJumpClock("clock.site", 1000), 1000);  // one-shot
}

}  // namespace
}  // namespace qb5000

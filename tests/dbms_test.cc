#include <gtest/gtest.h>

#include "dbms/database.h"
#include "dbms/loader.h"
#include "dbms/value.h"
#include "sql/parser.h"

namespace qb5000::dbms {
namespace {

TEST(ValueTest, OrderingAndEquality) {
  Value null = std::monostate{};
  Value one = int64_t{1};
  Value two = int64_t{2};
  Value abc = std::string("abc");
  EXPECT_TRUE(ValueLess(null, one));
  EXPECT_TRUE(ValueLess(one, two));
  EXPECT_TRUE(ValueLess(two, abc));  // ints sort before strings
  EXPECT_TRUE(ValueEquals(one, Value(int64_t{1})));
  EXPECT_FALSE(ValueEquals(null, null));  // NULL != NULL
  EXPECT_EQ(ValueToString(one), "1");
  EXPECT_EQ(ValueToString(abc), "'abc'");
  EXPECT_EQ(ValueToString(null), "NULL");
}

Database MakeUsersDb(int rows = 100) {
  Database db;
  EXPECT_TRUE(db.CreateTable("users", {{"id", true, 100000},
                                       {"age", true, 50},
                                       {"name", false, 100000}})
                  .ok());
  Table* t = db.GetTable("users");
  for (int i = 1; i <= rows; ++i) {
    EXPECT_TRUE(t->Insert({int64_t{i}, int64_t{i % 50}, "user" + std::to_string(i)})
                    .ok());
  }
  return db;
}

TEST(TableTest, InsertDeleteUpdateMaintainIndexes) {
  Database db = MakeUsersDb(10);
  Table* t = db.GetTable("users");
  ASSERT_TRUE(t->CreateIndex("age").ok());
  const OrderedIndex* index = t->GetIndex("age");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 10u);
  EXPECT_EQ(index->EqualMatches(int64_t{3}).size(), 1u);
  // Update moves the row in the index: row 5 (id 6, age 6) becomes age 3.
  ASSERT_TRUE(t->UpdateCell(5, 1, int64_t{3}).ok());
  EXPECT_EQ(index->EqualMatches(int64_t{3}).size(), 2u);
  EXPECT_EQ(index->EqualMatches(int64_t{6}).size(), 0u);
  // Delete removes it.
  ASSERT_TRUE(t->Delete(5).ok());
  EXPECT_EQ(index->EqualMatches(int64_t{3}).size(), 1u);
  EXPECT_EQ(t->live_rows(), 9u);
  EXPECT_FALSE(t->Delete(5).ok());
}

TEST(TableTest, IndexLifecycle) {
  Database db = MakeUsersDb(5);
  Table* t = db.GetTable("users");
  EXPECT_FALSE(t->HasIndex("age"));
  ASSERT_TRUE(t->CreateIndex("age").ok());
  EXPECT_TRUE(t->HasIndex("age"));
  EXPECT_FALSE(t->CreateIndex("age").ok());      // duplicate
  EXPECT_FALSE(t->CreateIndex("nosuch").ok());   // unknown column
  ASSERT_TRUE(t->DropIndex("age").ok());
  EXPECT_FALSE(t->DropIndex("age").ok());
}

TEST(IndexTest, RangeMatches) {
  OrderedIndex index(0);
  for (int i = 0; i < 10; ++i) index.Insert(int64_t{i}, static_cast<RowId>(i));
  Value lo = int64_t{3};
  Value hi = int64_t{6};
  EXPECT_EQ(index.RangeMatches(&lo, true, &hi, true).size(), 4u);
  EXPECT_EQ(index.RangeMatches(&lo, false, &hi, false).size(), 2u);
  EXPECT_EQ(index.RangeMatches(nullptr, false, &hi, true).size(), 7u);
  EXPECT_EQ(index.RangeMatches(&lo, true, nullptr, false).size(), 7u);
}

TEST(ExecutorTest, PointSelectUsesIndexWhenAvailable) {
  Database db = MakeUsersDb(1000);
  auto no_index = db.Execute("SELECT name FROM users WHERE id = 37");
  ASSERT_TRUE(no_index.ok()) << no_index.status().ToString();
  EXPECT_FALSE(no_index->used_index);
  EXPECT_EQ(no_index->rows_returned, 1u);
  EXPECT_EQ(no_index->rows_examined, 1000u);

  ASSERT_TRUE(db.CreateIndex("users", "id").ok());
  auto with_index = db.Execute("SELECT name FROM users WHERE id = 37");
  ASSERT_TRUE(with_index.ok());
  EXPECT_TRUE(with_index->used_index);
  EXPECT_EQ(with_index->index_used, "users.id");
  EXPECT_EQ(with_index->rows_returned, 1u);
  EXPECT_EQ(with_index->rows_examined, 1u);
  EXPECT_LT(with_index->latency_us, no_index->latency_us);
}

TEST(ExecutorTest, RangeAndBetween) {
  Database db = MakeUsersDb(500);
  ASSERT_TRUE(db.CreateIndex("users", "id").ok());
  auto range = db.Execute("SELECT name FROM users WHERE id BETWEEN 10 AND 19");
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(range->used_index);
  EXPECT_EQ(range->rows_returned, 10u);
  auto open = db.Execute("SELECT name FROM users WHERE id > 490");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->rows_returned, 10u);
}

TEST(ExecutorTest, ResidualPredicateStillApplied) {
  Database db = MakeUsersDb(200);
  ASSERT_TRUE(db.CreateIndex("users", "age").ok());
  // age = 7 matches ids 7, 57, 107, 157; residual id > 100 keeps 2.
  auto result = db.Execute("SELECT id FROM users WHERE age = 7 AND id > 100");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_index);
  EXPECT_EQ(result->rows_returned, 2u);
}

TEST(ExecutorTest, InListAndLike) {
  Database db = MakeUsersDb(100);
  auto in_list = db.Execute("SELECT id FROM users WHERE id IN (5, 6, 999)");
  ASSERT_TRUE(in_list.ok());
  EXPECT_EQ(in_list->rows_returned, 2u);
  auto like = db.Execute("SELECT id FROM users WHERE name LIKE 'user9_'");
  ASSERT_TRUE(like.ok());
  EXPECT_EQ(like->rows_returned, 10u);  // user90..user99
}

TEST(ExecutorTest, OrFallsBackToScanButIsCorrect) {
  Database db = MakeUsersDb(100);
  ASSERT_TRUE(db.CreateIndex("users", "id").ok());
  auto result = db.Execute("SELECT id FROM users WHERE id = 5 OR id = 6");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_returned, 2u);
}

TEST(ExecutorTest, AggregateAndLimit) {
  Database db = MakeUsersDb(100);
  auto agg = db.Execute("SELECT COUNT(*) FROM users WHERE age = 3");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows_returned, 1u);
  auto limited = db.Execute("SELECT id FROM users WHERE age > 0 LIMIT 5");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->rows_returned, 5u);
}

TEST(ExecutorTest, InsertUpdateDelete) {
  Database db = MakeUsersDb(10);
  auto insert =
      db.Execute("INSERT INTO users (age, name) VALUES (21, 'fresh')");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->rows_written, 1u);
  EXPECT_EQ(db.GetTable("users")->live_rows(), 11u);

  auto update = db.Execute("UPDATE users SET age = 99 WHERE name = 'fresh'");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_written, 1u);
  auto check = db.Execute("SELECT id FROM users WHERE age = 99");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows_returned, 1u);

  auto del = db.Execute("DELETE FROM users WHERE age = 99");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->rows_written, 1u);
  EXPECT_EQ(db.GetTable("users")->live_rows(), 10u);
}

TEST(ExecutorTest, BatchedInsert) {
  Database db = MakeUsersDb(0);
  auto insert = db.Execute(
      "INSERT INTO users (age, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->rows_written, 3u);
  EXPECT_EQ(db.GetTable("users")->live_rows(), 3u);
}

TEST(ExecutorTest, WritesCostMorePerIndex) {
  Database db1 = MakeUsersDb(100);
  Database db2 = MakeUsersDb(100);
  ASSERT_TRUE(db2.CreateIndex("users", "id").ok());
  ASSERT_TRUE(db2.CreateIndex("users", "age").ok());
  auto cheap = db1.Execute("INSERT INTO users (age, name) VALUES (1, 'x')");
  auto pricey = db2.Execute("INSERT INTO users (age, name) VALUES (1, 'x')");
  ASSERT_TRUE(cheap.ok() && pricey.ok());
  EXPECT_LT(cheap->latency_us, pricey->latency_us);
}

TEST(ExecutorTest, JoinReturnsMatches) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", {{"id", true, 10}, {"bid", true, 10}}).ok());
  ASSERT_TRUE(db.CreateTable("b", {{"id", true, 10}, {"v", true, 10}}).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(db.GetTable("a")->Insert({int64_t{i}, int64_t{i}}).ok());
    ASSERT_TRUE(db.GetTable("b")->Insert({int64_t{i}, int64_t{i * 10}}).ok());
  }
  auto join = db.Execute(
      "SELECT a.id FROM a JOIN b ON a.bid = b.id WHERE b.v > 20");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(join->rows_returned, 3u);  // b.v in {30, 40, 50}
}

TEST(ExecutorTest, ErrorsOnUnknownTableOrColumn) {
  Database db = MakeUsersDb(1);
  EXPECT_FALSE(db.Execute("SELECT x FROM nosuch WHERE id = 1").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO users (bogus) VALUES (1)").ok());
}

TEST(EstimateTest, HypotheticalIndexLowersSelectCost) {
  Database db = MakeUsersDb(5000);
  auto stmt = sql::Parse("SELECT name FROM users WHERE id = 42");
  ASSERT_TRUE(stmt.ok());
  auto without = db.EstimateCost(*stmt, {});
  auto with = db.EstimateCost(*stmt, {"users.id"});
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_LT(*with, *without * 0.1);
}

TEST(EstimateTest, HypotheticalIndexRaisesInsertCost) {
  Database db = MakeUsersDb(100);
  auto stmt = sql::Parse("INSERT INTO users (age, name) VALUES (1, 'x')");
  ASSERT_TRUE(stmt.ok());
  auto without = db.EstimateCost(*stmt, {});
  auto with = db.EstimateCost(*stmt, {"users.id", "users.age"});
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_GT(*with, *without);
}

TEST(EstimateTest, EstimateTracksActualOrdering) {
  Database db = MakeUsersDb(2000);
  ASSERT_TRUE(db.CreateIndex("users", "id").ok());
  auto point = sql::Parse("SELECT name FROM users WHERE id = 9");
  auto scan = sql::Parse("SELECT name FROM users WHERE age = 9");
  ASSERT_TRUE(point.ok() && scan.ok());
  auto point_cost = db.EstimateCost(*point, {});
  auto scan_cost = db.EstimateCost(*scan, {});
  ASSERT_TRUE(point_cost.ok() && scan_cost.ok());
  EXPECT_LT(*point_cost, *scan_cost);
  // And the executor agrees.
  auto point_exec = db.Execute(*point);
  auto scan_exec = db.Execute(*scan);
  ASSERT_TRUE(point_exec.ok() && scan_exec.ok());
  EXPECT_LT(point_exec->latency_us, scan_exec->latency_us);
}

TEST(LoaderTest, LoadsWorkloadSchemaAndServesQueries) {
  Database db;
  Rng rng(21);
  auto workload = MakeBusTracker();
  ASSERT_TRUE(LoadWorkloadSchema(db, workload, rng, /*row_scale=*/0.02).ok());
  EXPECT_EQ(db.TableNames().size(), workload.schema().size());
  // Every stream's SQL must execute against the loaded schema.
  for (const auto& stream : workload.streams()) {
    auto result = db.Execute(stream.make_sql(rng));
    EXPECT_TRUE(result.ok()) << stream.name << ": " << result.status().ToString();
  }
}

TEST(LoaderTest, AllWorkloadsExecutable) {
  Rng rng(22);
  for (const auto& workload :
       {MakeAdmissions(), MakeMooc(), MakeNoisyComposite()}) {
    Database db;
    ASSERT_TRUE(LoadWorkloadSchema(db, workload, rng, 0.01).ok());
    for (const auto& stream : workload.streams()) {
      auto result = db.Execute(stream.make_sql(rng));
      EXPECT_TRUE(result.ok()) << workload.label() << "/" << stream.name << ": "
                               << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace qb5000::dbms

#include <cmath>

#include <gtest/gtest.h>

#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

QueryBot5000::Config FastConfig() {
  QueryBot5000::Config config;
  config.clusterer.feature.num_samples = 96;
  config.clusterer.feature.window_seconds = 3 * kSecondsPerDay;
  config.forecaster.interval_seconds = kSecondsPerHour;
  config.forecaster.input_window = 24;
  config.forecaster.training_window_seconds = 7 * kSecondsPerDay;
  config.forecaster.kind = ModelKind::kLr;  // fast model for tests
  config.horizons = {kSecondsPerHour, 12 * kSecondsPerHour};
  return config;
}

TEST(QueryBot5000Test, EndToEndForecastOnBusTracker) {
  QueryBot5000 bot(FastConfig());
  auto workload = MakeBusTracker({.seed = 41, .volume_scale = 0.5});

  // Feed 8 days of history (aggregated), then run maintenance.
  PreProcessor scratch;  // unused; exercise the bot path below
  for (const auto& stream : workload.streams()) {
    Rng rng(42);
    auto tmpl = Templatize(stream.make_sql(rng));
    ASSERT_TRUE(tmpl.ok());
    for (int h = 0; h < 8 * 24; ++h) {
      Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
      double rate = stream.rate_per_minute(ts) * 60.0;
      if (rate > 0) bot.IngestTemplatized(*tmpl, ts, rate);
    }
  }
  ASSERT_TRUE(bot.RunMaintenance(8 * kSecondsPerDay, /*force=*/true).ok());
  EXPECT_FALSE(bot.ModeledClusters().empty());
  EXPECT_TRUE(bot.forecaster().trained());

  auto forecast = bot.Forecast(8 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast->clusters.size(), forecast->queries_per_interval.size());
  double total = 0;
  for (double v : forecast->queries_per_interval) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

TEST(QueryBot5000Test, ForecastTracksDiurnalShape) {
  QueryBot5000 bot(FastConfig());
  // Single synthetic diurnal stream, so the forecast is easy to check.
  auto tmpl = Templatize("SELECT x FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 14 * 24; ++h) {
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*tmpl, ts, 600.0 * (1.5 + std::sin(2 * M_PI * t)));
  }
  ASSERT_TRUE(bot.RunMaintenance(14 * kSecondsPerDay, true).ok());
  // Predict one hour ahead from two day phases inside the recorded history
  // (data exists through day 14 hour 0): the phase heading into the daily
  // peak (hour 6) must forecast more traffic than the one heading into the
  // trough (hour 18).
  auto peak = bot.Forecast(13 * kSecondsPerDay + 5 * kSecondsPerHour,
                           kSecondsPerHour);
  auto trough = bot.Forecast(13 * kSecondsPerDay + 17 * kSecondsPerHour,
                             kSecondsPerHour);
  ASSERT_TRUE(peak.ok() && trough.ok());
  EXPECT_GT(peak->queries_per_interval[0],
            2.0 * trough->queries_per_interval[0]);
}

TEST(QueryBot5000Test, MaintenanceRespectsPeriodAndTrigger) {
  auto config = FastConfig();
  config.maintenance_period_seconds = kSecondsPerDay;
  QueryBot5000 bot(config);
  auto tmpl = Templatize("SELECT x FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 10 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          100.0 * (1.5 + std::sin(2 * M_PI * t)));
  }
  ASSERT_TRUE(bot.RunMaintenance(10 * kSecondsPerDay, true).ok());
  size_t clusters_before = bot.clusterer().clusters().size();
  // Within the period and without new templates: no-op.
  ASSERT_TRUE(bot.RunMaintenance(10 * kSecondsPerDay + kSecondsPerHour).ok());
  EXPECT_EQ(bot.clusterer().clusters().size(), clusters_before);
  EXPECT_EQ(bot.clusterer().last_update_time(), 10 * kSecondsPerDay);

  // A flood of brand-new templates fires the shift trigger early.
  for (int k = 0; k < 8; ++k) {
    auto fresh = Templatize("SELECT y" + std::to_string(k) +
                            " FROM shiny WHERE id = 1");
    ASSERT_TRUE(fresh.ok());
    bot.IngestTemplatized(*fresh, 10 * kSecondsPerDay + 2 * kSecondsPerHour, 50);
  }
  ASSERT_TRUE(bot.RunMaintenance(10 * kSecondsPerDay + 3 * kSecondsPerHour).ok());
  EXPECT_EQ(bot.clusterer().last_update_time(),
            10 * kSecondsPerDay + 3 * kSecondsPerHour);
}

TEST(QueryBot5000Test, ForecastBeforeTrainingFails) {
  QueryBot5000 bot(FastConfig());
  EXPECT_FALSE(bot.Forecast(0, kSecondsPerHour).ok());
}

TEST(QueryBot5000Test, IngestRawSqlPath) {
  QueryBot5000 bot(FastConfig());
  ASSERT_TRUE(bot.Ingest("SELECT a FROM t WHERE id = 3", 60).ok());
  ASSERT_TRUE(bot.Ingest("SELECT a FROM t WHERE id = 9", 120).ok());
  EXPECT_FALSE(bot.Ingest("SELECT 'broken", 180).ok());
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 2.0);
}

TEST(QueryBot5000Test, ModeledClustersRespectCoverageTarget) {
  auto config = FastConfig();
  config.coverage_target = 0.5;  // low target: one big cluster suffices
  config.max_modeled_clusters = 5;
  QueryBot5000 bot(config);
  // One dominant template and two tiny ones with different shapes.
  auto big = Templatize("SELECT a FROM big WHERE id = 1");
  auto small1 = Templatize("SELECT b FROM small1 WHERE id = 1");
  auto small2 = Templatize("SELECT c FROM small2 WHERE id = 1");
  ASSERT_TRUE(big.ok() && small1.ok() && small2.ok());
  for (int h = 0; h < 5 * 24; ++h) {
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*big, ts, 1000.0 * (1.5 + std::sin(2 * M_PI * t)));
    bot.IngestTemplatized(*small1, ts, 5.0 * (1.5 + std::cos(2 * M_PI * t)));
    bot.IngestTemplatized(*small2, ts,
                          5.0 * (1.5 + std::sin(4 * M_PI * t + 1.0)));
  }
  ASSERT_TRUE(bot.RunMaintenance(5 * kSecondsPerDay, true).ok());
  EXPECT_EQ(bot.ModeledClusters().size(), 1u);
}

}  // namespace
}  // namespace qb5000

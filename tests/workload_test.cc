#include <gtest/gtest.h>

#include "workload/patterns.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

TEST(PatternsTest, DayFractionAndIndex) {
  EXPECT_DOUBLE_EQ(DayFraction(0), 0.0);
  EXPECT_DOUBLE_EQ(DayFraction(kSecondsPerDay / 2), 0.5);
  EXPECT_EQ(DayIndex(3 * kSecondsPerDay + 5), 3);
}

TEST(PatternsTest, HourBumpPeaksAtCenter) {
  Timestamp at_8am = 8 * kSecondsPerHour;
  EXPECT_NEAR(HourBump(at_8am, 8.0, 1.0), 1.0, 1e-9);
  EXPECT_LT(HourBump(at_8am + 3 * kSecondsPerHour, 8.0, 1.0), 0.05);
  // Wraps across midnight: 23:00 vs center 1:00 is 2 hours apart.
  Timestamp at_11pm = 23 * kSecondsPerHour;
  EXPECT_GT(HourBump(at_11pm, 1.0, 2.0), 0.5);
}

TEST(PatternsTest, WeekdayFactor) {
  EXPECT_DOUBLE_EQ(WeekdayFactor(0), 1.0);                       // day 0
  EXPECT_DOUBLE_EQ(WeekdayFactor(5 * kSecondsPerDay, 0.5), 0.5); // day 5
  EXPECT_DOUBLE_EQ(WeekdayFactor(6 * kSecondsPerDay, 0.5), 0.5); // day 6
  EXPECT_DOUBLE_EQ(WeekdayFactor(7 * kSecondsPerDay), 1.0);      // wraps
}

TEST(PatternsTest, DeadlinePressureGrowsThenDrops) {
  Timestamp deadline = 30 * kSecondsPerDay;
  double week_out = DeadlinePressure(23 * kSecondsPerDay, deadline, 5.0);
  double day_out = DeadlinePressure(29 * kSecondsPerDay, deadline, 5.0);
  double after = DeadlinePressure(31 * kSecondsPerDay, deadline, 5.0, 0.1);
  EXPECT_LT(week_out, day_out);
  EXPECT_DOUBLE_EQ(after, 0.1);
  EXPECT_NEAR(DeadlinePressure(deadline, deadline, 5.0), 1.0, 1e-9);
}

TEST(PatternsTest, PseudoNoiseDeterministicAndBounded) {
  for (int i = 0; i < 1000; ++i) {
    double n = PseudoNoise(i * 60, 42);
    EXPECT_GE(n, -1.0);
    EXPECT_LE(n, 1.0);
    EXPECT_DOUBLE_EQ(n, PseudoNoise(i * 60, 42));
  }
  EXPECT_NE(PseudoNoise(0, 1), PseudoNoise(0, 2));
}

TEST(WorkloadTest, AllGeneratorsProduceValidSql) {
  Rng rng(3);
  for (const auto& workload :
       {MakeBusTracker(), MakeAdmissions(), MakeMooc(), MakeNoisyComposite()}) {
    EXPECT_FALSE(workload.streams().empty()) << workload.label();
    EXPECT_FALSE(workload.schema().empty()) << workload.label();
    for (const auto& stream : workload.streams()) {
      std::string sql = stream.make_sql(rng);
      auto tmpl = Templatize(sql);
      ASSERT_TRUE(tmpl.ok()) << workload.label() << "/" << stream.name << ": "
                             << sql;
      EXPECT_FALSE(tmpl->used_fallback)
          << workload.label() << "/" << stream.name << ": " << sql;
    }
  }
}

TEST(WorkloadTest, StreamsTemplatizeStably) {
  // Two materializations of one stream must share a template.
  Rng rng(4);
  auto workload = MakeBusTracker();
  for (const auto& stream : workload.streams()) {
    auto a = Templatize(stream.make_sql(rng));
    auto b = Templatize(stream.make_sql(rng));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->fingerprint, b->fingerprint) << stream.name;
  }
}

TEST(WorkloadTest, DistinctStreamsDistinctTemplates) {
  // MOOC's long-tail dashboards must all be distinct templates.
  Rng rng(5);
  auto workload = MakeMooc();
  std::set<std::string> fingerprints;
  size_t dashboards = 0;
  for (const auto& stream : workload.streams()) {
    if (stream.name.rfind("custom_dashboard_", 0) != 0) continue;
    ++dashboards;
    auto tmpl = Templatize(stream.make_sql(rng));
    ASSERT_TRUE(tmpl.ok());
    fingerprints.insert(tmpl->fingerprint);
  }
  EXPECT_EQ(dashboards, 24u);
  EXPECT_EQ(fingerprints.size(), dashboards);
}

TEST(WorkloadTest, FeedAggregatedPopulatesPreProcessor) {
  auto workload = MakeBusTracker({.seed = 1, .volume_scale = 0.2});
  PreProcessor pre;
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 0, 2 * kSecondsPerDay,
                                  10 * kSecondsPerMinute, 11)
                  .ok());
  EXPECT_GT(pre.num_templates(), 5u);
  EXPECT_GT(pre.total_queries(), 1000.0);
  auto stats = workload.Stats(pre, 2.0);
  EXPECT_GT(stats.selects, stats.deletes);
  EXPECT_GT(stats.avg_queries_per_day, 0.0);
  EXPECT_EQ(stats.dbms, "PostgreSQL");
}

TEST(WorkloadTest, BusTrackerHasRushHourShape) {
  auto workload = MakeBusTracker({.seed = 2, .volume_scale = 1.0});
  PreProcessor pre;
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 0, kSecondsPerDay,
                                  10 * kSecondsPerMinute, 12)
                  .ok());
  // Aggregate all templates; morning rush (8am) must beat 3am.
  double rush = 0, night = 0;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    auto series =
        info->history.Series(kSecondsPerHour, 0, kSecondsPerDay);
    ASSERT_TRUE(series.ok());
    rush += series->values()[8];
    night += series->values()[3];
  }
  EXPECT_GT(rush, 2.0 * night);
}

TEST(WorkloadTest, AdmissionsSpikesAtDeadline) {
  auto workload = MakeAdmissions({.seed = 3, .volume_scale = 1.0});
  PreProcessor pre;
  // Feed the two weeks around the first deadline (day 334).
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 320 * kSecondsPerDay,
                                  340 * kSecondsPerDay, kSecondsPerHour, 13)
                  .ok());
  double early = 0, deadline_day = 0;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    auto series = info->history.Series(kSecondsPerDay, 320 * kSecondsPerDay,
                                       340 * kSecondsPerDay);
    ASSERT_TRUE(series.ok());
    early += series->values()[1];      // day 321
    deadline_day += series->values()[14];  // day 334
  }
  EXPECT_GT(deadline_day, 5.0 * early);
}

TEST(WorkloadTest, MoocTemplateCountGrowsOverTime) {
  auto workload = MakeMooc({.seed = 4, .volume_scale = 1.0});
  PreProcessor pre;
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 0, 20 * kSecondsPerDay, kSecondsPerHour, 14)
                  .ok());
  size_t at_day20 = pre.num_templates();
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 20 * kSecondsPerDay, 70 * kSecondsPerDay,
                                  kSecondsPerHour, 15)
                  .ok());
  size_t at_day70 = pre.num_templates();
  EXPECT_GT(at_day70, at_day20 + 10);  // release + long tail appeared
}

TEST(WorkloadTest, NoisyCompositeSegmentsShiftLevels) {
  auto workload = MakeNoisyComposite({.seed = 5, .volume_scale = 1.0});
  PreProcessor pre;
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 0, 80 * kSecondsPerHour,
                                  10 * kSecondsPerMinute, 16)
                  .ok());
  // 8 benchmarks x 3 templates.
  EXPECT_EQ(pre.num_templates(), 24u);
  // Segment 5 (twitter, 520/min) must dwarf segment 6 (epinions, 90/min).
  double total_twitter = 0, total_epinions = 0;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    auto series = info->history.Series(10 * kSecondsPerHour, 0,
                                       80 * kSecondsPerHour);
    ASSERT_TRUE(series.ok());
    total_twitter += series->values()[5];
    total_epinions += series->values()[6];
  }
  EXPECT_GT(total_twitter, 3.0 * total_epinions);
}

TEST(WorkloadTest, MaterializeProducesSortedBoundedEvents) {
  auto workload = MakeBusTracker({.seed = 6, .volume_scale = 0.05});
  auto events = workload.Materialize(0, 2 * kSecondsPerHour,
                                     10 * kSecondsPerMinute, 17);
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].timestamp, events[i].timestamp);
  }
  for (const auto& event : events) {
    EXPECT_GE(event.timestamp, 0);
    EXPECT_LT(event.timestamp, 2 * kSecondsPerHour);
    EXPECT_TRUE(Templatize(event.sql).ok());
  }
}

}  // namespace
}  // namespace qb5000

// Golden-trace regression suite: fixed-seed end-to-end pipeline runs over
// all four synthetic workloads, fingerprinted by the metrics export and
// compared against checked-in goldens (tests/golden/*.txt).
//
// Comparison rules (per line kind):
//   counter   — exact. Counters are the deterministic core: same seed and
//               decomposition => byte-identical values (DESIGN.md §9/§10).
//   gauge     — 5% relative tolerance (they are deterministic today, but the
//               band keeps harmless numeric drift from failing the suite).
//   histogram — `count=` exact; `sum=`/`buckets=` ignored (wall time).
// A metric appearing or disappearing is always a failure: the exported
// names are a stability contract.
//
// Regenerating after an INTENTIONAL pipeline or metric change:
//   QB_UPDATE_GOLDENS=1 build/qb5000_tests --gtest_filter='GoldenTrace.*'
// then review the tests/golden/ diff like any other code change.
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Restores the previous global thread count when the test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved_); }

 private:
  size_t saved_;
};

/// The fixed golden scenario: 4 simulated days fed at minute resolution
/// with seed 5, LR models (closed form — fast and exactly reproducible),
/// one-hour and one-day horizons, maintenance forced once at the end.
QueryBot5000 RunGoldenPipeline(const SyntheticWorkload& workload) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.input_window = 12;
  config.horizons = {kSecondsPerHour, kSecondsPerDay};
  QueryBot5000 bot(config);
  Timestamp end = 4 * kSecondsPerDay;
  Status fed = workload.FeedAggregated(bot.mutable_preprocessor(), 0, end,
                                       kSecondsPerMinute, /*seed=*/5);
  EXPECT_TRUE(fed.ok()) << fed.message();
  Status maint = bot.RunMaintenance(end, /*force=*/true);
  EXPECT_TRUE(maint.ok()) << maint.message();
  for (int64_t horizon : config.horizons) {
    auto forecast = bot.Forecast(end, horizon);
    EXPECT_TRUE(forecast.ok()) << forecast.status().message();
  }
  return bot;
}

struct ParsedLine {
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  std::string rest;  ///< everything after the name
};

std::map<std::string, ParsedLine> ParseExport(const std::string& text) {
  std::map<std::string, ParsedLine> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t s1 = line.find(' ');
    size_t s2 = line.find(' ', s1 + 1);
    ParsedLine parsed;
    parsed.kind = line.substr(0, s1);
    std::string name = line.substr(s1 + 1, s2 - s1 - 1);
    parsed.rest = line.substr(s2 + 1);
    lines[name] = std::move(parsed);
  }
  return lines;
}

/// The `count=N` field of a histogram line's tail.
std::string HistogramCount(const std::string& rest) {
  size_t at = rest.find("count=");
  if (at == std::string::npos) return "";
  size_t end = rest.find(' ', at);
  return rest.substr(at, end - at);
}

void CompareToGolden(const std::string& workload_name,
                     const std::string& actual_text) {
  std::string path =
      std::string(QB5000_GOLDEN_DIR) + "/" + workload_name + ".txt";
  if (std::getenv("QB_UPDATE_GOLDENS") != nullptr) {
    Status st = WriteStringToFile(nullptr, actual_text, path);
    ASSERT_TRUE(st.ok()) << st.ToString();
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  auto golden_text = ReadFileToString(nullptr, path);
  ASSERT_TRUE(golden_text.ok())
      << path << ": " << golden_text.status().ToString()
      << " (regenerate with QB_UPDATE_GOLDENS=1)";

  auto golden = ParseExport(*golden_text);
  auto actual = ParseExport(actual_text);

  for (const auto& [name, want] : golden) {
    auto it = actual.find(name);
    if (it == actual.end()) {
      ADD_FAILURE() << "metric disappeared: " << name;
      continue;
    }
    const ParsedLine& got = it->second;
    EXPECT_EQ(got.kind, want.kind) << name;
    if (want.kind == "counter") {
      EXPECT_EQ(got.rest, want.rest) << "counter drifted: " << name;
    } else if (want.kind == "gauge") {
      double want_v = std::strtod(want.rest.c_str(), nullptr);
      double got_v = std::strtod(got.rest.c_str(), nullptr);
      double tolerance = 0.05 * std::max(std::fabs(want_v), 1e-9);
      EXPECT_NEAR(got_v, want_v, tolerance) << "gauge drifted: " << name;
    } else if (want.kind == "histogram") {
      EXPECT_EQ(HistogramCount(got.rest), HistogramCount(want.rest))
          << "histogram count drifted: " << name;
    }
  }
  for (const auto& [name, line] : actual) {
    (void)line;
    EXPECT_TRUE(golden.count(name))
        << "new metric not in golden (regenerate deliberately): " << name;
  }
}

void RunGoldenCase(const char* file_name, const SyntheticWorkload& workload) {
  if (!kMetricsEnabled) GTEST_SKIP() << "no metrics in this build";
  ThreadCountGuard guard;
  SetThreadCount(2);  // any count works (counters are thread-count
                      // independent); pinned so the suite never depends on
                      // the host's core count even if that contract breaks
  QueryBot5000 bot = RunGoldenPipeline(workload);
  CompareToGolden(file_name, bot.Metrics().ExportText());
}

TEST(GoldenTrace, BusTracker) { RunGoldenCase("bustracker", MakeBusTracker()); }

TEST(GoldenTrace, Admissions) { RunGoldenCase("admissions", MakeAdmissions()); }

TEST(GoldenTrace, Mooc) { RunGoldenCase("mooc", MakeMooc()); }

TEST(GoldenTrace, NoisyComposite) {
  RunGoldenCase("noisy_composite", MakeNoisyComposite());
}

// Acceptance gate for the observability layer: the counter-only export is
// byte-identical across thread counts, because counters only ever count
// work whose decomposition is thread-count independent.
TEST(GoldenTrace, CounterExportByteIdenticalAcrossThreadCounts) {
  if (!kMetricsEnabled) GTEST_SKIP() << "no metrics in this build";
  ThreadCountGuard guard;
  MetricsRegistry::ExportOptions counters_only;
  counters_only.counters_only = true;

  SetThreadCount(1);
  std::string baseline =
      RunGoldenPipeline(MakeBusTracker()).Metrics().ExportText(counters_only);
  ASSERT_FALSE(baseline.empty());

  SetThreadCount(8);
  std::string at8 =
      RunGoldenPipeline(MakeBusTracker()).Metrics().ExportText(counters_only);
  EXPECT_EQ(baseline, at8);
}

}  // namespace
}  // namespace qb5000

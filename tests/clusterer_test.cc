#include <cmath>

#include <gtest/gtest.h>

#include "clusterer/feature.h"
#include "clusterer/kdtree.h"
#include "clusterer/online_clusterer.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

TEST(KdTreeTest, EmptyTreeReturnsMinusOne) {
  KdTree tree;
  EXPECT_EQ(tree.Nearest({1.0, 2.0}).index, -1);
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree;
  tree.Build({{1.0, 2.0}});
  auto nn = tree.Nearest({0.0, 0.0});
  EXPECT_EQ(nn.index, 0);
  EXPECT_DOUBLE_EQ(nn.distance_squared, 5.0);
}

TEST(KdTreeTest, MatchesLinearScan) {
  Rng rng(5);
  std::vector<Vector> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                      rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
  }
  KdTree tree;
  tree.Build(points);
  for (int q = 0; q < 50; ++q) {
    Vector query = {rng.Uniform(-12, 12), rng.Uniform(-12, 12),
                    rng.Uniform(-12, 12), rng.Uniform(-12, 12)};
    auto nn = tree.Nearest(query);
    // Exact linear scan.
    int best = -1;
    double best_d = 1e300;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = SquaredL2Distance(points[i], query);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    EXPECT_EQ(nn.index, best);
    EXPECT_NEAR(nn.distance_squared, best_d, 1e-12);
  }
}

// Feeds a sinusoidal arrival pattern into a history.
ArrivalHistory MakePattern(double phase, double scale, int days) {
  ArrivalHistory h;
  for (int m = 0; m < days * 24 * 60; ++m) {
    double t = static_cast<double>(m) / (24 * 60);
    double rate = scale * (1.5 + std::sin(2 * M_PI * t + phase));
    h.Record(static_cast<Timestamp>(m) * kSecondsPerMinute, rate);
  }
  return h;
}

TEST(ArrivalRateFeatureTest, SampledDimensionsAndDeterminism) {
  ArrivalRateFeature::Options opts;
  opts.num_samples = 64;
  opts.window_seconds = 2 * kSecondsPerDay;
  ArrivalRateFeature f1(opts);
  ArrivalRateFeature f2(opts);
  f1.Resample(3 * kSecondsPerDay);
  f2.Resample(3 * kSecondsPerDay);
  EXPECT_EQ(f1.sample_times(), f2.sample_times());
  ArrivalHistory h = MakePattern(0.0, 10.0, 3);
  EXPECT_EQ(f1.Extract(h).size(), 64u);
  EXPECT_EQ(f1.Extract(h), f2.Extract(h));
}

TEST(ArrivalRateFeatureTest, ScaledPatternsAreCosineSimilar) {
  ArrivalRateFeature::Options opts;
  opts.num_samples = 128;
  opts.window_seconds = 3 * kSecondsPerDay;
  ArrivalRateFeature f(opts);
  f.Resample(3 * kSecondsPerDay);
  ArrivalHistory a = MakePattern(0.0, 10.0, 3);
  ArrivalHistory b = MakePattern(0.0, 100.0, 3);   // same shape, 10x volume
  ArrivalHistory c = MakePattern(M_PI, 10.0, 3);   // opposite phase
  double sim_ab = CosineSimilarity(f.Extract(a), f.Extract(b));
  double sim_ac = CosineSimilarity(f.Extract(a), f.Extract(c));
  EXPECT_GT(sim_ab, 0.99);
  EXPECT_LT(sim_ac, 0.9);
}

TEST(ArrivalRateFeatureTest, EmptyHistoryIsZeroVector) {
  ArrivalRateFeature f;
  f.Resample(kSecondsPerDay);
  ArrivalHistory empty;
  Vector v = f.Extract(empty);
  EXPECT_DOUBLE_EQ(Norm(v), 0.0);
}

PreProcessor::TemplateInfo MakeTemplate(const std::string& sql) {
  PreProcessor pre;
  auto id = pre.Ingest(sql, 0);
  EXPECT_TRUE(id.ok());
  PreProcessor::TemplateInfo copy(1);
  const auto* info = pre.GetTemplate(*id);
  copy.text = info->text;
  copy.type = info->type;
  copy.tables = info->tables;
  return copy;
}

TEST(LogicalFeatureTest, DistinguishesTypeAndTables) {
  auto a = LogicalFeature::Extract(
      MakeTemplate("SELECT x FROM alpha WHERE id = 1"));
  auto b = LogicalFeature::Extract(
      MakeTemplate("SELECT x FROM beta WHERE id = 1"));
  auto c = LogicalFeature::Extract(
      MakeTemplate("DELETE FROM alpha WHERE id = 1"));
  EXPECT_GT(SquaredL2Distance(a, b), 0.0);
  EXPECT_GT(SquaredL2Distance(a, c), 0.0);
  EXPECT_EQ(a.size(), LogicalFeature::kDimension);
}

TEST(LogicalFeatureTest, IdenticalStructureIdenticalFeature) {
  auto a = LogicalFeature::Extract(
      MakeTemplate("SELECT x FROM alpha WHERE id = 5"));
  auto b = LogicalFeature::Extract(
      MakeTemplate("SELECT x FROM alpha WHERE id = 999"));
  EXPECT_DOUBLE_EQ(SquaredL2Distance(a, b), 0.0);
}

TEST(LogicalFeatureTest, CountsJoinsAndAggregates) {
  auto simple = LogicalFeature::Extract(MakeTemplate("SELECT x FROM t"));
  auto fancy = LogicalFeature::Extract(MakeTemplate(
      "SELECT COUNT(*), SUM(v) FROM t JOIN u ON t.id = u.id GROUP BY g"));
  EXPECT_GT(SquaredL2Distance(simple, fancy), 1.0);
}

// Builds a PreProcessor with `n` templates per pattern group; patterns are
// sinusoids with group-specific phase.
void FillWorkload(PreProcessor& pre, int groups, int per_group, int days) {
  for (int g = 0; g < groups; ++g) {
    for (int k = 0; k < per_group; ++k) {
      std::string sql = "SELECT c" + std::to_string(g) + "_" + std::to_string(k) +
                        " FROM t" + std::to_string(g) + " WHERE id = 1";
      auto tmpl = Templatize(sql);
      ASSERT_TRUE(tmpl.ok());
      double phase = g * 2.0 * M_PI / groups;
      for (int h = 0; h < days * 24; ++h) {
        double t = static_cast<double>(h) / 24.0;
        double rate = (k + 1) * 50.0 * (1.5 + std::sin(2 * M_PI * t + phase));
        // One aggregated record per hour keeps the test fast.
        pre.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                              rate);
      }
    }
  }
}

OnlineClusterer::Options FastOptions() {
  OnlineClusterer::Options opts;
  opts.feature.num_samples = 96;
  opts.feature.window_seconds = 3 * kSecondsPerDay;
  return opts;
}

TEST(OnlineClustererTest, GroupsSimilarPatternsSeparatesDissimilar) {
  PreProcessor pre;
  FillWorkload(pre, 3, 4, 3);
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, 3 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), 3u);
  // Templates from one group share a cluster.
  auto ids = pre.TemplateIds();
  ASSERT_EQ(ids.size(), 12u);
  for (int g = 0; g < 3; ++g) {
    ClusterId first = clusterer.AssignmentOf(ids[g * 4]);
    for (int k = 1; k < 4; ++k) {
      EXPECT_EQ(clusterer.AssignmentOf(ids[g * 4 + k]), first);
    }
  }
}

TEST(OnlineClustererTest, VolumeRankingAndTotal) {
  PreProcessor pre;
  FillWorkload(pre, 2, 2, 2);
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, 2 * kSecondsPerDay);
  auto top = clusterer.TopClustersByVolume(5);
  ASSERT_EQ(top.size(), 2u);
  const auto& clusters = clusterer.clusters();
  EXPECT_GE(clusters.at(top[0]).volume, clusters.at(top[1]).volume);
  EXPECT_NEAR(clusterer.TotalVolume(),
              clusters.at(top[0]).volume + clusters.at(top[1]).volume, 1e-9);
}

TEST(OnlineClustererTest, NewTemplateJoinsExistingCluster) {
  PreProcessor pre;
  FillWorkload(pre, 2, 3, 4);
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, 3 * kSecondsPerDay);
  ASSERT_EQ(clusterer.clusters().size(), 2u);
  // A new template with group-0 phase first appears on day 3: it only has
  // one day of history, so the coverage-masked similarity rule applies.
  auto tmpl = Templatize("SELECT newcol FROM t0 WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 3 * 24; h < 4 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 80.0 * (1.5 + std::sin(2 * M_PI * t));
    pre.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour, rate);
  }
  auto ids = pre.TemplateIds();
  TemplateId new_id = ids.back();
  clusterer.Update(pre, 4 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), 2u);
  // It must share a cluster with the first group-0 template.
  EXPECT_EQ(clusterer.AssignmentOf(new_id), clusterer.AssignmentOf(ids[0]));
}

TEST(OnlineClustererTest, DriftingTemplateMoves) {
  PreProcessor pre;
  auto stable = Templatize("SELECT a FROM t0 WHERE id = 1");
  auto stable2 = Templatize("SELECT b FROM t0 WHERE id = 1");
  auto drifter = Templatize("SELECT c FROM t0 WHERE id = 1");
  ASSERT_TRUE(stable.ok() && stable2.ok() && drifter.ok());
  // Days 0-2: all three share the same diurnal pattern.
  for (int h = 0; h < 3 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 60.0 * (1.5 + std::sin(2 * M_PI * t));
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    pre.IngestTemplatized(*stable, ts, rate);
    pre.IngestTemplatized(*stable2, ts, rate);
    pre.IngestTemplatized(*drifter, ts, rate);
  }
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, 3 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), 1u);
  // Days 3-5: the drifter flips phase.
  for (int h = 3 * 24; h < 6 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    pre.IngestTemplatized(*stable, ts, 60.0 * (1.5 + std::sin(2 * M_PI * t)));
    pre.IngestTemplatized(*stable2, ts, 60.0 * (1.5 + std::sin(2 * M_PI * t)));
    pre.IngestTemplatized(*drifter, ts, 60.0 * (1.5 + std::sin(2 * M_PI * t + M_PI)));
  }
  clusterer.Update(pre, 6 * kSecondsPerDay);
  auto ids = pre.TemplateIds();
  EXPECT_EQ(clusterer.AssignmentOf(ids[0]), clusterer.AssignmentOf(ids[1]));
  EXPECT_NE(clusterer.AssignmentOf(ids[0]), clusterer.AssignmentOf(ids[2]));
}

TEST(OnlineClustererTest, CenterSeriesAveragesMembers) {
  PreProcessor pre;
  auto a = Templatize("SELECT a FROM t WHERE id = 1");
  auto b = Templatize("SELECT b FROM t WHERE id = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  for (int h = 0; h < 48; ++h) {
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    double t = static_cast<double>(h) / 24.0;
    double shape = 1.5 + std::sin(2 * M_PI * t);
    pre.IngestTemplatized(*a, ts, 10.0 * shape);
    pre.IngestTemplatized(*b, ts, 30.0 * shape);
  }
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, 2 * kSecondsPerDay);
  ASSERT_EQ(clusterer.clusters().size(), 1u);
  ClusterId cid = clusterer.clusters().begin()->first;
  auto center = clusterer.CenterSeries(pre, cid, kSecondsPerHour, 0,
                                       2 * kSecondsPerDay);
  ASSERT_TRUE(center.ok());
  // Center = average of the two members: 20 * shape at h=6 (peak: shape=2.5).
  EXPECT_NEAR(center->values()[6], 20.0 * 2.5, 1.0);
}

TEST(OnlineClustererTest, ShouldTriggerOnNewTemplates) {
  PreProcessor pre;
  FillWorkload(pre, 1, 4, 1);
  OnlineClusterer clusterer(FastOptions());
  clusterer.Update(pre, kSecondsPerDay);
  EXPECT_FALSE(clusterer.ShouldTrigger(pre));
  // Add 4 brand-new templates (50% of workload is now new).
  for (int k = 0; k < 4; ++k) {
    auto tmpl = Templatize("SELECT brand_new" + std::to_string(k) +
                           " FROM fresh WHERE id = 1");
    ASSERT_TRUE(tmpl.ok());
    pre.IngestTemplatized(*tmpl, kSecondsPerDay + 60, 5.0);
  }
  EXPECT_TRUE(clusterer.ShouldTrigger(pre));
}

TEST(OnlineClustererTest, MergesClustersWhenCentersConverge) {
  PreProcessor pre;
  auto a = Templatize("SELECT a FROM t WHERE id = 1");
  auto b = Templatize("SELECT b FROM t WHERE id = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  // Day 0-2: opposite phases -> two clusters.
  for (int h = 0; h < 3 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    pre.IngestTemplatized(*a, ts, 60.0 * (1.5 + std::sin(2 * M_PI * t)));
    pre.IngestTemplatized(*b, ts, 60.0 * (1.5 + std::sin(2 * M_PI * t + M_PI)));
  }
  auto opts = FastOptions();
  OnlineClusterer clusterer(opts);
  clusterer.Update(pre, 3 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), 2u);
  // Days 3-8: identical phases; with a 3-day feature window the old
  // disagreement ages out and the clusters merge.
  for (int h = 3 * 24; h < 9 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    double rate = 60.0 * (1.5 + std::sin(2 * M_PI * t));
    pre.IngestTemplatized(*a, ts, rate);
    pre.IngestTemplatized(*b, ts, rate);
  }
  clusterer.Update(pre, 9 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), 1u);
}

TEST(OnlineClustererTest, LogicalModeClustersByStructure) {
  PreProcessor pre;
  // Two structural families with *identical* arrival patterns.
  auto a1 = Templatize("SELECT a FROM users WHERE uid = 1");
  auto a2 = Templatize("SELECT b FROM users WHERE uid = 2");
  auto b1 = Templatize("INSERT INTO events (k, v, w, x) VALUES (1, 2, 3, 4)");
  ASSERT_TRUE(a1.ok() && a2.ok() && b1.ok());
  for (int h = 0; h < 24; ++h) {
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    pre.IngestTemplatized(*a1, ts, 10);
    pre.IngestTemplatized(*a2, ts, 10);
    pre.IngestTemplatized(*b1, ts, 10);
  }
  auto opts = FastOptions();
  opts.feature_mode = OnlineClusterer::FeatureMode::kLogical;
  opts.rho = 0.35;  // L2-mapped similarity threshold
  OnlineClusterer clusterer(opts);
  clusterer.Update(pre, kSecondsPerDay);
  auto ids = pre.TemplateIds();
  EXPECT_EQ(clusterer.AssignmentOf(ids[0]), clusterer.AssignmentOf(ids[1]));
  EXPECT_NE(clusterer.AssignmentOf(ids[0]), clusterer.AssignmentOf(ids[2]));
}

TEST(OnlineClustererTest, KdTreeAndLinearScanAgree) {
  PreProcessor pre;
  FillWorkload(pre, 4, 3, 3);
  auto opts = FastOptions();
  opts.use_kdtree = true;
  OnlineClusterer with_tree(opts);
  with_tree.Update(pre, 3 * kSecondsPerDay);
  opts.use_kdtree = false;
  OnlineClusterer without_tree(opts);
  without_tree.Update(pre, 3 * kSecondsPerDay);
  EXPECT_EQ(with_tree.clusters().size(), without_tree.clusters().size());
  for (TemplateId id : pre.TemplateIds()) {
    // Same partition; cluster ids may differ, so compare co-membership.
    for (TemplateId other : pre.TemplateIds()) {
      bool same_a = with_tree.AssignmentOf(id) == with_tree.AssignmentOf(other);
      bool same_b =
          without_tree.AssignmentOf(id) == without_tree.AssignmentOf(other);
      EXPECT_EQ(same_a, same_b);
    }
  }
}

}  // namespace
}  // namespace qb5000

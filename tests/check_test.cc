// Proves the QB_CHECK family stays armed in every build type — most
// importantly Release, where the default NDEBUG would have silenced the raw
// assert() calls these macros replaced. Death tests exercise real public
// entry points, not synthetic conditions, so a regression that re-routes any
// of these paths through a compiled-out check fails here.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/status.h"
#include "dbms/table.h"
#include "forecaster/dataset.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, QbCheckFiresEvenWithNdebug) {
#ifdef NDEBUG
  // This is the Release configuration: raw assert() would be a no-op here.
  EXPECT_DEATH(QB_CHECK(1 + 1 == 3), "QB_CHECK failed");
#else
  EXPECT_DEATH(QB_CHECK(1 + 1 == 3), "QB_CHECK failed");
#endif
}

TEST(CheckDeathTest, QbCheckMessageNamesFileAndExpression) {
  EXPECT_DEATH(QB_CHECK(false), "check_test\\.cc.*false");
}

TEST(CheckDeathTest, QbCheckOpReportsOperandValues) {
  size_t small = 3;
  size_t big = 7;
  EXPECT_DEATH(QB_CHECK_LT(big, small), "lhs=7 rhs=3");
}

TEST(CheckDeathTest, QbDcheckMatchesBuildType) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return false;
  };
#ifdef NDEBUG
  QB_DCHECK(bump());  // compiled out: must not evaluate, must not abort
  EXPECT_EQ(calls, 0);
#else
  EXPECT_DEATH(QB_DCHECK(bump()), "QB_CHECK failed");
#endif
}

TEST(CheckDeathTest, MatrixAtOutOfBoundsAborts) {
  Matrix m(2, 3);
  EXPECT_DEATH((void)m.at(2, 0), "QB_CHECK failed.*rows_");
  EXPECT_DEATH((void)m.at(0, 3), "QB_CHECK failed.*cols_");
}

TEST(CheckDeathTest, MatrixShapeOpsAbortOnMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);  // MatMul needs a.cols() == b.rows(): 3 != 2
  EXPECT_DEATH((void)a.MatMul(b), "QB_CHECK failed");
  EXPECT_DEATH((void)a.MatVec(Vector{1.0, 2.0}), "QB_CHECK failed");
  EXPECT_DEATH(a.SetRow(0, Vector{1.0}), "QB_CHECK failed");
  EXPECT_DEATH((void)a.Row(5), "QB_CHECK failed");
}

TEST(CheckDeathTest, StatsMismatchedLengthsAbort) {
  Vector actual{1.0, 2.0, 3.0};
  Vector predicted{1.0, 2.0};
  EXPECT_DEATH((void)MeanSquaredError(actual, predicted), "QB_CHECK failed");
  EXPECT_DEATH((void)CosineSimilarity(actual, predicted), "QB_CHECK failed");
  EXPECT_DEATH((void)SquaredL2Distance(actual, predicted), "QB_CHECK failed");
}

TEST(CheckDeathTest, EmptyDatasetWindowingValueAborts) {
  // BuildDataset reports empty input as a Status; forcing the value out of
  // the failed Result is the invariant violation that must abort.
  Result<ForecastDataset> ds = BuildDataset({}, /*input_window=*/4,
                                            /*horizon_steps=*/1);
  ASSERT_FALSE(ds.ok());
  EXPECT_DEATH((void)ds.value(), "Result::value\\(\\) on error");
}

TEST(CheckDeathTest, TableGetRowOutOfRangeAborts) {
  dbms::Table table("t", {{"id", true, 10}});
  ASSERT_TRUE(table.Insert({dbms::Value{int64_t{1}}}).ok());
  EXPECT_DEATH((void)table.GetRow(99), "QB_CHECK failed");
}

TEST(CheckTest, PassingChecksAreSilent) {
  QB_CHECK(true);
  QB_CHECK_EQ(2, 2);
  QB_CHECK_LT(1u, 2u);
  QB_DCHECK(true);
  Matrix m(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

}  // namespace
}  // namespace qb5000

// The durability substrate: CRC32, the Env seam, AtomicFileWriter's
// old-or-new guarantee, and the determinism of FaultInjectingEnv that the
// checkpoint crash sweeps (checkpoint_test.cc) rely on.
#include "common/io.h"

#include <sys/stat.h>

#include <string>

#include <gtest/gtest.h>

namespace qb5000 {
namespace {

std::string TestDir() {
  std::string dir = ::testing::TempDir() + "qb5000_io_test";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveIfExists(Env* env, const std::string& path) {
  if (env->FileExists(path)) {
    ASSERT_TRUE(env->DeleteFile(path).ok());
  }
}

TEST(Crc32Test, KnownVectors) {
  // The check value every CRC-32 implementation must agree on.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "qb5000-checkpoint payload bytes \n\x01\xff";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Crc32(data.substr(0, split));
    EXPECT_EQ(Crc32(data.substr(split), partial), Crc32(data)) << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "templates 17 history 42.5";
  uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(flipped), clean) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(EnvTest, WriteReadRoundTripIsBinarySafe) {
  const std::string path = TestDir() + "/roundtrip.bin";
  std::string data = "line1\nline2\r\n";
  data.push_back('\0');
  data += "\xff\x80 tail";
  ASSERT_TRUE(WriteStringToFile(nullptr, data, path).ok());
  auto read = ReadFileToString(nullptr, path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST(EnvTest, MissingFileIsNotFound) {
  auto read = ReadFileToString(nullptr, TestDir() + "/never_written");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(EnvTest, UnwritablePathSurfacesIOError) {
  Status st =
      WriteStringToFile(nullptr, "x", "/nonexistent_qb5000_dir/sub/file");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(AtomicFileWriterTest, CommitPublishesAndRotatesBackup) {
  Env* env = Env::Default();
  const std::string path = TestDir() + "/atomic.dat";
  RemoveIfExists(env, path);
  RemoveIfExists(env, AtomicFileWriter::BackupPath(path));

  {
    AtomicFileWriter writer(env, path);
    ASSERT_TRUE(writer.Append("version-1").ok());
    ASSERT_TRUE(writer.Commit().ok());
  }
  EXPECT_EQ(*ReadFileToString(env, path), "version-1");
  EXPECT_FALSE(env->FileExists(AtomicFileWriter::BackupPath(path)));
  EXPECT_FALSE(env->FileExists(AtomicFileWriter::TempPath(path)));

  {
    AtomicFileWriter writer(env, path);
    ASSERT_TRUE(writer.Append("version-2").ok());
    ASSERT_TRUE(writer.Commit().ok());
  }
  EXPECT_EQ(*ReadFileToString(env, path), "version-2");
  // The previous version was rotated, not clobbered.
  EXPECT_EQ(*ReadFileToString(env, AtomicFileWriter::BackupPath(path)),
            "version-1");
  EXPECT_FALSE(env->FileExists(AtomicFileWriter::TempPath(path)));
}

TEST(AtomicFileWriterTest, AbandonedWriterLeavesTargetUntouched) {
  Env* env = Env::Default();
  const std::string path = TestDir() + "/abandoned.dat";
  ASSERT_TRUE(WriteStringToFile(env, "original", path).ok());
  {
    AtomicFileWriter writer(env, path);
    ASSERT_TRUE(writer.Append("half-written update that never commits").ok());
    // destroyed without Commit()
  }
  EXPECT_EQ(*ReadFileToString(env, path), "original");
  EXPECT_FALSE(env->FileExists(AtomicFileWriter::TempPath(path)));
}

TEST(AtomicFileWriterTest, FailedCommitKeepsPreviousFileLoadable) {
  const std::string path = TestDir() + "/failed_commit.dat";
  Env* base = Env::Default();
  RemoveIfExists(base, path);
  RemoveIfExists(base, AtomicFileWriter::BackupPath(path));
  ASSERT_TRUE(WriteStringToFile(base, "stable-state", path).ok());

  FaultInjectingEnv env(base);
  // Crash every op index in turn; the committed file must never change.
  for (int64_t op = 0;; ++op) {
    env.Reset();
    env.InjectFault(FaultInjectingEnv::FaultKind::kCrash, op);
    AtomicFileWriter writer(&env, path);
    Status append = writer.Append("replacement-state");
    Status commit = append.ok() ? writer.Commit() : append;
    if (commit.ok()) break;  // op index beyond the sequence: clean run
    // Old-or-new: either the stable file survived at path, or the rotation
    // crashed between renames and it survived at .bak.
    Env* check = base;
    std::string at_path = check->FileExists(path)
                              ? *ReadFileToString(check, path)
                              : *ReadFileToString(
                                    check, AtomicFileWriter::BackupPath(path));
    EXPECT_EQ(at_path, "stable-state") << "crash at op " << op;
    // Restore the fixture for the next iteration.
    env.Reset();
    RemoveIfExists(base, path);
    RemoveIfExists(base, AtomicFileWriter::BackupPath(path));
    ASSERT_TRUE(WriteStringToFile(base, "stable-state", path).ok());
    ASSERT_LT(op, 64) << "crash sweep did not terminate";
  }
  EXPECT_EQ(*ReadFileToString(base, path), "replacement-state");
}

TEST(FaultInjectingEnvTest, OpCountingIsDeterministic) {
  const std::string path = TestDir() + "/ops.dat";
  RemoveIfExists(Env::Default(), path);
  RemoveIfExists(Env::Default(), AtomicFileWriter::BackupPath(path));
  auto run = [&](FaultInjectingEnv& env) {
    AtomicFileWriter writer(&env, path);
    (void)writer.Append("aa").ok();
    (void)writer.Append("bb").ok();
    return writer.Commit();
  };
  FaultInjectingEnv env(nullptr);
  ASSERT_TRUE(run(env).ok());
  int64_t clean_ops = env.ops_issued();
  ASSERT_GT(clean_ops, 4);  // open + 2 appends + sync + close + rename(s)

  env.Reset();
  ASSERT_TRUE(run(env).ok());
  EXPECT_EQ(env.ops_issued(), clean_ops + 1)  // +1: rotation rename now fires
      << "same op sequence must count identically";

  // A crash at op k fails the write and every subsequent mutating op.
  env.Reset();
  env.InjectFault(FaultInjectingEnv::FaultKind::kCrash, 2);
  Status st = run(env);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(FaultInjectingEnvTest, TornWriteLeavesPrefixOnly) {
  Env* base = Env::Default();
  const std::string path = TestDir() + "/torn.dat";
  FaultInjectingEnv env(base);
  // Op 0 is the open; op 1 the append, which tears halfway.
  env.InjectFault(FaultInjectingEnv::FaultKind::kTornWrite, 1);
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  const std::string payload = "0123456789abcdef";
  Status st = (*file)->Append(payload);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(env.crashed());
  file->reset();  // close underlying handle
  auto contents = ReadFileToString(base, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, payload.substr(0, payload.size() / 2));
}

TEST(FaultInjectingEnvTest, BitFlipCorruptsSilently) {
  Env* base = Env::Default();
  const std::string path = TestDir() + "/flip.dat";
  FaultInjectingEnv env(base);
  env.InjectFault(FaultInjectingEnv::FaultKind::kBitFlip, 1);
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  const std::string payload = "0123456789abcdef";
  ASSERT_TRUE((*file)->Append(payload).ok());  // reports success!
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_FALSE(env.crashed());
  auto contents = ReadFileToString(base, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(*contents, payload);
  ASSERT_EQ(contents->size(), payload.size());
  int diffs = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    if ((*contents)[i] != payload[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  EXPECT_NE(Crc32(*contents), Crc32(payload)) << "CRC must catch the flip";
}

}  // namespace
}  // namespace qb5000

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/finite.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/evaluation.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/model.h"
#include "forecaster/neural.h"

namespace qb5000 {
namespace {

// A smooth daily pattern in raw arrival rates, hourly interval.
TimeSeries DailyPattern(int days, double scale, double phase = 0.0) {
  TimeSeries ts(0, kSecondsPerHour);
  for (int h = 0; h < days * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    ts.Add(static_cast<Timestamp>(h) * kSecondsPerHour,
           scale * (1.5 + std::sin(2 * M_PI * t + phase)));
  }
  return ts;
}

ModelOptions FastNeuralOptions() {
  ModelOptions opts;
  opts.hidden_dim = 12;
  opts.embedding_dim = 8;
  opts.num_layers = 1;
  opts.max_epochs = 30;
  opts.patience = 5;
  opts.learning_rate = 1e-2;
  return opts;
}

TEST(DatasetTest, ShapesAndContent) {
  std::vector<TimeSeries> series = {TimeSeries(0, 60, {1, 2, 3, 4, 5}),
                                    TimeSeries(0, 60, {10, 20, 30, 40, 50})};
  auto ds = BuildDataset(series, 2, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->x.rows(), 3u);
  EXPECT_EQ(ds->x.cols(), 4u);
  EXPECT_EQ(ds->y.cols(), 2u);
  // First example: window [1,10,2,20] -> target [3,30] (log1p space).
  EXPECT_NEAR(ds->x(0, 0), std::log1p(1.0), 1e-12);
  EXPECT_NEAR(ds->x(0, 1), std::log1p(10.0), 1e-12);
  EXPECT_NEAR(ds->y(0, 0), std::log1p(3.0), 1e-12);
  EXPECT_NEAR(ds->y(0, 1), std::log1p(30.0), 1e-12);
}

TEST(DatasetTest, HorizonShiftsTarget) {
  std::vector<TimeSeries> series = {TimeSeries(0, 60, {1, 2, 3, 4, 5, 6})};
  auto ds = BuildDataset(series, 2, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->x.rows(), 2u);
  // Window [1,2] with horizon 3 -> target index 4 (value 5).
  EXPECT_NEAR(ds->y(0, 0), std::log1p(5.0), 1e-12);
}

TEST(DatasetTest, RejectsMisalignedOrShort) {
  std::vector<TimeSeries> bad = {TimeSeries(0, 60, {1, 2, 3}),
                                 TimeSeries(0, 120, {1, 2, 3})};
  EXPECT_FALSE(BuildDataset(bad, 2, 1).ok());
  std::vector<TimeSeries> tiny = {TimeSeries(0, 60, {1, 2})};
  EXPECT_FALSE(BuildDataset(tiny, 2, 1).ok());
  EXPECT_FALSE(BuildDataset({}, 2, 1).ok());
}

TEST(DatasetTest, RoundTripTransforms) {
  Vector rates = {0, 1, 99.5, 1e6};
  Vector back = ToArrivalRates(ToLogSpace(rates));
  for (size_t i = 0; i < rates.size(); ++i) EXPECT_NEAR(back[i], rates[i], 1e-6);
}

TEST(DatasetTest, LatestWindow) {
  std::vector<TimeSeries> series = {TimeSeries(0, 60, {1, 2, 3, 4})};
  auto w = LatestWindow(series, 2);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), 2u);
  EXPECT_NEAR((*w)[0], std::log1p(3.0), 1e-12);
  EXPECT_NEAR((*w)[1], std::log1p(4.0), 1e-12);
  EXPECT_FALSE(LatestWindow(series, 9).ok());
}

TEST(LrModelTest, LearnsCyclicPattern) {
  std::vector<TimeSeries> series = {DailyPattern(14, 1000.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  LinearRegressionModel lr(ModelOptions{});
  ASSERT_TRUE(lr.Fit(ds->x, ds->y).ok());
  // Predict the last training example and compare.
  size_t last = ds->x.rows() - 1;
  auto pred = lr.Predict(ds->x.Row(last));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(last, 0), 0.05);
}

TEST(LrModelTest, RejectsBeforeFitAndBadDims) {
  LinearRegressionModel lr(ModelOptions{});
  EXPECT_FALSE(lr.Predict({1, 2, 3}).ok());
  std::vector<TimeSeries> series = {DailyPattern(7, 100.0)};
  auto ds = BuildDataset(series, 12, 1);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(lr.Fit(ds->x, ds->y).ok());
  EXPECT_FALSE(lr.Predict({1.0}).ok());
}

TEST(ArmaModelTest, FitsAndPredicts) {
  std::vector<TimeSeries> series = {DailyPattern(14, 500.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  ArmaModel arma(ModelOptions{});
  ASSERT_TRUE(arma.Fit(ds->x, ds->y).ok());
  size_t last = ds->x.rows() - 1;
  auto pred = arma.Predict(ds->x.Row(last));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(last, 0), 0.2);
}

TEST(KrModelTest, InterpolatesSeenPatterns) {
  std::vector<TimeSeries> series = {DailyPattern(14, 800.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  KernelRegressionModel kr(ModelOptions{});
  ASSERT_TRUE(kr.Fit(ds->x, ds->y).ok());
  EXPECT_GT(kr.bandwidth(), 0.0);
  auto pred = kr.Predict(ds->x.Row(5));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(5, 0), 0.15);
}

TEST(KrModelTest, PredictsRecurringSpike) {
  // 60-day series: quiet baseline with a 3-day spike every 20 days. After
  // seeing two spikes, KR must anticipate the third from the pre-spike ramp.
  TimeSeries ts(0, kSecondsPerHour);
  for (int h = 0; h < 60 * 24; ++h) {
    int day = h / 24;
    double v = 100.0;
    int cycle_day = day % 20;
    if (cycle_day >= 15 && cycle_day < 18) v = 5000.0;   // spike
    else if (cycle_day >= 13 && cycle_day < 15) v = 400.0;  // ramp
    ts.Add(static_cast<Timestamp>(h) * kSecondsPerHour, v);
  }
  std::vector<TimeSeries> series = {ts};
  // Input: last 3 days; horizon: 2 days ahead (prediction leads the spike).
  auto ds = BuildDataset(series, 72, 48);
  ASSERT_TRUE(ds.ok());
  // Train on the first two cycles only (through day 40).
  size_t train_n = 40 * 24 - 72 - 48 + 1;
  Matrix tx(train_n, ds->x.cols());
  Matrix ty(train_n, 1);
  for (size_t i = 0; i < train_n; ++i) {
    tx.SetRow(i, ds->x.Row(i));
    ty(i, 0) = ds->y(i, 0);
  }
  KernelRegressionModel kr(ModelOptions{});
  LinearRegressionModel lr(ModelOptions{});
  ASSERT_TRUE(kr.Fit(tx, ty).ok());
  ASSERT_TRUE(lr.Fit(tx, ty).ok());
  // Query: window ending at day 55 (ramp of the third cycle, cycle_day 13-14
  // visible), target day 57 = spike.
  size_t query = 55 * 24 - 72;
  auto kr_pred = kr.Predict(ds->x.Row(query));
  ASSERT_TRUE(kr_pred.ok());
  double kr_rate = std::expm1((*kr_pred)[0]);
  double actual = std::expm1(ds->y(query, 0));
  EXPECT_GT(actual, 4000.0);  // sanity: it is a spike
  EXPECT_GT(kr_rate, 2000.0) << "KR must predict the spike";
}

TEST(StandardizerTest, ZeroVarianceColumnBecomesIdentityTransform) {
  // A degenerate cluster (e.g. a single template with a constant rate)
  // yields a zero-variance input column; dividing by its std would produce
  // NaN/Inf in every standardized row (DESIGN.md §13). The guard treats
  // such columns as identity (std := 1), so values pass through centered.
  Matrix data(6, 2);
  for (size_t r = 0; r < data.rows(); ++r) {
    data(r, 0) = 5.0;                          // constant column
    data(r, 1) = static_cast<double>(r) * 2.0; // varying column
  }
  Standardizer std_izer;
  Matrix transformed = std_izer.FitTransform(data);
  ASSERT_TRUE(std_izer.fitted());
  EXPECT_TRUE(std_izer.Finite());
  for (size_t r = 0; r < transformed.rows(); ++r) {
    EXPECT_TRUE(qb5000::IsFinite(transformed(r, 0)));
    EXPECT_TRUE(qb5000::IsFinite(transformed(r, 1)));
    EXPECT_DOUBLE_EQ(transformed(r, 0), 0.0);  // centered, identity scale
  }
  // Round trip restores the original values exactly for both columns.
  Vector row = {5.0, 4.0};
  Vector restored = std_izer.Inverse(std_izer.Transform(row));
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_DOUBLE_EQ(restored[0], 5.0);
  EXPECT_DOUBLE_EQ(restored[1], 4.0);
}

TEST(StandardizerTest, PoisonedColumnStatisticsAreScrubbed) {
  // A NaN in the input (a poisoned upstream series) would classically make
  // the whole column's mean/std NaN and every transformed row NaN. The
  // scrub resets a non-finite mean to 0 and a non-finite std to 1, so the
  // transform stays usable and Finite() holds for health checks.
  Matrix data(4, 2);
  for (size_t r = 0; r < data.rows(); ++r) {
    data(r, 0) = std::numeric_limits<double>::quiet_NaN();
    data(r, 1) = static_cast<double>(r);
  }
  Standardizer std_izer;
  Matrix transformed = std_izer.FitTransform(data);
  EXPECT_TRUE(std_izer.Finite());
  // The healthy column standardizes normally.
  for (size_t r = 0; r < transformed.rows(); ++r) {
    EXPECT_TRUE(qb5000::IsFinite(transformed(r, 1)));
  }
  // Statistics are finite even for the poisoned column, so a finite input
  // through Transform stays finite (the NaN *data* is the caller's bug;
  // the transform must not amplify it into the statistics).
  Vector probe = std_izer.Transform({1.0, 1.0});
  EXPECT_TRUE(qb5000::IsFinite(probe[0]));
  EXPECT_TRUE(qb5000::IsFinite(probe[1]));
}

TEST(FnnModelTest, LearnsPattern) {
  std::vector<TimeSeries> series = {DailyPattern(14, 300.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  auto opts = FastNeuralOptions();
  opts.num_series = 1;
  FnnModel fnn(opts);
  ASSERT_TRUE(fnn.Fit(ds->x, ds->y).ok());
  size_t probe = ds->x.rows() / 2;
  auto pred = fnn.Predict(ds->x.Row(probe));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(probe, 0), 0.6);
}

TEST(RnnModelTest, LearnsPatternAndChecksDims) {
  std::vector<TimeSeries> series = {DailyPattern(14, 300.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  auto opts = FastNeuralOptions();
  opts.num_series = 1;
  RnnModel rnn(opts);
  ASSERT_TRUE(rnn.Fit(ds->x, ds->y).ok());
  size_t probe = ds->x.rows() / 2;
  auto pred = rnn.Predict(ds->x.Row(probe));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(probe, 0), 0.6);
  EXPECT_FALSE(rnn.Predict({1.0, 2.0}).ok());
}

TEST(RnnModelTest, JointMultiSeriesPrediction) {
  std::vector<TimeSeries> series = {DailyPattern(10, 300.0),
                                    DailyPattern(10, 900.0, M_PI / 2)};
  auto ds = BuildDataset(series, 12, 1);
  ASSERT_TRUE(ds.ok());
  auto opts = FastNeuralOptions();
  opts.num_series = 2;
  RnnModel rnn(opts);
  ASSERT_TRUE(rnn.Fit(ds->x, ds->y).ok());
  auto pred = rnn.Predict(ds->x.Row(3));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->size(), 2u);
}

TEST(PsrnnModelTest, LearnsPattern) {
  std::vector<TimeSeries> series = {DailyPattern(14, 300.0)};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  auto opts = FastNeuralOptions();
  opts.num_series = 1;
  PsrnnModel psrnn(opts);
  ASSERT_TRUE(psrnn.Fit(ds->x, ds->y).ok());
  size_t probe = ds->x.rows() / 2;
  auto pred = psrnn.Predict(ds->x.Row(probe));
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], ds->y(probe, 0), 0.8);
}

TEST(EnsembleModelTest, AveragesComponents) {
  std::vector<TimeSeries> series = {DailyPattern(10, 400.0)};
  auto ds = BuildDataset(series, 12, 1);
  ASSERT_TRUE(ds.ok());
  auto opts = FastNeuralOptions();
  opts.num_series = 1;
  auto lr = std::make_shared<LinearRegressionModel>(opts);
  auto rnn = std::make_shared<RnnModel>(opts);
  ASSERT_TRUE(lr->Fit(ds->x, ds->y).ok());
  ASSERT_TRUE(rnn->Fit(ds->x, ds->y).ok());
  EnsembleModel ensemble(lr, rnn);
  Vector x = ds->x.Row(4);
  auto e = ensemble.Predict(x);
  auto l = lr->Predict(x);
  auto r = rnn->Predict(x);
  ASSERT_TRUE(e.ok() && l.ok() && r.ok());
  EXPECT_NEAR((*e)[0], 0.5 * ((*l)[0] + (*r)[0]), 1e-12);
}

TEST(HybridModelTest, GammaSwitchUsesKrOnSpikes) {
  // Hand-built components: "ensemble" predicts low, "KR" predicts high.
  class ConstantModel : public ForecastModel {
   public:
    explicit ConstantModel(double rate) : rate_(rate) {}
    Status Fit(const Matrix&, const Matrix&) override { return Status::Ok(); }
    Result<Vector> Predict(const Vector&) const override {
      return Vector{std::log1p(rate_)};
    }
    std::string_view name() const override { return "CONST"; }
    ModelTraits traits() const override { return {}; }

   private:
    double rate_;
  };
  auto low = std::make_shared<ConstantModel>(100.0);
  auto high = std::make_shared<ConstantModel>(1000.0);
  // gamma = 1.5: KR (1000) > 2.5 * 100 -> KR wins.
  HybridModel hybrid_spike(low, high, 1.5);
  auto pred = hybrid_spike.Predict({0.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(std::expm1((*pred)[0]), 1000.0, 1e-6);
  // gamma = 12: KR (1000) < 13 * 100 -> ensemble wins.
  HybridModel hybrid_calm(low, high, 12.0);
  pred = hybrid_calm.Predict({0.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(std::expm1((*pred)[0]), 100.0, 1e-6);
}

TEST(ModelFactoryTest, CreatesEveryKindWithCorrectTraits) {
  const ModelKind kinds[] = {ModelKind::kLr,   ModelKind::kArma,
                             ModelKind::kKr,   ModelKind::kFnn,
                             ModelKind::kRnn,  ModelKind::kPsrnn,
                             ModelKind::kEnsemble, ModelKind::kHybrid};
  for (ModelKind kind : kinds) {
    auto model = CreateModel(kind, ModelOptions{});
    ASSERT_NE(model, nullptr) << ModelKindName(kind);
    EXPECT_EQ(model->name(), ModelKindName(kind));
    ModelTraits t1 = model->traits();
    ModelTraits t2 = TraitsOf(kind);
    EXPECT_EQ(t1.linear, t2.linear);
    EXPECT_EQ(t1.memory, t2.memory);
    EXPECT_EQ(t1.kernel, t2.kernel);
  }
  // Table 3 spot checks.
  EXPECT_TRUE(TraitsOf(ModelKind::kLr).linear);
  EXPECT_FALSE(TraitsOf(ModelKind::kLr).memory);
  EXPECT_TRUE(TraitsOf(ModelKind::kArma).memory);
  EXPECT_TRUE(TraitsOf(ModelKind::kKr).kernel);
  EXPECT_TRUE(TraitsOf(ModelKind::kRnn).memory);
  EXPECT_TRUE(TraitsOf(ModelKind::kPsrnn).kernel);
}

TEST(EvaluationTest, LrBeatsNaiveOnLinearPattern) {
  std::vector<TimeSeries> series = {DailyPattern(21, 600.0)};
  auto eval = EvaluateModel(ModelKind::kLr, series, 24, 1, 0.7, ModelOptions{});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval->predicted.empty());
  EXPECT_EQ(eval->predicted.size(), eval->actual.size());
  EXPECT_EQ(eval->predicted.size(), eval->times.size());
  // A daily pattern is almost perfectly linearly predictable at 1h horizon.
  EXPECT_LT(eval->log_mse, -2.0);
}

TEST(EvaluationTest, LongerHorizonIsHarder) {
  // A random-walk level component makes distant horizons genuinely harder
  // (a pure sinusoid is equally predictable at every horizon).
  Rng rng(9);
  TimeSeries ts(0, kSecondsPerHour);
  double walk = 0.0;
  for (int h = 0; h < 21 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    walk += rng.Gaussian(0, 30.0);
    double v = 500.0 * (1.5 + std::sin(2 * M_PI * t)) + walk;
    ts.Add(static_cast<Timestamp>(h) * kSecondsPerHour, std::max(0.0, v));
  }
  std::vector<TimeSeries> series = {ts};
  auto short_h = EvaluateModel(ModelKind::kLr, series, 24, 1, 0.7, ModelOptions{});
  auto long_h = EvaluateModel(ModelKind::kLr, series, 24, 72, 0.7, ModelOptions{});
  ASSERT_TRUE(short_h.ok());
  ASSERT_TRUE(long_h.ok());
  EXPECT_LT(short_h->log_mse, long_h->log_mse);
}

TEST(EvaluationTest, SumAcrossSeries) {
  std::vector<Vector> pts = {{1, 2}, {3, 4}};
  auto sums = SumAcrossSeries(pts);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 7.0);
}

TEST(EvaluationTest, HybridRunsEndToEnd) {
  std::vector<TimeSeries> series = {DailyPattern(21, 600.0)};
  auto opts = FastNeuralOptions();
  opts.kr_input_window = 48;
  auto eval = EvaluateModel(ModelKind::kHybrid, series, 24, 1, 0.7, opts);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_LT(eval->log_mse, 0.0);
}

}  // namespace
}  // namespace qb5000

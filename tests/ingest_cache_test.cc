// Differential suite for the ingest fast path (DESIGN.md §11): the template
// cache and the batched/sharded ingest are pure accelerations — template
// ids, fingerprints, arrival histories, and counter exports must be
// bit-identical to the naive parse-every-query path, on adversarial fuzz
// input and on all four synthetic workloads, at any thread count.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "preprocessor/preprocessor.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

const char* const kCorpus[] = {
    "SELECT * FROM orders WHERE id = 42",
    "SELECT name, total FROM orders WHERE total > 10.5 AND region = 'east'",
    "SELECT id FROM users WHERE name LIKE 'a%' OR age BETWEEN 18 AND 65",
    "SELECT * FROM trips WHERE route_id IN (1, 2, 3) LIMIT 50",
    "SELECT COUNT(*) FROM events WHERE ts >= 1700000000 AND kind = 'click'",
    "INSERT INTO orders (id, total, region) VALUES (1, 9.99, 'west')",
    "INSERT INTO logs (msg) VALUES ('it''s done'), ('again'), ('more')",
    "UPDATE users SET age = 30, name = 'bob' WHERE id = 7",
    "UPDATE orders SET total = total WHERE region = 'north' AND total < 5",
    "DELETE FROM events WHERE ts < 1600000000",
    "SELECT a.id FROM a WHERE ((a.x = 1 OR a.y = 2) AND a.z = 'q')",
    "SELECT * FROM t WHERE NOT (flag = 1) ORDER BY id DESC",
};

/// A deterministic raw-SQL arrival stream mixing exact repeats (cache
/// hits), literal-rewritten repeats (hits under a different raw string),
/// and corrupted statements (rejects + token-fallback templates).
std::vector<TraceEvent> MakeFuzzTrace(int iterations, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    std::string sql = kCorpus[rng.UniformInt(0, std::size(kCorpus) - 1)];
    switch (rng.UniformInt(0, 3)) {
      case 0:  // exact repeat
        break;
      case 1: {  // rewrite digits so the raw string differs but the key
                 // does not
        for (char& c : sql) {
          if (c >= '0' && c <= '9') {
            c = static_cast<char>('0' + rng.UniformInt(0, 9));
          }
        }
        break;
      }
      case 2:  // shout-case repeat (normalizer canonicalizes case)
        for (char& c : sql) c = static_cast<char>(std::toupper(c));
        break;
      default: {  // corrupt one byte (often a reject or a fallback)
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
        sql[at] = static_cast<char>(rng.UniformInt(1, 255));
        break;
      }
    }
    events.push_back(TraceEvent{static_cast<Timestamp>(i) * 7, std::move(sql)});
  }
  return events;
}

/// Serializes a history's complete state (scalars + exact run structure of
/// every rung) — string equality here is full bit-identity of the history.
std::string EncodedHistory(const ArrivalHistory& history) {
  std::ostringstream out;
  out.precision(17);
  EXPECT_TRUE(history.EncodeResolved(out).ok());
  return out.str();
}

/// Asserts two PreProcessors hold bit-identical template state: ids,
/// fingerprints, texts, types, totals, timestamps, and full arrival
/// histories (all rungs, via the canonical encoding). Parameter-reservoir
/// contents are deliberately exempt (DESIGN.md §11: the hit path samples
/// normalized token literals, the miss path samples parse-derived tuples).
void ExpectSameTemplateState(const PreProcessor& a, const PreProcessor& b) {
  ASSERT_EQ(a.TemplateIds(), b.TemplateIds());
  EXPECT_EQ(a.total_queries(), b.total_queries());
  for (TemplateId id : a.TemplateIds()) {
    const auto* ta = a.GetTemplate(id);
    const auto* tb = b.GetTemplate(id);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(ta->fingerprint, tb->fingerprint) << "id " << id;
    EXPECT_EQ(ta->text, tb->text) << "id " << id;
    EXPECT_EQ(ta->type, tb->type) << "id " << id;
    EXPECT_EQ(ta->tables, tb->tables) << "id " << id;
    EXPECT_EQ(ta->first_seen, tb->first_seen) << "id " << id;
    EXPECT_EQ(ta->last_seen, tb->last_seen) << "id " << id;
    EXPECT_EQ(ta->total_queries, tb->total_queries) << "id " << id;
    EXPECT_EQ(ta->history.Total(), tb->history.Total()) << "id " << id;
    EXPECT_EQ(ta->history.last_arrival(), tb->history.last_arrival())
        << "id " << id;
    EXPECT_EQ(EncodedHistory(ta->history), EncodedHistory(tb->history))
        << "id " << id;
  }
}

/// Replays `events` per-query through a cache-enabled and a cache-disabled
/// PreProcessor and asserts identical outcomes everywhere.
void RunCacheDifferential(const std::vector<TraceEvent>& events) {
  MetricsRegistry m_on;
  MetricsRegistry m_off;
  PreProcessor::Options on;
  on.metrics = &m_on;
  PreProcessor::Options off;
  off.metrics = &m_off;
  off.template_cache_capacity = 0;
  PreProcessor cached(on);
  PreProcessor naive(off);

  for (const auto& e : events) {
    auto got = cached.Ingest(e.sql, e.timestamp);
    auto want = naive.Ingest(e.sql, e.timestamp);
    ASSERT_EQ(got.ok(), want.ok()) << e.sql;
    if (got.ok()) {
      ASSERT_EQ(got.value(), want.value()) << e.sql;
    }
  }
  ExpectSameTemplateState(cached, naive);

  if (kMetricsEnabled) {
    // hits + misses == successful raw ingests, in both configurations.
    auto successes = m_on.GetCounter("preprocessor.ingests_total")->value();
    EXPECT_EQ(m_on.GetCounter("preprocessor.cache_hits_total")->value() +
                  m_on.GetCounter("preprocessor.cache_misses_total")->value(),
              successes);
    EXPECT_GT(m_on.GetCounter("preprocessor.cache_hits_total")->value(), 0u);
    EXPECT_EQ(m_off.GetCounter("preprocessor.cache_hits_total")->value(), 0u);
    EXPECT_EQ(m_off.GetCounter("preprocessor.cache_misses_total")->value(),
              successes);
    EXPECT_EQ(m_on.GetCounter("preprocessor.parse_failures_total")->value(),
              m_off.GetCounter("preprocessor.parse_failures_total")->value());
    EXPECT_EQ(m_on.GetCounter("preprocessor.templates_created_total")->value(),
              m_off.GetCounter("preprocessor.templates_created_total")->value());
  }
}

TEST(IngestCache, FuzzTraceMatchesUncachedPath) {
  RunCacheDifferential(MakeFuzzTrace(3000, 20260807));
}

TEST(IngestCache, SyntheticWorkloadsMatchUncachedPath) {
  const SyntheticWorkload workloads[] = {MakeBusTracker(), MakeAdmissions(),
                                         MakeMooc(), MakeNoisyComposite()};
  for (const auto& w : workloads) {
    SCOPED_TRACE(w.label());
    auto events =
        w.Materialize(0, 6 * kSecondsPerHour, kSecondsPerMinute, 99, 1.0, 40);
    ASSERT_FALSE(events.empty());
    RunCacheDifferential(events);
  }
}

/// Batched ingest must reproduce the per-query path bit-for-bit — ids,
/// histories, and the deterministic counter section of the metrics export —
/// at every thread count.
TEST(IngestCache, BatchMatchesPerQueryAtThreadCounts) {
  auto events = MakeFuzzTrace(2500, 4242);
  auto workload_events =
      MakeBusTracker().Materialize(0, 3 * kSecondsPerHour, kSecondsPerMinute,
                                   17, 1.0, 40);
  events.insert(events.end(), workload_events.begin(), workload_events.end());

  // Per-query baseline (cache enabled, sequential).
  MetricsRegistry m_base;
  PreProcessor::Options base_opts;
  base_opts.metrics = &m_base;
  PreProcessor baseline(base_opts);
  std::vector<TemplateId> base_ids;
  base_ids.reserve(events.size());
  for (const auto& e : events) {
    auto id = baseline.Ingest(e.sql, e.timestamp);
    base_ids.push_back(id.ok() ? id.value() : 0);
  }
  MetricsRegistry::ExportOptions counters_only;
  counters_only.counters_only = true;
  std::string base_counters = m_base.ExportText(counters_only);

  size_t original_threads = GetThreadCount();
  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE(threads);
    SetThreadCount(threads);
    MetricsRegistry m_batch;
    PreProcessor::Options batch_opts;
    batch_opts.metrics = &m_batch;
    PreProcessor batched(batch_opts);
    std::vector<TemplateId> batch_ids;
    batch_ids.reserve(events.size());
    constexpr size_t kBatch = 512;
    std::vector<QueryArrival> arrivals;
    for (size_t at = 0; at < events.size(); at += kBatch) {
      size_t end = std::min(events.size(), at + kBatch);
      arrivals.clear();
      for (size_t i = at; i < end; ++i) {
        arrivals.push_back(QueryArrival{events[i].sql, events[i].timestamp, 1.0});
      }
      auto ids = batched.IngestBatch(arrivals);
      batch_ids.insert(batch_ids.end(), ids.begin(), ids.end());
    }
    EXPECT_EQ(batch_ids, base_ids);
    ExpectSameTemplateState(batched, baseline);
    if (kMetricsEnabled) {
      // The counter section is the golden-trace contract: byte-identical
      // to the per-query export, modulo the one batches_total line.
      std::string batch_counters = m_batch.ExportText(counters_only);
      std::string expect = base_counters;
      size_t pos = expect.find("preprocessor.batches_total 0");
      ASSERT_NE(pos, std::string::npos);
      expect.replace(pos, std::string("preprocessor.batches_total 0").size(),
                     "preprocessor.batches_total " +
                         std::to_string((events.size() + kBatch - 1) / kBatch));
      EXPECT_EQ(batch_counters, expect);
    }
  }
  SetThreadCount(original_threads);
}

/// The cache capacity knob: 1-entry and tiny caches still produce correct
/// ids (only hit rates change), and evictions are accounted.
TEST(IngestCache, TinyCacheStaysCorrect) {
  auto events = MakeFuzzTrace(1200, 777);
  MetricsRegistry m_tiny;
  PreProcessor::Options tiny;
  tiny.metrics = &m_tiny;
  tiny.template_cache_capacity = 2;
  PreProcessor small(tiny);
  PreProcessor::Options off;
  off.template_cache_capacity = 0;
  PreProcessor naive(off);
  for (const auto& e : events) {
    auto got = small.Ingest(e.sql, e.timestamp);
    auto want = naive.Ingest(e.sql, e.timestamp);
    ASSERT_EQ(got.ok(), want.ok()) << e.sql;
    if (got.ok()) {
      ASSERT_EQ(got.value(), want.value()) << e.sql;
    }
  }
  EXPECT_LE(small.cache_size(), 2u);
  ExpectSameTemplateState(small, naive);
  if (kMetricsEnabled) {
    EXPECT_GT(m_tiny.GetCounter("preprocessor.cache_evictions_total")->value(),
              0u);
  }
}

/// Evicting idle templates must invalidate their cache entries: a later
/// arrival of the same SQL re-creates the template under a fresh id instead
/// of resurrecting the dead one.
TEST(IngestCache, EvictionInvalidatesCacheEntries) {
  PreProcessor pre;
  auto first = pre.Ingest("SELECT * FROM t WHERE x = 1", 0);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(pre.EvictIdleTemplates(kSecondsPerDay).size(), 1u);
  EXPECT_EQ(pre.cache_size(), 0u);
  auto second = pre.Ingest("SELECT * FROM t WHERE x = 2", 2 * kSecondsPerDay);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value(), first.value());
  EXPECT_NE(pre.GetTemplate(second.value()), nullptr);
  EXPECT_EQ(pre.GetTemplate(first.value()), nullptr);
}

}  // namespace
}  // namespace qb5000
